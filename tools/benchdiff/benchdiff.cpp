// benchdiff: compares two BENCH_*.json artifacts (baseline vs candidate).
//
// Counters are the determinism contract and are compared for EXACT
// equality; any drift (value change, missing key, new key) is a counter
// mismatch. Timings live in the quarantined "timings_nondeterministic"
// section and are compared per-timer against a relative threshold on
// total_ms -- they gate only when the caller asks (CI runs --counters-only
// because shared runners make wall-clock advisory at best).
//
// Exit codes (the CI contract):
//   0  ok: counters identical, no timing regression over threshold
//   1  perf regression: counters identical, but a timer slowed past the
//      threshold (suppressed by --counters-only)
//   2  counter mismatch: the deterministic section drifted
//   3  usage or IO error (bad flags, unreadable/unparsable artifact)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using platoon::obs::Json;

constexpr int kExitOk = 0;
constexpr int kExitPerfRegression = 1;
constexpr int kExitCounterMismatch = 2;
constexpr int kExitUsage = 3;

struct Options {
    std::string baseline_path;
    std::string candidate_path;
    double threshold = 0.25;  ///< Allowed relative slowdown on total_ms.
    bool counters_only = false;
    std::string format = "text";  ///< "text" or "json".
};

void usage(std::FILE* to) {
    std::fprintf(
        to,
        "usage: benchdiff [options] <baseline.json> <candidate.json>\n"
        "\n"
        "Compares two BENCH_*.json artifacts produced by the bench binaries.\n"
        "Counters must match exactly; timings are advisory unless they slow\n"
        "down by more than the relative threshold.\n"
        "\n"
        "options:\n"
        "  --threshold=<frac>   allowed relative slowdown on a timer's\n"
        "                       total_ms before it counts as a regression\n"
        "                       (default 0.25 = 25%%)\n"
        "  --counters-only      ignore timings entirely (CI on shared\n"
        "                       runners); only counter drift can fail\n"
        "  --format=text|json   delta report format (default text)\n"
        "  --help               this text\n"
        "\n"
        "exit codes: 0 ok, 1 perf regression, 2 counter mismatch,\n"
        "            3 usage/IO error\n");
}

std::optional<Options> parse_args(int argc, char** argv) {
    Options opt;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            std::exit(kExitOk);
        } else if (arg == "--counters-only") {
            opt.counters_only = true;
        } else if (arg.rfind("--threshold=", 0) == 0) {
            try {
                opt.threshold = std::stod(arg.substr(12));
            } catch (...) {
                std::fprintf(stderr, "benchdiff: bad --threshold value: %s\n",
                             arg.c_str());
                return std::nullopt;
            }
            if (opt.threshold < 0.0) {
                std::fprintf(stderr,
                             "benchdiff: --threshold must be >= 0\n");
                return std::nullopt;
            }
        } else if (arg.rfind("--format=", 0) == 0) {
            opt.format = arg.substr(9);
            if (opt.format != "text" && opt.format != "json") {
                std::fprintf(stderr,
                             "benchdiff: --format must be text or json\n");
                return std::nullopt;
            }
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "benchdiff: unknown option: %s\n",
                         arg.c_str());
            return std::nullopt;
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2) {
        usage(stderr);
        return std::nullopt;
    }
    opt.baseline_path = positional[0];
    opt.candidate_path = positional[1];
    return opt;
}

std::optional<Json> load_artifact(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "benchdiff: cannot read %s\n", path.c_str());
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::optional<Json> json = Json::parse(buf.str());
    if (!json || !json->is_object()) {
        std::fprintf(stderr, "benchdiff: %s is not a JSON object\n",
                     path.c_str());
        return std::nullopt;
    }
    return json;
}

/// One row of the delta report.
struct Delta {
    std::string kind;  ///< "counter" or "timer".
    std::string name;
    std::string status;  ///< "ok", "mismatch", "missing", "new", "regression".
    double baseline = 0.0;
    double candidate = 0.0;
    double rel_change = 0.0;  ///< (candidate - baseline) / baseline.
};

double rel_change(double baseline, double candidate) {
    if (baseline == 0.0) return candidate == 0.0 ? 0.0 : HUGE_VAL;
    return (candidate - baseline) / baseline;
}

/// Exact comparison of the counter objects. Returns true when identical.
bool diff_counters(const Json& base, const Json& cand,
                   std::vector<Delta>& deltas) {
    bool identical = true;
    const Json::Object& b = base.as_object();
    const Json::Object& c = cand.as_object();
    for (const auto& [name, bval] : b) {
        Delta d{"counter", name, "ok", bval.as_double(), 0.0, 0.0};
        const auto it = c.find(name);
        if (it == c.end()) {
            d.status = "missing";
            identical = false;
        } else {
            d.candidate = it->second.as_double();
            d.rel_change = rel_change(d.baseline, d.candidate);
            if (!(bval == it->second)) {
                d.status = "mismatch";
                identical = false;
            }
        }
        deltas.push_back(std::move(d));
    }
    for (const auto& [name, cval] : c) {
        if (b.contains(name)) continue;
        deltas.push_back(
            {"counter", name, "new", 0.0, cval.as_double(), 0.0});
        identical = false;
    }
    return identical;
}

/// Relative comparison of timer total_ms. Returns true when no timer slowed
/// down past the threshold. Missing/new timers are reported but advisory:
/// instrumentation churn is not a perf regression.
bool diff_timers(const Json& base, const Json& cand, double threshold,
                 std::vector<Delta>& deltas) {
    bool ok = true;
    const Json::Object& b = base.at("timers").as_object();
    const Json::Object& c = cand.at("timers").as_object();
    for (const auto& [path, bstat] : b) {
        const double base_ms = bstat.at("total_ms").as_double();
        Delta d{"timer", path, "ok", base_ms, 0.0, 0.0};
        const auto it = c.find(path);
        if (it == c.end()) {
            d.status = "missing";
        } else {
            d.candidate = it->second.at("total_ms").as_double();
            d.rel_change = rel_change(d.baseline, d.candidate);
            if (d.rel_change > threshold) {
                d.status = "regression";
                ok = false;
            }
        }
        deltas.push_back(std::move(d));
    }
    for (const auto& [path, cstat] : c) {
        if (b.contains(path)) continue;
        deltas.push_back({"timer", path, "new", 0.0,
                          cstat.at("total_ms").as_double(), 0.0});
    }
    return ok;
}

void print_text(const Options& opt, const std::vector<Delta>& deltas,
                int exit_code) {
    std::printf("benchdiff: %s vs %s\n", opt.baseline_path.c_str(),
                opt.candidate_path.c_str());
    std::printf("%-8s %-36s %-11s %14s %14s %9s\n", "kind", "name", "status",
                "baseline", "candidate", "change");
    for (const Delta& d : deltas) {
        char change[32];
        if (std::isinf(d.rel_change)) {
            std::snprintf(change, sizeof change, "inf");
        } else {
            std::snprintf(change, sizeof change, "%+.1f%%",
                          d.rel_change * 100.0);
        }
        std::printf("%-8s %-36s %-11s %14.3f %14.3f %9s\n", d.kind.c_str(),
                    d.name.c_str(), d.status.c_str(), d.baseline, d.candidate,
                    change);
    }
    const char* verdict = exit_code == kExitOk             ? "OK"
                          : exit_code == kExitPerfRegression
                              ? "PERF REGRESSION"
                              : "COUNTER MISMATCH";
    std::printf("benchdiff: %s\n", verdict);
}

void print_json(const Options& opt, const std::vector<Delta>& deltas,
                int exit_code) {
    Json rows = Json::array();
    for (const Delta& d : deltas) {
        Json row = Json::object();
        row.set("kind", Json::string(d.kind));
        row.set("name", Json::string(d.name));
        row.set("status", Json::string(d.status));
        row.set("baseline", Json::number(d.baseline));
        row.set("candidate", Json::number(d.candidate));
        row.set("rel_change", Json::number(std::isinf(d.rel_change)
                                               ? -1.0
                                               : d.rel_change));
        rows.as_array().push_back(std::move(row));
    }
    Json out = Json::object();
    out.set("baseline", Json::string(opt.baseline_path));
    out.set("candidate", Json::string(opt.candidate_path));
    out.set("counters_only", Json::boolean(opt.counters_only));
    out.set("deltas", std::move(rows));
    out.set("exit_code", Json::integer(exit_code));
    out.set("threshold", Json::number(opt.threshold));
    std::printf("%s", out.dump().c_str());
}

}  // namespace

int main(int argc, char** argv) {
    const std::optional<Options> opt = parse_args(argc, argv);
    if (!opt) return kExitUsage;

    const std::optional<Json> baseline = load_artifact(opt->baseline_path);
    const std::optional<Json> candidate = load_artifact(opt->candidate_path);
    if (!baseline || !candidate) return kExitUsage;

    for (const Json* artifact : {&*baseline, &*candidate}) {
        if (!artifact->at("counters").is_object() ||
            !artifact->at("timings_nondeterministic").is_object()) {
            std::fprintf(stderr,
                         "benchdiff: artifact missing counters/"
                         "timings_nondeterministic sections\n");
            return kExitUsage;
        }
    }

    std::vector<Delta> deltas;
    const bool counters_identical = diff_counters(
        baseline->at("counters"), candidate->at("counters"), deltas);
    bool timings_ok = true;
    if (!opt->counters_only) {
        timings_ok = diff_timers(
            baseline->at("timings_nondeterministic"),
            candidate->at("timings_nondeterministic"), opt->threshold,
            deltas);
    }

    int exit_code = kExitOk;
    if (!timings_ok) exit_code = kExitPerfRegression;
    if (!counters_identical) exit_code = kExitCounterMismatch;

    if (opt->format == "json") {
        print_json(*opt, deltas, exit_code);
    } else {
        print_text(*opt, deltas, exit_code);
    }
    return exit_code;
}
