// platoonlint rules: per-file token rules (determinism, oracle isolation,
// layering) and the cross-TU name-contract rules that consume the index.
//
// Rule catalogue (ids are the suppression / --rules vocabulary):
//   no-unseeded-random, no-wallclock, no-steady-clock,
//   no-unordered-iteration, oracle-isolation, layering    -- per file
//   counter-contract, stream-registry, scenario-names,
//   stale-suppression                                     -- cross-TU
#pragma once

#include <string>
#include <tuple>
#include <vector>

#include "index.hpp"
#include "scanner.hpp"

namespace platoonlint {

extern const char* const kRuleRandom;
extern const char* const kRuleWallclock;
extern const char* const kRuleSteadyClock;
extern const char* const kRuleUnorderedIter;
extern const char* const kRuleOracle;
extern const char* const kRuleLayering;
extern const char* const kRuleCounterContract;
extern const char* const kRuleStreamRegistry;
extern const char* const kRuleScenarioNames;
extern const char* const kRuleStaleSuppression;

struct RuleDoc {
    const char* id;
    const char* doc;
};

const std::vector<RuleDoc>& all_rules();
bool known_rule(const std::string& id);

struct Finding {
    std::string file;  ///< Root-relative path.
    int line = 0;
    std::string rule;
    std::string message;

    friend bool operator<(const Finding& a, const Finding& b) {
        return std::tie(a.file, a.line, a.rule, a.message) <
               std::tie(b.file, b.line, b.rule, b.message);
    }
};

/// Runs every per-file rule on one translation unit.
void check_file(const SourceFile& src,
                const std::vector<IncludeEdge>& includes,
                std::vector<Finding>& findings);

/// counter-contract: duplicate or badly-styled obs::Counter / timer
/// names, baseline counter keys with no definition in source, and (as
/// non-fatal `notes`) counters never exported to any baseline.
void check_counter_contract(const NameIndex& index,
                            std::vector<Finding>& findings,
                            std::vector<Finding>& notes);

/// stream-registry: every named stream use must be declared in
/// src/sim/streams.def; a literal spelling a declared name outside its
/// owner file is a collision; declared-but-never-used entries and
/// malformed manifest entries are findings too. `root` resolves the
/// owner-file existence check.
void check_stream_registry(const NameIndex& index, const fs::path& root,
                           std::vector<Finding>& findings);

/// scenario-names: names used by scenarios/*.json must resolve against
/// the scen registry (attacks, defenses, controllers, auth modes,
/// profiles, per-file fault presets). A check whose registry set is
/// empty is skipped -- a partial tree cannot prove a name wrong.
void check_scenario_names(const NameIndex& index,
                          std::vector<Finding>& findings);

/// stale-suppression: after every other rule has run (and marked the
/// suppressions it matched `used`), an allow() that matched nothing is
/// itself a finding, as is one naming a rule that does not exist.
void check_stale_suppressions(
    const std::string& file,
    const std::map<int, std::vector<Suppression>>& sups,
    std::vector<Finding>& findings);

}  // namespace platoonlint
