// platoonlint: the repo's custom static-analysis pass.
//
// The simulator's headline guarantees are invariants no unit test can fully
// protect as the tree grows, so this tool makes them mechanical:
//
//   1. Determinism. Results must be bit-identical for any PLATOON_JOBS and
//      across reruns, so ambient entropy (C rand, std::random_device) and
//      wall-clock reads are forbidden outside the seeding whitelist, and
//      aggregation / scoring / report-emitting code must never iterate a
//      hash-ordered container.
//   2. Oracle isolation. Detectors score against attack ground-truth labels
//      that ride along with every frame; a detector that *reads* the label
//      is cheating. Only the harness, the scorer and the dataset exporter
//      may touch oracle state.
//   3. Layering. The module DAG (base < sim < ... < core < security/eval <
//      detect) is enforced from the include graph.
//   4. Name contracts. obs::Counter names pinned by bench baselines,
//      sim::RandomStream names declared in src/sim/streams.def, and the
//      scen registry names that scenarios/*.json compile against are all
//      string-keyed cross-TU contracts; the name index (index.cpp) checks
//      them globally, and an allow() that matches nothing is itself a
//      finding (stale-suppression).
//
// Purely lexical by design (see scanner.cpp): no C++ parsing, stripped
// source text, sorted walks, sorted findings -- the tool is itself
// byte-deterministic. Genuine exceptions carry inline suppressions --
// an allow(<rule-id>) <reason> comment directive (prefixed with the tool
// name) on the finding line or the line above. A suppression without a reason
// does not suppress.
//
// The name index is always built from the FULL default tree under --root,
// regardless of which files are being linted: cross-TU findings for a file
// are identical whether it is linted alone, via --diff-base, or as part of
// the whole tree. Scoping only filters which findings are *reported*.
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "index.hpp"
#include "report.hpp"
#include "rules.hpp"
#include "scanner.hpp"

namespace {

using namespace platoonlint;

struct Options {
    fs::path root = ".";
    std::vector<fs::path> paths;  ///< Explicit files/dirs; empty = default.
    bool json = false;
    bool fix_order_hints = false;
    std::string dump_graph;  ///< Non-empty: write include graph here.
    std::string sarif;       ///< Non-empty: write SARIF 2.1.0 here.
    std::string rules_csv;   ///< Non-empty: report only these rule ids.
    std::string diff_base;   ///< Non-empty: lint files changed since ref.
};

/// Which findings get reported. The index and the raw-finding pass always
/// cover the full tree; this is a pure output filter, which is what makes
/// file-list mode agree with whole-tree mode on shared files.
struct Scope {
    bool all = false;
    std::set<std::string> files;          ///< Exact root-relative paths.
    std::vector<std::string> dir_prefixes;  ///< "src/", "" = everything.

    [[nodiscard]] bool contains(const std::string& rel) const {
        if (all || files.count(rel) != 0) return true;
        for (const std::string& prefix : dir_prefixes)
            if (starts_with(rel, prefix)) return true;
        return false;
    }
};

int usage(const char* argv0) {
    std::cerr
        << "usage: " << argv0
        << " [--root <dir>] [--format=text|json] [--fix-order]\n"
           "       [--dump-graph <file>] [--sarif <file>] [--rules <csv>]\n"
           "       [--diff-base <ref>] [--list-rules] [paths...]\n\n"
           "Lints the platoon codebase for determinism, oracle-isolation,\n"
           "layering and name-contract invariants. With no paths, scans\n"
           "src/ bench/ examples/ tests/ tools/ under --root (default:\n"
           "cwd), excluding tests/lint/fixtures, plus the stream manifest\n"
           "(src/sim/streams.def), bench/baselines/*.json and\n"
           "scenarios/*.json. --diff-base lints only files git reports\n"
           "changed since <ref>; cross-TU context still comes from the\n"
           "whole tree.\n";
    return 2;
}

/// `git -C root diff --name-only base --`, one path per line. Returns
/// false when git fails (bad ref, not a repository).
bool git_changed_files(const fs::path& root, const std::string& base,
                       std::vector<std::string>& out) {
    const std::string cmd = "git -C '" + root.string() +
                            "' diff --name-only '" + base + "' -- 2>/dev/null";
    FILE* pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr) return false;
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) text.append(buf, n);
    const int status = pclose(pipe);
    if (status != 0) return false;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        if (!line.empty()) out.push_back(line);
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    bool list_rules = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            opt.root = argv[++i];
        } else if (arg == "--format=json") {
            opt.json = true;
        } else if (arg == "--format=text") {
            opt.json = false;
        } else if (arg == "--fix-order") {
            opt.fix_order_hints = true;
        } else if (arg == "--dump-graph" && i + 1 < argc) {
            opt.dump_graph = argv[++i];
        } else if (arg == "--sarif" && i + 1 < argc) {
            opt.sarif = argv[++i];
        } else if (arg == "--rules" && i + 1 < argc) {
            opt.rules_csv = argv[++i];
        } else if (arg == "--diff-base" && i + 1 < argc) {
            opt.diff_base = argv[++i];
        } else if (arg == "--list-rules") {
            list_rules = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            opt.paths.emplace_back(arg);
        }
    }

    if (list_rules) {
        for (const RuleDoc& r : all_rules())
            std::cout << r.id << "\n    " << r.doc << "\n";
        return 0;
    }

    std::set<std::string> rule_filter;
    if (!opt.rules_csv.empty()) {
        std::istringstream is(opt.rules_csv);
        std::string id;
        while (std::getline(is, id, ',')) {
            if (id.empty()) continue;
            if (!known_rule(id)) {
                std::cerr << "platoonlint: unknown rule in --rules: " << id
                          << "\n";
                return 2;
            }
            rule_filter.insert(id);
        }
    }

    std::error_code ec;
    const fs::path root = fs::absolute(opt.root, ec);
    if (ec || !fs::is_directory(root)) {
        std::cerr << "platoonlint: bad --root: " << opt.root << "\n";
        return 2;
    }

    // The index tree: every lintable file in the default directories.
    std::vector<fs::path> tree_files;
    for (const char* dir : {"src", "bench", "examples", "tests", "tools"}) {
        const fs::path d = root / dir;
        if (fs::is_directory(d))
            walk(d, root, /*exclude_fixtures=*/true, tree_files);
    }

    // Report scope, plus any scoped lintable files living outside the
    // default tree (fixture runs pass such files explicitly).
    Scope scope;
    std::vector<fs::path> extra_files;
    std::set<std::string> scoped_lintable;
    if (opt.paths.empty() && opt.diff_base.empty()) {
        scope.all = true;
        for (const fs::path& p : tree_files)
            scoped_lintable.insert(relative_to_root(p, root));
    }
    for (const fs::path& p : opt.paths) {
        if (fs::is_directory(p)) {
            std::string rel = relative_to_root(p, root);
            scope.dir_prefixes.push_back(rel == "." ? "" : rel + "/");
            std::vector<fs::path> walked;
            walk(p, root, /*exclude_fixtures=*/false, walked);
            for (const fs::path& f : walked) {
                const std::string frel = relative_to_root(f, root);
                scoped_lintable.insert(frel);
                extra_files.push_back(f);
            }
        } else if (fs::exists(p)) {
            const std::string rel = relative_to_root(p, root);
            scope.files.insert(rel);
            if (lintable(p)) {
                scoped_lintable.insert(rel);
                extra_files.push_back(p);
            }
        } else {
            std::cerr << "platoonlint: no such path: " << p << "\n";
            return 2;
        }
    }
    if (!opt.diff_base.empty()) {
        std::vector<std::string> changed;
        if (!git_changed_files(root, opt.diff_base, changed)) {
            std::cerr << "platoonlint: git diff --name-only "
                      << opt.diff_base << " failed under " << root << "\n";
            return 2;
        }
        for (const std::string& rel : changed) {
            const fs::path p = root / rel;
            if (!fs::exists(p)) continue;  // deleted since ref
            scope.files.insert(rel);
            if (lintable(p)) {
                scoped_lintable.insert(rel);
                extra_files.push_back(p);
            }
        }
    }

    // Load every source once: the full index tree plus scoped extras.
    std::map<std::string, SourceFile> sources;
    std::map<std::string, std::map<int, std::vector<Suppression>>> sups;
    std::map<std::string, std::vector<IncludeEdge>> includes;
    const auto load = [&](const fs::path& path) -> bool {
        const std::string rel = relative_to_root(path, root);
        if (sources.count(rel) != 0) return true;
        auto src = load_source(path, rel);
        if (!src) {
            std::cerr << "platoonlint: cannot read " << path << "\n";
            return false;
        }
        sups[rel] = collect_suppressions(*src);
        includes[rel] = collect_includes(*src);
        sources.emplace(rel, std::move(*src));
        return true;
    };
    for (const fs::path& p : tree_files)
        if (!load(p)) return 2;
    for (const fs::path& p : extra_files)
        if (!load(p)) return 2;

    // First pass: the cross-TU name index over everything loaded.
    NameIndex index;
    for (const auto& [rel, src] : sources) index_source(src, index);
    index_data_files(root, index);

    // Second pass: raw findings for the WHOLE tree (scoping is applied at
    // report time; the suppression `used` marks need global findings).
    std::vector<Finding> raw;
    std::vector<Finding> notes;
    for (const auto& [rel, src] : sources)
        check_file(src, includes.at(rel), raw);
    check_counter_contract(index, raw, notes);
    check_stream_registry(index, root, raw);
    check_scenario_names(index, raw);

    std::vector<Finding> findings;
    for (Finding& f : raw) {
        const auto sup_it = sups.find(f.file);
        if (sup_it != sups.end()) {
            bool bare = false;
            if (suppressed(sup_it->second, f.line, f.rule, &bare)) continue;
            if (bare)
                notes.push_back({f.file, f.line, f.rule,
                                 "suppression ignored: missing reason"});
        }
        findings.push_back(std::move(f));
    }

    // Third pass: every suppression the raw findings never matched is
    // stale (or names a rule that does not exist). Not suppressible.
    for (const auto& [rel, file_sups] : sups)
        check_stale_suppressions(rel, file_sups, findings);

    // Report-time filters: scope, then --rules.
    const auto out_of_scope = [&](const Finding& f) {
        if (!scope.contains(f.file)) return true;
        return !rule_filter.empty() && rule_filter.count(f.rule) == 0;
    };
    findings.erase(
        std::remove_if(findings.begin(), findings.end(), out_of_scope),
        findings.end());
    notes.erase(std::remove_if(notes.begin(), notes.end(), out_of_scope),
                notes.end());

    std::sort(findings.begin(), findings.end());
    findings.erase(std::unique(findings.begin(), findings.end(),
                               [](const Finding& a, const Finding& b) {
                                   return !(a < b) && !(b < a);
                               }),
                   findings.end());
    std::sort(notes.begin(), notes.end());
    notes.erase(std::unique(notes.begin(), notes.end(),
                            [](const Finding& a, const Finding& b) {
                                return !(a < b) && !(b < a);
                            }),
                notes.end());

    if (!opt.dump_graph.empty()) {
        std::ostringstream graph;
        for (const std::string& rel : scoped_lintable)
            for (const IncludeEdge& inc : includes.at(rel))
                graph << rel << " -> " << inc.path << "\n";
        std::ofstream out(opt.dump_graph);
        out << graph.str();
        if (!out) {
            std::cerr << "platoonlint: cannot write " << opt.dump_graph
                      << "\n";
            return 2;
        }
    }

    if (!opt.sarif.empty() &&
        !write_sarif(opt.sarif, findings, notes)) {
        std::cerr << "platoonlint: cannot write " << opt.sarif << "\n";
        return 2;
    }

    if (opt.json) {
        print_json(findings);
    } else {
        print_text(findings, notes, scoped_lintable.size(),
                   opt.fix_order_hints);
    }
    return findings.empty() ? 0 : 1;
}
