// platoonlint: the repo's custom static-analysis pass.
//
// The simulator's headline guarantees are invariants no unit test can fully
// protect as the tree grows, so this tool makes them mechanical:
//
//   1. Determinism. Results must be bit-identical for any PLATOON_JOBS and
//      across reruns, so ambient entropy (C rand, std::random_device) and
//      wall-clock reads are forbidden outside the seeding whitelist, and
//      aggregation / scoring / report-emitting code must never iterate a
//      hash-ordered container (iteration order is ABI folklore, not a
//      contract -- it silently breaks byte-identical output).
//   2. Oracle isolation. Detectors score against attack ground-truth labels
//      that ride along with every frame; a detector that *reads* the label
//      is cheating. Only the harness, the scorer and the dataset exporter
//      may touch oracle state.
//   3. Layering. The module DAG (base < sim < ... < core < security/eval <
//      detect) is enforced from the include graph, so refactors cannot
//      quietly re-tangle e.g. core with the attack library.
//
// Purely lexical by design: it parses no C++, it scans comment- and
// string-stripped source text. That keeps it dependency-free, fast enough
// to run on every build, and byte-deterministic itself (findings are
// sorted; directory walks are sorted). The cost is that it sees only
// in-file declarations -- the rules are scoped to the directories where
// the invariants live, and genuine exceptions carry inline suppressions:
//
//     // platoonlint: allow(<rule-id>) <reason>
//
// on the finding line or the line above. A suppression without a reason
// does not suppress.
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Rule identifiers.

constexpr const char* kRuleRandom = "no-unseeded-random";
constexpr const char* kRuleWallclock = "no-wallclock";
constexpr const char* kRuleSteadyClock = "no-steady-clock";
constexpr const char* kRuleUnorderedIter = "no-unordered-iteration";
constexpr const char* kRuleOracle = "oracle-isolation";
constexpr const char* kRuleLayering = "layering";

struct RuleDoc {
    const char* id;
    const char* doc;
};

constexpr RuleDoc kRules[] = {
    {kRuleRandom,
     "ambient entropy (C rand/srand, std::random_device) outside the seeding "
     "whitelist (src/sim/random.*) breaks run-to-run reproducibility"},
    {kRuleWallclock,
     "wall-clock reads (system_clock, C time APIs, __DATE__/__TIME__) make "
     "output depend on when it ran; use the simulation clock"},
    {kRuleSteadyClock,
     "steady_clock inside src/ leaks host timing into library code; perf "
     "timing goes through obs::ScopedTimer (src/obs/timer.cpp is the one "
     "sanctioned reader). bench/tests/examples/tools may read it freely"},
    {kRuleUnorderedIter,
     "iterating std::unordered_map/set in aggregation, scoring or "
     "report-emitting code emits hash-order bytes; extract+sort the keys or "
     "use std::map"},
    {kRuleOracle,
     "detectors and defenses must not read attack ground-truth (GroundTruth "
     "/ *.truth / oracle_*); only detect/harness, detect/score and "
     "detect/dataset consume labels"},
    {kRuleLayering,
     "include crosses the module DAG (e.g. core must not include "
     "security/detect/eval, net must not include detect, crypto must not "
     "include sim)"},
};

// ---------------------------------------------------------------------------
// Module layering allowlist. Key: module directory under src/. Value: the
// modules its files may include (transitively closed, checked per edge).

const std::map<std::string, std::set<std::string>>& layer_allow() {
    // obs sits directly above base: it must stay includable from every
    // instrumented module without dragging anything else along.
    static const std::map<std::string, std::set<std::string>> allow = {
        {"base", {"base"}},
        {"obs", {"obs", "base"}},
        {"sim", {"sim", "obs", "base"}},
        {"phys", {"phys", "sim", "obs", "base"}},
        {"crypto", {"crypto", "obs", "base"}},
        {"net", {"net", "crypto", "sim", "obs", "base"}},
        // fault sits beside the attack suite but below core: it may shape
        // the network and schedule, never reach into vehicles/defenses
        // directly (core hands it opaque hooks instead).
        {"fault", {"fault", "net", "crypto", "sim", "obs", "base"}},
        {"control", {"control", "net", "sim", "obs", "base"}},
        {"rsu", {"rsu", "crypto", "net", "sim", "obs", "base"}},
        {"defense",
         {"defense", "crypto", "net", "phys", "sim", "obs", "base"}},
        {"core",
         {"core", "control", "crypto", "defense", "fault", "net", "phys",
          "rsu", "sim", "obs", "base"}},
        // scen compiles declarative descriptions into ScenarioConfigs: it
        // sits directly above core but below security/eval -- a description
        // names attacks, it never instantiates or runs them.
        {"scen",
         {"scen", "core", "control", "crypto", "defense", "fault", "net",
          "phys", "rsu", "sim", "obs", "base"}},
        {"security",
         {"security", "core", "control", "crypto", "defense", "fault", "net",
          "phys", "rsu", "sim", "obs", "base"}},
        {"eval",
         {"eval", "scen", "security", "core", "control", "crypto", "defense",
          "fault", "net", "phys", "rsu", "sim", "obs", "base"}},
        {"detect",
         {"detect", "eval", "scen", "security", "core", "control", "crypto",
          "defense", "fault", "net", "phys", "rsu", "sim", "obs", "base"}},
    };
    return allow;
}

// ---------------------------------------------------------------------------
// Findings.

struct Finding {
    std::string file;  ///< Root-relative path.
    int line = 0;
    std::string rule;
    std::string message;

    friend bool operator<(const Finding& a, const Finding& b) {
        return std::tie(a.file, a.line, a.rule, a.message) <
               std::tie(b.file, b.line, b.rule, b.message);
    }
};

struct Options {
    fs::path root = ".";
    std::vector<fs::path> paths;  ///< Explicit files/dirs; empty = default.
    bool json = false;
    bool fix_order_hints = false;
    std::string dump_graph;  ///< Non-empty: write include graph here.
};

// ---------------------------------------------------------------------------
// Small string helpers.

bool is_ident(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
}

bool starts_with(const std::string& s, const std::string& prefix) {
    return s.rfind(prefix, 0) == 0;
}

/// True when text[pos..pos+word) is `word` with identifier boundaries.
bool word_at(const std::string& text, std::size_t pos,
             const std::string& word) {
    if (text.compare(pos, word.size(), word) != 0) return false;
    if (pos > 0 && is_ident(text[pos - 1])) return false;
    const std::size_t end = pos + word.size();
    return end >= text.size() || !is_ident(text[end]);
}

/// First non-space position at or after `pos`.
std::size_t skip_spaces(const std::string& text, std::size_t pos) {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t'))
        ++pos;
    return pos;
}

std::string json_escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// Source model: raw text (for suppressions) + stripped text (comments,
// string literals and char literals blanked out, newlines preserved).

struct SourceFile {
    std::string rel;     ///< Root-relative path with forward slashes.
    std::string raw;
    std::string stripped;
    std::vector<std::size_t> line_starts;  ///< Offset of each line in text.

    [[nodiscard]] int line_of(std::size_t offset) const {
        const auto it = std::upper_bound(line_starts.begin(),
                                         line_starts.end(), offset);
        return static_cast<int>(it - line_starts.begin());
    }

    [[nodiscard]] std::string raw_line(int line) const {
        if (line < 1 || line > static_cast<int>(line_starts.size()))
            return {};
        const std::size_t begin = line_starts[static_cast<std::size_t>(line) - 1];
        std::size_t end = raw.find('\n', begin);
        if (end == std::string::npos) end = raw.size();
        return raw.substr(begin, end - begin);
    }
};

/// Blanks comments and string/char literals, preserving layout so offsets
/// and line numbers stay aligned with the raw text. Handles raw strings.
std::string strip_comments_and_strings(const std::string& text) {
    std::string out = text;
    enum class State { kCode, kLine, kBlock, kString, kChar, kRawString };
    State state = State::kCode;
    std::string raw_delim;  // )delim" terminator for raw strings
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
            case State::kCode:
                if (c == '/' && next == '/') {
                    state = State::kLine;
                    out[i] = ' ';
                } else if (c == '/' && next == '*') {
                    state = State::kBlock;
                    out[i] = ' ';
                } else if (c == 'R' && next == '"' &&
                           (i == 0 || !is_ident(text[i - 1]))) {
                    const std::size_t open = text.find('(', i + 2);
                    if (open != std::string::npos) {
                        raw_delim = ")" + text.substr(i + 2, open - i - 2) + "\"";
                        state = State::kRawString;
                        for (std::size_t k = i; k <= open && k < text.size(); ++k)
                            if (out[k] != '\n') out[k] = ' ';
                        i = open;
                    }
                } else if (c == '"') {
                    state = State::kString;
                    out[i] = ' ';
                } else if (c == '\'' && !(i > 0 && is_ident(text[i - 1]))) {
                    // Identifier-adjacent quotes are digit separators (1'000).
                    state = State::kChar;
                    out[i] = ' ';
                }
                break;
            case State::kLine:
                if (c == '\n') state = State::kCode;
                else out[i] = ' ';
                break;
            case State::kBlock:
                if (c == '*' && next == '/') {
                    out[i] = ' ';
                    out[i + 1] = ' ';
                    ++i;
                    state = State::kCode;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case State::kString:
                if (c == '\\') {
                    out[i] = ' ';
                    if (next != '\n' && i + 1 < text.size()) out[i + 1] = ' ';
                    ++i;
                } else if (c == '"') {
                    out[i] = ' ';
                    state = State::kCode;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case State::kChar:
                if (c == '\\') {
                    out[i] = ' ';
                    if (next != '\n' && i + 1 < text.size()) out[i + 1] = ' ';
                    ++i;
                } else if (c == '\'') {
                    out[i] = ' ';
                    state = State::kCode;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case State::kRawString:
                if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
                    for (std::size_t k = 0; k < raw_delim.size(); ++k)
                        out[i + k] = ' ';
                    i += raw_delim.size() - 1;
                    state = State::kCode;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// Suppressions: "platoonlint: allow(<rule>) reason" in a comment on the
// finding line or the line immediately above.

struct Suppression {
    std::string rule;
    bool has_reason = false;
};

std::map<int, std::vector<Suppression>> collect_suppressions(
    const SourceFile& src) {
    std::map<int, std::vector<Suppression>> out;
    const std::string marker = "platoonlint: allow(";
    std::size_t pos = 0;
    while ((pos = src.raw.find(marker, pos)) != std::string::npos) {
        const std::size_t open = pos + marker.size();
        const std::size_t close = src.raw.find(')', open);
        if (close == std::string::npos) break;
        Suppression s;
        s.rule = src.raw.substr(open, close - open);
        std::size_t after = close + 1;
        while (after < src.raw.size() && src.raw[after] != '\n') {
            if (!std::isspace(static_cast<unsigned char>(src.raw[after]))) {
                s.has_reason = true;
                break;
            }
            ++after;
        }
        out[src.line_of(pos)].push_back(std::move(s));
        pos = close;
    }
    return out;
}

bool suppressed(const std::map<int, std::vector<Suppression>>& sups,
                int line, const std::string& rule, bool* bare_seen) {
    for (const int l : {line, line - 1}) {
        const auto it = sups.find(l);
        if (it == sups.end()) continue;
        for (const Suppression& s : it->second) {
            if (s.rule != rule && s.rule != "all") continue;
            if (s.has_reason) return true;
            if (bare_seen != nullptr) *bare_seen = true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------------
// Path scoping.

bool randomness_whitelisted(const std::string& rel) {
    // The seeding module: the one place allowed to talk about entropy
    // sources (it derives all streams from the scenario master seed).
    return starts_with(rel, "src/sim/random.");
}

bool unordered_iter_scoped(const std::string& rel) {
    static const char* kPrefixes[] = {
        "src/core/metrics", "src/core/report",  "src/core/experiment",
        "src/detect/score", "src/detect/bank",  "src/detect/dataset",
        "src/eval/",        "src/obs/",         "bench/",
    };
    for (const char* p : kPrefixes)
        if (starts_with(rel, p)) return true;
    return false;
}

bool oracle_scoped(const std::string& rel) {
    if (starts_with(rel, "src/defense/") ||
        starts_with(rel, "src/security/defense/"))
        return true;
    if (!starts_with(rel, "src/detect/")) return false;
    // Whitelisted oracle consumers: the harness stamps labels onto rows,
    // the scorer compares verdicts against them, the dataset serializes
    // them. Everything else in detect/ is a detector and must stay blind.
    static const char* kConsumers[] = {
        "src/detect/harness.", "src/detect/score.", "src/detect/dataset.",
    };
    for (const char* p : kConsumers)
        if (starts_with(rel, p)) return false;
    return true;
}

// ---------------------------------------------------------------------------
// Determinism rules: forbidden tokens.

struct TokenRule {
    const char* token;
    bool needs_call;  ///< Token must be followed by '(' to count.
    const char* rule;
    const char* what;
};

constexpr TokenRule kTokenRules[] = {
    {"rand", true, kRuleRandom, "C rand() is ambient global entropy"},
    {"srand", true, kRuleRandom, "C srand() reseeds global entropy"},
    {"rand_r", true, kRuleRandom, "rand_r() is unseeded C entropy"},
    {"random_device", false, kRuleRandom,
     "std::random_device draws nondeterministic entropy"},
    {"system_clock", false, kRuleWallclock,
     "system_clock reads the wall clock"},
    {"time", true, kRuleWallclock, "C time() reads the wall clock"},
    {"clock", true, kRuleWallclock, "C clock() reads process time"},
    {"gettimeofday", true, kRuleWallclock,
     "gettimeofday() reads the wall clock"},
    {"clock_gettime", true, kRuleWallclock,
     "clock_gettime() reads a system clock"},
    {"localtime", true, kRuleWallclock, "localtime() reads the wall clock"},
    {"gmtime", true, kRuleWallclock, "gmtime() reads the wall clock"},
    {"__DATE__", false, kRuleWallclock, "__DATE__ bakes build time in"},
    {"__TIME__", false, kRuleWallclock, "__TIME__ bakes build time in"},
    {"__TIMESTAMP__", false, kRuleWallclock,
     "__TIMESTAMP__ bakes build time in"},
    {"steady_clock", false, kRuleSteadyClock,
     "steady_clock reads host time inside library code"},
};

void check_tokens(const SourceFile& src, std::vector<Finding>& findings) {
    const bool whitelisted = randomness_whitelisted(src.rel);
    // The steady-clock ban covers library code only: benches, tests and
    // tools time things on purpose. Inside src/, the single sanctioned
    // reader (src/obs/timer.cpp) carries an inline reasoned allow.
    const bool library_tu = starts_with(src.rel, "src/");
    const std::string& text = src.stripped;
    for (const TokenRule& tr : kTokenRules) {
        if (whitelisted && std::string(tr.rule) == kRuleRandom) continue;
        if (!library_tu && std::string(tr.rule) == kRuleSteadyClock) continue;
        const std::string token = tr.token;
        std::size_t pos = 0;
        while ((pos = text.find(token, pos)) != std::string::npos) {
            const std::size_t hit = pos;
            pos += token.size();
            if (!word_at(text, hit, token)) continue;
            if (tr.needs_call) {
                const std::size_t after = skip_spaces(text, hit + token.size());
                if (after >= text.size() || text[after] != '(') continue;
            }
            findings.push_back({src.rel, src.line_of(hit), tr.rule,
                                std::string(tr.what) +
                                    "; derive everything from the scenario "
                                    "seed (sim::RandomStream) or the "
                                    "simulation clock"});
        }
    }
}

// ---------------------------------------------------------------------------
// Unordered-iteration rule.

/// Collects names declared in this file with an unordered container type
/// (members, locals, params -- anything spelled `std::unordered_xxx<...>
/// name`). Purely lexical: nested template args are matched by depth.
std::set<std::string> unordered_decl_names(const std::string& text) {
    std::set<std::string> names;
    for (const std::string intro : {"unordered_map", "unordered_set",
                                    "unordered_multimap",
                                    "unordered_multiset"}) {
        std::size_t pos = 0;
        while ((pos = text.find(intro, pos)) != std::string::npos) {
            const std::size_t hit = pos;
            pos += intro.size();
            if (!word_at(text, hit, intro)) continue;
            std::size_t i = skip_spaces(text, hit + intro.size());
            if (i >= text.size() || text[i] != '<') continue;
            int depth = 0;
            for (; i < text.size(); ++i) {
                if (text[i] == '<') ++depth;
                else if (text[i] == '>' && --depth == 0) { ++i; break; }
            }
            // Skip refs/pointers/cv/whitespace, then read the identifier.
            while (i < text.size() &&
                   (text[i] == '&' || text[i] == '*' || text[i] == ' ' ||
                    text[i] == '\t' || text[i] == '\n'))
                ++i;
            std::string name;
            while (i < text.size() && is_ident(text[i])) name += text[i++];
            if (!name.empty() && !(name[0] >= '0' && name[0] <= '9'))
                names.insert(name);
        }
    }
    return names;
}

std::vector<std::string> identifiers_in(const std::string& expr) {
    std::vector<std::string> out;
    std::string cur;
    for (const char c : expr) {
        if (is_ident(c)) {
            cur += c;
        } else if (!cur.empty()) {
            out.push_back(cur);
            cur.clear();
        }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
}

void check_unordered_iteration(const SourceFile& src,
                               std::vector<Finding>& findings) {
    if (!unordered_iter_scoped(src.rel)) return;
    const std::string& text = src.stripped;
    const std::set<std::string> names = unordered_decl_names(text);

    const auto report = [&](std::size_t offset, const std::string& what) {
        findings.push_back(
            {src.rel, src.line_of(offset), kRuleUnorderedIter,
             what + " iterates in hash order, which is not stable across "
                    "standard libraries or table sizes and silently breaks "
                    "byte-identical output"});
    };

    // Range-for whose range expression names an unordered container (or
    // spells one inline).
    std::size_t pos = 0;
    while ((pos = text.find("for", pos)) != std::string::npos) {
        const std::size_t hit = pos;
        pos += 3;
        if (!word_at(text, hit, "for")) continue;
        std::size_t open = skip_spaces(text, hit + 3);
        if (open >= text.size() || text[open] != '(') continue;
        int depth = 0;
        std::size_t colon = std::string::npos, close = open;
        for (std::size_t i = open; i < text.size(); ++i) {
            if (text[i] == '(') ++depth;
            else if (text[i] == ')' && --depth == 0) { close = i; break; }
            else if (text[i] == ':' && depth == 1 &&
                     colon == std::string::npos) {
                const bool dbl = (i > 0 && text[i - 1] == ':') ||
                                 (i + 1 < text.size() && text[i + 1] == ':');
                if (!dbl) colon = i;
            }
        }
        if (colon == std::string::npos || close <= colon) continue;
        const std::string range = text.substr(colon + 1, close - colon - 1);
        bool bad = range.find("unordered_") != std::string::npos;
        std::string culprit;
        for (const std::string& id : identifiers_in(range)) {
            if (names.count(id) != 0) {
                bad = true;
                culprit = id;
                break;
            }
        }
        if (bad) {
            report(hit, "range-for over unordered container" +
                            (culprit.empty() ? std::string()
                                             : " `" + culprit + "`"));
        }
    }

    // Iterator-style access: name.begin() / name.cbegin() / std::begin(name).
    for (const std::string& name : names) {
        for (const std::string method : {".begin", ".cbegin"}) {
            const std::string pattern = name + method;
            std::size_t p = 0;
            while ((p = text.find(pattern, p)) != std::string::npos) {
                const std::size_t hit = p;
                p += pattern.size();
                if (hit > 0 && is_ident(text[hit - 1])) continue;
                const std::size_t after =
                    skip_spaces(text, hit + pattern.size());
                if (after >= text.size() || text[after] != '(') continue;
                report(hit, "iterator over unordered container `" + name + "`");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Oracle-isolation rule.

void check_oracle(const SourceFile& src, std::vector<Finding>& findings) {
    if (!oracle_scoped(src.rel)) return;
    const std::string& text = src.stripped;
    struct OracleToken {
        const char* token;
        const char* what;
    };
    constexpr OracleToken kOracleTokens[] = {
        {"GroundTruth", "names the oracle label type"},
        {"truth", "reads the attack ground-truth label"},
        {"truth_label", "serializes the oracle label"},
    };
    for (const OracleToken& ot : kOracleTokens) {
        const std::string token = ot.token;
        std::size_t pos = 0;
        while ((pos = text.find(token, pos)) != std::string::npos) {
            const std::size_t hit = pos;
            pos += token.size();
            if (!word_at(text, hit, token)) continue;
            findings.push_back(
                {src.rel, src.line_of(hit), kRuleOracle,
                 "`" + token + "` " + ot.what +
                     "; detectors/defenses must stay blind to the oracle "
                     "(only detect/harness, detect/score, detect/dataset "
                     "may consume it)"});
        }
    }
    // oracle_* identifiers (prefix match).
    std::size_t pos = 0;
    while ((pos = text.find("oracle_", pos)) != std::string::npos) {
        const std::size_t hit = pos;
        pos += 7;
        if (hit > 0 && is_ident(text[hit - 1])) continue;
        findings.push_back({src.rel, src.line_of(hit), kRuleOracle,
                            "`oracle_*` identifier touches oracle state; "
                            "detectors/defenses must stay blind to it"});
    }
}

// ---------------------------------------------------------------------------
// Layering rule (include graph).

struct IncludeEdge {
    std::string path;  ///< Quoted include path as written.
    int line = 0;
};

std::vector<IncludeEdge> collect_includes(const SourceFile& src) {
    std::vector<IncludeEdge> out;
    std::istringstream is(src.raw);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        std::size_t i = skip_spaces(line, 0);
        if (i >= line.size() || line[i] != '#') continue;
        i = skip_spaces(line, i + 1);
        if (line.compare(i, 7, "include") != 0) continue;
        i = skip_spaces(line, i + 7);
        if (i >= line.size() || line[i] != '"') continue;
        const std::size_t close = line.find('"', i + 1);
        if (close == std::string::npos) continue;
        out.push_back({line.substr(i + 1, close - i - 1), lineno});
    }
    return out;
}

std::string module_of_rel(const std::string& rel) {
    if (!starts_with(rel, "src/")) return {};
    const std::size_t slash = rel.find('/', 4);
    if (slash == std::string::npos) return {};
    return rel.substr(4, slash - 4);
}

std::string module_of_include(const std::string& path) {
    const std::size_t slash = path.find('/');
    if (slash == std::string::npos) return {};
    const std::string mod = path.substr(0, slash);
    return layer_allow().count(mod) != 0 ? mod : std::string();
}

void check_layering(const SourceFile& src,
                    const std::vector<IncludeEdge>& includes,
                    std::vector<Finding>& findings) {
    const std::string mod = module_of_rel(src.rel);
    if (mod.empty()) return;  // bench/tests/examples/tools may include anything
    const auto allow_it = layer_allow().find(mod);
    if (allow_it == layer_allow().end()) return;  // unknown module: skip
    for (const IncludeEdge& inc : includes) {
        const std::string target = module_of_include(inc.path);
        if (target.empty() || allow_it->second.count(target) != 0) continue;
        findings.push_back(
            {src.rel, inc.line, kRuleLayering,
             "module `" + mod + "` must not include `" + target + "` (\"" +
                 inc.path + "\"); allowed from `" + mod + "`: everything at "
                 "or below its layer in the module DAG"});
    }
    // Oracle headers by name are off limits wherever the oracle rule
    // applies, independent of layer.
    if (oracle_scoped(src.rel)) {
        for (const IncludeEdge& inc : includes) {
            if (inc.path.find("oracle") != std::string::npos) {
                findings.push_back({src.rel, inc.line, kRuleOracle,
                                    "includes oracle header \"" + inc.path +
                                        "\""});
            }
        }
    }
}

// ---------------------------------------------------------------------------
// File collection.

bool lintable(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h" ||
           ext == ".cxx" || ext == ".hh";
}

bool skip_dir(const std::string& name) {
    return name == "CMakeFiles" || name == ".git" || name == "Testing" ||
           starts_with(name, "build") || starts_with(name, "cmake-build");
}

void walk(const fs::path& dir, const fs::path& root, bool exclude_fixtures,
          std::vector<fs::path>& out) {
    std::vector<fs::path> entries;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
        if (ec) break;
        entries.push_back(it->path());
    }
    std::sort(entries.begin(), entries.end());
    for (const fs::path& p : entries) {
        if (fs::is_directory(p)) {
            if (skip_dir(p.filename().string())) continue;
            if (exclude_fixtures &&
                fs::equivalent(p, root / "tests" / "lint" / "fixtures", ec))
                continue;
            walk(p, root, exclude_fixtures, out);
        } else if (lintable(p)) {
            out.push_back(p);
        }
    }
}

std::string relative_to_root(const fs::path& p, const fs::path& root) {
    std::error_code ec;
    fs::path rel = fs::relative(p, root, ec);
    if (ec || rel.empty() || *rel.begin() == "..") rel = p;
    return rel.generic_string();
}

// ---------------------------------------------------------------------------
// Driver.

int usage(const char* argv0) {
    std::cerr
        << "usage: " << argv0
        << " [--root <dir>] [--format=text|json] [--fix-order]\n"
           "       [--dump-graph <file>] [--list-rules] [paths...]\n\n"
           "Lints the platoon codebase for determinism, oracle-isolation\n"
           "and layering invariants. With no paths, scans src/ bench/\n"
           "examples/ tests/ tools/ under --root (default: cwd),\n"
           "excluding tests/lint/fixtures.\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    bool list_rules = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            opt.root = argv[++i];
        } else if (arg == "--format=json") {
            opt.json = true;
        } else if (arg == "--format=text") {
            opt.json = false;
        } else if (arg == "--fix-order") {
            opt.fix_order_hints = true;
        } else if (arg == "--dump-graph" && i + 1 < argc) {
            opt.dump_graph = argv[++i];
        } else if (arg == "--list-rules") {
            list_rules = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            opt.paths.emplace_back(arg);
        }
    }

    if (list_rules) {
        for (const RuleDoc& r : kRules)
            std::cout << r.id << "\n    " << r.doc << "\n";
        return 0;
    }

    std::error_code ec;
    const fs::path root = fs::absolute(opt.root, ec);
    if (ec || !fs::is_directory(root)) {
        std::cerr << "platoonlint: bad --root: " << opt.root << "\n";
        return 2;
    }

    std::vector<fs::path> files;
    if (opt.paths.empty()) {
        for (const char* dir : {"src", "bench", "examples", "tests", "tools"}) {
            const fs::path d = root / dir;
            if (fs::is_directory(d)) walk(d, root, /*exclude_fixtures=*/true, files);
        }
    } else {
        for (const fs::path& p : opt.paths) {
            if (fs::is_directory(p)) {
                walk(p, root, /*exclude_fixtures=*/false, files);
            } else if (fs::exists(p)) {
                files.push_back(p);
            } else {
                std::cerr << "platoonlint: no such path: " << p << "\n";
                return 2;
            }
        }
    }

    std::vector<Finding> findings;
    std::vector<Finding> notes;  ///< Bare suppressions (reported, non-fatal).
    std::ostringstream graph;
    for (const fs::path& path : files) {
        SourceFile src;
        src.rel = relative_to_root(path, root);
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::cerr << "platoonlint: cannot read " << path << "\n";
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        src.raw = buf.str();
        src.line_starts.push_back(0);
        for (std::size_t i = 0; i < src.raw.size(); ++i)
            if (src.raw[i] == '\n') src.line_starts.push_back(i + 1);
        src.stripped = strip_comments_and_strings(src.raw);

        const auto sups = collect_suppressions(src);
        const std::vector<IncludeEdge> includes = collect_includes(src);
        for (const IncludeEdge& inc : includes)
            graph << src.rel << " -> " << inc.path << "\n";

        std::vector<Finding> local;
        check_tokens(src, local);
        check_unordered_iteration(src, local);
        check_oracle(src, local);
        check_layering(src, includes, local);

        for (Finding& f : local) {
            bool bare = false;
            if (suppressed(sups, f.line, f.rule, &bare)) continue;
            if (bare)
                notes.push_back({f.file, f.line, f.rule,
                                 "suppression ignored: missing reason"});
            findings.push_back(std::move(f));
        }
    }

    std::sort(findings.begin(), findings.end());
    findings.erase(std::unique(findings.begin(), findings.end(),
                               [](const Finding& a, const Finding& b) {
                                   return !(a < b) && !(b < a);
                               }),
                   findings.end());
    std::sort(notes.begin(), notes.end());

    if (!opt.dump_graph.empty()) {
        std::ofstream out(opt.dump_graph);
        out << graph.str();
        if (!out) {
            std::cerr << "platoonlint: cannot write " << opt.dump_graph << "\n";
            return 2;
        }
    }

    if (opt.json) {
        std::cout << "{\n  \"findings\": [\n";
        for (std::size_t i = 0; i < findings.size(); ++i) {
            const Finding& f = findings[i];
            std::cout << "    {\"file\": \"" << json_escape(f.file)
                      << "\", \"line\": " << f.line << ", \"rule\": \""
                      << f.rule << "\", \"message\": \""
                      << json_escape(f.message) << "\"}"
                      << (i + 1 < findings.size() ? "," : "") << "\n";
        }
        std::cout << "  ],\n  \"count\": " << findings.size() << "\n}\n";
    } else {
        for (const Finding& f : notes)
            std::cout << f.file << ":" << f.line << ": note: [" << f.rule
                      << "] " << f.message << "\n";
        for (const Finding& f : findings) {
            std::cout << f.file << ":" << f.line << ": error: [" << f.rule
                      << "] " << f.message << "\n";
            if (opt.fix_order_hints && f.rule == kRuleUnorderedIter) {
                std::cout
                    << "    hint: extract the keys, sort, then visit:\n"
                       "        std::vector<Key> keys;\n"
                       "        keys.reserve(m.size());\n"
                       "        for (const auto& kv : m) "
                       "keys.push_back(kv.first);\n"
                       "        std::sort(keys.begin(), keys.end());\n"
                       "        for (const Key& k : keys) use(m.at(k));\n"
                       "    (or store the data in std::map / a sorted "
                       "vector to begin with)\n";
            }
        }
        if (findings.empty()) {
            std::cout << "platoonlint: " << files.size()
                      << " files clean\n";
        } else {
            std::cout << "platoonlint: " << findings.size()
                      << " finding(s) in " << files.size() << " files\n";
        }
    }
    return findings.empty() ? 0 : 1;
}
