// platoonlint name index: the cross-TU pass.
//
// The simulator's reproducibility hangs on three string-keyed contracts
// that no compiler checks: obs::Counter dotted names pinned by the bench
// baselines, sim::RandomStream names whose FNV-1a hash seeds every
// stochastic component (a silent collision makes two subsystems draw from
// one stream), and the scen registry names that scenarios/*.json compile
// against. This unit scans the whole tree once and records every such
// name with its site, so the rules in rules.cpp can check the contracts
// globally -- even when only a subset of files is being linted.
//
// Everything here is lexical, like the per-file rules: literals come from
// the scanner's stripped-text pass, registry names are pulled out of the
// to_string switch bodies, and the stream manifest (src/sim/streams.def)
// and JSON data files are parsed with the scanner's own readers.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "scanner.hpp"

namespace platoonlint {

struct NameSite {
    std::string file;  ///< Root-relative path.
    int line = 0;
};

/// An obs::Counter or obs::ScopedTimer construction with a literal name.
struct CounterDef {
    std::string name;
    NameSite site;
    bool is_timer = false;
};

/// A sim::RandomStream construction (or *_rng member init) whose name
/// argument is a string literal at the site.
struct StreamUse {
    std::string name;
    NameSite site;
};

/// Any string literal in a src/ translation unit. The collision half of
/// the stream-registry rule scans these: a literal that spells a declared
/// stream name outside its owner file is exactly the silent-collision
/// hazard the manifest exists to prevent.
struct SrcLiteral {
    std::string value;
    NameSite site;
};

/// One entry of src/sim/streams.def. `is_prefix` entries end in '.' and
/// cover a family ("vehicle." covers "vehicle.0", and "vehicle" itself --
/// the prefix minus its trailing dot -- for id-suffixed builders).
struct StreamDecl {
    std::string name;
    std::string owner;  ///< Root-relative file allowed to spell the name.
    bool is_prefix = false;
    int line = 0;  ///< Line in the manifest.
};

/// A counter key read from a bench/baselines/*.json "counters" object.
struct BaselineKey {
    std::string name;
    NameSite site;
};

/// A registry-resolved name used by a scenarios/*.json description.
/// `kind` is one of: profile, attack, defense, fault, controller,
/// auth-mode, malformed. Fault candidates are per-file (the preset names
/// declared beside the use), so they ride along in `candidates`.
struct ScenarioNameUse {
    std::string kind;
    std::string value;
    NameSite site;
    std::vector<std::string> candidates;  ///< Fault kind only.
};

/// Registry name sets extracted from to_string switch bodies and the
/// scen registry name-list functions. Empty sets disable the matching
/// scenario-names check (a partial tree cannot prove a name wrong).
struct RegistryNames {
    std::set<std::string> attacks;
    std::set<std::string> defenses;
    std::set<std::string> controllers;
    std::set<std::string> auth_modes;
    std::set<std::string> profiles;
};

struct NameIndex {
    std::vector<CounterDef> counters;  ///< Counters and timers, file order.
    std::vector<StreamUse> stream_uses;
    std::vector<SrcLiteral> src_literals;

    bool manifest_found = false;
    std::string manifest_rel;  ///< "src/sim/streams.def" when found.
    std::vector<StreamDecl> stream_decls;

    std::vector<BaselineKey> baseline_keys;
    std::vector<std::string> malformed_baselines;  ///< Root-relative paths.

    std::vector<ScenarioNameUse> scenario_uses;

    RegistryNames registry;

    /// True when `name` matches a manifest entry: equal to an exact name,
    /// carrying a declared prefix, or equal to a prefix minus its dot.
    [[nodiscard]] bool stream_declared(const std::string& name) const;
};

/// Scans one loaded translation unit into the index. Only files whose
/// root-relative path starts with "src/" contribute (the contracts live
/// in library code; benches and tests may spell any name they like).
void index_source(const SourceFile& src, NameIndex& index);

/// Loads src/sim/streams.def (when present), bench/baselines/*.json and
/// scenarios/*.json under `root` into the index. Scenario uses are
/// resolved against the registry sets, so call after every index_source.
void index_data_files(const fs::path& root, NameIndex& index);

}  // namespace platoonlint
