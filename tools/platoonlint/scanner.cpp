#include "scanner.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace platoonlint {

// ---------------------------------------------------------------------------
// Small string helpers.

bool is_ident(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
}

bool starts_with(const std::string& s, const std::string& prefix) {
    return s.rfind(prefix, 0) == 0;
}

bool word_at(const std::string& text, std::size_t pos,
             const std::string& word) {
    if (text.compare(pos, word.size(), word) != 0) return false;
    if (pos > 0 && is_ident(text[pos - 1])) return false;
    const std::size_t end = pos + word.size();
    return end >= text.size() || !is_ident(text[end]);
}

std::size_t skip_spaces(const std::string& text, std::size_t pos) {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t'))
        ++pos;
    return pos;
}

std::string json_escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// Source model.

int SourceFile::line_of(std::size_t offset) const {
    const auto it =
        std::upper_bound(line_starts.begin(), line_starts.end(), offset);
    return static_cast<int>(it - line_starts.begin());
}

std::vector<const StringLiteral*> SourceFile::literals_in(
    std::size_t begin, std::size_t end) const {
    std::vector<const StringLiteral*> out;
    for (const StringLiteral& lit : literals) {
        if (lit.offset >= begin && lit.offset < end) out.push_back(&lit);
        if (lit.offset >= end) break;
    }
    return out;
}

std::string strip_comments_and_strings(const std::string& text,
                                       std::vector<StringLiteral>* literals) {
    std::string out = text;
    enum class State { kCode, kLine, kBlock, kString, kChar, kRawString };
    State state = State::kCode;
    std::string raw_delim;  // )delim" terminator for raw strings
    StringLiteral current;  // literal being accumulated
    const auto open_literal = [&](std::size_t at) {
        current.value.clear();
        current.offset = at;
    };
    const auto close_literal = [&] {
        if (literals != nullptr) literals->push_back(current);
    };
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
            case State::kCode:
                if (c == '/' && next == '/') {
                    state = State::kLine;
                    out[i] = ' ';
                } else if (c == '/' && next == '*') {
                    state = State::kBlock;
                    out[i] = ' ';
                } else if (c == 'R' && next == '"' &&
                           (i == 0 || !is_ident(text[i - 1]))) {
                    const std::size_t open = text.find('(', i + 2);
                    if (open != std::string::npos) {
                        raw_delim = ")";
                        raw_delim += text.substr(i + 2, open - i - 2);
                        raw_delim += '"';
                        state = State::kRawString;
                        open_literal(i);
                        for (std::size_t k = i; k <= open && k < text.size(); ++k)
                            if (out[k] != '\n') out[k] = ' ';
                        i = open;
                    }
                } else if (c == '"') {
                    state = State::kString;
                    open_literal(i);
                    out[i] = ' ';
                } else if (c == '\'' && !(i > 0 && is_ident(text[i - 1]))) {
                    // Identifier-adjacent quotes are digit separators (1'000).
                    state = State::kChar;
                    out[i] = ' ';
                }
                break;
            case State::kLine:
                if (c == '\n') state = State::kCode;
                else out[i] = ' ';
                break;
            case State::kBlock:
                if (c == '*' && next == '/') {
                    out[i] = ' ';
                    out[i + 1] = ' ';
                    ++i;
                    state = State::kCode;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case State::kString:
                if (c == '\\') {
                    out[i] = ' ';
                    if (next != '\n' && i + 1 < text.size()) {
                        out[i + 1] = ' ';
                        // Resolve the escapes that can occur in names;
                        // anything else keeps the raw escaped char.
                        current.value += next == 'n'   ? '\n'
                                         : next == 't' ? '\t'
                                                       : next;
                    }
                    ++i;
                } else if (c == '"') {
                    out[i] = ' ';
                    close_literal();
                    state = State::kCode;
                } else {
                    if (c != '\n') out[i] = ' ';
                    current.value += c;
                }
                break;
            case State::kChar:
                if (c == '\\') {
                    out[i] = ' ';
                    if (next != '\n' && i + 1 < text.size()) out[i + 1] = ' ';
                    ++i;
                } else if (c == '\'') {
                    out[i] = ' ';
                    state = State::kCode;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case State::kRawString:
                if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
                    for (std::size_t k = 0; k < raw_delim.size(); ++k)
                        out[i + k] = ' ';
                    i += raw_delim.size() - 1;
                    close_literal();
                    state = State::kCode;
                } else {
                    if (c != '\n') out[i] = ' ';
                    current.value += c;
                }
                break;
        }
    }
    return out;
}

std::optional<SourceFile> load_source(const fs::path& path,
                                      const std::string& rel) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    SourceFile src;
    src.rel = rel;
    std::ostringstream buf;
    buf << in.rdbuf();
    src.raw = buf.str();
    src.line_starts.push_back(0);
    for (std::size_t i = 0; i < src.raw.size(); ++i)
        if (src.raw[i] == '\n') src.line_starts.push_back(i + 1);
    src.stripped = strip_comments_and_strings(src.raw, &src.literals);
    return src;
}

// ---------------------------------------------------------------------------
// Suppressions.

std::map<int, std::vector<Suppression>> collect_suppressions(
    const SourceFile& src) {
    std::map<int, std::vector<Suppression>> out;
    const std::string marker = "platoonlint: allow(";
    std::size_t pos = 0;
    while ((pos = src.raw.find(marker, pos)) != std::string::npos) {
        // Only honor the marker inside a // comment: the phrase also shows
        // up in strings (this file, usage text) where it is not a directive.
        std::size_t bol = src.raw.rfind('\n', pos);
        bol = (bol == std::string::npos) ? 0 : bol + 1;
        if (src.raw.substr(bol, pos - bol).find("//") == std::string::npos) {
            pos += marker.size();
            continue;
        }
        const std::size_t open = pos + marker.size();
        const std::size_t close = src.raw.find(')', open);
        if (close == std::string::npos) break;
        Suppression s;
        s.rule = src.raw.substr(open, close - open);
        s.line = src.line_of(pos);
        std::size_t after = close + 1;
        while (after < src.raw.size() && src.raw[after] != '\n') {
            if (!std::isspace(static_cast<unsigned char>(src.raw[after]))) {
                s.has_reason = true;
                break;
            }
            ++after;
        }
        out[s.line].push_back(std::move(s));
        pos = close;
    }
    return out;
}

bool suppressed(std::map<int, std::vector<Suppression>>& sups, int line,
                const std::string& rule, bool* bare_seen) {
    bool hit = false;
    for (const int l : {line, line - 1}) {
        const auto it = sups.find(l);
        if (it == sups.end()) continue;
        for (Suppression& s : it->second) {
            if (s.rule != rule && s.rule != "all") continue;
            s.used = true;
            if (s.has_reason) hit = true;
            else if (bare_seen != nullptr) *bare_seen = true;
        }
    }
    return hit;
}

// ---------------------------------------------------------------------------
// Includes.

std::vector<IncludeEdge> collect_includes(const SourceFile& src) {
    std::vector<IncludeEdge> out;
    std::istringstream is(src.raw);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        std::size_t i = skip_spaces(line, 0);
        if (i >= line.size() || line[i] != '#') continue;
        i = skip_spaces(line, i + 1);
        if (line.compare(i, 7, "include") != 0) continue;
        i = skip_spaces(line, i + 7);
        if (i >= line.size() || line[i] != '"') continue;
        const std::size_t close = line.find('"', i + 1);
        if (close == std::string::npos) continue;
        out.push_back({line.substr(i + 1, close - i - 1), lineno});
    }
    return out;
}

// ---------------------------------------------------------------------------
// File collection.

bool lintable(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h" ||
           ext == ".cxx" || ext == ".hh";
}

namespace {
bool skip_dir(const std::string& name) {
    return name == "CMakeFiles" || name == ".git" || name == "Testing" ||
           starts_with(name, "build") || starts_with(name, "cmake-build");
}
}  // namespace

void walk(const fs::path& dir, const fs::path& root, bool exclude_fixtures,
          std::vector<fs::path>& out) {
    std::vector<fs::path> entries;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
        if (ec) break;
        entries.push_back(it->path());
    }
    std::sort(entries.begin(), entries.end());
    for (const fs::path& p : entries) {
        if (fs::is_directory(p)) {
            if (skip_dir(p.filename().string())) continue;
            if (exclude_fixtures &&
                fs::equivalent(p, root / "tests" / "lint" / "fixtures", ec))
                continue;
            walk(p, root, exclude_fixtures, out);
        } else if (lintable(p)) {
            out.push_back(p);
        }
    }
}

std::string relative_to_root(const fs::path& p, const fs::path& root) {
    std::error_code ec;
    fs::path rel = fs::relative(p, root, ec);
    if (ec || rel.empty() || *rel.begin() == "..") rel = p;
    return rel.generic_string();
}

// ---------------------------------------------------------------------------
// Minimal JSON reader.

const JsonNode* JsonNode::find(const std::string& key) const {
    for (const auto& [k, v] : members)
        if (k == key) return &v;
    return nullptr;
}

namespace {

struct JsonParser {
    const std::string& text;
    std::size_t pos = 0;
    int line = 1;
    bool ok = true;

    explicit JsonParser(const std::string& t) : text(t) {}

    void skip_ws() {
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == '\n') ++line;
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n') ++pos;
            else break;
        }
    }

    bool expect(char c) {
        skip_ws();
        if (pos >= text.size() || text[pos] != c) {
            ok = false;
            return false;
        }
        ++pos;
        return true;
    }

    bool parse_string(std::string* out) {
        if (!expect('"')) return false;
        out->clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"') return true;
            if (c == '\n') ++line;  // technically invalid; stay aligned
            if (c == '\\' && pos < text.size()) {
                const char e = text[pos++];
                switch (e) {
                    case 'n': *out += '\n'; break;
                    case 't': *out += '\t'; break;
                    case 'u':
                        *out += '?';  // names never need surrogates
                        pos = std::min(pos + 4, text.size());
                        break;
                    default: *out += e;
                }
            } else {
                *out += c;
            }
        }
        ok = false;
        return false;
    }

    JsonNode parse_value(int depth) {
        JsonNode node;
        if (!ok || depth > 64) {
            ok = false;
            return node;
        }
        skip_ws();
        node.line = line;
        if (pos >= text.size()) {
            ok = false;
            return node;
        }
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            node.type = JsonNode::Type::kObject;
            skip_ws();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return node;
            }
            for (;;) {
                std::string key;
                if (!parse_string(&key)) return node;
                if (!expect(':')) return node;
                node.members.emplace_back(std::move(key), parse_value(depth + 1));
                if (!ok) return node;
                skip_ws();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    skip_ws();
                    continue;
                }
                expect('}');
                return node;
            }
        }
        if (c == '[') {
            ++pos;
            node.type = JsonNode::Type::kArray;
            skip_ws();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return node;
            }
            for (;;) {
                node.items.push_back(parse_value(depth + 1));
                if (!ok) return node;
                skip_ws();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                expect(']');
                return node;
            }
        }
        if (c == '"') {
            node.type = JsonNode::Type::kString;
            parse_string(&node.text);
            return node;
        }
        if (word_at(text, pos, "true") || word_at(text, pos, "false")) {
            node.type = JsonNode::Type::kBool;
            node.boolean = c == 't';
            pos += node.boolean ? 4 : 5;
            return node;
        }
        if (word_at(text, pos, "null")) {
            pos += 4;
            return node;
        }
        // Number: store the spelling, no arithmetic needed.
        node.type = JsonNode::Type::kNumber;
        const std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
                text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
                text[pos] == 'e' || text[pos] == 'E'))
            ++pos;
        if (pos == start) {
            ok = false;
            return node;
        }
        node.text = text.substr(start, pos - start);
        return node;
    }
};

}  // namespace

std::optional<JsonNode> parse_json(const std::string& text) {
    JsonParser p(text);
    JsonNode root = p.parse_value(0);
    p.skip_ws();
    if (!p.ok || p.pos != text.size()) return std::nullopt;
    return root;
}

}  // namespace platoonlint
