#include "rules.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace platoonlint {

const char* const kRuleRandom = "no-unseeded-random";
const char* const kRuleWallclock = "no-wallclock";
const char* const kRuleSteadyClock = "no-steady-clock";
const char* const kRuleUnorderedIter = "no-unordered-iteration";
const char* const kRuleOracle = "oracle-isolation";
const char* const kRuleLayering = "layering";
const char* const kRuleCounterContract = "counter-contract";
const char* const kRuleStreamRegistry = "stream-registry";
const char* const kRuleScenarioNames = "scenario-names";
const char* const kRuleStaleSuppression = "stale-suppression";

const std::vector<RuleDoc>& all_rules() {
    static const std::vector<RuleDoc> kRules = {
        {kRuleRandom,
         "ambient entropy (C rand/srand, std::random_device) outside the "
         "seeding whitelist (src/sim/random.*) breaks run-to-run "
         "reproducibility"},
        {kRuleWallclock,
         "wall-clock reads (system_clock, C time APIs, __DATE__/__TIME__) "
         "make output depend on when it ran; use the simulation clock"},
        {kRuleSteadyClock,
         "steady_clock inside src/ leaks host timing into library code; perf "
         "timing goes through obs::ScopedTimer (src/obs/timer.cpp is the one "
         "sanctioned reader). bench/tests/examples/tools may read it freely"},
        {kRuleUnorderedIter,
         "iterating std::unordered_map/set in aggregation, scoring or "
         "report-emitting code emits hash-order bytes; extract+sort the keys "
         "or use std::map"},
        {kRuleOracle,
         "detectors and defenses must not read attack ground-truth "
         "(GroundTruth / *.truth / oracle_*); only detect/harness, "
         "detect/score and detect/dataset consume labels"},
        {kRuleLayering,
         "include crosses the module DAG (e.g. core must not include "
         "security/detect/eval, net must not include detect, crypto must "
         "not include sim)"},
        {kRuleCounterContract,
         "obs::Counter / timer names must be unique and dotted-lowercase, "
         "and every counter key in bench/baselines/*.json must exist in "
         "source; counters never exported to a baseline are noted"},
        {kRuleStreamRegistry,
         "every named sim::RandomStream must be declared in "
         "src/sim/streams.def; spelling a declared stream name outside its "
         "owner file is a collision (two subsystems drawing from one "
         "stream); unused manifest entries are findings"},
        {kRuleScenarioNames,
         "names in scenarios/*.json (attacks, defenses, faults, "
         "controllers, auth modes, profiles) must resolve against the scen "
         "registry, catching drift before runtime"},
        {kRuleStaleSuppression,
         "a platoonlint: allow() whose rule no longer fires at that site is "
         "itself a finding, keeping the suppression set honest"},
    };
    return kRules;
}

bool known_rule(const std::string& id) {
    if (id == "all") return true;
    for (const RuleDoc& r : all_rules())
        if (id == r.id) return true;
    return false;
}

namespace {

// ---------------------------------------------------------------------------
// Module layering allowlist. Key: module directory under src/. Value: the
// modules its files may include (transitively closed, checked per edge).

const std::map<std::string, std::set<std::string>>& layer_allow() {
    // obs sits directly above base: it must stay includable from every
    // instrumented module without dragging anything else along.
    static const std::map<std::string, std::set<std::string>> allow = {
        {"base", {"base"}},
        {"obs", {"obs", "base"}},
        {"sim", {"sim", "obs", "base"}},
        {"phys", {"phys", "sim", "obs", "base"}},
        {"crypto", {"crypto", "obs", "base"}},
        {"net", {"net", "crypto", "sim", "obs", "base"}},
        // fault sits beside the attack suite but below core: it may shape
        // the network and schedule, never reach into vehicles/defenses
        // directly (core hands it opaque hooks instead).
        {"fault", {"fault", "net", "crypto", "sim", "obs", "base"}},
        {"control", {"control", "net", "sim", "obs", "base"}},
        {"rsu", {"rsu", "crypto", "net", "sim", "obs", "base"}},
        {"defense",
         {"defense", "crypto", "net", "phys", "sim", "obs", "base"}},
        {"core",
         {"core", "control", "crypto", "defense", "fault", "net", "phys",
          "rsu", "sim", "obs", "base"}},
        // scen compiles declarative descriptions into ScenarioConfigs: it
        // sits directly above core but below security/eval -- a description
        // names attacks, it never instantiates or runs them.
        {"scen",
         {"scen", "core", "control", "crypto", "defense", "fault", "net",
          "phys", "rsu", "sim", "obs", "base"}},
        {"security",
         {"security", "core", "control", "crypto", "defense", "fault", "net",
          "phys", "rsu", "sim", "obs", "base"}},
        {"eval",
         {"eval", "scen", "security", "core", "control", "crypto", "defense",
          "fault", "net", "phys", "rsu", "sim", "obs", "base"}},
        {"detect",
         {"detect", "eval", "scen", "security", "core", "control", "crypto",
          "defense", "fault", "net", "phys", "rsu", "sim", "obs", "base"}},
    };
    return allow;
}

// ---------------------------------------------------------------------------
// Path scoping.

bool randomness_whitelisted(const std::string& rel) {
    // The seeding module: the one place allowed to talk about entropy
    // sources (it derives all streams from the scenario master seed).
    return starts_with(rel, "src/sim/random.");
}

bool unordered_iter_scoped(const std::string& rel) {
    static const char* kPrefixes[] = {
        "src/core/metrics", "src/core/report",  "src/core/experiment",
        "src/detect/score", "src/detect/bank",  "src/detect/dataset",
        "src/eval/",        "src/obs/",         "bench/",
    };
    for (const char* p : kPrefixes)
        if (starts_with(rel, p)) return true;
    return false;
}

bool oracle_scoped(const std::string& rel) {
    if (starts_with(rel, "src/defense/") ||
        starts_with(rel, "src/security/defense/"))
        return true;
    if (!starts_with(rel, "src/detect/")) return false;
    // Whitelisted oracle consumers: the harness stamps labels onto rows,
    // the scorer compares verdicts against them, the dataset serializes
    // them. Everything else in detect/ is a detector and must stay blind.
    static const char* kConsumers[] = {
        "src/detect/harness.", "src/detect/score.", "src/detect/dataset.",
    };
    for (const char* p : kConsumers)
        if (starts_with(rel, p)) return false;
    return true;
}

// ---------------------------------------------------------------------------
// Determinism rules: forbidden tokens.

struct TokenRule {
    const char* token;
    bool needs_call;  ///< Token must be followed by '(' to count.
    const char* rule;
    const char* what;
};

constexpr TokenRule kTokenRules[] = {
    {"rand", true, "no-unseeded-random", "C rand() is ambient global entropy"},
    {"srand", true, "no-unseeded-random", "C srand() reseeds global entropy"},
    {"rand_r", true, "no-unseeded-random", "rand_r() is unseeded C entropy"},
    {"random_device", false, "no-unseeded-random",
     "std::random_device draws nondeterministic entropy"},
    {"system_clock", false, "no-wallclock",
     "system_clock reads the wall clock"},
    {"time", true, "no-wallclock", "C time() reads the wall clock"},
    {"clock", true, "no-wallclock", "C clock() reads process time"},
    {"gettimeofday", true, "no-wallclock",
     "gettimeofday() reads the wall clock"},
    {"clock_gettime", true, "no-wallclock",
     "clock_gettime() reads a system clock"},
    {"localtime", true, "no-wallclock", "localtime() reads the wall clock"},
    {"gmtime", true, "no-wallclock", "gmtime() reads the wall clock"},
    {"__DATE__", false, "no-wallclock", "__DATE__ bakes build time in"},
    {"__TIME__", false, "no-wallclock", "__TIME__ bakes build time in"},
    {"__TIMESTAMP__", false, "no-wallclock",
     "__TIMESTAMP__ bakes build time in"},
    {"steady_clock", false, "no-steady-clock",
     "steady_clock reads host time inside library code"},
};

void check_tokens(const SourceFile& src, std::vector<Finding>& findings) {
    const bool whitelisted = randomness_whitelisted(src.rel);
    // The steady-clock ban covers library code only: benches, tests and
    // tools time things on purpose. Inside src/, the single sanctioned
    // reader (src/obs/timer.cpp) carries an inline reasoned allow.
    const bool library_tu = starts_with(src.rel, "src/");
    const std::string& text = src.stripped;
    for (const TokenRule& tr : kTokenRules) {
        if (whitelisted && std::string(tr.rule) == kRuleRandom) continue;
        if (!library_tu && std::string(tr.rule) == kRuleSteadyClock) continue;
        const std::string token = tr.token;
        std::size_t pos = 0;
        while ((pos = text.find(token, pos)) != std::string::npos) {
            const std::size_t hit = pos;
            pos += token.size();
            if (!word_at(text, hit, token)) continue;
            if (tr.needs_call) {
                const std::size_t after = skip_spaces(text, hit + token.size());
                if (after >= text.size() || text[after] != '(') continue;
            }
            findings.push_back({src.rel, src.line_of(hit), tr.rule,
                                std::string(tr.what) +
                                    "; derive everything from the scenario "
                                    "seed (sim::RandomStream) or the "
                                    "simulation clock"});
        }
    }
}

// ---------------------------------------------------------------------------
// Unordered-iteration rule.

/// Collects names declared in this file with an unordered container type
/// (members, locals, params -- anything spelled `std::unordered_xxx<...>
/// name`). Purely lexical: nested template args are matched by depth.
std::set<std::string> unordered_decl_names(const std::string& text) {
    std::set<std::string> names;
    for (const std::string intro : {"unordered_map", "unordered_set",
                                    "unordered_multimap",
                                    "unordered_multiset"}) {
        std::size_t pos = 0;
        while ((pos = text.find(intro, pos)) != std::string::npos) {
            const std::size_t hit = pos;
            pos += intro.size();
            if (!word_at(text, hit, intro)) continue;
            std::size_t i = skip_spaces(text, hit + intro.size());
            if (i >= text.size() || text[i] != '<') continue;
            int depth = 0;
            for (; i < text.size(); ++i) {
                if (text[i] == '<') ++depth;
                else if (text[i] == '>' && --depth == 0) { ++i; break; }
            }
            // Skip refs/pointers/cv/whitespace, then read the identifier.
            while (i < text.size() &&
                   (text[i] == '&' || text[i] == '*' || text[i] == ' ' ||
                    text[i] == '\t' || text[i] == '\n'))
                ++i;
            std::string name;
            while (i < text.size() && is_ident(text[i])) name += text[i++];
            if (!name.empty() && !(name[0] >= '0' && name[0] <= '9'))
                names.insert(name);
        }
    }
    return names;
}

std::vector<std::string> identifiers_in(const std::string& expr) {
    std::vector<std::string> out;
    std::string cur;
    for (const char c : expr) {
        if (is_ident(c)) {
            cur += c;
        } else if (!cur.empty()) {
            out.push_back(cur);
            cur.clear();
        }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
}

void check_unordered_iteration(const SourceFile& src,
                               std::vector<Finding>& findings) {
    if (!unordered_iter_scoped(src.rel)) return;
    const std::string& text = src.stripped;
    const std::set<std::string> names = unordered_decl_names(text);

    const auto report = [&](std::size_t offset, const std::string& what) {
        findings.push_back(
            {src.rel, src.line_of(offset), kRuleUnorderedIter,
             what + " iterates in hash order, which is not stable across "
                    "standard libraries or table sizes and silently breaks "
                    "byte-identical output"});
    };

    // Range-for whose range expression names an unordered container (or
    // spells one inline).
    std::size_t pos = 0;
    while ((pos = text.find("for", pos)) != std::string::npos) {
        const std::size_t hit = pos;
        pos += 3;
        if (!word_at(text, hit, "for")) continue;
        std::size_t open = skip_spaces(text, hit + 3);
        if (open >= text.size() || text[open] != '(') continue;
        int depth = 0;
        std::size_t colon = std::string::npos, close = open;
        for (std::size_t i = open; i < text.size(); ++i) {
            if (text[i] == '(') ++depth;
            else if (text[i] == ')' && --depth == 0) { close = i; break; }
            else if (text[i] == ':' && depth == 1 &&
                     colon == std::string::npos) {
                const bool dbl = (i > 0 && text[i - 1] == ':') ||
                                 (i + 1 < text.size() && text[i + 1] == ':');
                if (!dbl) colon = i;
            }
        }
        if (colon == std::string::npos || close <= colon) continue;
        const std::string range = text.substr(colon + 1, close - colon - 1);
        bool bad = range.find("unordered_") != std::string::npos;
        std::string culprit;
        for (const std::string& id : identifiers_in(range)) {
            if (names.count(id) != 0) {
                bad = true;
                culprit = id;
                break;
            }
        }
        if (bad) {
            report(hit, "range-for over unordered container" +
                            (culprit.empty() ? std::string()
                                             : " `" + culprit + "`"));
        }
    }

    // Iterator-style access: name.begin() / name.cbegin() / std::begin(name).
    for (const std::string& name : names) {
        for (const std::string method : {".begin", ".cbegin"}) {
            const std::string pattern = name + method;
            std::size_t p = 0;
            while ((p = text.find(pattern, p)) != std::string::npos) {
                const std::size_t hit = p;
                p += pattern.size();
                if (hit > 0 && is_ident(text[hit - 1])) continue;
                const std::size_t after =
                    skip_spaces(text, hit + pattern.size());
                if (after >= text.size() || text[after] != '(') continue;
                report(hit, "iterator over unordered container `" + name + "`");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Oracle-isolation rule.

void check_oracle(const SourceFile& src, std::vector<Finding>& findings) {
    if (!oracle_scoped(src.rel)) return;
    const std::string& text = src.stripped;
    struct OracleToken {
        const char* token;
        const char* what;
    };
    constexpr OracleToken kOracleTokens[] = {
        {"GroundTruth", "names the oracle label type"},
        {"truth", "reads the attack ground-truth label"},
        {"truth_label", "serializes the oracle label"},
    };
    for (const OracleToken& ot : kOracleTokens) {
        const std::string token = ot.token;
        std::size_t pos = 0;
        while ((pos = text.find(token, pos)) != std::string::npos) {
            const std::size_t hit = pos;
            pos += token.size();
            if (!word_at(text, hit, token)) continue;
            findings.push_back(
                {src.rel, src.line_of(hit), kRuleOracle,
                 "`" + token + "` " + ot.what +
                     "; detectors/defenses must stay blind to the oracle "
                     "(only detect/harness, detect/score, detect/dataset "
                     "may consume it)"});
        }
    }
    // oracle_* identifiers (prefix match).
    std::size_t pos = 0;
    while ((pos = text.find("oracle_", pos)) != std::string::npos) {
        const std::size_t hit = pos;
        pos += 7;
        if (hit > 0 && is_ident(text[hit - 1])) continue;
        findings.push_back({src.rel, src.line_of(hit), kRuleOracle,
                            "`oracle_*` identifier touches oracle state; "
                            "detectors/defenses must stay blind to it"});
    }
}

// ---------------------------------------------------------------------------
// Layering rule (include graph).

std::string module_of_rel(const std::string& rel) {
    if (!starts_with(rel, "src/")) return {};
    const std::size_t slash = rel.find('/', 4);
    if (slash == std::string::npos) return {};
    return rel.substr(4, slash - 4);
}

std::string module_of_include(const std::string& path) {
    const std::size_t slash = path.find('/');
    if (slash == std::string::npos) return {};
    const std::string mod = path.substr(0, slash);
    return layer_allow().count(mod) != 0 ? mod : std::string();
}

void check_layering(const SourceFile& src,
                    const std::vector<IncludeEdge>& includes,
                    std::vector<Finding>& findings) {
    const std::string mod = module_of_rel(src.rel);
    if (mod.empty()) return;  // bench/tests/examples/tools may include anything
    const auto allow_it = layer_allow().find(mod);
    if (allow_it == layer_allow().end()) return;  // unknown module: skip
    for (const IncludeEdge& inc : includes) {
        const std::string target = module_of_include(inc.path);
        if (target.empty() || allow_it->second.count(target) != 0) continue;
        findings.push_back(
            {src.rel, inc.line, kRuleLayering,
             "module `" + mod + "` must not include `" + target + "` (\"" +
                 inc.path + "\"); allowed from `" + mod + "`: everything at "
                 "or below its layer in the module DAG"});
    }
    // Oracle headers by name are off limits wherever the oracle rule
    // applies, independent of layer.
    if (oracle_scoped(src.rel)) {
        for (const IncludeEdge& inc : includes) {
            if (inc.path.find("oracle") != std::string::npos) {
                findings.push_back({src.rel, inc.line, kRuleOracle,
                                    "includes oracle header \"" + inc.path +
                                        "\""});
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-TU helpers.

bool dotted_lowercase(const std::string& name) {
    int segments = 0;
    std::size_t seg_len = 0;
    for (const char c : name) {
        if (c == '.') {
            if (seg_len == 0) return false;
            ++segments;
            seg_len = 0;
        } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                   c == '_') {
            ++seg_len;
        } else {
            return false;
        }
    }
    return seg_len > 0 && segments >= 1;
}

std::string join_names(const std::set<std::string>& names) {
    std::string out;
    for (const std::string& n : names) {
        if (!out.empty()) out += ", ";
        out += n;
    }
    return out;
}

}  // namespace

void check_file(const SourceFile& src,
                const std::vector<IncludeEdge>& includes,
                std::vector<Finding>& findings) {
    check_tokens(src, findings);
    check_unordered_iteration(src, findings);
    check_oracle(src, findings);
    check_layering(src, includes, findings);
}

// ---------------------------------------------------------------------------
// counter-contract.

void check_counter_contract(const NameIndex& index,
                            std::vector<Finding>& findings,
                            std::vector<Finding>& notes) {
    // Duplicates (counters and timers are separate obs registries, so
    // each namespace is checked on its own).
    for (const bool timers : {false, true}) {
        std::map<std::string, std::vector<const CounterDef*>> by_name;
        for (const CounterDef& c : index.counters)
            if (c.is_timer == timers) by_name[c.name].push_back(&c);
        for (const auto& [name, sites] : by_name) {
            if (sites.size() < 2) continue;
            for (const CounterDef* c : sites) {
                const CounterDef* other =
                    c == sites.front() ? sites.back() : sites.front();
                findings.push_back(
                    {c->site.file, c->site.line, kRuleCounterContract,
                     std::string(timers ? "timer" : "counter") + " name '" +
                         name + "' is defined " +
                         std::to_string(sites.size()) + " times (also at " +
                         other->site.file + ":" +
                         std::to_string(other->site.line) +
                         "); obs names key baseline artifacts and must be "
                         "unique"});
            }
        }
    }

    // Style: dotted-lowercase, at least two segments ("net.sent").
    for (const CounterDef& c : index.counters) {
        if (dotted_lowercase(c.name)) continue;
        findings.push_back(
            {c.site.file, c.site.line, kRuleCounterContract,
             std::string(c.is_timer ? "timer" : "counter") + " name '" +
                 c.name + "' is not dotted-lowercase "
                 "(expected `subsystem.metric`, e.g. net.sent, "
                 "crypto.verify.ok)"});
    }

    // Baseline contract: every counter key pinned by a baseline must
    // still exist in source, else the perf gate compares against ghosts.
    std::set<std::string> counter_names;
    for (const CounterDef& c : index.counters)
        if (!c.is_timer) counter_names.insert(c.name);
    for (const std::string& rel : index.malformed_baselines)
        findings.push_back({rel, 1, kRuleCounterContract,
                            "baseline is not valid JSON"});
    for (const BaselineKey& key : index.baseline_keys) {
        if (counter_names.count(key.name) != 0) continue;
        findings.push_back(
            {key.site.file, key.site.line, kRuleCounterContract,
             "baseline counter '" + key.name +
                 "' has no obs::Counter definition in source; the perf "
                 "gate would compare against a counter that can never "
                 "fire"});
    }

    // The reverse direction is advisory: a counter no baseline exports
    // is untracked by the perf gate (complements scenfuzz's never-fired
    // report). Notes, not findings -- new counters land before their
    // first baseline refresh.
    if (!index.baseline_keys.empty()) {
        std::set<std::string> exported;
        for (const BaselineKey& key : index.baseline_keys)
            exported.insert(key.name);
        for (const CounterDef& c : index.counters) {
            if (c.is_timer || exported.count(c.name) != 0) continue;
            notes.push_back({c.site.file, c.site.line, kRuleCounterContract,
                             "counter '" + c.name +
                                 "' is exported by no bench baseline; the "
                                 "perf gate does not track it"});
        }
    }
}

// ---------------------------------------------------------------------------
// stream-registry.

void check_stream_registry(const NameIndex& index, const fs::path& root,
                           std::vector<Finding>& findings) {
    const bool have_streams =
        !index.stream_uses.empty() || !index.stream_decls.empty();
    if (!have_streams) return;

    if (!index.manifest_found) {
        for (const StreamUse& use : index.stream_uses)
            findings.push_back(
                {use.site.file, use.site.line, kRuleStreamRegistry,
                 "named stream '" + use.name +
                     "' but src/sim/streams.def does not exist; commit the "
                     "stream manifest so name collisions are checkable"});
        return;
    }

    // Manifest well-formedness: prefix entries end in '.', owners exist,
    // no duplicate declarations.
    std::map<std::string, int> decl_lines;
    for (const StreamDecl& d : index.stream_decls) {
        if (d.is_prefix && (d.name.empty() || d.name.back() != '.'))
            findings.push_back(
                {index.manifest_rel, d.line, kRuleStreamRegistry,
                 "PLATOON_STREAM_PREFIX '" + d.name +
                     "' must end with '.' (it declares a name family)"});
        if (!d.is_prefix && !d.name.empty() && d.name.back() == '.')
            findings.push_back(
                {index.manifest_rel, d.line, kRuleStreamRegistry,
                 "PLATOON_STREAM '" + d.name +
                     "' ends with '.'; use PLATOON_STREAM_PREFIX for name "
                     "families"});
        const auto [it, inserted] = decl_lines.emplace(d.name, d.line);
        if (!inserted)
            findings.push_back(
                {index.manifest_rel, d.line, kRuleStreamRegistry,
                 "stream '" + d.name + "' is declared twice (also at line " +
                     std::to_string(it->second) + ")"});
        if (!fs::exists(root / d.owner))
            findings.push_back(
                {index.manifest_rel, d.line, kRuleStreamRegistry,
                 "owner file '" + d.owner + "' of stream '" + d.name +
                     "' does not exist; update the manifest entry"});
    }

    // Every named construction site must be declared.
    for (const StreamUse& use : index.stream_uses) {
        if (index.stream_declared(use.name)) continue;
        findings.push_back(
            {use.site.file, use.site.line, kRuleStreamRegistry,
             "stream '" + use.name +
                 "' is not declared in src/sim/streams.def; add a "
                 "PLATOON_STREAM entry (stream names are part of the "
                 "determinism contract -- never rename a committed one)"});
    }

    // Collision scan: a literal spelling a declared name outside its
    // owner file means a second subsystem can draw from the same stream.
    // A prefix entry also covers the prefix minus its trailing dot (the
    // base name id-suffixed builders pass around).
    for (const SrcLiteral& lit : index.src_literals) {
        for (const StreamDecl& d : index.stream_decls) {
            const bool matches =
                d.is_prefix ? (starts_with(lit.value, d.name) ||
                               lit.value + "." == d.name)
                            : lit.value == d.name;
            if (!matches || lit.site.file == d.owner) continue;
            findings.push_back(
                {lit.site.file, lit.site.line, kRuleStreamRegistry,
                 "literal \"" + lit.value + "\" spells stream '" + d.name +
                     "' owned by " + d.owner +
                     " (streams.def line " + std::to_string(d.line) +
                     "); two subsystems must not draw from one stream -- "
                     "declare a new name, or suppress if this string is "
                     "not a stream"});
        }
    }

    // Declared but never spelled anywhere: the manifest has rotted.
    for (const StreamDecl& d : index.stream_decls) {
        bool used = false;
        for (const SrcLiteral& lit : index.src_literals) {
            used = d.is_prefix ? (starts_with(lit.value, d.name) ||
                                  lit.value + "." == d.name)
                               : lit.value == d.name;
            if (used) break;
        }
        if (!used)
            findings.push_back(
                {index.manifest_rel, d.line, kRuleStreamRegistry,
                 "stream '" + d.name +
                     "' is declared but spelled nowhere in src/; remove "
                     "the manifest entry (do NOT recycle the name -- its "
                     "hash may still shape committed baselines)"});
    }
}

// ---------------------------------------------------------------------------
// scenario-names.

void check_scenario_names(const NameIndex& index,
                          std::vector<Finding>& findings) {
    const RegistryNames& reg = index.registry;
    for (const ScenarioNameUse& use : index.scenario_uses) {
        if (use.kind == "malformed") {
            findings.push_back({use.site.file, use.site.line,
                                kRuleScenarioNames,
                                "scenario description is not valid JSON"});
            continue;
        }
        const std::set<std::string>* names = nullptr;
        std::set<std::string> with_sentinels;
        if (use.kind == "profile") {
            names = &reg.profiles;
        } else if (use.kind == "attack") {
            if (reg.attacks.empty()) continue;
            with_sentinels = reg.attacks;
            with_sentinels.insert("all");
            names = &with_sentinels;
        } else if (use.kind == "defense") {
            if (reg.defenses.empty()) continue;
            with_sentinels = reg.defenses;
            with_sentinels.insert("none");
            with_sentinels.insert("all");
            names = &with_sentinels;
        } else if (use.kind == "controller") {
            names = &reg.controllers;
        } else if (use.kind == "auth-mode") {
            names = &reg.auth_modes;
        } else if (use.kind == "fault") {
            with_sentinels.insert(use.candidates.begin(),
                                  use.candidates.end());
            names = &with_sentinels;
        }
        if (names == nullptr || names->empty()) continue;
        if (names->count(use.value) != 0) continue;
        findings.push_back(
            {use.site.file, use.site.line, kRuleScenarioNames,
             "unknown " + use.kind + " '" + use.value +
                 "'; the registry resolves: " + join_names(*names)});
    }
}

// ---------------------------------------------------------------------------
// stale-suppression.

void check_stale_suppressions(
    const std::string& file,
    const std::map<int, std::vector<Suppression>>& sups,
    std::vector<Finding>& findings) {
    for (const auto& [line, list] : sups) {
        (void)line;
        for (const Suppression& s : list) {
            if (!known_rule(s.rule)) {
                findings.push_back(
                    {file, s.line, kRuleStaleSuppression,
                     "suppression names unknown rule '" + s.rule +
                         "'; see --list-rules for the vocabulary"});
            } else if (!s.used) {
                findings.push_back(
                    {file, s.line, kRuleStaleSuppression,
                     "stale suppression: rule '" + s.rule +
                         "' no longer fires here; delete the allow() so "
                         "the suppression set stays honest"});
            }
        }
    }
}

}  // namespace platoonlint
