#include "report.hpp"

#include <fstream>
#include <iostream>
#include <sstream>

#include "scanner.hpp"

namespace platoonlint {

void print_text(const std::vector<Finding>& findings,
                const std::vector<Finding>& notes, std::size_t files_scanned,
                bool fix_order_hints) {
    for (const Finding& f : notes)
        std::cout << f.file << ":" << f.line << ": note: [" << f.rule << "] "
                  << f.message << "\n";
    for (const Finding& f : findings) {
        std::cout << f.file << ":" << f.line << ": error: [" << f.rule
                  << "] " << f.message << "\n";
        if (fix_order_hints && f.rule == kRuleUnorderedIter) {
            std::cout
                << "    hint: extract the keys, sort, then visit:\n"
                   "        std::vector<Key> keys;\n"
                   "        keys.reserve(m.size());\n"
                   "        for (const auto& kv : m) "
                   "keys.push_back(kv.first);\n"
                   "        std::sort(keys.begin(), keys.end());\n"
                   "        for (const Key& k : keys) use(m.at(k));\n"
                   "    (or store the data in std::map / a sorted "
                   "vector to begin with)\n";
        }
    }
    if (findings.empty()) {
        std::cout << "platoonlint: " << files_scanned << " files clean\n";
    } else {
        std::cout << "platoonlint: " << findings.size() << " finding(s) in "
                  << files_scanned << " files\n";
    }
}

void print_json(const std::vector<Finding>& findings) {
    std::cout << "{\n  \"findings\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        std::cout << "    {\"file\": \"" << json_escape(f.file)
                  << "\", \"line\": " << f.line << ", \"rule\": \"" << f.rule
                  << "\", \"message\": \"" << json_escape(f.message) << "\"}"
                  << (i + 1 < findings.size() ? "," : "") << "\n";
    }
    std::cout << "  ],\n  \"count\": " << findings.size() << "\n}\n";
}

namespace {

void sarif_result(std::ostringstream& out, const Finding& f,
                  const char* level, bool last) {
    out << "      {\n"
        << "        \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
        << "        \"level\": \"" << level << "\",\n"
        << "        \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"},\n"
        << "        \"locations\": [{\"physicalLocation\": {\n"
        << "          \"artifactLocation\": {\"uri\": \""
        << json_escape(f.file) << "\"},\n"
        << "          \"region\": {\"startLine\": "
        << (f.line > 0 ? f.line : 1) << "}\n"
        << "        }}]\n"
        << "      }" << (last ? "" : ",") << "\n";
}

}  // namespace

std::string sarif_document(const std::vector<Finding>& findings,
                           const std::vector<Finding>& notes) {
    std::ostringstream out;
    out << "{\n"
        << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
           "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [{\n"
        << "    \"tool\": {\"driver\": {\n"
        << "      \"name\": \"platoonlint\",\n"
        << "      \"informationUri\": "
           "\"https://example.invalid/tools/platoonlint\",\n"
        << "      \"version\": \"2.0.0\",\n"
        << "      \"rules\": [\n";
    const std::vector<RuleDoc>& rules = all_rules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        out << "        {\"id\": \"" << rules[i].id
            << "\", \"shortDescription\": {\"text\": \""
            << json_escape(rules[i].doc) << "\"}}"
            << (i + 1 < rules.size() ? "," : "") << "\n";
    }
    out << "      ]\n"
        << "    }},\n"
        << "    \"results\": [\n";
    const std::size_t total = findings.size() + notes.size();
    std::size_t emitted = 0;
    for (const Finding& f : findings)
        sarif_result(out, f, "error", ++emitted == total);
    for (const Finding& f : notes)
        sarif_result(out, f, "note", ++emitted == total);
    out << "    ]\n"
        << "  }]\n"
        << "}\n";
    return out.str();
}

bool write_sarif(const std::string& path,
                 const std::vector<Finding>& findings,
                 const std::vector<Finding>& notes) {
    std::ofstream out(path);
    out << sarif_document(findings, notes);
    return static_cast<bool>(out);
}

}  // namespace platoonlint
