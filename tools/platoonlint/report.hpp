// platoonlint report: the three output surfaces.
//
//   text  -- the developer-facing default (file:line: error: [rule] msg)
//   json  -- machine-readable findings for scripts
//   sarif -- SARIF 2.1.0 for github/codeql-action/upload-sarif, so CI
//            findings annotate the PR diff instead of hiding in a log
//
// All three consume the same sorted finding list, so every surface is
// byte-deterministic for a given tree.
#pragma once

#include <string>
#include <vector>

#include "rules.hpp"

namespace platoonlint {

/// Default surface. `notes` (bare suppressions, untracked counters) print
/// first and are non-fatal. `files_scanned` feeds the trailing summary
/// line; `fix_order_hints` appends the sorted-keys recipe after
/// no-unordered-iteration findings.
void print_text(const std::vector<Finding>& findings,
                const std::vector<Finding>& notes, std::size_t files_scanned,
                bool fix_order_hints);

void print_json(const std::vector<Finding>& findings);

/// SARIF 2.1.0 document: one run, the full rule catalogue under
/// tool.driver.rules, findings as level "error" and notes as level
/// "note". Paths are emitted as-is (root-relative), which is what the
/// upload action expects when it runs from the checkout root.
std::string sarif_document(const std::vector<Finding>& findings,
                           const std::vector<Finding>& notes);

/// Writes sarif_document() to `path`; false on I/O failure.
bool write_sarif(const std::string& path,
                 const std::vector<Finding>& findings,
                 const std::vector<Finding>& notes);

}  // namespace platoonlint
