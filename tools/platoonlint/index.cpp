#include "index.hpp"

#include <algorithm>

namespace platoonlint {

namespace {

bool in_src(const std::string& rel) { return starts_with(rel, "src/"); }

/// After a type token like `Counter` or `RandomStream`, scans through the
/// declarator chatter (template close, refs, variable name, whitespace)
/// to the construction bracket. Returns npos when the token is not a
/// construction site (parameter declaration, member without initializer,
/// qualified definition, ...).
std::size_t find_ctor_bracket(const std::string& text, std::size_t after) {
    for (std::size_t i = after; i < text.size() && i < after + 96; ++i) {
        const char c = text[i];
        if (c == '(' || c == '{') return i;
        if (is_ident(c) || c == '&' || c == '*' || c == '>' || c == ':' ||
            c == ' ' || c == '\t' || c == '\n')
            continue;
        return std::string::npos;
    }
    return std::string::npos;
}

/// Matching close bracket for the one at `open`, or npos.
std::size_t match_bracket(const std::string& text, std::size_t open) {
    const char oc = text[open];
    const char cc = oc == '(' ? ')' : '}';
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == oc) ++depth;
        else if (text[i] == cc && --depth == 0) return i;
    }
    return std::string::npos;
}

/// First literal inside the bracket pair at `open`, but only before the
/// next ';' -- that keeps `class Counter { ... };` bodies from donating a
/// stray literal to the index.
const StringLiteral* first_ctor_literal(const SourceFile& src,
                                        std::size_t open) {
    const std::size_t close = match_bracket(src.stripped, open);
    if (close == std::string::npos) return nullptr;
    std::size_t semi = src.stripped.find(';', open);
    if (semi == std::string::npos) semi = src.stripped.size();
    const std::size_t end = std::min(close, semi);
    const auto lits = src.literals_in(open, end);
    return lits.empty() ? nullptr : lits.front();
}

void index_counters(const SourceFile& src, NameIndex& index) {
    struct TypeToken {
        const char* token;
        bool is_timer;
    };
    constexpr TypeToken kTypes[] = {{"Counter", false}, {"ScopedTimer", true}};
    const std::string& text = src.stripped;
    for (const TypeToken& t : kTypes) {
        const std::string token = t.token;
        std::size_t pos = 0;
        while ((pos = text.find(token, pos)) != std::string::npos) {
            const std::size_t hit = pos;
            pos += token.size();
            if (!word_at(text, hit, token)) continue;
            const std::size_t open =
                find_ctor_bracket(text, hit + token.size());
            if (open == std::string::npos) continue;
            const StringLiteral* lit = first_ctor_literal(src, open);
            if (lit == nullptr) continue;
            index.counters.push_back(
                {lit->value, {src.rel, src.line_of(lit->offset)}, t.is_timer});
        }
    }
}

void index_stream_uses(const SourceFile& src, NameIndex& index) {
    const std::string& text = src.stripped;
    const auto record = [&](std::size_t open) {
        const StringLiteral* lit = first_ctor_literal(src, open);
        if (lit != nullptr)
            index.stream_uses.push_back(
                {lit->value, {src.rel, src.line_of(lit->offset)}});
    };

    // `RandomStream name(...)`, `RandomStream(...)`,
    // `make_unique<...RandomStream>(...)`.
    std::size_t pos = 0;
    while ((pos = text.find("RandomStream", pos)) != std::string::npos) {
        const std::size_t hit = pos;
        pos += 12;
        if (!word_at(text, hit, "RandomStream")) continue;
        const std::size_t open = find_ctor_bracket(text, hit + 12);
        if (open != std::string::npos) record(open);
    }

    // Member-init style: an identifier ending in `rng`/`rng_` followed by
    // a bracket with a literal among its arguments (`rng_(seed, "name")`).
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (!is_ident(text[i])) continue;
        const std::size_t begin = i;
        while (i < text.size() && is_ident(text[i])) ++i;
        const std::string id = text.substr(begin, i - begin);
        const bool rng_name = id.size() >= 3 &&
                              (id.compare(id.size() - 3, 3, "rng") == 0 ||
                               (id.size() >= 4 &&
                                id.compare(id.size() - 4, 4, "rng_") == 0));
        if (!rng_name) continue;
        const std::size_t after = skip_spaces(text, i);
        if (after < text.size() &&
            (text[after] == '(' || text[after] == '{'))
            record(after);
    }
}

// -----------------------------------------------------------------------
// Registry extraction: to_string switch bodies and the scen name lists.

/// When `pos` is the start of a function definition's parameter list and
/// the function has a body, returns the body's '{'. Declarations (`;`
/// before any '{') return npos.
std::size_t body_after_params(const std::string& text, std::size_t open) {
    const std::size_t close = match_bracket(text, open);
    if (close == std::string::npos) return std::string::npos;
    const std::size_t brace = skip_spaces(text, close + 1);
    if (brace < text.size() && text[brace] == '{') return brace;
    return std::string::npos;
}

/// Collects every literal in the body of `outer(inner ...)` definitions
/// (e.g. to_string(AttackKind k) { ... }), excluding the "?" fallback.
void body_literals(const SourceFile& src, const std::string& outer,
                   const std::string& inner, std::set<std::string>& out) {
    const std::string& text = src.stripped;
    std::size_t pos = 0;
    while ((pos = text.find(outer, pos)) != std::string::npos) {
        const std::size_t hit = pos;
        pos += outer.size();
        if (!word_at(text, hit, outer)) continue;
        std::size_t i = skip_spaces(text, hit + outer.size());
        if (i >= text.size() || text[i] != '(') continue;
        if (!inner.empty()) {
            const std::size_t arg = skip_spaces(text, i + 1);
            if (!word_at(text, arg, inner)) continue;
        }
        const std::size_t brace = body_after_params(text, i);
        if (brace == std::string::npos) continue;
        const std::size_t end = match_bracket(text, brace);
        if (end == std::string::npos) continue;
        for (const StringLiteral* lit : src.literals_in(brace, end))
            if (lit->value != "?") out.insert(lit->value);
    }
}

void index_registry(const SourceFile& src, RegistryNames& reg) {
    body_literals(src, "to_string", "AttackKind", reg.attacks);
    body_literals(src, "to_string", "DefenseKind", reg.defenses);
    body_literals(src, "to_string", "ControllerType", reg.controllers);
    body_literals(src, "auth_mode_names", "", reg.auth_modes);
    body_literals(src, "profile_names", "", reg.profiles);
}

// -----------------------------------------------------------------------
// Data files: stream manifest, bench baselines, scenario descriptions.

void index_manifest(const fs::path& root, NameIndex& index) {
    const fs::path path = root / "src" / "sim" / "streams.def";
    if (!fs::exists(path)) return;
    const auto src = load_source(path, "src/sim/streams.def");
    if (!src) return;
    index.manifest_found = true;
    index.manifest_rel = src->rel;
    struct Marker {
        const char* token;
        bool is_prefix;
    };
    // Order matters: PLATOON_STREAM is a prefix of PLATOON_STREAM_PREFIX,
    // so the longer marker is matched first via word_at's boundary check.
    constexpr Marker kMarkers[] = {{"PLATOON_STREAM_PREFIX", true},
                                   {"PLATOON_STREAM", false}};
    const std::string& text = src->stripped;
    for (const Marker& m : kMarkers) {
        const std::string token = m.token;
        std::size_t pos = 0;
        while ((pos = text.find(token, pos)) != std::string::npos) {
            const std::size_t hit = pos;
            pos += token.size();
            if (!word_at(text, hit, token)) continue;
            const std::size_t open = skip_spaces(text, hit + token.size());
            if (open >= text.size() || text[open] != '(') continue;
            const std::size_t close = match_bracket(text, open);
            if (close == std::string::npos) continue;
            const auto lits = src->literals_in(open, close);
            if (lits.size() < 2) continue;
            index.stream_decls.push_back({lits[0]->value, lits[1]->value,
                                          m.is_prefix,
                                          src->line_of(lits[0]->offset)});
        }
    }
    std::sort(index.stream_decls.begin(), index.stream_decls.end(),
              [](const StreamDecl& a, const StreamDecl& b) {
                  return a.line < b.line;
              });
}

void index_baselines(const fs::path& root, NameIndex& index) {
    const fs::path dir = root / "bench" / "baselines";
    if (!fs::is_directory(dir)) return;
    std::vector<fs::path> files;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
        if (ec) break;
        if (it->path().extension() == ".json") files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& path : files) {
        const std::string rel = relative_to_root(path, root);
        const auto src = load_source(path, rel);
        if (!src) continue;
        const auto doc = parse_json(src->raw);
        if (!doc || !doc->is_object()) {
            index.malformed_baselines.push_back(rel);
            continue;
        }
        const JsonNode* counters = doc->find("counters");
        if (counters == nullptr || !counters->is_object()) continue;
        for (const auto& [key, value] : counters->members)
            index.baseline_keys.push_back({key, {rel, value.line}});
    }
}

/// Walks a scenario document for registry-name uses. `presets` holds the
/// file's fault_presets keys (collected before grids are visited --
/// fault_presets is a top-level key, so one pre-pass suffices).
void scenario_walk(const JsonNode& node, const std::string& rel,
                   const std::vector<std::string>& fault_candidates,
                   NameIndex& index) {
    if (node.is_object()) {
        for (const auto& [key, value] : node.members) {
            if (key == "controller" && value.is_string()) {
                index.scenario_uses.push_back(
                    {"controller", value.text, {rel, value.line}, {}});
            } else if (key == "auth_mode" && value.is_string()) {
                index.scenario_uses.push_back(
                    {"auth-mode", value.text, {rel, value.line}, {}});
            } else if (key == "axes" && value.is_object()) {
                struct Axis {
                    const char* key;
                    const char* kind;
                };
                constexpr Axis kAxes[] = {{"attacks", "attack"},
                                          {"defenses", "defense"},
                                          {"faults", "fault"}};
                for (const Axis& axis : kAxes) {
                    const JsonNode* arr = value.find(axis.key);
                    if (arr == nullptr || !arr->is_array()) continue;
                    for (const JsonNode& item : arr->items) {
                        if (!item.is_string()) continue;
                        ScenarioNameUse use{axis.kind, item.text,
                                            {rel, item.line},
                                            {}};
                        if (use.kind == "fault")
                            use.candidates = fault_candidates;
                        index.scenario_uses.push_back(std::move(use));
                    }
                }
            }
            scenario_walk(value, rel, fault_candidates, index);
        }
    } else if (node.is_array()) {
        for (const JsonNode& item : node.items)
            scenario_walk(item, rel, fault_candidates, index);
    }
}

void index_scenarios(const fs::path& root, NameIndex& index) {
    const fs::path dir = root / "scenarios";
    if (!fs::is_directory(dir)) return;
    std::vector<fs::path> files;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
        if (ec) break;
        if (it->path().extension() == ".json") files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& path : files) {
        const std::string rel = relative_to_root(path, root);
        const auto src = load_source(path, rel);
        if (!src) continue;
        const auto doc = parse_json(src->raw);
        if (!doc || !doc->is_object()) {
            index.scenario_uses.push_back({"malformed", "", {rel, 1}, {}});
            continue;
        }
        const JsonNode* profile = doc->find("profile");
        if (profile != nullptr && profile->is_string())
            index.scenario_uses.push_back(
                {"profile", profile->text, {rel, profile->line}, {}});
        // Fault axis candidates: this file's preset names plus the
        // schema's sentinels ("none" always; "all" = every preset).
        std::vector<std::string> fault_candidates{"none", "all"};
        const JsonNode* presets = doc->find("fault_presets");
        if (presets != nullptr && presets->is_object())
            for (const auto& [key, value] : presets->members) {
                (void)value;
                fault_candidates.push_back(key);
            }
        scenario_walk(*doc, rel, fault_candidates, index);
    }
}

/// Literals on preprocessor lines (#include paths, mostly) are not names
/// the contracts care about and must not trip the collision scan.
bool preprocessor_literal(const SourceFile& src, std::size_t offset) {
    const int line = src.line_of(offset);
    if (line < 1 || line > static_cast<int>(src.line_starts.size()))
        return false;
    const std::size_t begin =
        src.line_starts[static_cast<std::size_t>(line) - 1];
    const std::size_t i = skip_spaces(src.raw, begin);
    return i < src.raw.size() && src.raw[i] == '#';
}

}  // namespace

bool NameIndex::stream_declared(const std::string& name) const {
    for (const StreamDecl& d : stream_decls) {
        if (!d.is_prefix) {
            if (name == d.name) return true;
        } else if (starts_with(name, d.name) ||
                   name + "." == d.name) {
            return true;
        }
    }
    return false;
}

void index_source(const SourceFile& src, NameIndex& index) {
    if (starts_with(src.rel, "bench/")) {
        // Bench drivers may define the deterministic counters their own
        // baselines pin (bench_scale.tier*.{events,messages} live in the
        // bench_scale TU, not in src/): take their Counter/ScopedTimer
        // definitions into the name index so the baseline contract
        // resolves. Stream uses, registry entries and literals stay
        // scoped to src/ -- the layering rules do not bind bench code.
        index_counters(src, index);
        return;
    }
    if (!in_src(src.rel)) return;
    index_counters(src, index);
    index_stream_uses(src, index);
    index_registry(src, index.registry);
    for (const StringLiteral& lit : src.literals)
        if (!preprocessor_literal(src, lit.offset))
            index.src_literals.push_back(
                {lit.value, {src.rel, src.line_of(lit.offset)}});
}

void index_data_files(const fs::path& root, NameIndex& index) {
    index_manifest(root, index);
    index_baselines(root, index);
    index_scenarios(root, index);
}

}  // namespace platoonlint
