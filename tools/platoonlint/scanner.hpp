// platoonlint scanner: the lexical source model every rule consumes.
//
// One SourceFile per translation unit: the raw bytes (suppression comments
// live there), a comment/string-stripped shadow copy with identical layout
// (token rules scan it without tripping over prose), the string literals
// that stripping blanked out (the name index is built from them), and the
// line table that maps offsets back to 1-based lines.
//
// Also here: the quoted-include scanner, the suppression collector, the
// sorted directory walker, and a minimal line-tracking JSON reader used for
// bench baselines and scenario descriptions. All deliberately std-only --
// platoonlint must build everywhere the simulator builds, with no
// dependency on the simulator itself.
#pragma once

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace platoonlint {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Small string helpers.

bool is_ident(char c);
bool starts_with(const std::string& s, const std::string& prefix);

/// True when text[pos..pos+word) is `word` with identifier boundaries.
bool word_at(const std::string& text, std::size_t pos,
             const std::string& word);

/// First non-space position at or after `pos`.
std::size_t skip_spaces(const std::string& text, std::size_t pos);

std::string json_escape(const std::string& s);

// ---------------------------------------------------------------------------
// Source model.

/// A string literal as written in the raw text (quotes excluded, simple
/// escapes resolved). `offset` points at the opening quote, so
/// SourceFile::line_of(offset) is the literal's line.
struct StringLiteral {
    std::string value;
    std::size_t offset = 0;
};

struct SourceFile {
    std::string rel;  ///< Root-relative path with forward slashes.
    std::string raw;
    std::string stripped;  ///< Comments/strings blanked, layout preserved.
    std::vector<StringLiteral> literals;   ///< In file order.
    std::vector<std::size_t> line_starts;  ///< Offset of each line.

    [[nodiscard]] int line_of(std::size_t offset) const;

    /// Literals whose offset lies in [begin, end), in file order.
    [[nodiscard]] std::vector<const StringLiteral*> literals_in(
        std::size_t begin, std::size_t end) const;
};

/// Reads `path` and builds the full source model. Returns std::nullopt on
/// I/O failure.
std::optional<SourceFile> load_source(const fs::path& path,
                                      const std::string& rel);

/// Blanks comments and string/char literals, preserving layout so offsets
/// and line numbers stay aligned with the raw text. Handles raw strings.
/// When `literals` is non-null, every blanked string literal is appended.
std::string strip_comments_and_strings(const std::string& text,
                                       std::vector<StringLiteral>* literals);

// ---------------------------------------------------------------------------
// Suppressions: an "allow(<rule>) reason" directive in a comment on the
// finding line or the line immediately above. `used` is set by the driver
// when a raw finding matches -- the stale-suppression rule reports the
// ones that never match anything.

struct Suppression {
    std::string rule;
    int line = 0;
    bool has_reason = false;
    bool used = false;
};

/// Keyed by line for matching; values are in file order.
std::map<int, std::vector<Suppression>> collect_suppressions(
    const SourceFile& src);

/// True when a reasoned suppression for `rule` (or "all") sits on `line` or
/// the line above. Marks every matching suppression used, reasoned or not;
/// a matching reason-less suppression sets *bare_seen instead of
/// suppressing.
bool suppressed(std::map<int, std::vector<Suppression>>& sups, int line,
                const std::string& rule, bool* bare_seen);

// ---------------------------------------------------------------------------
// Includes.

struct IncludeEdge {
    std::string path;  ///< Quoted include path as written.
    int line = 0;
};

std::vector<IncludeEdge> collect_includes(const SourceFile& src);

// ---------------------------------------------------------------------------
// File collection.

bool lintable(const fs::path& p);

/// Sorted recursive walk collecting lintable files; skips build/VCS
/// directories and (when `exclude_fixtures`) root/tests/lint/fixtures.
void walk(const fs::path& dir, const fs::path& root, bool exclude_fixtures,
          std::vector<fs::path>& out);

std::string relative_to_root(const fs::path& p, const fs::path& root);

// ---------------------------------------------------------------------------
// Minimal JSON reader with line numbers (for bench baselines and scenario
// descriptions). Tolerant on numbers (stored as text); strict enough to
// walk well-formed committed files and fail cleanly on anything else.

struct JsonNode {
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
    Type type = Type::kNull;
    bool boolean = false;
    std::string text;  ///< Number spelling or string value.
    std::vector<JsonNode> items;
    std::vector<std::pair<std::string, JsonNode>> members;  ///< File order.
    int line = 0;  ///< 1-based line of the value token.

    [[nodiscard]] const JsonNode* find(const std::string& key) const;
    [[nodiscard]] bool is_string() const { return type == Type::kString; }
    [[nodiscard]] bool is_array() const { return type == Type::kArray; }
    [[nodiscard]] bool is_object() const { return type == Type::kObject; }
};

/// Parses `text`; returns std::nullopt on malformed input.
std::optional<JsonNode> parse_json(const std::string& text);

}  // namespace platoonlint
