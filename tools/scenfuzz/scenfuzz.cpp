// scenfuzz: coverage-driven scenario fuzzing over the compiled product
// space.
//
// The committed table benches only ever execute the cells their
// descriptions enumerate; the rest of the attack x defense x fault product
// space never runs on CI. scenfuzz closes that gap deterministically:
//
//   1. compile the space description (scenarios/fuzz_space.json) and the
//      committed bench descriptions, and compute which coverage cells
//      ("attack|defense|fault") have never run -- neither on a CI bench
//      pass nor in a previous scenfuzz ledger;
//   2. sample uncovered cells from a named sim::RandomStream until the
//      budget is exhausted, run them through eval::run_eval_grid (so the
//      sweep folds bit-identically at any PLATOON_JOBS), and print one
//      deterministic result line per cell;
//   3. print the coverage report (uncovered cells + obs counters that
//      never fired) and, with --ledger, persist the newly covered cells so
//      the next invocation fuzzes fresh ground.
//
// Everything on stdout is byte-deterministic in (descriptions, --seed,
// --budget); banners and progress go to stderr. Exit codes: 0 = ran (or
// validated) fine, 2 = bad usage / invalid description.
//
// Usage:
//   scenfuzz [--space FILE] [--ledger FILE] [--budget N] [--seed N]
//            [--smoke] [--report-json FILE]
//   scenfuzz --validate FILE...
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "eval/harness.hpp"
#include "obs/counters.hpp"
#include "obs/export.hpp"
#include "scen/coverage.hpp"
#include "scen/generator.hpp"
#include "scen/schema.hpp"

namespace pc = platoon::core;
namespace pe = platoon::eval;
namespace po = platoon::obs;
namespace ps = platoon::scen;

namespace {

/// Default directory of the committed descriptions; overridable so CI and
/// installed builds can relocate them.
std::string scenario_dir() {
    if (const char* env = std::getenv("PLATOON_SCENARIO_DIR");
        env != nullptr && *env != '\0')
        return env;
    return PLATOON_SCENARIO_DIR;
}

int usage(std::ostream& os, int code) {
    os << "usage: scenfuzz [--space FILE] [--ledger FILE] [--budget N]\n"
          "                [--seed N] [--smoke] [--report-json FILE]\n"
          "       scenfuzz --validate FILE...\n"
          "\n"
          "Runs never-covered attack|defense|fault cells of the scenario\n"
          "product space, deterministically in (--seed, --budget) and\n"
          "bit-identically at any PLATOON_JOBS. --validate only compiles\n"
          "the given descriptions and reports diagnostics.\n";
    return code;
}

int validate(const std::vector<std::string>& files) {
    bool ok = true;
    for (const std::string& file : files) {
        std::string error;
        const std::optional<ps::Compiled> compiled =
            ps::compile_file(file, &error);
        if (compiled) {
            std::cout << file << ": OK (" << compiled->cells.size()
                      << " cells, " << ps::coverage_keys(compiled->cells).size()
                      << " coverage keys)\n";
        } else {
            std::cout << file << ": ERROR: " << error << "\n";
            ok = false;
        }
    }
    return ok ? 0 : 2;
}

/// The descriptions whose cells run on every CI bench pass: anything they
/// enumerate is covered without scenfuzz lifting a finger.
const char* kBenchDescriptions[] = {"table2_threats", "table3_mitigations",
                                    "table_faults"};

}  // namespace

int main(int argc, char** argv) {
    std::string space_path = scenario_dir() + "/fuzz_space.json";
    std::string ledger_path;
    std::string report_json_path;
    std::size_t budget = 4;
    std::uint64_t seed = 1;
    bool validate_mode = false;
    std::vector<std::string> validate_files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) return nullptr;
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
        if (arg == "--validate") {
            validate_mode = true;
        } else if (validate_mode) {
            validate_files.push_back(arg);
        } else if (arg == "--space") {
            const char* v = next();
            if (v == nullptr) return usage(std::cerr, 2);
            space_path = v;
        } else if (arg == "--ledger") {
            const char* v = next();
            if (v == nullptr) return usage(std::cerr, 2);
            ledger_path = v;
        } else if (arg == "--report-json") {
            const char* v = next();
            if (v == nullptr) return usage(std::cerr, 2);
            report_json_path = v;
        } else if (arg == "--budget") {
            const char* v = next();
            if (v == nullptr) return usage(std::cerr, 2);
            budget = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
        } else if (arg == "--seed") {
            const char* v = next();
            if (v == nullptr) return usage(std::cerr, 2);
            seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--smoke") {
            budget = 2;
        } else {
            std::cerr << "scenfuzz: unknown argument '" << arg << "'\n";
            return usage(std::cerr, 2);
        }
    }

    if (validate_mode) {
        if (validate_files.empty()) return usage(std::cerr, 2);
        return validate(validate_files);
    }

    // ------------------------------------------------------------------
    // Coverage state: the space universe, minus bench-covered cells, minus
    // whatever a previous ledger already ran.
    std::string error;
    const std::optional<ps::Compiled> space =
        ps::compile_file(space_path, &error);
    if (!space) {
        std::cerr << "scenfuzz: " << error << "\n";
        return 2;
    }

    ps::Coverage coverage;
    coverage.add_space(space->cells);
    for (const char* name : kBenchDescriptions) {
        const std::string path = scenario_dir() + "/" + name + ".json";
        const std::optional<ps::Compiled> bench =
            ps::compile_file(path, &error);
        if (!bench) {
            std::cerr << "scenfuzz: " << error << "\n";
            return 2;
        }
        coverage.mark_covered(bench->cells);
    }
    if (!ledger_path.empty() &&
        !coverage.merge_ledger_file(ledger_path, &error)) {
        std::cerr << "scenfuzz: " << error << "\n";
        return 2;
    }

    const std::set<std::string> uncovered_keys = [&coverage] {
        const std::vector<std::string> keys = coverage.uncovered();
        return std::set<std::string>(keys.begin(), keys.end());
    }();

    // The uncovered slice of the space, in enumeration order (the first
    // cell of each still-uncovered key represents it).
    std::vector<ps::CompiledCell> uncovered_cells;
    std::set<std::string> taken;
    for (const ps::CompiledCell& cell : space->cells) {
        if (!cell.with_attack) continue;
        const std::string key = cell.coverage_key();
        if (uncovered_keys.count(key) != 0 && taken.insert(key).second)
            uncovered_cells.push_back(cell);
    }

    const unsigned jobs = pc::default_jobs();
    std::cerr << "scenfuzz: space " << coverage.space_size() << " cells, "
              << uncovered_cells.size() << " uncovered, budget " << budget
              << ", seed " << seed << ", " << jobs << " worker thread(s)\n";

    po::set_enabled(true);
    po::reset_counters();

    const std::vector<ps::CompiledCell> picked =
        ps::sample_cells(uncovered_cells, budget, seed);
    std::vector<pe::EvalCell> grid;
    grid.reserve(picked.size());
    for (const ps::CompiledCell& cell : picked)
        grid.push_back({cell.config, cell.attack, cell.with_attack,
                        cell.seeds});
    const std::vector<pc::MetricMap> results = pe::run_eval_grid(grid, jobs);

    for (std::size_t i = 0; i < picked.size(); ++i) {
        const ps::CompiledCell& cell = picked[i];
        const pc::MetricMap& m = results[i];
        std::cout << "ran " << cell.coverage_key() << " seeds=" << cell.seeds
                  << " spacing_rms_m="
                  << pc::Table::num(pe::metric(m, "spacing_rms_m", 0.0), 3)
                  << " pdr=" << pc::Table::num(pe::metric(m, "pdr", 0.0), 3)
                  << " collisions="
                  << pc::Table::num(pe::metric(m, "collisions", 0.0), 0)
                  << "\n";
        coverage.mark_covered_key(cell.coverage_key());
    }

    coverage.print_report(std::cout, po::counter_snapshot());

    if (!ledger_path.empty()) {
        if (po::write_json_file(ledger_path, coverage.ledger_json())) {
            std::cerr << "scenfuzz: wrote ledger " << ledger_path << "\n";
        } else {
            std::cerr << "scenfuzz: FAILED to write ledger " << ledger_path
                      << "\n";
            return 2;
        }
    }
    if (!report_json_path.empty()) {
        if (!po::write_json_file(
                report_json_path,
                coverage.report_json(po::counter_snapshot()))) {
            std::cerr << "scenfuzz: FAILED to write report "
                      << report_json_path << "\n";
            return 2;
        }
        std::cerr << "scenfuzz: wrote report " << report_json_path << "\n";
    }
    return 0;
}
