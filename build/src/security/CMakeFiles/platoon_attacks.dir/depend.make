# Empty dependencies file for platoon_attacks.
# This may be replaced when dependencies are built.
