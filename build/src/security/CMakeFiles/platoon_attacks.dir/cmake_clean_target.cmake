file(REMOVE_RECURSE
  "libplatoon_attacks.a"
)
