file(REMOVE_RECURSE
  "CMakeFiles/platoon_attacks.dir/attacks/attack.cpp.o"
  "CMakeFiles/platoon_attacks.dir/attacks/attack.cpp.o.d"
  "CMakeFiles/platoon_attacks.dir/attacks/dos.cpp.o"
  "CMakeFiles/platoon_attacks.dir/attacks/dos.cpp.o.d"
  "CMakeFiles/platoon_attacks.dir/attacks/eavesdrop.cpp.o"
  "CMakeFiles/platoon_attacks.dir/attacks/eavesdrop.cpp.o.d"
  "CMakeFiles/platoon_attacks.dir/attacks/fake_maneuver.cpp.o"
  "CMakeFiles/platoon_attacks.dir/attacks/fake_maneuver.cpp.o.d"
  "CMakeFiles/platoon_attacks.dir/attacks/gps_spoof.cpp.o"
  "CMakeFiles/platoon_attacks.dir/attacks/gps_spoof.cpp.o.d"
  "CMakeFiles/platoon_attacks.dir/attacks/impersonation.cpp.o"
  "CMakeFiles/platoon_attacks.dir/attacks/impersonation.cpp.o.d"
  "CMakeFiles/platoon_attacks.dir/attacks/jamming.cpp.o"
  "CMakeFiles/platoon_attacks.dir/attacks/jamming.cpp.o.d"
  "CMakeFiles/platoon_attacks.dir/attacks/malware.cpp.o"
  "CMakeFiles/platoon_attacks.dir/attacks/malware.cpp.o.d"
  "CMakeFiles/platoon_attacks.dir/attacks/replay.cpp.o"
  "CMakeFiles/platoon_attacks.dir/attacks/replay.cpp.o.d"
  "CMakeFiles/platoon_attacks.dir/attacks/rogue_rsu.cpp.o"
  "CMakeFiles/platoon_attacks.dir/attacks/rogue_rsu.cpp.o.d"
  "CMakeFiles/platoon_attacks.dir/attacks/sensor_spoof.cpp.o"
  "CMakeFiles/platoon_attacks.dir/attacks/sensor_spoof.cpp.o.d"
  "CMakeFiles/platoon_attacks.dir/attacks/sybil.cpp.o"
  "CMakeFiles/platoon_attacks.dir/attacks/sybil.cpp.o.d"
  "libplatoon_attacks.a"
  "libplatoon_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platoon_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
