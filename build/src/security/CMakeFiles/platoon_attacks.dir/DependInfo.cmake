
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/attacks/attack.cpp" "src/security/CMakeFiles/platoon_attacks.dir/attacks/attack.cpp.o" "gcc" "src/security/CMakeFiles/platoon_attacks.dir/attacks/attack.cpp.o.d"
  "/root/repo/src/security/attacks/dos.cpp" "src/security/CMakeFiles/platoon_attacks.dir/attacks/dos.cpp.o" "gcc" "src/security/CMakeFiles/platoon_attacks.dir/attacks/dos.cpp.o.d"
  "/root/repo/src/security/attacks/eavesdrop.cpp" "src/security/CMakeFiles/platoon_attacks.dir/attacks/eavesdrop.cpp.o" "gcc" "src/security/CMakeFiles/platoon_attacks.dir/attacks/eavesdrop.cpp.o.d"
  "/root/repo/src/security/attacks/fake_maneuver.cpp" "src/security/CMakeFiles/platoon_attacks.dir/attacks/fake_maneuver.cpp.o" "gcc" "src/security/CMakeFiles/platoon_attacks.dir/attacks/fake_maneuver.cpp.o.d"
  "/root/repo/src/security/attacks/gps_spoof.cpp" "src/security/CMakeFiles/platoon_attacks.dir/attacks/gps_spoof.cpp.o" "gcc" "src/security/CMakeFiles/platoon_attacks.dir/attacks/gps_spoof.cpp.o.d"
  "/root/repo/src/security/attacks/impersonation.cpp" "src/security/CMakeFiles/platoon_attacks.dir/attacks/impersonation.cpp.o" "gcc" "src/security/CMakeFiles/platoon_attacks.dir/attacks/impersonation.cpp.o.d"
  "/root/repo/src/security/attacks/jamming.cpp" "src/security/CMakeFiles/platoon_attacks.dir/attacks/jamming.cpp.o" "gcc" "src/security/CMakeFiles/platoon_attacks.dir/attacks/jamming.cpp.o.d"
  "/root/repo/src/security/attacks/malware.cpp" "src/security/CMakeFiles/platoon_attacks.dir/attacks/malware.cpp.o" "gcc" "src/security/CMakeFiles/platoon_attacks.dir/attacks/malware.cpp.o.d"
  "/root/repo/src/security/attacks/replay.cpp" "src/security/CMakeFiles/platoon_attacks.dir/attacks/replay.cpp.o" "gcc" "src/security/CMakeFiles/platoon_attacks.dir/attacks/replay.cpp.o.d"
  "/root/repo/src/security/attacks/rogue_rsu.cpp" "src/security/CMakeFiles/platoon_attacks.dir/attacks/rogue_rsu.cpp.o" "gcc" "src/security/CMakeFiles/platoon_attacks.dir/attacks/rogue_rsu.cpp.o.d"
  "/root/repo/src/security/attacks/sensor_spoof.cpp" "src/security/CMakeFiles/platoon_attacks.dir/attacks/sensor_spoof.cpp.o" "gcc" "src/security/CMakeFiles/platoon_attacks.dir/attacks/sensor_spoof.cpp.o.d"
  "/root/repo/src/security/attacks/sybil.cpp" "src/security/CMakeFiles/platoon_attacks.dir/attacks/sybil.cpp.o" "gcc" "src/security/CMakeFiles/platoon_attacks.dir/attacks/sybil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/platoon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/platoon_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/platoon_control.dir/DependInfo.cmake"
  "/root/repo/build/src/rsu/CMakeFiles/platoon_rsu.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/platoon_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/platoon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/platoon_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/platoon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
