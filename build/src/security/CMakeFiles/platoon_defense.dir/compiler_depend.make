# Empty compiler generated dependencies file for platoon_defense.
# This may be replaced when dependencies are built.
