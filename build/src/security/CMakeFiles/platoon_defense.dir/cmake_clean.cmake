file(REMOVE_RECURSE
  "CMakeFiles/platoon_defense.dir/defense/hybrid_comms.cpp.o"
  "CMakeFiles/platoon_defense.dir/defense/hybrid_comms.cpp.o.d"
  "CMakeFiles/platoon_defense.dir/defense/onboard.cpp.o"
  "CMakeFiles/platoon_defense.dir/defense/onboard.cpp.o.d"
  "CMakeFiles/platoon_defense.dir/defense/policy.cpp.o"
  "CMakeFiles/platoon_defense.dir/defense/policy.cpp.o.d"
  "CMakeFiles/platoon_defense.dir/defense/trust.cpp.o"
  "CMakeFiles/platoon_defense.dir/defense/trust.cpp.o.d"
  "CMakeFiles/platoon_defense.dir/defense/vpd_ada.cpp.o"
  "CMakeFiles/platoon_defense.dir/defense/vpd_ada.cpp.o.d"
  "libplatoon_defense.a"
  "libplatoon_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platoon_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
