file(REMOVE_RECURSE
  "libplatoon_defense.a"
)
