
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/defense/hybrid_comms.cpp" "src/security/CMakeFiles/platoon_defense.dir/defense/hybrid_comms.cpp.o" "gcc" "src/security/CMakeFiles/platoon_defense.dir/defense/hybrid_comms.cpp.o.d"
  "/root/repo/src/security/defense/onboard.cpp" "src/security/CMakeFiles/platoon_defense.dir/defense/onboard.cpp.o" "gcc" "src/security/CMakeFiles/platoon_defense.dir/defense/onboard.cpp.o.d"
  "/root/repo/src/security/defense/policy.cpp" "src/security/CMakeFiles/platoon_defense.dir/defense/policy.cpp.o" "gcc" "src/security/CMakeFiles/platoon_defense.dir/defense/policy.cpp.o.d"
  "/root/repo/src/security/defense/trust.cpp" "src/security/CMakeFiles/platoon_defense.dir/defense/trust.cpp.o" "gcc" "src/security/CMakeFiles/platoon_defense.dir/defense/trust.cpp.o.d"
  "/root/repo/src/security/defense/vpd_ada.cpp" "src/security/CMakeFiles/platoon_defense.dir/defense/vpd_ada.cpp.o" "gcc" "src/security/CMakeFiles/platoon_defense.dir/defense/vpd_ada.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/platoon_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/platoon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/platoon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
