# Empty compiler generated dependencies file for platoon_sim.
# This may be replaced when dependencies are built.
