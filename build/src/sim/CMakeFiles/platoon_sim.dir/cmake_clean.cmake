file(REMOVE_RECURSE
  "CMakeFiles/platoon_sim.dir/random.cpp.o"
  "CMakeFiles/platoon_sim.dir/random.cpp.o.d"
  "CMakeFiles/platoon_sim.dir/scheduler.cpp.o"
  "CMakeFiles/platoon_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/platoon_sim.dir/trace.cpp.o"
  "CMakeFiles/platoon_sim.dir/trace.cpp.o.d"
  "libplatoon_sim.a"
  "libplatoon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platoon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
