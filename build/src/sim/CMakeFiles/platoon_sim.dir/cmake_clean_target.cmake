file(REMOVE_RECURSE
  "libplatoon_sim.a"
)
