file(REMOVE_RECURSE
  "libplatoon_phys.a"
)
