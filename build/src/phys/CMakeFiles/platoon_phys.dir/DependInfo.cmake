
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phys/fuel.cpp" "src/phys/CMakeFiles/platoon_phys.dir/fuel.cpp.o" "gcc" "src/phys/CMakeFiles/platoon_phys.dir/fuel.cpp.o.d"
  "/root/repo/src/phys/sensors.cpp" "src/phys/CMakeFiles/platoon_phys.dir/sensors.cpp.o" "gcc" "src/phys/CMakeFiles/platoon_phys.dir/sensors.cpp.o.d"
  "/root/repo/src/phys/vehicle_dynamics.cpp" "src/phys/CMakeFiles/platoon_phys.dir/vehicle_dynamics.cpp.o" "gcc" "src/phys/CMakeFiles/platoon_phys.dir/vehicle_dynamics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/platoon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
