# Empty compiler generated dependencies file for platoon_phys.
# This may be replaced when dependencies are built.
