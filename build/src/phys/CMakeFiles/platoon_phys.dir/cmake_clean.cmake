file(REMOVE_RECURSE
  "CMakeFiles/platoon_phys.dir/fuel.cpp.o"
  "CMakeFiles/platoon_phys.dir/fuel.cpp.o.d"
  "CMakeFiles/platoon_phys.dir/sensors.cpp.o"
  "CMakeFiles/platoon_phys.dir/sensors.cpp.o.d"
  "CMakeFiles/platoon_phys.dir/vehicle_dynamics.cpp.o"
  "CMakeFiles/platoon_phys.dir/vehicle_dynamics.cpp.o.d"
  "libplatoon_phys.a"
  "libplatoon_phys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platoon_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
