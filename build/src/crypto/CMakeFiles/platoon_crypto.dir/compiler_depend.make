# Empty compiler generated dependencies file for platoon_crypto.
# This may be replaced when dependencies are built.
