
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bytes.cpp" "src/crypto/CMakeFiles/platoon_crypto.dir/bytes.cpp.o" "gcc" "src/crypto/CMakeFiles/platoon_crypto.dir/bytes.cpp.o.d"
  "/root/repo/src/crypto/cert.cpp" "src/crypto/CMakeFiles/platoon_crypto.dir/cert.cpp.o" "gcc" "src/crypto/CMakeFiles/platoon_crypto.dir/cert.cpp.o.d"
  "/root/repo/src/crypto/chacha20.cpp" "src/crypto/CMakeFiles/platoon_crypto.dir/chacha20.cpp.o" "gcc" "src/crypto/CMakeFiles/platoon_crypto.dir/chacha20.cpp.o.d"
  "/root/repo/src/crypto/eddsa.cpp" "src/crypto/CMakeFiles/platoon_crypto.dir/eddsa.cpp.o" "gcc" "src/crypto/CMakeFiles/platoon_crypto.dir/eddsa.cpp.o.d"
  "/root/repo/src/crypto/fading_key_agreement.cpp" "src/crypto/CMakeFiles/platoon_crypto.dir/fading_key_agreement.cpp.o" "gcc" "src/crypto/CMakeFiles/platoon_crypto.dir/fading_key_agreement.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/platoon_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/platoon_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/secured_message.cpp" "src/crypto/CMakeFiles/platoon_crypto.dir/secured_message.cpp.o" "gcc" "src/crypto/CMakeFiles/platoon_crypto.dir/secured_message.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/platoon_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/platoon_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/u256.cpp" "src/crypto/CMakeFiles/platoon_crypto.dir/u256.cpp.o" "gcc" "src/crypto/CMakeFiles/platoon_crypto.dir/u256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/platoon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
