file(REMOVE_RECURSE
  "CMakeFiles/platoon_crypto.dir/bytes.cpp.o"
  "CMakeFiles/platoon_crypto.dir/bytes.cpp.o.d"
  "CMakeFiles/platoon_crypto.dir/cert.cpp.o"
  "CMakeFiles/platoon_crypto.dir/cert.cpp.o.d"
  "CMakeFiles/platoon_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/platoon_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/platoon_crypto.dir/eddsa.cpp.o"
  "CMakeFiles/platoon_crypto.dir/eddsa.cpp.o.d"
  "CMakeFiles/platoon_crypto.dir/fading_key_agreement.cpp.o"
  "CMakeFiles/platoon_crypto.dir/fading_key_agreement.cpp.o.d"
  "CMakeFiles/platoon_crypto.dir/hmac.cpp.o"
  "CMakeFiles/platoon_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/platoon_crypto.dir/secured_message.cpp.o"
  "CMakeFiles/platoon_crypto.dir/secured_message.cpp.o.d"
  "CMakeFiles/platoon_crypto.dir/sha256.cpp.o"
  "CMakeFiles/platoon_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/platoon_crypto.dir/u256.cpp.o"
  "CMakeFiles/platoon_crypto.dir/u256.cpp.o.d"
  "libplatoon_crypto.a"
  "libplatoon_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platoon_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
