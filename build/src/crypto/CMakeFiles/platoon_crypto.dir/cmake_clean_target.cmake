file(REMOVE_RECURSE
  "libplatoon_crypto.a"
)
