file(REMOVE_RECURSE
  "libplatoon_core.a"
)
