file(REMOVE_RECURSE
  "CMakeFiles/platoon_core.dir/experiment.cpp.o"
  "CMakeFiles/platoon_core.dir/experiment.cpp.o.d"
  "CMakeFiles/platoon_core.dir/metrics.cpp.o"
  "CMakeFiles/platoon_core.dir/metrics.cpp.o.d"
  "CMakeFiles/platoon_core.dir/report.cpp.o"
  "CMakeFiles/platoon_core.dir/report.cpp.o.d"
  "CMakeFiles/platoon_core.dir/risk.cpp.o"
  "CMakeFiles/platoon_core.dir/risk.cpp.o.d"
  "CMakeFiles/platoon_core.dir/scenario.cpp.o"
  "CMakeFiles/platoon_core.dir/scenario.cpp.o.d"
  "CMakeFiles/platoon_core.dir/taxonomy.cpp.o"
  "CMakeFiles/platoon_core.dir/taxonomy.cpp.o.d"
  "CMakeFiles/platoon_core.dir/vehicle.cpp.o"
  "CMakeFiles/platoon_core.dir/vehicle.cpp.o.d"
  "libplatoon_core.a"
  "libplatoon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platoon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
