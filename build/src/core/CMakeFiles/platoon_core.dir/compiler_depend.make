# Empty compiler generated dependencies file for platoon_core.
# This may be replaced when dependencies are built.
