file(REMOVE_RECURSE
  "libplatoon_net.a"
)
