# Empty dependencies file for platoon_net.
# This may be replaced when dependencies are built.
