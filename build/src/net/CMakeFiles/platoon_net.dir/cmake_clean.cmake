file(REMOVE_RECURSE
  "CMakeFiles/platoon_net.dir/channel.cpp.o"
  "CMakeFiles/platoon_net.dir/channel.cpp.o.d"
  "CMakeFiles/platoon_net.dir/message.cpp.o"
  "CMakeFiles/platoon_net.dir/message.cpp.o.d"
  "CMakeFiles/platoon_net.dir/network.cpp.o"
  "CMakeFiles/platoon_net.dir/network.cpp.o.d"
  "libplatoon_net.a"
  "libplatoon_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platoon_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
