file(REMOVE_RECURSE
  "CMakeFiles/platoon_control.dir/controller.cpp.o"
  "CMakeFiles/platoon_control.dir/controller.cpp.o.d"
  "CMakeFiles/platoon_control.dir/fallback.cpp.o"
  "CMakeFiles/platoon_control.dir/fallback.cpp.o.d"
  "CMakeFiles/platoon_control.dir/platoon.cpp.o"
  "CMakeFiles/platoon_control.dir/platoon.cpp.o.d"
  "libplatoon_control.a"
  "libplatoon_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platoon_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
