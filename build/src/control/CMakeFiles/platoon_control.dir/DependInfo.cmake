
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/controller.cpp" "src/control/CMakeFiles/platoon_control.dir/controller.cpp.o" "gcc" "src/control/CMakeFiles/platoon_control.dir/controller.cpp.o.d"
  "/root/repo/src/control/fallback.cpp" "src/control/CMakeFiles/platoon_control.dir/fallback.cpp.o" "gcc" "src/control/CMakeFiles/platoon_control.dir/fallback.cpp.o.d"
  "/root/repo/src/control/platoon.cpp" "src/control/CMakeFiles/platoon_control.dir/platoon.cpp.o" "gcc" "src/control/CMakeFiles/platoon_control.dir/platoon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/platoon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/platoon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/platoon_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
