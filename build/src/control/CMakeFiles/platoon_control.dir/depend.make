# Empty dependencies file for platoon_control.
# This may be replaced when dependencies are built.
