file(REMOVE_RECURSE
  "libplatoon_control.a"
)
