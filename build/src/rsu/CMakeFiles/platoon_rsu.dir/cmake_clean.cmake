file(REMOVE_RECURSE
  "CMakeFiles/platoon_rsu.dir/rsu.cpp.o"
  "CMakeFiles/platoon_rsu.dir/rsu.cpp.o.d"
  "CMakeFiles/platoon_rsu.dir/trusted_authority.cpp.o"
  "CMakeFiles/platoon_rsu.dir/trusted_authority.cpp.o.d"
  "libplatoon_rsu.a"
  "libplatoon_rsu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platoon_rsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
