# Empty dependencies file for platoon_rsu.
# This may be replaced when dependencies are built.
