file(REMOVE_RECURSE
  "libplatoon_rsu.a"
)
