# Empty compiler generated dependencies file for secure_join_under_dos.
# This may be replaced when dependencies are built.
