file(REMOVE_RECURSE
  "CMakeFiles/secure_join_under_dos.dir/secure_join_under_dos.cpp.o"
  "CMakeFiles/secure_join_under_dos.dir/secure_join_under_dos.cpp.o.d"
  "secure_join_under_dos"
  "secure_join_under_dos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_join_under_dos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
