file(REMOVE_RECURSE
  "CMakeFiles/defense_in_depth.dir/defense_in_depth.cpp.o"
  "CMakeFiles/defense_in_depth.dir/defense_in_depth.cpp.o.d"
  "defense_in_depth"
  "defense_in_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_in_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
