file(REMOVE_RECURSE
  "CMakeFiles/eavesdropper_privacy.dir/eavesdropper_privacy.cpp.o"
  "CMakeFiles/eavesdropper_privacy.dir/eavesdropper_privacy.cpp.o.d"
  "eavesdropper_privacy"
  "eavesdropper_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eavesdropper_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
