# Empty compiler generated dependencies file for eavesdropper_privacy.
# This may be replaced when dependencies are built.
