# Empty dependencies file for hybrid_vlc_jamming.
# This may be replaced when dependencies are built.
