
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hybrid_vlc_jamming.cpp" "examples/CMakeFiles/hybrid_vlc_jamming.dir/hybrid_vlc_jamming.cpp.o" "gcc" "examples/CMakeFiles/hybrid_vlc_jamming.dir/hybrid_vlc_jamming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/platoon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/platoon_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/platoon_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/platoon_control.dir/DependInfo.cmake"
  "/root/repo/build/src/rsu/CMakeFiles/platoon_rsu.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/platoon_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/platoon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/platoon_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/platoon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
