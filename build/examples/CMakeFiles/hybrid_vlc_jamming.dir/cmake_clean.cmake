file(REMOVE_RECURSE
  "CMakeFiles/hybrid_vlc_jamming.dir/hybrid_vlc_jamming.cpp.o"
  "CMakeFiles/hybrid_vlc_jamming.dir/hybrid_vlc_jamming.cpp.o.d"
  "hybrid_vlc_jamming"
  "hybrid_vlc_jamming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_vlc_jamming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
