file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_defense.dir/bench_ablation_defense.cpp.o"
  "CMakeFiles/bench_ablation_defense.dir/bench_ablation_defense.cpp.o.d"
  "bench_ablation_defense"
  "bench_ablation_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
