# Empty dependencies file for bench_table3_mitigations.
# This may be replaced when dependencies are built.
