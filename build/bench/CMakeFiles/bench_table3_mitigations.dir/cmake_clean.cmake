file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_mitigations.dir/bench_table3_mitigations.cpp.o"
  "CMakeFiles/bench_table3_mitigations.dir/bench_table3_mitigations.cpp.o.d"
  "bench_table3_mitigations"
  "bench_table3_mitigations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_mitigations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
