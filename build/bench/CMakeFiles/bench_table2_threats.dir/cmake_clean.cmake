file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_threats.dir/bench_table2_threats.cpp.o"
  "CMakeFiles/bench_table2_threats.dir/bench_table2_threats.cpp.o.d"
  "bench_table2_threats"
  "bench_table2_threats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_threats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
