file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sweeps.dir/bench_ablation_sweeps.cpp.o"
  "CMakeFiles/bench_ablation_sweeps.dir/bench_ablation_sweeps.cpp.o.d"
  "bench_ablation_sweeps"
  "bench_ablation_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
