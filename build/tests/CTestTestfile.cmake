# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_sim_random[1]_include.cmake")
include("/root/repo/build/tests/test_phys[1]_include.cmake")
include("/root/repo/build/tests/test_crypto_primitives[1]_include.cmake")
include("/root/repo/build/tests/test_crypto_bignum_curve[1]_include.cmake")
include("/root/repo/build/tests/test_crypto_cert_envelope[1]_include.cmake")
include("/root/repo/build/tests/test_crypto_fading_ka[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_controllers[1]_include.cmake")
include("/root/repo/build/tests/test_defense_units[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_attack_defense[1]_include.cmake")
include("/root/repo/build/tests/test_rsu[1]_include.cmake")
include("/root/repo/build/tests/test_trust_risk[1]_include.cmake")
include("/root/repo/build/tests/test_metrics_report[1]_include.cmake")
include("/root/repo/build/tests/test_eddsa_edge[1]_include.cmake")
include("/root/repo/build/tests/test_network_advanced[1]_include.cmake")
include("/root/repo/build/tests/test_rogue_rsu[1]_include.cmake")
include("/root/repo/build/tests/test_robustness_sweeps[1]_include.cmake")
