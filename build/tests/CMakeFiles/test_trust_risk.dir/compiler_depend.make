# Empty compiler generated dependencies file for test_trust_risk.
# This may be replaced when dependencies are built.
