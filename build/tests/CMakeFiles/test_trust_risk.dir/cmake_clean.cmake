file(REMOVE_RECURSE
  "CMakeFiles/test_trust_risk.dir/security/test_trust_risk.cpp.o"
  "CMakeFiles/test_trust_risk.dir/security/test_trust_risk.cpp.o.d"
  "test_trust_risk"
  "test_trust_risk.pdb"
  "test_trust_risk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trust_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
