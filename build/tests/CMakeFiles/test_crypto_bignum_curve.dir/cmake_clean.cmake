file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_bignum_curve.dir/crypto/test_bignum_curve.cpp.o"
  "CMakeFiles/test_crypto_bignum_curve.dir/crypto/test_bignum_curve.cpp.o.d"
  "test_crypto_bignum_curve"
  "test_crypto_bignum_curve.pdb"
  "test_crypto_bignum_curve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_bignum_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
