# Empty compiler generated dependencies file for test_crypto_bignum_curve.
# This may be replaced when dependencies are built.
