file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_primitives.dir/crypto/test_primitives.cpp.o"
  "CMakeFiles/test_crypto_primitives.dir/crypto/test_primitives.cpp.o.d"
  "test_crypto_primitives"
  "test_crypto_primitives.pdb"
  "test_crypto_primitives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
