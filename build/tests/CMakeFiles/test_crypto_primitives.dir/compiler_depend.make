# Empty compiler generated dependencies file for test_crypto_primitives.
# This may be replaced when dependencies are built.
