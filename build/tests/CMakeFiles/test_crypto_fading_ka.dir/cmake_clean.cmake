file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_fading_ka.dir/crypto/test_fading_ka.cpp.o"
  "CMakeFiles/test_crypto_fading_ka.dir/crypto/test_fading_ka.cpp.o.d"
  "test_crypto_fading_ka"
  "test_crypto_fading_ka.pdb"
  "test_crypto_fading_ka[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_fading_ka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
