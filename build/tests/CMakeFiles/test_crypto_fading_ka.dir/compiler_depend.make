# Empty compiler generated dependencies file for test_crypto_fading_ka.
# This may be replaced when dependencies are built.
