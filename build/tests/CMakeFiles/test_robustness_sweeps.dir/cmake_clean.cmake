file(REMOVE_RECURSE
  "CMakeFiles/test_robustness_sweeps.dir/core/test_robustness_sweeps.cpp.o"
  "CMakeFiles/test_robustness_sweeps.dir/core/test_robustness_sweeps.cpp.o.d"
  "test_robustness_sweeps"
  "test_robustness_sweeps.pdb"
  "test_robustness_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_robustness_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
