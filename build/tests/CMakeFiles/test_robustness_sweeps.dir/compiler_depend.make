# Empty compiler generated dependencies file for test_robustness_sweeps.
# This may be replaced when dependencies are built.
