file(REMOVE_RECURSE
  "CMakeFiles/test_rogue_rsu.dir/security/test_rogue_rsu.cpp.o"
  "CMakeFiles/test_rogue_rsu.dir/security/test_rogue_rsu.cpp.o.d"
  "test_rogue_rsu"
  "test_rogue_rsu.pdb"
  "test_rogue_rsu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rogue_rsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
