# Empty dependencies file for test_rogue_rsu.
# This may be replaced when dependencies are built.
