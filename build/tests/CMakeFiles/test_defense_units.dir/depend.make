# Empty dependencies file for test_defense_units.
# This may be replaced when dependencies are built.
