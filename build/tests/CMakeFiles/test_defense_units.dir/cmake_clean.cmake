file(REMOVE_RECURSE
  "CMakeFiles/test_defense_units.dir/security/test_defense_units.cpp.o"
  "CMakeFiles/test_defense_units.dir/security/test_defense_units.cpp.o.d"
  "test_defense_units"
  "test_defense_units.pdb"
  "test_defense_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_defense_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
