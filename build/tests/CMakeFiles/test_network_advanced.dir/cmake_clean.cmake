file(REMOVE_RECURSE
  "CMakeFiles/test_network_advanced.dir/net/test_network_advanced.cpp.o"
  "CMakeFiles/test_network_advanced.dir/net/test_network_advanced.cpp.o.d"
  "test_network_advanced"
  "test_network_advanced.pdb"
  "test_network_advanced[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_advanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
