# Empty dependencies file for test_network_advanced.
# This may be replaced when dependencies are built.
