file(REMOVE_RECURSE
  "CMakeFiles/test_attack_defense.dir/security/test_attack_defense.cpp.o"
  "CMakeFiles/test_attack_defense.dir/security/test_attack_defense.cpp.o.d"
  "test_attack_defense"
  "test_attack_defense.pdb"
  "test_attack_defense[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
