# Empty dependencies file for test_attack_defense.
# This may be replaced when dependencies are built.
