file(REMOVE_RECURSE
  "CMakeFiles/test_rsu.dir/rsu/test_rsu.cpp.o"
  "CMakeFiles/test_rsu.dir/rsu/test_rsu.cpp.o.d"
  "test_rsu"
  "test_rsu.pdb"
  "test_rsu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
