# Empty dependencies file for test_rsu.
# This may be replaced when dependencies are built.
