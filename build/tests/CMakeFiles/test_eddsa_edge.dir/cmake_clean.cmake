file(REMOVE_RECURSE
  "CMakeFiles/test_eddsa_edge.dir/crypto/test_eddsa_edge.cpp.o"
  "CMakeFiles/test_eddsa_edge.dir/crypto/test_eddsa_edge.cpp.o.d"
  "test_eddsa_edge"
  "test_eddsa_edge.pdb"
  "test_eddsa_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eddsa_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
