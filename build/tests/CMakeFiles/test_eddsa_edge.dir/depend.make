# Empty dependencies file for test_eddsa_edge.
# This may be replaced when dependencies are built.
