file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_cert_envelope.dir/crypto/test_cert_envelope.cpp.o"
  "CMakeFiles/test_crypto_cert_envelope.dir/crypto/test_cert_envelope.cpp.o.d"
  "test_crypto_cert_envelope"
  "test_crypto_cert_envelope.pdb"
  "test_crypto_cert_envelope[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_cert_envelope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
