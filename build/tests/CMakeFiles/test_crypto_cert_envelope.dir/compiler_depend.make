# Empty compiler generated dependencies file for test_crypto_cert_envelope.
# This may be replaced when dependencies are built.
