// Defense in depth: a combined assault -- RF jamming + replay injection +
// a DoS join-flood, all at once -- against three security postures:
//
//   open      : bare 802.11p platoon (the paper's status quo),
//   keys-only : signatures + encryption (Table III row 1 alone),
//   hardened  : SecurityPolicy::hardened() -- the full Table III stack
//               (PKI, VPD-ADA, SP-VLC hybrid, sensor fusion, firewall,
//               misbehaviour reporting) plus RSUs along the road.
//
// Usage: ./build/examples/defense_in_depth
#include <cstdio>
#include <iostream>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "security/attacks/dos.hpp"
#include "security/attacks/jamming.hpp"
#include "security/attacks/replay.hpp"

using namespace platoon;

namespace {

struct Outcome {
    core::MetricsSummary summary;
    bool joiner_admitted = false;
};

Outcome run(const security::SecurityPolicy& policy, std::size_t rsus) {
    core::ScenarioConfig config;
    config.seed = 29;
    config.platoon_size = 6;
    config.security = policy;
    config.rsu_count = rsus;
    core::Scenario scenario(config);

    // The barrage. (Attacks must not outlive the scenario: stack order.)
    security::JammingAttack::Params jam;
    jam.window.start_s = 20.0;
    jam.power_dbm = 38.0;
    security::JammingAttack jamming(jam);
    security::ReplayAttack replay;
    security::DosAttack dos;
    jamming.attach(scenario);
    replay.attach(scenario);
    dos.attach(scenario);

    // A legitimate truck tries to join mid-assault.
    core::VehicleConfig joiner;
    joiner.id = sim::NodeId{300};
    joiner.role = control::Role::kFree;
    joiner.platoon_id = 0;
    joiner.security = policy;
    joiner.initial_state.position_m =
        scenario.tail().dynamics().position() - 80.0;
    joiner.initial_state.speed_mps = 25.0;
    joiner.desired_speed_mps = 28.0;
    auto& vehicle = scenario.add_vehicle(joiner);
    scenario.scheduler().schedule_at(30.0, [&] {
        vehicle.request_join(scenario.platoon_id(), scenario.leader().id());
    });

    scenario.run_until(100.0);
    Outcome out;
    out.summary = scenario.summarize();
    out.joiner_admitted = vehicle.role() == control::Role::kMember;
    return out;
}

std::string fmt(double v) { return core::Table::num(v); }

}  // namespace

int main() {
    security::SecurityPolicy keys_only;
    keys_only.auth_mode = crypto::AuthMode::kSignature;
    keys_only.encrypt_payloads = true;

    const auto open = run(security::SecurityPolicy::open(), 0);
    const auto keys = run(keys_only, 0);
    const auto hardened = run(security::SecurityPolicy::hardened(), 4);

    core::print_banner(std::cout,
                       "Combined assault: 38 dBm jammer + replay injector + "
                       "20 req/s DoS flood, t=20..100 s");
    core::Table table({"metric", "open", "keys only", "hardened stack"});
    table.add_row({"spacing RMS error (m)", fmt(open.summary.spacing_rms_m),
                   fmt(keys.summary.spacing_rms_m),
                   fmt(hardened.summary.spacing_rms_m)});
    table.add_row({"CACC availability", fmt(open.summary.cacc_availability),
                   fmt(keys.summary.cacc_availability),
                   fmt(hardened.summary.cacc_availability)});
    table.add_row({"collisions", fmt(open.summary.collisions),
                   fmt(keys.summary.collisions),
                   fmt(hardened.summary.collisions)});
    table.add_row({"fuel, followers (L/100km)",
                   fmt(open.summary.fuel_l_per_100km),
                   fmt(keys.summary.fuel_l_per_100km),
                   fmt(hardened.summary.fuel_l_per_100km)});
    // Note: under the hardened stack the replayed frames never even reach
    // the crypto layer -- the SP-VLC duplicate filter eats re-broadcasts of
    // already-delivered (sender, seq) pairs first.
    table.add_row({"replays rejected by crypto",
                   fmt(static_cast<double>(open.summary.rejected_auth)),
                   fmt(static_cast<double>(keys.summary.rejected_auth)),
                   fmt(static_cast<double>(hardened.summary.rejected_auth))});
    table.add_row({"legitimate joiner admitted",
                   open.joiner_admitted ? "yes" : "NO",
                   keys.joiner_admitted ? "yes" : "NO",
                   hardened.joiner_admitted ? "yes" : "NO"});
    table.print(std::cout);

    std::printf(
        "\nKeys alone stop the replay and the DoS flood but cannot buy back\n"
        "the jammed channel -- the platoon survives *authenticated* and\n"
        "*disbanded*. The hardened stack keeps the formation and the fuel\n"
        "savings through the whole barrage. One honest limitation remains:\n"
        "*new* members cannot join while the RF band is jammed -- the\n"
        "admission handshake needs either RF or optical proximity the\n"
        "approaching truck does not yet have. Joining under active jamming\n"
        "is exactly the kind of open problem the paper's Section VI-B\n"
        "anticipates.\n");
    return 0;
}
