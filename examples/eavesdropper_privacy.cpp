// Eavesdropping & privacy (paper Sections V-C, V-E and III).
//
// A roadside listener records every frame the platoon broadcasts. Three
// configurations show the privacy ladder the paper discusses:
//   1. open beacons                  -> full trajectories, linkable all run;
//   2. + ChaCha20 payload encryption -> nothing decodes;
//   3. + pseudonym rotation          -> plaintext for interop, but identity
//                                       links break every 10 s.
//
// Usage: ./build/examples/eavesdropper_privacy
#include <cstdio>
#include <iostream>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "security/attacks/eavesdrop.hpp"

using namespace platoon;

namespace {

struct Outcome {
    std::uint64_t heard = 0;
    std::uint64_t decoded = 0;
    double longest_track_s = 0.0;
    double tracking_error_m = 0.0;
    double identities = 0.0;
};

Outcome run(bool encrypt, double pseudonym_period) {
    core::ScenarioConfig config;
    config.seed = 23;
    config.platoon_size = 6;
    if (encrypt) {
        config.security.auth_mode = crypto::AuthMode::kGroupMac;
        config.security.encrypt_payloads = true;
    }
    if (pseudonym_period > 0.0) {
        config.security.auth_mode = crypto::AuthMode::kSignature;
        config.security.pseudonym_rotation_s = pseudonym_period;
    }
    core::Scenario scenario(config);

    security::EavesdropAttack::Params params;
    params.mobile = true;  // tails the platoon: best case for the attacker
    security::EavesdropAttack attack(params);
    attack.attach(scenario);
    scenario.run_until(70.0);

    core::MetricMap stats;
    attack.collect(stats);
    Outcome out;
    out.heard = attack.frames_heard();
    out.decoded = attack.beacons_decoded();
    out.longest_track_s = attack.longest_track_s();
    out.tracking_error_m = attack.tracking_error_m();
    out.identities = stats["attack.identities_tracked"];
    return out;
}

}  // namespace

int main() {
    const auto open = run(false, 0.0);
    const auto encrypted = run(true, 0.0);
    const auto pseudonyms = run(false, 10.0);

    core::print_banner(std::cout,
                       "Roadside eavesdropper vs 6-truck platoon, 70 s");
    core::Table table({"attacker's yield", "open", "encrypted",
                       "pseudonyms (10 s)"});
    table.add_row({"frames heard", core::Table::num(double(open.heard)),
                   core::Table::num(double(encrypted.heard)),
                   core::Table::num(double(pseudonyms.heard))});
    table.add_row({"beacons decoded", core::Table::num(double(open.decoded)),
                   core::Table::num(double(encrypted.decoded)),
                   core::Table::num(double(pseudonyms.decoded))});
    table.add_row({"identities tracked", core::Table::num(open.identities),
                   core::Table::num(encrypted.identities),
                   core::Table::num(pseudonyms.identities)});
    table.add_row({"longest linkable trajectory (s)",
                   core::Table::num(open.longest_track_s),
                   core::Table::num(encrypted.longest_track_s),
                   core::Table::num(pseudonyms.longest_track_s)});
    table.add_row({"position reconstruction error (m)",
                   core::Table::num(open.tracking_error_m), "-",
                   core::Table::num(pseudonyms.tracking_error_m)});
    table.print(std::cout);

    std::printf(
        "\nOpen beacons hand the listener metre-accurate trajectories for\n"
        "the whole run -- the 'rest stops and high-value cargo' scenario of\n"
        "Section V-C. Encryption removes the content entirely; pseudonym\n"
        "rotation keeps beacons readable for interoperability but caps how\n"
        "long any identity can be followed.\n");
    return 0;
}
