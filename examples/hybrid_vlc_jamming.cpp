// SP-VLC hybrid communication vs RF jamming (paper Section VI-A.4, [2]).
//
// A high-power mobile jammer drives alongside the platoon and floods the
// 5.9 GHz band. Without the hybrid stack, beaconing dies, every follower
// degrades to radar-only ACC and the formation stretches from 5 m CACC gaps
// to ~32 m ACC gaps -- the "platoon disbands" outcome of Table II. With
// SP-VLC, beacons also hop vehicle-to-vehicle over visible light (leader
// beacons are relayed down the chain), so the CACC never starves.
//
// Usage: ./build/examples/hybrid_vlc_jamming
#include <cstdio>
#include <iostream>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "security/attacks/jamming.hpp"

using namespace platoon;

namespace {

struct Outcome {
    core::MetricsSummary summary;
    double jam_detected_frac = 0.0;
};

Outcome run(bool hybrid) {
    core::ScenarioConfig config;
    config.seed = 9;
    config.platoon_size = 6;
    config.security.hybrid_comms = hybrid;
    core::Scenario scenario(config);

    security::JammingAttack::Params params;
    params.window.start_s = 20.0;
    params.power_dbm = 40.0;
    security::JammingAttack attack(params);
    attack.attach(scenario);

    // Sample the jam detector on one member.
    int samples = 0, jam_flags = 0;
    scenario.scheduler().schedule_every(25.0, 1.0, [&] {
        ++samples;
        if (scenario.vehicle(3).hybrid().rf_jam_suspected(
                scenario.scheduler().now()))
            ++jam_flags;
    });

    scenario.run_until(70.0);
    Outcome out;
    out.summary = scenario.summarize();
    out.jam_detected_frac =
        samples > 0 ? static_cast<double>(jam_flags) / samples : 0.0;
    return out;
}

}  // namespace

int main() {
    const auto rf_only = run(false);
    const auto hybrid = run(true);

    core::print_banner(std::cout,
                       "40 dBm mobile jammer vs 6-truck platoon (t=20 s on)");
    core::Table table({"metric", "802.11p only", "SP-VLC hybrid"});
    table.add_row({"beacon delivery ratio",
                   core::Table::num(rf_only.summary.pdr),
                   core::Table::num(hybrid.summary.pdr)});
    table.add_row({"CACC availability",
                   core::Table::num(rf_only.summary.cacc_availability),
                   core::Table::num(hybrid.summary.cacc_availability)});
    table.add_row({"spacing RMS error (m)",
                   core::Table::num(rf_only.summary.spacing_rms_m),
                   core::Table::num(hybrid.summary.spacing_rms_m)});
    table.add_row({"fuel, followers (L/100km)",
                   core::Table::num(rf_only.summary.fuel_l_per_100km),
                   core::Table::num(hybrid.summary.fuel_l_per_100km)});
    table.add_row({"member flags RF jamming", "-",
                   core::Table::num(100.0 * hybrid.jam_detected_frac) + "%"});
    table.print(std::cout);

    std::printf(
        "\nRF-only: the jammer starves the CSMA medium and the CACC feed;\n"
        "followers fall back to radar ACC and the platooning gains are gone.\n"
        "Hybrid: the optical side-channel (jam-immune, line-of-sight,\n"
        "chain-relayed) keeps the cooperative controller fed; the platoon\n"
        "holds its 5 m formation and even *detects* that RF is being jammed.\n");
    return 0;
}
