// Quickstart: form an 8-truck CACC platoon, drive a braking disturbance,
// print spacing / fuel / network statistics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "core/report.hpp"
#include "core/scenario.hpp"

int main() {
    using namespace platoon;

    core::ScenarioConfig config;
    config.seed = 7;
    config.platoon_size = 8;
    config.controller = control::ControllerType::kCaccPath;
    // Leader brakes 25 -> 20 m/s at t=40 s and recovers at t=60 s.
    config.speed_profile = {{0.0, 25.0}, {40.0, 20.0}, {60.0, 25.0}};

    core::Scenario scenario(config);
    scenario.run_until(100.0);

    const core::MetricsSummary summary = scenario.summarize();

    core::print_banner(std::cout, "8-truck CACC platoon, 100 s highway run");
    core::Table table({"metric", "value", "unit"});
    table.add_row({"spacing RMS error", core::Table::num(summary.spacing_rms_m), "m"});
    table.add_row({"max |spacing error|", core::Table::num(summary.spacing_max_abs_m), "m"});
    table.add_row({"minimum gap", core::Table::num(summary.min_gap_m), "m"});
    table.add_row({"collisions", core::Table::num(summary.collisions), "count"});
    table.add_row({"follower speed stddev", core::Table::num(summary.follower_speed_stddev), "m/s"});
    table.add_row({"CACC availability", core::Table::num(100.0 * summary.cacc_availability), "%"});
    table.add_row({"fuel (followers)", core::Table::num(summary.fuel_l_per_100km), "L/100km"});
    table.add_row({"beacon delivery ratio", core::Table::num(100.0 * summary.pdr), "%"});
    table.add_row({"frames sent", core::Table::num(static_cast<double>(summary.frames_sent)), "count"});
    table.print(std::cout);

    std::printf("\nLeader fuel (no slipstream): %.1f L/100km\n",
                scenario.leader().fuel().litres_per_100km());
    std::printf("Tail fuel   (in slipstream): %.1f L/100km\n",
                scenario.tail().fuel().litres_per_100km());
    return 0;
}
