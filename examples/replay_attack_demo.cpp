// Replay attack demo: an attacker records the leader's beacons and
// re-injects them 3 s stale at twice the beacon rate.
//
//   Run 1: open 802.11p platoon       -> followers oscillate on stale data.
//   Run 2: authenticated + replay guard -> every replayed frame bounces.
//
// Usage: ./build/examples/replay_attack_demo
#include <cstdio>
#include <iostream>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "security/attacks/replay.hpp"

using namespace platoon;

namespace {

core::MetricsSummary run(bool defended, std::uint64_t* replayed) {
    core::ScenarioConfig config;
    config.seed = 3;
    config.platoon_size = 6;
    if (defended) {
        config.security.auth_mode = crypto::AuthMode::kGroupMac;
        // Freshness window + sequence numbers come with the envelope.
    }
    core::Scenario scenario(config);
    security::ReplayAttack attack;
    attack.attach(scenario);
    scenario.run_until(70.0);
    if (replayed != nullptr) *replayed = attack.frames_replayed();
    return scenario.summarize();
}

}  // namespace

int main() {
    std::uint64_t replayed_open = 0, replayed_defended = 0;
    const auto open = run(false, &replayed_open);
    const auto defended = run(true, &replayed_defended);

    core::print_banner(std::cout,
                       "Replay attack on a 6-truck platoon (attack from t=20 s)");
    core::Table table({"metric", "open 802.11p", "group key + replay guard"});
    table.add_row({"frames replayed by attacker",
                   core::Table::num(static_cast<double>(replayed_open)),
                   core::Table::num(static_cast<double>(replayed_defended))});
    table.add_row({"spacing RMS error (m)", core::Table::num(open.spacing_rms_m),
                   core::Table::num(defended.spacing_rms_m)});
    table.add_row({"max |spacing error| (m)",
                   core::Table::num(open.spacing_max_abs_m),
                   core::Table::num(defended.spacing_max_abs_m)});
    table.add_row({"follower speed stddev (m/s)",
                   core::Table::num(open.follower_speed_stddev),
                   core::Table::num(defended.follower_speed_stddev)});
    table.add_row({"collisions", core::Table::num(open.collisions),
                   core::Table::num(defended.collisions)});
    table.add_row({"replayed frames rejected", "0 (accepted!)",
                   core::Table::num(static_cast<double>(
                       defended.rejected_replay + defended.rejected_auth))});
    table.print(std::cout);

    std::printf(
        "\nThe paper's claim (Table II): \"the attacker will make the platoon\n"
        "oscillate as members position themselves on the information they\n"
        "receive\" -- visible as the %.1fx spacing-error blowup in the open\n"
        "run. Timestamps + sequence numbers inside the authenticated envelope\n"
        "neutralise every replayed frame.\n",
        open.spacing_rms_m / defended.spacing_rms_m);
    return 0;
}
