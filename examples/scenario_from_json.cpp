// Scenario-from-JSON: compile a declarative scenario description
// (scenarios/example_replay.json) with the scen compiler and print one
// Table II-style metrics row per compiled cell -- the whole experiment is
// data, not C++.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/scenario_from_json [path/to/description.json]
#include <iostream>
#include <optional>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "eval/harness.hpp"
#include "scen/schema.hpp"

int main(int argc, char** argv) {
    using namespace platoon;

    const std::string path =
        argc > 1 ? argv[1]
                 : std::string(PLATOON_SCENARIO_DIR) + "/example_replay.json";

    std::string error;
    const std::optional<scen::Compiled> compiled =
        scen::compile_file(path, &error);
    if (!compiled) {
        // The compiler's one-diagnostic contract: a JSON path plus an
        // actionable message (try editing the description to see it).
        std::cerr << "scenario_from_json: " << error << "\n";
        return 2;
    }

    std::vector<eval::EvalCell> grid;
    for (const scen::CompiledCell& cell : compiled->cells)
        grid.push_back({cell.config, cell.attack, cell.with_attack,
                        cell.seeds});
    const auto results = eval::run_eval_grid(grid, core::default_jobs());

    core::print_banner(std::cout, compiled->description.title.empty()
                                      ? compiled->description.name
                                      : compiled->description.title);
    core::Table table({"cell", "spacing_rms_m", "min_gap_m", "pdr",
                       "collisions"});
    for (std::size_t i = 0; i < compiled->cells.size(); ++i) {
        const scen::CompiledCell& cell = compiled->cells[i];
        const core::MetricMap& m = results[i];
        std::string label = core::to_string(cell.attack);
        label += cell.with_attack ? " (attacked" : " (clean";
        if (cell.defense != scen::kNoDefense) {
            label += ", ";
            label += scen::defense_name(cell.defense);
        }
        label += ")";
        table.add_row({label,
                       core::Table::num(eval::metric(m, "spacing_rms_m", 0.0)),
                       core::Table::num(eval::metric(m, "min_gap_m", 0.0)),
                       core::Table::num(eval::metric(m, "pdr", 0.0)),
                       core::Table::num(eval::metric(m, "collisions", 0.0))});
    }
    table.print(std::cout);
    return 0;
}
