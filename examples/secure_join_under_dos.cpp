// Join maneuver under a DoS join-flood (paper Section V-D).
//
// A legitimate truck wants to join the platoon at t=25 s while an attacker
// floods the leader with join requests under rotating fake identities.
//
//   Run 1: open admission             -> the pending table clogs; denied.
//   Run 2: signed join requests       -> the flood is discarded before
//                                        admission; the real truck gets in.
//
// Usage: ./build/examples/secure_join_under_dos
#include <cstdio>
#include <iostream>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "security/attacks/dos.hpp"

using namespace platoon;

namespace {

struct Outcome {
    bool joined = false;
    double join_time_s = 0.0;
    std::uint64_t flood_requests = 0;
    std::uint64_t rejected = 0;
    std::size_t members = 0;
};

Outcome run(bool signed_requests) {
    core::ScenarioConfig config;
    config.seed = 17;
    config.platoon_size = 5;
    if (signed_requests)
        config.security.auth_mode = crypto::AuthMode::kSignature;
    core::Scenario scenario(config);

    security::DosAttack attack;
    attack.attach(scenario);

    core::VehicleConfig joiner_config;
    joiner_config.id = sim::NodeId{300};
    joiner_config.role = control::Role::kFree;
    joiner_config.platoon_id = 0;
    joiner_config.security = config.security;
    joiner_config.initial_state.position_m =
        scenario.tail().dynamics().position() - 80.0;
    joiner_config.initial_state.speed_mps = 25.0;
    joiner_config.desired_speed_mps = 28.0;
    auto& joiner = scenario.add_vehicle(joiner_config);

    double joined_at = 0.0;
    scenario.scheduler().schedule_at(25.0, [&] {
        joiner.request_join(scenario.platoon_id(), scenario.leader().id());
    });
    scenario.scheduler().schedule_every(25.1, 0.5, [&] {
        if (joined_at == 0.0 && joiner.role() == control::Role::kMember)
            joined_at = scenario.scheduler().now();
    });

    scenario.run_until(90.0);

    Outcome out;
    out.joined = joiner.role() == control::Role::kMember;
    out.join_time_s = joined_at > 0.0 ? joined_at - 25.0 : 0.0;
    out.flood_requests = attack.requests_sent();
    out.rejected = scenario.leader().counters().rejected_total();
    out.members = scenario.leader().membership()->size();
    return out;
}

}  // namespace

int main() {
    const auto open = run(false);
    const auto defended = run(true);

    core::print_banner(std::cout,
                       "Join-at-tail during a 20 req/s join-flood DoS");
    core::Table table({"metric", "open admission", "signed requests"});
    table.add_row({"attacker join requests",
                   core::Table::num(static_cast<double>(open.flood_requests)),
                   core::Table::num(static_cast<double>(defended.flood_requests))});
    table.add_row({"flood discarded by crypto", "0",
                   core::Table::num(static_cast<double>(defended.rejected))});
    table.add_row({"legitimate truck admitted", open.joined ? "yes" : "NO",
                   defended.joined ? "yes" : "NO"});
    table.add_row({"time to join (s)",
                   open.joined ? core::Table::num(open.join_time_s) : "-",
                   defended.joined ? core::Table::num(defended.join_time_s)
                                   : "-"});
    table.add_row({"platoon size at end",
                   core::Table::num(static_cast<double>(open.members)),
                   core::Table::num(static_cast<double>(defended.members))});
    table.print(std::cout);

    std::printf(
        "\nThe leader's pending-admission table is bounded (3 slots, 15 s\n"
        "timeout). Unsigned ghost requests occupy every slot indefinitely;\n"
        "requiring certified signatures on join requests (fake identities\n"
        "cannot produce them) restores join availability.\n");
    return 0;
}
