// Per-vehicle security configuration: which of the paper's Table III
// mechanisms are switched on. The scenario builder provisions key material
// (group keys, pairwise fading keys, PKI credentials) accordingly.
#pragma once

#include "crypto/secured_message.hpp"
#include "net/channel.hpp"
#include "sim/types.hpp"

namespace platoon::security {

/// How symmetric key material reaches the platoon members.
enum class KeyEstablishment : std::uint8_t {
    kPreShared = 0,    ///< Provisioned out of band before the run.
    kFadingChannel,    ///< Agreed via channel-fading randomness [5], [9].
    kRsuDistribution,  ///< Fetched from an RSU over ECDH (Section VI-A.2).
};

struct SecurityPolicy {
    /// --- Secret & public keys (Table III row 1) ---------------------------
    crypto::AuthMode auth_mode = crypto::AuthMode::kNone;
    KeyEstablishment key_establishment = KeyEstablishment::kPreShared;
    bool encrypt_payloads = false;
    sim::SimTime freshness_window_s = 0.5;
    bool check_replay = true;
    /// Rotate pseudonymous certificates every this many seconds (0 = never);
    /// only meaningful with AuthMode::kSignature.
    sim::SimTime pseudonym_rotation_s = 0.0;

    /// --- Control-algorithm detection (Table III row 3) --------------------
    bool vpd_ada = false;
    /// Trust management (open challenge VI-B.3, REPLACE [6] family): keep a
    /// per-peer trust score from the other detectors' evidence and ignore
    /// distrusted identities surgically. Most useful stacked on vpd_ada.
    bool trust_management = false;

    /// --- Hybrid communication (Table III row 4) ---------------------------
    bool hybrid_comms = false;
    net::Band secondary_band = net::Band::kVlc;
    bool require_dual_channel_maneuvers = true;

    /// --- Onboard systems security (Table III row 5) -----------------------
    bool sensor_fusion = false;
    bool firewall = false;
    bool antivirus = false;

    /// --- RSU cooperation (Table III row 2) ---------------------------------
    bool report_misbehavior = false;  ///< Send reports to RSUs.
    /// Only accept key-management messages (CRLs, group keys) from holders
    /// of TA-issued credentials. Turning this off models the legacy /
    /// misconfigured deployments that make rogue RSUs (open challenge,
    /// Section VI-A.2) effective.
    bool require_signed_infrastructure = true;
    /// Leader-side join rate limiting (DoS hardening).
    sim::SimTime join_rate_limit_s = 0.0;

    [[nodiscard]] static SecurityPolicy open() { return {}; }

    /// Everything on: the full defended stack used in Table III benches.
    [[nodiscard]] static SecurityPolicy hardened() {
        SecurityPolicy p;
        p.auth_mode = crypto::AuthMode::kSignature;
        p.encrypt_payloads = true;
        p.vpd_ada = true;
        p.hybrid_comms = true;
        p.sensor_fusion = true;
        p.firewall = true;
        p.antivirus = true;
        p.report_misbehavior = true;
        p.join_rate_limit_s = 1.0;
        return p;
    }
};

/// Counters every vehicle keeps about its security pipeline.
struct SecurityCounters {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_bad_tag = 0;
    std::uint64_t rejected_replay = 0;
    std::uint64_t rejected_stale = 0;
    std::uint64_t rejected_cert = 0;
    std::uint64_t rejected_revoked = 0;
    std::uint64_t rejected_unprotected = 0;
    std::uint64_t rejected_no_key = 0;
    std::uint64_t rejected_malformed = 0;

    void count(crypto::VerifyResult r);
    [[nodiscard]] std::uint64_t rejected_total() const;
};

}  // namespace platoon::security
