#include "defense/onboard.hpp"

#include <algorithm>
#include <cmath>

namespace platoon::security {

GpsFusion::GpsFusion() : GpsFusion(Params{}) {}

GpsFusion::Output GpsFusion::update(sim::SimTime now, double gps_position_m,
                                    double odo_speed_mps, double dt) {
    if (!initialised_) {
        initialised_ = true;
        estimate_m_ = gps_position_m;
        drift_budget_m_ = 2.0;
        return Output{gps_position_m, true, false};
    }

    // Propagate dead reckoning.
    estimate_m_ += odo_speed_mps * dt;
    drift_budget_m_ += params_.drift_rate_m_per_s * dt;

    const double innovation = std::abs(gps_position_m - estimate_m_);
    const double gate = params_.innovation_gate_m + drift_budget_m_;

    bool raised = false;
    if (innovation > gate) {
        raised = now >= distrust_until_;  // only count new alarms
        if (raised) {
            ++detections_;
            if (first_detection_ < 0.0) first_detection_ = now;
        }
        distrust_until_ = now + params_.distrust_hold_s;
    }

    const bool trusted = now >= distrust_until_;
    if (trusted) {
        // Slowly anchor dead reckoning to GPS (a fast blend would make the
        // estimate chase a walking spoof and blind the gate).
        const double alpha = std::min(1.0, dt / params_.anchor_tau_s);
        estimate_m_ += alpha * (gps_position_m - estimate_m_);
        drift_budget_m_ += alpha * (2.0 - drift_budget_m_);
        return Output{gps_position_m, true, raised};
    }
    return Output{estimate_m_, false, raised};
}

RadarFusion::RadarFusion() : RadarFusion(Params{}) {}

bool RadarFusion::update(sim::SimTime now, std::optional<double> radar_gap_m,
                         std::optional<double> beacon_gap_m) {
    if (!radar_gap_m || !beacon_gap_m) return distrusted(now);
    const double diff = *radar_gap_m - *beacon_gap_m;
    ewma_ += params_.ewma_alpha * (diff - ewma_);
    if (std::abs(ewma_) > params_.ewma_threshold_m) {
        if (!distrusted(now)) ++detections_;
        // Persist while the discrepancy persists: expiring mid-attack
        // would re-admit the phantom for another AEB bite.
        distrust_until_ = now + params_.distrust_hold_s;
    }
    return distrusted(now);
}

OnboardHardening::OnboardHardening() : OnboardHardening(Params{}) {}

bool OnboardHardening::attempt_infection(Vector vector,
                                         sim::RandomStream& rng) {
    ++attempts_;
    if (infected_) return true;
    const bool firewall_applies = params_.firewall &&
                                  vector != Vector::kObdPort;
    if (firewall_applies && rng.chance(params_.firewall_block_prob)) {
        ++blocked_;
        return false;
    }
    infected_ = true;
    return true;
}

std::optional<double> OnboardHardening::cleanup_delay(
    sim::RandomStream& rng) const {
    if (!infected_ || !params_.antivirus) return std::nullopt;
    return rng.exponential(1.0 / params_.antivirus_mean_clean_s);
}

}  // namespace platoon::security
