#include "defense/hybrid_comms.hpp"

#include <algorithm>

namespace platoon::security {

HybridComms::HybridComms() : HybridComms(Params{}) {}

HybridComms::Action HybridComms::on_receive(std::uint32_t sender,
                                            std::uint64_t seq,
                                            net::MsgType type, net::Band band,
                                            sim::SimTime now) {
    // Bookkeeping for jam detection.
    if (band == net::Band::kDsrc) {
        last_rf_rx_ = now;
    } else {
        recent_secondary_rx_.push_back(now);
        if (recent_secondary_rx_.size() > 64) {
            recent_secondary_rx_.erase(recent_secondary_rx_.begin(),
                                       recent_secondary_rx_.begin() + 32);
        }
    }

    const Key k = key(sender, seq);
    if (const auto it = delivered_keys_.find(k); it != delivered_keys_.end()) {
        ++duplicates_;
        return Action::kDuplicate;
    }

    bool needs_dual = false;
    if (type == net::MsgType::kManeuver) {
        needs_dual = params_.require_dual_channel_maneuvers;
    } else if (type == net::MsgType::kBeacon) {
        // Key-management frames stay single-channel (RSUs have no VLC
        // emitter); beacons require both channels except under detected
        // RF jamming, when the optical channel alone must suffice.
        needs_dual =
            params_.require_dual_channel_beacons && !rf_jam_suspected(now);
    }
    if (!needs_dual) {
        delivered_keys_.emplace(k, now);
        ++delivered_;
        return Action::kDeliver;
    }

    const auto pending_it = pending_.find(k);
    if (pending_it == pending_.end()) {
        pending_.emplace(k, PendingEntry{now, band});
        return Action::kHold;
    }
    if (pending_it->second.first_band == band) {
        // Same channel again: still unconfirmed.
        pending_it->second.first_seen = now;
        return Action::kHold;
    }
    // Confirmed on a second, different channel.
    pending_.erase(pending_it);
    delivered_keys_.emplace(k, now);
    ++delivered_;
    return Action::kDeliver;
}

std::size_t HybridComms::expire(sim::SimTime now) {
    std::size_t expired = 0;
    std::erase_if(pending_, [&](const auto& entry) {
        if (now - entry.second.first_seen > params_.match_window_s) {
            ++expired;
            return true;
        }
        return false;
    });
    rejected_single_channel_ += expired;
    // Also prune the delivered-key memory (anything older than a few match
    // windows can no longer be confused with a live message).
    std::erase_if(delivered_keys_, [&](const auto& entry) {
        return now - entry.second > 10.0 * params_.match_window_s;
    });
    return expired;
}

bool HybridComms::rf_jam_suspected(sim::SimTime now) const {
    if (last_rf_rx_ >= 0.0 && now - last_rf_rx_ <= params_.jam_window_s)
        return false;
    const auto fresh = std::count_if(
        recent_secondary_rx_.begin(), recent_secondary_rx_.end(),
        [&](sim::SimTime t) { return now - t <= params_.jam_window_s; });
    return fresh >= static_cast<long>(params_.jam_min_secondary);
}

}  // namespace platoon::security
