// SP-VLC hybrid-communication policy (Ucar et al. [2], paper Section
// VI-A.4): platoon messages travel over both 802.11p and a secondary channel
// (VLC by default, C-V2X optionally).
//
// Receiving rules:
//  - Beacons: accept from either channel (availability first), dropping
//    duplicates by (sender, seq).
//  - Maneuver commands: when dual-channel confirmation is required, a
//    command only takes effect after it has been heard on BOTH channels
//    within a matching window -- a jammer (or a single-channel injector,
//    e.g. an RF-only attacker without a VLC emitter) cannot get a command
//    accepted.
//  - Jam detection: if the RF channel goes silent while the secondary still
//    delivers, the policy flags jamming (used for reporting/fallback).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/channel.hpp"
#include "net/message.hpp"
#include "sim/types.hpp"

namespace platoon::security {

class HybridComms {
public:
    struct Params {
        bool require_dual_channel_maneuvers = true;
        /// SP-VLC [2]: beacons too must arrive on both channels -- unless
        /// the RF channel is assessed as jammed, when VLC-only passes.
        bool require_dual_channel_beacons = true;
        sim::SimTime match_window_s = 0.5;
        /// Sliding window for jam detection.
        sim::SimTime jam_window_s = 1.0;
        /// RF considered jammed when it delivered nothing in jam_window_s
        /// while the secondary delivered at least this many frames.
        std::uint32_t jam_min_secondary = 3;
    };

    enum class Action : std::uint8_t {
        kDeliver,    ///< Pass to the application now.
        kHold,       ///< Waiting for confirmation on the other channel.
        kDuplicate,  ///< Same message already delivered; drop.
    };

    HybridComms();
    explicit HybridComms(Params params) : params_(params) {}

    /// Classifies an arriving frame.
    Action on_receive(std::uint32_t sender, std::uint64_t seq,
                      net::MsgType type, net::Band band, sim::SimTime now);

    /// Expires pending single-channel maneuvers; returns how many were
    /// rejected (heard on one channel only -- the blocked-attack counter).
    std::size_t expire(sim::SimTime now);

    /// Current jamming assessment of the RF (802.11p) channel.
    [[nodiscard]] bool rf_jam_suspected(sim::SimTime now) const;

    [[nodiscard]] std::uint64_t rejected_single_channel() const {
        return rejected_single_channel_;
    }
    [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
    [[nodiscard]] std::uint64_t delivered() const { return delivered_; }

private:
    struct Key {
        std::uint64_t v;
        friend bool operator==(Key, Key) = default;
    };
    struct KeyHash {
        std::size_t operator()(Key k) const {
            return std::hash<std::uint64_t>{}(k.v);
        }
    };
    static Key key(std::uint32_t sender, std::uint64_t seq) {
        return Key{(static_cast<std::uint64_t>(sender) << 40) ^ seq};
    }

    struct PendingEntry {
        sim::SimTime first_seen;
        net::Band first_band;
    };

    Params params_;
    std::unordered_map<Key, PendingEntry, KeyHash> pending_;
    std::unordered_map<Key, sim::SimTime, KeyHash> delivered_keys_;
    std::uint64_t rejected_single_channel_ = 0;
    std::uint64_t duplicates_ = 0;
    std::uint64_t delivered_ = 0;
    sim::SimTime last_rf_rx_ = -1.0;
    std::vector<sim::SimTime> recent_secondary_rx_;
};

}  // namespace platoon::security
