#include "defense/policy.hpp"

namespace platoon::security {

void SecurityCounters::count(crypto::VerifyResult r) {
    switch (r) {
        case crypto::VerifyResult::kOk: ++accepted; break;
        case crypto::VerifyResult::kBadTag: ++rejected_bad_tag; break;
        case crypto::VerifyResult::kReplay: ++rejected_replay; break;
        case crypto::VerifyResult::kStale: ++rejected_stale; break;
        case crypto::VerifyResult::kBadCert: ++rejected_cert; break;
        case crypto::VerifyResult::kRevoked: ++rejected_revoked; break;
        case crypto::VerifyResult::kUnprotected: ++rejected_unprotected; break;
        case crypto::VerifyResult::kNoKey: ++rejected_no_key; break;
    }
}

std::uint64_t SecurityCounters::rejected_total() const {
    return rejected_bad_tag + rejected_replay + rejected_stale +
           rejected_cert + rejected_revoked + rejected_unprotected +
           rejected_no_key + rejected_malformed;
}

}  // namespace platoon::security
