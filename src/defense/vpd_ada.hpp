// VPD-ADA: Vehicle Platooning Disruption Attack Detection Algorithm.
//
// Implements the control-algorithm defense of Bermad et al. [10] as cited by
// the paper (Section VI-A.3): each vehicle periodically cross-checks the
// positional information claimed in beacons against its own independent
// sensing (radar/LiDAR gap to the predecessor). A sustained discrepancy
// means the beacon stream is lying (replay, Sybil ghost, FDI insider, GPS
// spoofed neighbour); the mitigation is to quarantine beacon data and fall
// back to radar-only ACC, bounding the attack's effect on the platoon.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/types.hpp"

namespace platoon::security {

class VpdAdaDetector {
public:
    struct Params {
        /// |radar gap - beacon-claimed gap| beyond this is a strike.
        double gap_threshold_m = 4.0;
        /// |radar closing speed - beacon-claimed closing| beyond this is a
        /// strike (catches replayed dynamics whose position still matches).
        double speed_threshold_mps = 1.5;
        /// Consecutive strikes before declaring an attack.
        int strikes_to_detect = 4;
        /// How long beacons stay quarantined after a detection.
        sim::SimTime quarantine_s = 3.0;
    };

    VpdAdaDetector();
    explicit VpdAdaDetector(Params params) : params_(params) {}

    /// One detector tick (call at control or beacon rate). Either
    /// measurement may be missing (radar blinded, no beacon yet): missing
    /// data yields no strike but also no recovery credit.
    /// Returns true when this tick *triggered* a new detection.
    bool update(sim::SimTime now, std::optional<double> radar_gap_m,
                std::optional<double> beacon_gap_m,
                std::optional<double> radar_closing_mps = std::nullopt,
                std::optional<double> beacon_closing_mps = std::nullopt);

    /// Whether beacon data should currently be distrusted.
    [[nodiscard]] bool quarantined(sim::SimTime now) const;

    [[nodiscard]] std::uint64_t detections() const { return detections_; }
    [[nodiscard]] sim::SimTime first_detection() const {
        return first_detection_;
    }
    [[nodiscard]] int strikes() const { return strikes_; }
    [[nodiscard]] const Params& params() const { return params_; }

private:
    Params params_;
    int strikes_ = 0;
    std::uint64_t detections_ = 0;
    sim::SimTime quarantine_until_ = -1.0;
    sim::SimTime first_detection_ = -1.0;
};

}  // namespace platoon::security
