// Trust management (paper open challenge VI-B.3; REPLACE [6] family).
//
// Each vehicle keeps a per-peer trust score fed by the evidence the other
// defenses already produce: consistent beacons slowly build trust,
// plausibility violations and VPD-ADA detections burn it. Below a threshold
// the peer is distrusted and its claims are ignored entirely -- which lets
// the platoon *surgically* exclude a lying identity (Sybil ghost, FDI
// insider) and keep full CACC on everyone else, instead of the blanket
// beacon-quarantine fallback. Hysteresis prevents flapping; scores recover
// slowly so a burned peer must re-earn trust.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/types.hpp"

namespace platoon::security {

class TrustManager {
public:
    struct Params {
        double initial = 0.5;
        double reward = 0.004;        ///< Per consistent beacon (10 Hz).
        double penalty = 0.12;        ///< Per piece of misbehaviour evidence.
        double distrust_below = 0.2;  ///< Scores under this are distrusted.
        double redeem_above = 0.4;    ///< ...until they recover past this.
        /// Recovery credit per *dropped* beacon from a distrusted peer (a
        /// time proxy: a persistent offender is re-penalised immediately on
        /// redemption, an honest false positive works its way back in).
        double drop_recovery = 0.0015;
    };

    TrustManager();
    explicit TrustManager(Params params) : params_(params) {}

    /// Consistent evidence from `peer` (a beacon that matched predictions).
    void reward(std::uint32_t peer);
    /// Misbehaviour evidence against `peer`.
    void penalize(std::uint32_t peer);
    /// A beacon from a distrusted peer was dropped (slow redemption path).
    void observe_dropped(std::uint32_t peer);

    /// Current score (initial value for unknown peers).
    [[nodiscard]] double score(std::uint32_t peer) const;
    /// Whether the peer's claims should be used (hysteresis applied).
    [[nodiscard]] bool trusted(std::uint32_t peer) const;

    [[nodiscard]] std::size_t distrusted_count() const;
    [[nodiscard]] std::uint64_t penalties() const { return penalties_; }
    [[nodiscard]] const Params& params() const { return params_; }

private:
    struct Entry {
        double score;
        bool distrusted = false;
    };
    Entry& entry(std::uint32_t peer);

    Params params_;
    mutable std::unordered_map<std::uint32_t, Entry> entries_;
    std::uint64_t penalties_ = 0;
};

}  // namespace platoon::security
