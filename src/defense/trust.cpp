#include "defense/trust.hpp"

#include <algorithm>

namespace platoon::security {

TrustManager::TrustManager() : TrustManager(Params{}) {}

TrustManager::Entry& TrustManager::entry(std::uint32_t peer) {
    const auto [it, inserted] =
        entries_.try_emplace(peer, Entry{params_.initial, false});
    return it->second;
}

void TrustManager::reward(std::uint32_t peer) {
    Entry& e = entry(peer);
    e.score = std::min(1.0, e.score + params_.reward);
    if (e.distrusted && e.score >= params_.redeem_above) e.distrusted = false;
}

void TrustManager::penalize(std::uint32_t peer) {
    ++penalties_;
    Entry& e = entry(peer);
    e.score = std::max(0.0, e.score - params_.penalty);
    if (e.score < params_.distrust_below) e.distrusted = true;
}

void TrustManager::observe_dropped(std::uint32_t peer) {
    Entry& e = entry(peer);
    e.score = std::min(1.0, e.score + params_.drop_recovery);
    if (e.distrusted && e.score >= params_.redeem_above) e.distrusted = false;
}

double TrustManager::score(std::uint32_t peer) const {
    const auto it = entries_.find(peer);
    return it == entries_.end() ? params_.initial : it->second.score;
}

bool TrustManager::trusted(std::uint32_t peer) const {
    const auto it = entries_.find(peer);
    return it == entries_.end() ? true : !it->second.distrusted;
}

std::size_t TrustManager::distrusted_count() const {
    std::size_t n = 0;
    for (const auto& [peer, e] : entries_) n += e.distrusted ? 1 : 0;
    return n;
}

}  // namespace platoon::security
