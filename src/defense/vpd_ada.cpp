#include "defense/vpd_ada.hpp"

#include <cmath>

namespace platoon::security {

VpdAdaDetector::VpdAdaDetector() : VpdAdaDetector(Params{}) {}

bool VpdAdaDetector::update(sim::SimTime now,
                            std::optional<double> radar_gap_m,
                            std::optional<double> beacon_gap_m,
                            std::optional<double> radar_closing_mps,
                            std::optional<double> beacon_closing_mps) {
    bool strike = false;
    bool have_evidence = false;

    if (radar_gap_m && beacon_gap_m) {
        have_evidence = true;
        if (std::abs(*radar_gap_m - *beacon_gap_m) > params_.gap_threshold_m)
            strike = true;
    }
    if (radar_closing_mps && beacon_closing_mps) {
        have_evidence = true;
        if (std::abs(*radar_closing_mps - *beacon_closing_mps) >
            params_.speed_threshold_mps)
            strike = true;
    }
    if (!have_evidence) return false;

    if (strike) {
        // An active quarantine is one ongoing incident: fresh evidence
        // extends it without counting a new detection.
        if (now < quarantine_until_) {
            quarantine_until_ = now + params_.quarantine_s;
            return false;
        }
        ++strikes_;
        if (strikes_ >= params_.strikes_to_detect) {
            strikes_ = 0;
            ++detections_;
            if (first_detection_ < 0.0) first_detection_ = now;
            quarantine_until_ = now + params_.quarantine_s;
            return true;
        }
    } else if (strikes_ > 0) {
        --strikes_;  // consistent evidence slowly clears suspicion
    }
    return false;
}

bool VpdAdaDetector::quarantined(sim::SimTime now) const {
    return now < quarantine_until_;
}

}  // namespace platoon::security
