// On-board systems security (paper Section VI-A.5): sensor fusion against
// GPS/radar spoofing, and firewall/antivirus hardening against malware.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/random.hpp"
#include "sim/types.hpp"

namespace platoon::security {

/// Cross-checks GPS against dead reckoning (odometry-integrated position).
//
// The spoof signature the paper describes (Section V-G) is a *walk-off*: the
// attacker locks onto the receiver and slowly drags the reported position
// away. Dead reckoning drifts slowly and smoothly; a walking GPS offset
// shows up as a growing innovation between the GPS fix and the propagated
// estimate. When the innovation exceeds a gate, the fusion flags the GPS and
// serves dead-reckoned positions instead (bounded drift beats unbounded
// spoof).
class GpsFusion {
public:
    struct Params {
        double innovation_gate_m = 8.0;   ///< |gps - dead reckoning| limit.
        double drift_rate_m_per_s = 0.3;  ///< Assumed odometry drift growth.
        /// Time constant for anchoring dead reckoning to trusted GPS; slow,
        /// so the estimate stays independent enough to expose a walk-off.
        sim::SimTime anchor_tau_s = 20.0;
        sim::SimTime distrust_hold_s = 10.0;
    };

    GpsFusion();
    explicit GpsFusion(Params params) : params_(params) {}

    struct Output {
        double position_m;   ///< Fused (trusted) position.
        bool gps_trusted;
        bool spoof_detected; ///< True on the tick the alarm raises.
    };

    /// One fusion tick: `gps_position` is the (possibly spoofed) fix,
    /// `odo_speed` the wheel-odometry speed, `dt` the time since last tick.
    Output update(sim::SimTime now, double gps_position_m, double odo_speed_mps,
                  double dt);

    [[nodiscard]] std::uint64_t detections() const { return detections_; }
    [[nodiscard]] sim::SimTime first_detection() const {
        return first_detection_;
    }

private:
    Params params_;
    bool initialised_ = false;
    double estimate_m_ = 0.0;       ///< Dead-reckoned position.
    double drift_budget_m_ = 0.0;   ///< Allowed DR error since last anchor.
    sim::SimTime distrust_until_ = -1.0;
    std::uint64_t detections_ = 0;
    sim::SimTime first_detection_ = -1.0;
};

/// Cross-checks radar against (authenticated) beacon-claimed gaps: the dual
/// of VPD-ADA, used when the *radar* is the spoofed sensor.
class RadarFusion {
public:
    struct Params {
        /// |EWMA of (radar - beacon gap)| beyond this benches the radar.
        /// GPS noise puts ~2.1 m sigma on a single claimed-gap sample; the
        /// EWMA averages it to ~0.5 m, so 2.0 m is a ~4-sigma gate that
        /// still catches a constant 2.5 m phantom offset within ~1 s.
        double ewma_threshold_m = 2.0;
        double ewma_alpha = 0.12;  ///< Per beacon (10 Hz).
        sim::SimTime distrust_hold_s = 5.0;
    };

    RadarFusion();
    explicit RadarFusion(Params params) : params_(params) {}

    /// Returns true when radar should be distrusted at `now`. While the
    /// discrepancy persists, the distrust persists (no expiry mid-attack).
    bool update(sim::SimTime now, std::optional<double> radar_gap_m,
                std::optional<double> beacon_gap_m);
    [[nodiscard]] bool distrusted(sim::SimTime now) const {
        return now < distrust_until_;
    }
    [[nodiscard]] std::uint64_t detections() const { return detections_; }
    [[nodiscard]] double discrepancy_ewma() const { return ewma_; }

private:
    Params params_;
    double ewma_ = 0.0;
    sim::SimTime distrust_until_ = -1.0;
    std::uint64_t detections_ = 0;
};

/// Firewall + antivirus model gating malware infection attempts
/// (paper Section V-H / VI-A.5).
class OnboardHardening {
public:
    struct Params {
        bool firewall = false;
        bool antivirus = false;
        /// Probability the firewall blocks a wireless/media infection vector.
        double firewall_block_prob = 0.85;
        /// Mean time for the antivirus to detect & clean an infection.
        double antivirus_mean_clean_s = 8.0;
    };

    OnboardHardening();
    explicit OnboardHardening(Params params) : params_(params) {}

    enum class Vector : std::uint8_t { kObdPort, kMediaFile, kWireless };

    /// An infection attempt arrives over `vector`; returns true when the
    /// malware takes hold. Physical OBD access bypasses the firewall.
    bool attempt_infection(Vector vector, sim::RandomStream& rng);

    /// If infected and antivirus is on, returns the cleaning delay to
    /// schedule; nullopt when no cleanup will happen.
    [[nodiscard]] std::optional<double> cleanup_delay(sim::RandomStream& rng) const;

    [[nodiscard]] bool infected() const { return infected_; }
    void set_cleaned() { infected_ = false; }
    [[nodiscard]] std::uint64_t attempts() const { return attempts_; }
    [[nodiscard]] std::uint64_t blocked() const { return blocked_; }

private:
    Params params_;
    bool infected_ = false;
    std::uint64_t attempts_ = 0;
    std::uint64_t blocked_ = 0;
};

}  // namespace platoon::security
