#include "detect/harness.hpp"

#include <functional>
#include <utility>

#include "core/experiment.hpp"
#include "eval/harness.hpp"
#include "obs/counters.hpp"
#include "scen/registry.hpp"

namespace platoon::detect {

namespace {

obs::Counter g_detector_flags{"detect.flags"};

// Mirrors the eval harness's DoS-row fixture: a legitimate joiner whose
// admission the flood tries to deny (its handshake is exactly the benign
// maneuver traffic the flood detector must not flag away).
core::PlatoonVehicle& add_legit_joiner(core::Scenario& scenario) {
    core::VehicleConfig joiner;
    joiner.id = sim::NodeId{300};
    joiner.role = control::Role::kFree;
    joiner.platoon_id = 0;
    joiner.security = scenario.config().security;
    joiner.initial_state.position_m =
        scenario.tail().dynamics().position() - 80.0;
    joiner.initial_state.speed_mps = 25.0;
    joiner.desired_speed_mps = 28.0;
    auto& vehicle = scenario.add_vehicle(joiner);
    scenario.scheduler().schedule_at(25.0, [&scenario, &vehicle] {
        vehicle.request_join(scenario.platoon_id(), scenario.leader().id());
    });
    return vehicle;
}

// Impersonation presumes stolen credentials; without a PKI it degenerates
// into fake-maneuver, so its rows always run on a signed baseline (same
// normalization the Table II/III harness applies).
void normalize_config(core::ScenarioConfig& config, AttackKind kind) {
    if (kind == AttackKind::kImpersonation &&
        config.security.auth_mode == crypto::AuthMode::kNone) {
        config.security.auth_mode = crypto::AuthMode::kSignature;
    }
}

}  // namespace

core::ScenarioConfig detection_config(std::uint64_t seed) {
    // The canonical profile lives in the scen registry so the scenario
    // compiler ("profile": "detection") and this harness agree forever.
    return *scen::base_profile("detection", seed);
}

DetectionHarness::DetectionHarness(const BankTuning& tuning)
    : tuning_(tuning), bank_(default_bank(tuning)) {
    for (const DetectorSpec& spec : bank_) dataset_.detectors.push_back(spec.name);
}

void DetectionHarness::attach(core::Scenario& scenario, std::string run_tag) {
    scenario_ = &scenario;
    run_tag_ = std::move(run_tag);
    for (std::size_t i = 0; i < scenario.config().platoon_size; ++i)
        attach_vehicle(scenario.vehicle(i));
}

void DetectionHarness::attach_vehicle(core::PlatoonVehicle& vehicle) {
    Receiver& receiver = receivers_[vehicle.id().value];
    receiver.detectors.clear();
    for (const DetectorSpec& spec : bank_)
        receiver.detectors.push_back(spec.make());
    vehicle.set_message_observer(
        [this](const core::PlatoonVehicle& v,
               const core::PlatoonVehicle::MessageObservation& obs) {
            observe(v, obs);
        });
}

void DetectionHarness::observe(
    const core::PlatoonVehicle& vehicle,
    const core::PlatoonVehicle::MessageObservation& obs) {
    Receiver& receiver = receivers_[vehicle.id().value];

    FeatureExtractor::Input in;
    in.now = scenario_ != nullptr ? scenario_->scheduler().now()
                                  : obs.rx.rx_time;
    in.receiver = vehicle.id().value;
    in.sender = obs.frame.envelope.sender;
    in.type = obs.frame.type;
    in.seq = obs.frame.envelope.seq;
    in.accepted = obs.accepted;
    const auto predecessor = vehicle.current_predecessor();
    in.sender_is_predecessor = predecessor && *predecessor == in.sender;
    in.beacon = obs.beacon;
    in.own_position_m = vehicle.own_position_estimate();
    in.radar_gap_m = vehicle.last_radar_gap();
    in.truth = obs.frame.truth;

    const Features f = receiver.extractor.update(in);

    const std::string tag = "detect.v" + std::to_string(in.receiver);
    if (f.innovation_m)
        traces_.series(tag + ".innovation_m").record(f.t, *f.innovation_m);
    if (f.radar_residual_m)
        traces_.series(tag + ".radar_residual_m")
            .record(f.t, *f.radar_residual_m);

    DatasetRow row;
    row.run = run_tag_;
    row.features = f;
    row.flags.reserve(receiver.detectors.size());
    for (auto& detector : receiver.detectors) {
        const bool flagged = detector->update(f, vehicle);
        if (flagged) g_detector_flags.inc();
        row.flags.push_back(flagged ? 1 : 0);
    }
    dataset_.rows.push_back(std::move(row));
}

DetectionResult run_detection_once(core::ScenarioConfig config,
                                   AttackKind kind, bool with_attack,
                                   const BankTuning& tuning,
                                   bool keep_dataset) {
    normalize_config(config, kind);
    core::Scenario scenario(config);
    std::unique_ptr<security::Attack> attack;
    if (with_attack) {
        attack = eval::make_attack(kind);
        attack->attach(scenario);
    }
    core::PlatoonVehicle* joiner = nullptr;
    if (kind == AttackKind::kDenialOfService)
        joiner = &add_legit_joiner(scenario);

    DetectionHarness harness(tuning);
    const std::string tag =
        std::string(with_attack ? core::to_string(kind) : "clean") + "/seed" +
        std::to_string(config.seed);
    harness.attach(scenario, tag);
    if (joiner != nullptr) harness.attach_vehicle(*joiner);

    scenario.run_until(eval::kEvalDuration);

    DetectionResult result;
    result.isolations = scenario.authority().isolations();
    result.scores = score_dataset(harness.dataset(), kAttackStartTime,
                                  eval::kEvalDuration, result.isolations);
    if (keep_dataset) result.dataset = harness.take_dataset();
    return result;
}

namespace {

std::vector<DetectorSummary> fold_seed_scores(
    const std::vector<std::vector<DetectorScore>>& per_seed) {
    std::vector<DetectorSummary> out;
    if (per_seed.empty()) return out;
    const std::size_t detectors = per_seed.front().size();
    const double seeds = static_cast<double>(per_seed.size());
    for (std::size_t d = 0; d < detectors; ++d) {
        DetectorSummary s;
        s.detector = per_seed.front()[d].detector;
        s.precision = 0.0;
        double ttd_sum = 0.0, tti_sum = 0.0;
        std::size_t detected = 0, isolated = 0;
        for (const auto& scores : per_seed) {
            const DetectorScore& one = scores[d];
            s.precision += one.confusion.precision();
            s.recall += one.confusion.recall();
            s.f1 += one.confusion.f1();
            s.false_positive_rate += one.confusion.false_positive_rate();
            s.false_alarms_per_hour += one.false_alarms_per_hour;
            s.malicious_rows += static_cast<double>(one.confusion.positives());
            s.flagged_rows += static_cast<double>(one.confusion.flagged());
            if (one.time_to_detect_s < kNever) {
                ++detected;
                ttd_sum += one.time_to_detect_s;
            }
            if (one.time_to_isolate_s < kNever) {
                ++isolated;
                tti_sum += one.time_to_isolate_s;
            }
        }
        s.precision /= seeds;
        s.recall /= seeds;
        s.f1 /= seeds;
        s.false_positive_rate /= seeds;
        s.false_alarms_per_hour /= seeds;
        s.malicious_rows /= seeds;
        s.flagged_rows /= seeds;
        s.detect_rate = static_cast<double>(detected) / seeds;
        s.isolate_rate = static_cast<double>(isolated) / seeds;
        if (detected > 0) s.mean_ttd_s = ttd_sum / static_cast<double>(detected);
        if (isolated > 0) s.mean_tti_s = tti_sum / static_cast<double>(isolated);
        out.push_back(std::move(s));
    }
    return out;
}

}  // namespace

std::vector<std::vector<DetectorSummary>> run_detection_grid(
    const std::vector<DetectionCell>& cells, unsigned jobs) {
    // Flattened to (cell, seed) tasks, folded in cell/seed order: the same
    // load-balancing + determinism scheme as eval::run_eval_grid.
    std::vector<std::function<std::vector<DetectorScore>()>> tasks;
    std::vector<std::size_t> seeds_per_cell;
    seeds_per_cell.reserve(cells.size());
    for (const DetectionCell& cell : cells) {
        const std::uint64_t base_seed = cell.config.seed;
        seeds_per_cell.push_back(cell.seeds);
        for (std::size_t k = 0; k < cell.seeds; ++k) {
            core::ScenarioConfig config = cell.config;
            config.seed = base_seed + k;
            tasks.emplace_back([config, kind = cell.kind,
                                with_attack = cell.with_attack,
                                tuning = cell.tuning] {
                return run_detection_once(config, kind, with_attack, tuning,
                                          /*keep_dataset=*/false)
                    .scores;
            });
        }
    }
    const std::vector<std::vector<DetectorScore>> per_seed =
        core::run_grid(std::move(tasks), jobs);

    std::vector<std::vector<DetectorSummary>> out;
    out.reserve(cells.size());
    std::size_t offset = 0;
    for (const std::size_t seeds : seeds_per_cell) {
        const std::vector<std::vector<DetectorScore>> slice(
            per_seed.begin() + static_cast<std::ptrdiff_t>(offset),
            per_seed.begin() + static_cast<std::ptrdiff_t>(offset + seeds));
        out.push_back(fold_seed_scores(slice));
        offset += seeds;
    }
    return out;
}

}  // namespace platoon::detect
