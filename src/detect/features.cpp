#include "detect/features.hpp"

#include <cmath>

#include "obs/counters.hpp"
#include "obs/timer.hpp"

namespace platoon::detect {

namespace {
obs::Counter g_feature_rows{"detect.feature_rows"};
}  // namespace

Features FeatureExtractor::update(const Input& in) {
    const obs::ScopedTimer timer("detect.features");
    g_feature_rows.inc();
    Features f;
    f.t = in.now;
    f.receiver = in.receiver;
    f.sender = in.sender;
    f.type = in.type;
    f.seq = in.seq;
    f.accepted = in.accepted;
    f.sender_is_predecessor = in.sender_is_predecessor;
    // platoonlint: allow(oracle-isolation) label pass-through to the scorer; never read by feature math
    f.truth = in.truth;

    Stream& stream = streams_[in.sender];

    // Sequence numbers are a per-identity property of the envelope, shared
    // across message types, so the delta tracks every message.
    if (stream.has_seq) {
        f.seq_delta = static_cast<double>(static_cast<std::int64_t>(in.seq) -
                                          static_cast<std::int64_t>(stream.seq));
    }
    stream.has_seq = true;
    stream.seq = in.seq;

    if (in.beacon == nullptr) return f;

    const net::Beacon& beacon = *in.beacon;
    f.claimed_position_m = beacon.position_m;
    f.claimed_speed_mps = beacon.speed_mps;
    f.claimed_accel_mps2 = beacon.accel_mps2;

    if (stream.has_arrival) f.jitter_s = std::abs((in.now - stream.arrival_at) -
                                                  params_.beacon_period_s);
    stream.has_arrival = true;
    stream.arrival_at = in.now;

    if (stream.has_claim) {
        const double dt = in.now - stream.claim_at;
        if (dt > 1e-9 && dt <= params_.prediction_horizon_s) {
            const double predicted_pos = stream.position_m +
                                         stream.speed_mps * dt +
                                         0.5 * stream.accel_mps2 * dt * dt;
            const double predicted_speed =
                stream.speed_mps + stream.accel_mps2 * dt;
            f.innovation_m = std::abs(beacon.position_m - predicted_pos);
            f.speed_jump_mps = std::abs(beacon.speed_mps - predicted_speed);
        }
    }
    stream.has_claim = true;
    stream.position_m = beacon.position_m;
    stream.speed_mps = beacon.speed_mps;
    stream.accel_mps2 = beacon.accel_mps2;
    stream.claim_at = in.now;

    if (in.sender_is_predecessor && in.radar_gap_m && in.own_position_m) {
        // The claimed bumper-to-bumper gap from the receiver's nose to the
        // sender's tail, versus what the radar actually measures.
        const double claimed_gap =
            beacon.position_m - beacon.length_m - *in.own_position_m;
        f.radar_residual_m = std::abs(claimed_gap - *in.radar_gap_m);
    }
    return f;
}

}  // namespace platoon::detect
