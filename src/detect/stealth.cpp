#include "detect/stealth.hpp"

#include <memory>
#include <utility>

#include "core/experiment.hpp"
#include "detect/bank.hpp"
#include "detect/harness.hpp"
#include "obs/counters.hpp"
#include "sim/assert.hpp"

namespace platoon::detect {

namespace {

namespace stealth = security::stealth;

obs::Counter g_replications{"detect.stealth.replications"};

/// One replication's contribution: the impact metric plus the per-detector
/// flag totals the bank raised while the profile ran.
struct Replication {
    double metric = 0.0;
    std::vector<std::uint64_t> flags;
};

Replication run_replication(const core::ScenarioConfig& base,
                            std::uint64_t seed, const StealthSpec& spec,
                            const stealth::InjectionProfile* profile) {
    core::ScenarioConfig config = base;
    config.seed = seed;
    core::Scenario scenario(config);
    std::unique_ptr<security::Attack> attack;
    if (profile != nullptr) {
        security::AttackWindow window;
        window.start_s = spec.start_s;
        attack = stealth::make_profiled_attack(*profile, window,
                                               spec.victim_index,
                                               config.platoon_size);
        PLATOON_ASSERT(attack != nullptr);
        attack->attach(scenario);
    }
    DetectionHarness harness;
    harness.attach(scenario, profile != nullptr
                                 ? stealth::profile_key(*profile)
                                 : std::string("clean"));
    scenario.run_until(spec.horizon_s);
    g_replications.inc();

    Replication out;
    out.metric = scenario.summarize().as_map()[kStealthImpactMetric];
    const Dataset& dataset = harness.dataset();
    out.flags.assign(dataset.detectors.size(), 0);
    for (const DatasetRow& row : dataset.rows) {
        for (std::size_t d = 0; d < row.flags.size(); ++d)
            out.flags[d] += row.flags[d];
    }
    return out;
}

}  // namespace

StealthSpec stealth_spec_from(const scen::StealthOverrides& overrides,
                              std::uint64_t base_seed) {
    StealthSpec spec;
    for (const std::string& name : overrides.injections) {
        const auto kind = stealth::injection_from_name(name);
        PLATOON_ASSERT(kind.has_value());
        spec.injections.push_back(*kind);
    }
    spec.bounds.amplitude_min = overrides.amplitude_min;
    spec.bounds.amplitude_max = overrides.amplitude_max;
    spec.bounds.amplitude_steps = overrides.amplitude_steps;
    spec.bounds.ramp_min = overrides.ramp_min;
    spec.bounds.ramp_max = overrides.ramp_max;
    spec.bounds.ramp_steps = overrides.ramp_steps;
    spec.bounds.duty_min = overrides.duty_min;
    spec.bounds.duty_max = overrides.duty_max;
    spec.bounds.duty_steps = overrides.duty_steps;
    spec.bounds.duty_period_s = overrides.duty_period_s;
    spec.bounds.onset_max_s = overrides.onset_max_s;
    spec.cem_iterations = overrides.cem_iterations;
    spec.cem_population = overrides.cem_population;
    spec.cem_elites = overrides.cem_elites;
    spec.victim_index = overrides.victim_index;
    spec.start_s = overrides.start_s;
    spec.horizon_s = overrides.horizon_s;
    spec.seeds.clear();
    for (std::size_t k = 0; k < overrides.seeds; ++k)
        spec.seeds.push_back(base_seed + k);
    return spec;
}

StealthFrontierResult run_stealth_frontier(const core::ScenarioConfig& base,
                                           const StealthSpec& spec,
                                           unsigned jobs) {
    PLATOON_EXPECTS(!spec.seeds.empty());
    PLATOON_EXPECTS(!spec.injections.empty());

    StealthFrontierResult result;
    result.detectors = default_bank_names();
    for (std::size_t d = 0; d < result.detectors.size(); ++d) {
        const std::string& name = result.detectors[d];
        if (name == "innovation-gate" || name == "ewma-residual" ||
            name == "cusum-residual") {
            result.gate_detectors.push_back(d);
        }
    }

    // Clean baseline, one replication per seed (folded in seed order).
    {
        std::vector<std::function<Replication()>> cells;
        for (const std::uint64_t seed : spec.seeds) {
            cells.push_back([&base, seed, &spec] {
                return run_replication(base, seed, spec, nullptr);
            });
        }
        for (Replication& rep : core::run_grid(std::move(cells), jobs))
            result.clean_impact.push_back(rep.metric);
    }

    // The batch evaluator the search calls each round: fan the
    // (candidate x seed) product out via run_grid -- cells are independent
    // and fold in a fixed order, so the whole search is bit-identical at
    // any job count.
    const auto evaluate = [&](const std::vector<stealth::InjectionProfile>&
                                  batch) {
        std::vector<std::function<Replication()>> cells;
        for (const stealth::InjectionProfile& profile : batch) {
            for (const std::uint64_t seed : spec.seeds) {
                cells.push_back([&base, seed, &spec, &profile] {
                    return run_replication(base, seed, spec, &profile);
                });
            }
        }
        const std::vector<Replication> reps =
            core::run_grid(std::move(cells), jobs);

        std::vector<stealth::Outcome> outcomes;
        const std::size_t seeds = spec.seeds.size();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            stealth::Outcome outcome;
            outcome.detector_flags.assign(result.detectors.size(), 0);
            double impact_sum = 0.0;
            for (std::size_t s = 0; s < seeds; ++s) {
                const Replication& rep = reps[i * seeds + s];
                impact_sum += rep.metric - result.clean_impact[s];
                for (std::size_t d = 0; d < rep.flags.size(); ++d)
                    outcome.detector_flags[d] += rep.flags[d];
            }
            outcome.impact = impact_sum / static_cast<double>(seeds);
            for (std::size_t d = 0; d < outcome.detector_flags.size(); ++d) {
                outcome.total_alarms += outcome.detector_flags[d];
            }
            for (const std::size_t d : result.gate_detectors)
                outcome.gate_alarms += outcome.detector_flags[d];
            outcomes.push_back(std::move(outcome));
        }
        return outcomes;
    };

    for (const stealth::InjectionKind kind : spec.injections) {
        stealth::SearchSpec search_spec;
        search_spec.kind = kind;
        search_spec.bounds = spec.bounds;
        search_spec.cem_iterations = spec.cem_iterations;
        search_spec.cem_population = spec.cem_population;
        search_spec.cem_elites = spec.cem_elites;
        search_spec.seed = spec.seeds.front();

        StealthKindResult kind_result;
        kind_result.kind = kind;
        kind_result.search = stealth::search(search_spec, evaluate);
        for (std::size_t d = 0; d < result.detectors.size(); ++d) {
            kind_result.frontiers.push_back(
                stealth::pareto_frontier(kind_result.search.evaluated, d));
        }
        result.kinds.push_back(std::move(kind_result));
    }
    return result;
}

}  // namespace platoon::detect
