// The online detector bank: per-receiver misbehavior monitors that consume
// the feature stream of every observed message and flag suspicious ones as
// they arrive. Three statistical detectors (innovation gate, EWMA and CUSUM
// on the claimed-vs-radar residual), two protocol detectors (sequence
// freshness, maneuver-rate flood), and two thin adapters exposing the
// existing defense machinery (VPD-ADA quarantine, trust scores) as verdict
// streams -- so the benchmark scores the survey's mechanisms and the new
// detectors on the same per-message footing.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "detect/detectors.hpp"
#include "detect/features.hpp"

namespace platoon::core {
class PlatoonVehicle;
}

namespace platoon::detect {

/// A per-receiver online detector. `update` is called once per observed
/// message, in arrival order, and returns true when THIS message is flagged
/// as misbehavior. Must not mutate the receiver or the simulation.
class Detector {
public:
    virtual ~Detector() = default;
    virtual bool update(const Features& f,
                        const core::PlatoonVehicle& receiver) = 0;
};

/// A named detector factory: the harness instantiates one detector per
/// receiver so per-peer state never leaks across vehicles.
struct DetectorSpec {
    std::string name;
    std::function<std::unique_ptr<Detector>()> make;
};

/// Tuning knobs for the default bank. `threshold_scale` multiplies every
/// scalar alarm threshold (ROC sweeps); the protocol detectors and adapters
/// are binary tests and ignore it.
struct BankTuning {
    double threshold_scale = 1.0;
    InnovationGateParams gate{};   ///< On the position innovation.
    EwmaParams ewma{};             ///< On the claimed-vs-radar residual.
    CusumParams cusum{};           ///< On the claimed-vs-radar residual.
    double seq_jump = 1.0e4;       ///< Freshness: forward-jump alarm.
    double flood_window_s = 2.0;   ///< Maneuver-rate window.
    std::size_t flood_count = 4;   ///< Maneuvers in window before alarm.
};

/// The full default bank (7 detectors, stable order -- table row order and
/// dataset flag columns both follow it).
[[nodiscard]] std::vector<DetectorSpec> default_bank(
    const BankTuning& tuning = {});

/// Names of the detectors `default_bank` produces, in bank order.
[[nodiscard]] std::vector<std::string> default_bank_names();

}  // namespace platoon::detect
