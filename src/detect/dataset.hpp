// The labeled per-beacon dataset: one row per (receiver, observed message)
// with the extracted features, the oracle ground-truth label and each bank
// detector's verdict. Exported as long-format CSV so the detection corpus
// can be consumed outside the simulator (offline classifiers, plots); the
// reader round-trips the writer's output bit-exactly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "detect/features.hpp"

namespace platoon::detect {

/// One observed message: features + ground truth + per-detector verdicts
/// (in `Dataset::detectors` order).
struct DatasetRow {
    std::string run;  ///< Scenario tag, e.g. "replay/seed42".
    Features features;
    std::vector<std::uint8_t> flags;
};

struct Dataset {
    std::vector<std::string> detectors;  ///< Flag column names, bank order.
    std::vector<DatasetRow> rows;

    [[nodiscard]] std::size_t size() const { return rows.size(); }

    /// Appends another dataset (detector columns must match; the first
    /// append onto an empty dataset adopts the other's columns).
    void append(const Dataset& other);

    /// Long-format CSV: one header line, then one line per row.
    void write_csv(std::ostream& os) const;
    [[nodiscard]] std::string to_csv() const;

    /// Parses what `write_csv` produced. Returns std::nullopt on a
    /// malformed header or row.
    [[nodiscard]] static std::optional<Dataset> read_csv(std::istream& is);
    [[nodiscard]] static std::optional<Dataset> from_csv(
        const std::string& text);
};

/// Human-readable label for a ground-truth tag ("benign" or the Table II
/// attack name).
[[nodiscard]] std::string truth_label(const net::GroundTruth& truth);

}  // namespace platoon::detect
