#include "detect/dataset.hpp"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/taxonomy.hpp"
#include "sim/assert.hpp"

namespace platoon::detect {

namespace {

constexpr const char* kFixedColumns[] = {
    "run",          "time_s",
    "receiver",     "sender",
    "msg_type",     "seq",
    "accepted",     "predecessor",
    "claimed_position_m", "claimed_speed_mps",
    "claimed_accel_mps2", "innovation_m",
    "speed_jump_mps",     "jitter_s",
    "seq_delta",          "radar_residual_m",
    "label",              "attacker",
};
constexpr std::size_t kFixedCount = std::size(kFixedColumns);

std::string fmt(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

std::string fmt(const std::optional<double>& v) {
    return v ? fmt(*v) : std::string();
}

const char* type_name(net::MsgType type) {
    switch (type) {
        case net::MsgType::kBeacon: return "beacon";
        case net::MsgType::kManeuver: return "maneuver";
        case net::MsgType::kKeyMgmt: return "keymgmt";
    }
    return "?";
}

std::optional<net::MsgType> type_from(const std::string& name) {
    if (name == "beacon") return net::MsgType::kBeacon;
    if (name == "maneuver") return net::MsgType::kManeuver;
    if (name == "keymgmt") return net::MsgType::kKeyMgmt;
    return std::nullopt;
}

std::vector<std::string> split(const std::string& line) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
}

std::optional<double> parse_opt(const std::string& cell) {
    if (cell.empty()) return std::nullopt;
    return std::strtod(cell.c_str(), nullptr);
}

std::optional<net::GroundTruth> truth_from(const std::string& label,
                                           const std::string& attacker) {
    net::GroundTruth truth;
    if (label != "benign") {
        bool found = false;
        for (std::uint8_t k = 0;
             k < static_cast<std::uint8_t>(core::AttackKind::kCount_); ++k) {
            if (label == core::to_string(static_cast<core::AttackKind>(k))) {
                truth.attack = k;
                found = true;
                break;
            }
        }
        if (!found) return std::nullopt;
    }
    if (!attacker.empty())
        truth.attacker =
            static_cast<std::uint32_t>(std::strtoul(attacker.c_str(), nullptr, 10));
    return truth;
}

}  // namespace

std::string truth_label(const net::GroundTruth& truth) {
    if (!truth.malicious()) return "benign";
    if (truth.attack >= static_cast<std::uint8_t>(core::AttackKind::kCount_))
        return "unknown";
    return core::to_string(static_cast<core::AttackKind>(truth.attack));
}

void Dataset::append(const Dataset& other) {
    if (detectors.empty() && rows.empty()) detectors = other.detectors;
    PLATOON_EXPECTS(detectors == other.detectors);
    rows.insert(rows.end(), other.rows.begin(), other.rows.end());
}

void Dataset::write_csv(std::ostream& os) const {
    for (std::size_t i = 0; i < kFixedCount; ++i) {
        if (i != 0) os << ',';
        os << kFixedColumns[i];
    }
    for (const std::string& name : detectors) os << ",flag_" << name;
    os << '\n';

    for (const DatasetRow& row : rows) {
        const Features& f = row.features;
        PLATOON_EXPECTS(row.flags.size() == detectors.size());
        os << row.run << ',' << fmt(f.t) << ',' << f.receiver << ','
           << f.sender << ',' << type_name(f.type) << ',' << f.seq << ','
           << (f.accepted ? 1 : 0) << ',' << (f.sender_is_predecessor ? 1 : 0)
           << ',' << fmt(f.claimed_position_m) << ','
           << fmt(f.claimed_speed_mps) << ',' << fmt(f.claimed_accel_mps2)
           << ',' << fmt(f.innovation_m) << ',' << fmt(f.speed_jump_mps) << ','
           << fmt(f.jitter_s) << ',' << fmt(f.seq_delta) << ','
           << fmt(f.radar_residual_m) << ',' << truth_label(f.truth) << ',';
        if (f.truth.attacker != sim::NodeId::kInvalidValue) os << f.truth.attacker;
        for (const std::uint8_t flag : row.flags)
            os << ',' << (flag != 0 ? 1 : 0);
        os << '\n';
    }
}

std::string Dataset::to_csv() const {
    std::ostringstream os;
    write_csv(os);
    return os.str();
}

std::optional<Dataset> Dataset::read_csv(std::istream& is) {
    std::string line;
    if (!std::getline(is, line)) return std::nullopt;
    const std::vector<std::string> header = split(line);
    if (header.size() < kFixedCount) return std::nullopt;
    for (std::size_t i = 0; i < kFixedCount; ++i)
        if (header[i] != kFixedColumns[i]) return std::nullopt;

    Dataset ds;
    for (std::size_t i = kFixedCount; i < header.size(); ++i) {
        if (header[i].rfind("flag_", 0) != 0) return std::nullopt;
        ds.detectors.push_back(header[i].substr(5));
    }

    while (std::getline(is, line)) {
        if (line.empty()) continue;
        const std::vector<std::string> cells = split(line);
        if (cells.size() != kFixedCount + ds.detectors.size())
            return std::nullopt;

        DatasetRow row;
        Features& f = row.features;
        row.run = cells[0];
        f.t = std::strtod(cells[1].c_str(), nullptr);
        f.receiver = static_cast<std::uint32_t>(
            std::strtoul(cells[2].c_str(), nullptr, 10));
        f.sender = static_cast<std::uint32_t>(
            std::strtoul(cells[3].c_str(), nullptr, 10));
        const auto type = type_from(cells[4]);
        if (!type) return std::nullopt;
        f.type = *type;
        f.seq = std::strtoull(cells[5].c_str(), nullptr, 10);
        f.accepted = cells[6] == "1";
        f.sender_is_predecessor = cells[7] == "1";
        f.claimed_position_m = std::strtod(cells[8].c_str(), nullptr);
        f.claimed_speed_mps = std::strtod(cells[9].c_str(), nullptr);
        f.claimed_accel_mps2 = std::strtod(cells[10].c_str(), nullptr);
        f.innovation_m = parse_opt(cells[11]);
        f.speed_jump_mps = parse_opt(cells[12]);
        f.jitter_s = parse_opt(cells[13]);
        f.seq_delta = parse_opt(cells[14]);
        f.radar_residual_m = parse_opt(cells[15]);
        const auto truth = truth_from(cells[16], cells[17]);
        if (!truth) return std::nullopt;
        f.truth = *truth;
        for (std::size_t i = 0; i < ds.detectors.size(); ++i)
            row.flags.push_back(cells[kFixedCount + i] == "1" ? 1 : 0);
        ds.rows.push_back(std::move(row));
    }
    return ds;
}

std::optional<Dataset> Dataset::from_csv(const std::string& text) {
    std::istringstream is(text);
    return read_csv(is);
}

}  // namespace platoon::detect
