#include "detect/score.hpp"

#include <algorithm>
#include <unordered_set>

namespace platoon::detect {

double Confusion::precision() const {
    const std::uint64_t denom = tp + fp;
    return denom == 0 ? 1.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double Confusion::recall() const {
    const std::uint64_t denom = tp + fn;
    return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double Confusion::f1() const {
    const double p = precision();
    const double r = recall();
    return p + r <= 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double Confusion::false_positive_rate() const {
    const std::uint64_t denom = fp + tn;
    return denom == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(denom);
}

std::vector<DetectorScore> score_dataset(
    const Dataset& ds, double attack_start_s, double duration_s,
    const std::vector<rsu::TrustedAuthority::Isolation>& isolations) {
    // The identities an isolation can legitimately count against: every wire
    // identity that carried at least one malicious message (for replay and
    // impersonation that is the *abused* honest identity -- revoking the
    // stolen credential is exactly the isolation the paper describes).
    std::unordered_set<std::uint32_t> malicious_ids;
    for (const DatasetRow& row : ds.rows)
        if (row.features.truth.malicious())
            malicious_ids.insert(row.features.sender);

    std::vector<DetectorScore> scores;
    scores.reserve(ds.detectors.size());
    for (std::size_t d = 0; d < ds.detectors.size(); ++d) {
        DetectorScore score;
        score.detector = ds.detectors[d];
        for (const DatasetRow& row : ds.rows) {
            const bool flagged = row.flags[d] != 0;
            const bool malicious = row.features.truth.malicious();
            if (flagged && malicious) {
                ++score.confusion.tp;
                score.first_true_alarm_s =
                    std::min(score.first_true_alarm_s, row.features.t);
            } else if (flagged) {
                ++score.confusion.fp;
            } else if (malicious) {
                ++score.confusion.fn;
            } else {
                ++score.confusion.tn;
            }
        }
        if (score.first_true_alarm_s < kNever) {
            score.time_to_detect_s =
                std::max(0.0, score.first_true_alarm_s - attack_start_s);
            for (const auto& iso : isolations) {
                if (!malicious_ids.count(iso.subject.value)) continue;
                score.time_to_isolate_s =
                    std::min(score.time_to_isolate_s,
                             std::max(0.0, iso.at - score.first_true_alarm_s));
            }
        }
        if (duration_s > 0.0)
            score.false_alarms_per_hour =
                static_cast<double>(score.confusion.fp) * 3600.0 / duration_s;
        scores.push_back(std::move(score));
    }
    return scores;
}

}  // namespace platoon::detect
