// Scalar online change detectors: the statistical primitives the detector
// bank builds per-peer misbehavior monitors from. Each consumes one sample
// per update and answers "is this stream alarming *right now*" -- alarms are
// not latched, so a stream that returns to normal stops alarming and the
// per-message scoring stays honest.
//
// All three are textbook sequential tests (two-sided EWMA control chart,
// two-sided CUSUM, consecutive-exceedance gate) with exactly predictable
// detection delays on synthetic step inputs; the unit tests pin those delays.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace platoon::detect {

/// Exponentially-weighted moving average control chart. The EWMA starts at
/// zero and warms toward the stream mean, so a single outlier first sample
/// cannot alarm; on a constant step of height `s` the statistic reaches
/// s*(1-(1-alpha)^n) after n samples, giving an exact, testable delay.
///
/// The chart is two-sided: |EWMA| is compared against the threshold, so a
/// negative-direction step (slow-down spoof, negative spacing injection)
/// alarms with the same delay as a positive one. The detector bank happens
/// to feed absolute residuals, but the primitive must not rely on that.
struct EwmaParams {
    double alpha = 0.3;      ///< Smoothing weight of the newest sample.
    double threshold = 4.5;  ///< Alarm when |EWMA| exceeds this.
};

class EwmaDetector {
public:
    EwmaDetector() = default;
    explicit EwmaDetector(EwmaParams params) : params_(params) {}

    /// Ingests one sample; returns the post-update alarm state.
    bool update(double sample) {
        value_ = (1.0 - params_.alpha) * value_ + params_.alpha * sample;
        alarmed_ = std::abs(value_) > params_.threshold;
        return alarmed_;
    }

    [[nodiscard]] double value() const { return value_; }
    [[nodiscard]] bool alarmed() const { return alarmed_; }
    void reset() {
        value_ = 0.0;
        alarmed_ = false;
    }

private:
    EwmaParams params_;
    double value_ = 0.0;
    bool alarmed_ = false;
};

/// Two-sided CUSUM: the classic pair of one-sided charts,
///   S+ <- max(0, S+ + sample - drift)     (upward shifts)
///   S- <- max(0, S- - sample - drift)     (downward shifts)
/// alarming when either statistic exceeds the threshold. `drift` is the
/// per-sample allowance (set above the honest stream mean so both charts
/// hover at zero between attacks); on a constant step of height |s| > drift
/// the alarm fires after ceil(threshold / (|s| - drift)) samples in either
/// direction. On a non-negative input stream (e.g. the bank's absolute
/// residuals) the negative chart stays pinned at zero, so the two-sided
/// form is bit-identical to the historical one-sided chart there.
struct CusumParams {
    double drift = 3.0;
    double threshold = 12.0;
};

class CusumDetector {
public:
    CusumDetector() = default;
    explicit CusumDetector(CusumParams params) : params_(params) {}

    bool update(double sample) {
        statistic_ = std::max(0.0, statistic_ + sample - params_.drift);
        negative_statistic_ =
            std::max(0.0, negative_statistic_ - sample - params_.drift);
        alarmed_ = statistic_ > params_.threshold ||
                   negative_statistic_ > params_.threshold;
        return alarmed_;
    }

    [[nodiscard]] double statistic() const { return statistic_; }
    [[nodiscard]] double negative_statistic() const {
        return negative_statistic_;
    }
    [[nodiscard]] bool alarmed() const { return alarmed_; }
    void reset() {
        statistic_ = 0.0;
        negative_statistic_ = 0.0;
        alarmed_ = false;
    }

private:
    CusumParams params_;
    double statistic_ = 0.0;
    double negative_statistic_ = 0.0;
    bool alarmed_ = false;
};

/// Consecutive-exceedance gate: alarm while the last `consecutive` samples
/// all exceeded `gate`. One isolated noise spike (GPS glitch) cannot alarm;
/// a sustained implausibility alarms after exactly `consecutive` samples.
struct InnovationGateParams {
    double gate = 8.0;            ///< Per-sample exceedance threshold.
    std::size_t consecutive = 2;  ///< Run length required to alarm.
};

class InnovationGateDetector {
public:
    InnovationGateDetector() = default;
    explicit InnovationGateDetector(InnovationGateParams params)
        : params_(params) {}

    bool update(double sample) {
        if (sample > params_.gate) {
            ++run_;
        } else {
            run_ = 0;
        }
        return alarmed();
    }

    [[nodiscard]] std::size_t run_length() const { return run_; }
    [[nodiscard]] bool alarmed() const { return run_ >= params_.consecutive; }
    void reset() { run_ = 0; }

private:
    InnovationGateParams params_;
    std::size_t run_ = 0;
};

}  // namespace platoon::detect
