#include "detect/bank.hpp"

#include <deque>
#include <unordered_map>
#include <utility>

#include "core/vehicle.hpp"

namespace platoon::detect {

namespace {

/// Consecutive implausible position innovations on one claimed identity.
/// Catches streams that teleport (replay splices a 3-second-old trajectory
/// into the live one) while a lone GPS glitch cannot reach the run length.
class InnovationStreamDetector final : public Detector {
public:
    explicit InnovationStreamDetector(InnovationGateParams params)
        : params_(params) {}

    bool update(const Features& f, const core::PlatoonVehicle&) override {
        if (!f.innovation_m) return false;
        auto [it, inserted] = gates_.try_emplace(f.sender, params_);
        return it->second.update(*f.innovation_m);
    }

private:
    InnovationGateParams params_;
    std::unordered_map<std::uint32_t, InnovationGateDetector> gates_;
};

/// EWMA chart on the claimed-vs-radar gap residual of the predecessor
/// stream: the receiver's own ranging sensor contradicting what the
/// predecessor claims (FDI offsets, GPS-spoofed victims, ghost platoons).
class EwmaResidualDetector final : public Detector {
public:
    explicit EwmaResidualDetector(EwmaParams params) : params_(params) {}

    bool update(const Features& f, const core::PlatoonVehicle&) override {
        if (!f.radar_residual_m) return false;
        auto [it, inserted] = charts_.try_emplace(f.sender, params_);
        return it->second.update(*f.radar_residual_m);
    }

private:
    EwmaParams params_;
    std::unordered_map<std::uint32_t, EwmaDetector> charts_;
};

/// One-sided CUSUM on the same residual: slower on big steps than the EWMA
/// but accumulates small persistent lies the EWMA smooths away.
class CusumResidualDetector final : public Detector {
public:
    explicit CusumResidualDetector(CusumParams params) : params_(params) {}

    bool update(const Features& f, const core::PlatoonVehicle&) override {
        if (!f.radar_residual_m) return false;
        auto [it, inserted] = charts_.try_emplace(f.sender, params_);
        return it->second.update(*f.radar_residual_m);
    }

private:
    CusumParams params_;
    std::unordered_map<std::uint32_t, CusumDetector> charts_;
};

/// Sequence freshness: a per-identity counter must advance by small positive
/// steps. A regression is a replayed or duplicated frame; a huge forward
/// jump is a second transmitter out-running the victim's counter to beat
/// replay guards (impersonation).
class FreshnessDetector final : public Detector {
public:
    explicit FreshnessDetector(double seq_jump) : seq_jump_(seq_jump) {}

    bool update(const Features& f, const core::PlatoonVehicle&) override {
        if (!f.seq_delta) return false;
        return *f.seq_delta <= 0.0 || *f.seq_delta > seq_jump_;
    }

private:
    double seq_jump_;
};

/// Maneuver-rate flood gate: counts maneuver messages (any sender) in a
/// sliding window. Join handshakes are a handful of messages; a DoS
/// join-flood is tens per second.
class ManeuverRateDetector final : public Detector {
public:
    ManeuverRateDetector(double window_s, std::size_t count)
        : window_s_(window_s), count_(count) {}

    bool update(const Features& f, const core::PlatoonVehicle&) override {
        if (f.type != net::MsgType::kManeuver) return false;
        arrivals_.push_back(f.t);
        while (!arrivals_.empty() && arrivals_.front() < f.t - window_s_)
            arrivals_.pop_front();
        return arrivals_.size() > count_;
    }

private:
    double window_s_;
    std::size_t count_;
    std::deque<sim::SimTime> arrivals_;
};

/// Adapter: the existing VPD-ADA gap-discrepancy defense as a verdict
/// stream. While the receiver's detector is quarantining its predecessor
/// feed, every predecessor beacon is flagged.
class VpdAdaAdapter final : public Detector {
public:
    bool update(const Features& f,
                const core::PlatoonVehicle& receiver) override {
        if (f.type != net::MsgType::kBeacon || !f.sender_is_predecessor)
            return false;
        return receiver.vpd().quarantined(f.t);
    }
};

/// Adapter: the trust-management scores as a verdict stream -- any message
/// from a peer the receiver currently distrusts is flagged.
class TrustAdapter final : public Detector {
public:
    bool update(const Features& f,
                const core::PlatoonVehicle& receiver) override {
        return !receiver.trust().trusted(f.sender);
    }
};

}  // namespace

std::vector<DetectorSpec> default_bank(const BankTuning& tuning) {
    InnovationGateParams gate = tuning.gate;
    gate.gate *= tuning.threshold_scale;
    EwmaParams ewma = tuning.ewma;
    ewma.threshold *= tuning.threshold_scale;
    CusumParams cusum = tuning.cusum;
    cusum.threshold *= tuning.threshold_scale;

    std::vector<DetectorSpec> bank;
    bank.push_back({"innovation-gate", [gate] {
                        return std::make_unique<InnovationStreamDetector>(gate);
                    }});
    bank.push_back({"ewma-residual", [ewma] {
                        return std::make_unique<EwmaResidualDetector>(ewma);
                    }});
    bank.push_back({"cusum-residual", [cusum] {
                        return std::make_unique<CusumResidualDetector>(cusum);
                    }});
    bank.push_back({"freshness", [jump = tuning.seq_jump] {
                        return std::make_unique<FreshnessDetector>(jump);
                    }});
    bank.push_back(
        {"maneuver-rate", [w = tuning.flood_window_s, n = tuning.flood_count] {
             return std::make_unique<ManeuverRateDetector>(w, n);
         }});
    bank.push_back(
        {"vpd-ada", [] { return std::make_unique<VpdAdaAdapter>(); }});
    bank.push_back({"trust", [] { return std::make_unique<TrustAdapter>(); }});
    return bank;
}

std::vector<std::string> default_bank_names() {
    std::vector<std::string> names;
    for (const DetectorSpec& spec : default_bank()) names.push_back(spec.name);
    return names;
}

}  // namespace platoon::detect
