// Stealth-frontier evaluation: glues the attacker optimization loop
// (security/stealth/) to the detection harness. For each injection kind the
// search proposes candidate profiles; this layer runs each candidate over
// the seeded replications (scenario + profiled attack + detector bank),
// folds impact and per-detector alarm counts bit-identically at any
// PLATOON_JOBS via core::run_grid, and compiles the per-detector
// stealth-impact Pareto frontiers the Table VI bench prints.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "scen/schema.hpp"
#include "security/stealth/search.hpp"

namespace platoon::detect {

/// Resolved stealth-frontier experiment description (the scen layer parses
/// `overrides.stealth` into its own mirror of this and the bench converts;
/// scen cannot include security, so the structs stay separate).
struct StealthSpec {
    std::vector<security::stealth::InjectionKind> injections;
    security::stealth::ProfileBounds bounds;
    std::size_t cem_iterations = 2;
    std::size_t cem_population = 12;
    std::size_t cem_elites = 4;
    std::size_t victim_index = 3;
    double start_s = 20.0;    ///< Attack window opens (TTD anchor).
    double horizon_s = 70.0;  ///< Replication length.
    std::vector<std::uint64_t> seeds = {42};
};

/// The impact the attacker maximizes: attacked-minus-clean peak absolute
/// spacing error, averaged over the replication seeds.
inline constexpr const char* kStealthImpactMetric = "spacing_max_abs_m";

struct StealthKindResult {
    security::stealth::InjectionKind kind;
    security::stealth::SearchResult search;
    /// Per-detector Pareto frontier over every evaluated candidate, indexed
    /// like the bank (frontiers[d] pairs with detectors[d]).
    std::vector<std::vector<security::stealth::FrontierPoint>> frontiers;
};

struct StealthFrontierResult {
    std::vector<std::string> detectors;       ///< Bank order.
    std::vector<std::size_t> gate_detectors;  ///< Threshold-gate indices.
    std::vector<double> clean_impact;         ///< Clean metric per seed.
    std::vector<StealthKindResult> kinds;     ///< In spec.injections order.
};

[[nodiscard]] StealthFrontierResult run_stealth_frontier(
    const core::ScenarioConfig& base, const StealthSpec& spec,
    unsigned jobs = 0);

/// Lowers a validated `overrides.stealth` block onto the concrete spec
/// (scen carries injection names as strings because it sits below security
/// in the layering DAG; this is the one sanctioned crossing). Replication
/// seeds enumerate base_seed, base_seed+1, ... as the description's seed
/// axis does. Asserts on names the scen validator would have rejected.
[[nodiscard]] StealthSpec stealth_spec_from(
    const scen::StealthOverrides& overrides, std::uint64_t base_seed);

}  // namespace platoon::detect
