// Detection-quality scoring: per-message confusion matrices, precision /
// recall / F1, time-to-detect (attack start -> first true alarm),
// time-to-isolation (first true alarm -> the TA's quorum adjudication of a
// malicious identity), and false-alarm rate -- the columns of Table IV.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "detect/dataset.hpp"
#include "rsu/trusted_authority.hpp"

namespace platoon::detect {

inline constexpr double kNever = std::numeric_limits<double>::infinity();

/// Per-message confusion counts: a flagged malicious message is a TP, a
/// flagged benign one an FP, and so on. "Malicious" is the oracle label.
struct Confusion {
    std::uint64_t tp = 0;
    std::uint64_t fp = 0;
    std::uint64_t fn = 0;
    std::uint64_t tn = 0;

    [[nodiscard]] std::uint64_t positives() const { return tp + fn; }
    [[nodiscard]] std::uint64_t flagged() const { return tp + fp; }
    /// Precision; 1.0 when nothing was flagged (no false alarms).
    [[nodiscard]] double precision() const;
    /// Recall; defined only when positives exist (else returns 0).
    [[nodiscard]] double recall() const;
    [[nodiscard]] double f1() const;
    /// FP / (FP + TN); 0 when no benign traffic was observed.
    [[nodiscard]] double false_positive_rate() const;
};

/// One detector's score over one run.
struct DetectorScore {
    std::string detector;
    Confusion confusion;
    /// Simulation time of the first true alarm (kNever: none).
    double first_true_alarm_s = kNever;
    /// First true alarm minus the attack window start (kNever: undetected).
    double time_to_detect_s = kNever;
    /// TA adjudication of a malicious identity minus the first true alarm
    /// (kNever: the reporter quorum was never reached).
    double time_to_isolate_s = kNever;
    double false_alarms_per_hour = 0.0;
};

/// Scores every detector column of `ds` against its ground-truth labels.
/// `attack_start_s` anchors the TTD; `duration_s` normalizes the FA rate;
/// `isolations` is the TA's adjudication log for the same run.
[[nodiscard]] std::vector<DetectorScore> score_dataset(
    const Dataset& ds, double attack_start_s, double duration_s,
    const std::vector<rsu::TrustedAuthority::Isolation>& isolations);

/// One operating point of a threshold sweep (ROC curve).
struct RocPoint {
    double threshold_scale = 1.0;
    double true_positive_rate = 0.0;
    double false_positive_rate = 0.0;
};

}  // namespace platoon::detect
