// Per-received-message feature extraction: turns the raw message stream one
// receiver observes into the scalar residuals the detector bank and the
// exported dataset consume. Everything here is computed from information the
// receiver legitimately has (its own claims history for the sender, its own
// radar, its own position estimate) -- the oracle ground-truth label rides
// along for scoring but feeds no feature.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/message.hpp"
#include "sim/types.hpp"

namespace platoon::detect {

/// The feature vector for one received message, as seen by one receiver.
struct Features {
    sim::SimTime t = 0.0;
    std::uint32_t receiver = sim::NodeId::kInvalidValue;  ///< Physical id.
    std::uint32_t sender = sim::NodeId::kInvalidValue;    ///< Claimed (wire).
    net::MsgType type = net::MsgType::kBeacon;
    std::uint64_t seq = 0;
    bool accepted = true;  ///< Did the receiver's defense gates let it in?
    bool sender_is_predecessor = false;

    // Beacon claims (zero for non-beacons).
    double claimed_position_m = 0.0;
    double claimed_speed_mps = 0.0;
    double claimed_accel_mps2 = 0.0;

    /// |claimed position - constant-accel prediction from this sender's
    /// previous claim|. Unset on the first claim of a stream or after a gap
    /// longer than the prediction horizon.
    std::optional<double> innovation_m;
    /// |claimed speed - predicted speed| over the same horizon.
    std::optional<double> speed_jump_mps;
    /// |beacon inter-arrival - nominal period| for this sender's stream.
    std::optional<double> jitter_s;
    /// seq minus the previous seq observed from this wire identity (signed:
    /// a replayed frame regresses, an impersonator out-running the victim's
    /// counter jumps).
    std::optional<double> seq_delta;
    /// |claimed gap to the receiver - radar-measured gap|, only when the
    /// sender is the receiver's predecessor and a radar return exists.
    std::optional<double> radar_residual_m;

    /// Oracle label (never an input to any detector).
    // platoonlint: allow(oracle-isolation) carrier field: rides along for the scorer/exporter, feeds no feature
    net::GroundTruth truth;
};

/// Stateful per-receiver extractor: tracks one claims/arrival/seq stream per
/// wire identity and emits one Features row per observed message.
class FeatureExtractor {
public:
    struct Params {
        double beacon_period_s = 0.1;       ///< Nominal beacon cadence.
        double prediction_horizon_s = 1.0;  ///< Max age of a usable claim.
    };

    /// Everything the harness hands over for one observed message.
    struct Input {
        sim::SimTime now = 0.0;
        std::uint32_t receiver = sim::NodeId::kInvalidValue;
        std::uint32_t sender = sim::NodeId::kInvalidValue;
        net::MsgType type = net::MsgType::kBeacon;
        std::uint64_t seq = 0;
        bool accepted = true;
        bool sender_is_predecessor = false;
        const net::Beacon* beacon = nullptr;           ///< Null: non-beacon.
        std::optional<double> own_position_m;          ///< Receiver estimate.
        std::optional<double> radar_gap_m;             ///< Latest radar read.
        // platoonlint: allow(oracle-isolation) carrier field: the harness stamps the label here, no feature reads it
        net::GroundTruth truth;
    };

    FeatureExtractor() = default;
    explicit FeatureExtractor(Params params) : params_(params) {}

    /// Computes the feature row for one message and advances the stream
    /// state (rejected messages still advance it: the stream is what the
    /// receiver *observed*, not what it believed).
    Features update(const Input& in);

private:
    struct Stream {
        bool has_claim = false;
        double position_m = 0.0;
        double speed_mps = 0.0;
        double accel_mps2 = 0.0;
        sim::SimTime claim_at = 0.0;
        bool has_arrival = false;
        sim::SimTime arrival_at = 0.0;
        bool has_seq = false;
        std::uint64_t seq = 0;
    };

    Params params_;
    std::unordered_map<std::uint32_t, Stream> streams_;
};

}  // namespace platoon::detect
