// The detection benchmark harness: installs the feature extractor and the
// detector bank on every platoon member as a passive message-observer tap,
// collects the labeled dataset, and scores the bank against the Table II
// attack suite (the "Table IV" the bench binary prints).
//
// Run helpers follow the determinism contract of core::run_grid: per-seed
// scenarios are fully independent, results fold in seed/cell order, and the
// output is bit-identical at any job count.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "core/taxonomy.hpp"
#include "detect/bank.hpp"
#include "detect/dataset.hpp"
#include "detect/score.hpp"
#include "sim/trace.hpp"

namespace platoon::detect {

using core::AttackKind;

/// The detection scenario: the canonical evaluation platoon (6 trucks, PATH
/// CACC, braking at t=40 s, attacks from t=20 s) with the misbehavior
/// ecosystem switched on (VPD-ADA, trust management, reporting, 4 RSUs) but
/// an open broadcast channel -- detection, not cryptography, is the defense
/// layer under test. Impersonation rows are normalized to a signed baseline
/// by the run helpers (the attack presumes stolen credentials).
[[nodiscard]] core::ScenarioConfig detection_config(std::uint64_t seed = 42);

/// Table II attack window start in the evaluation scenario (TTD anchor).
inline constexpr double kAttackStartTime = 20.0;

/// Installs one FeatureExtractor + one detector-bank instance per platoon
/// member and records every observed message as a labeled dataset row.
/// Purely passive: observers read cached state only, so an instrumented
/// scenario stays bit-identical to an uninstrumented one.
class DetectionHarness {
public:
    explicit DetectionHarness(const BankTuning& tuning = {});
    DetectionHarness(const DetectionHarness&) = delete;
    DetectionHarness& operator=(const DetectionHarness&) = delete;

    /// Instruments the platoon members of `scenario` (not attacker
    /// platforms). `run_tag` labels the dataset rows, e.g. "replay/seed42".
    void attach(core::Scenario& scenario, std::string run_tag);

    /// Instruments one extra vehicle (e.g. the DoS row's legitimate joiner).
    void attach_vehicle(core::PlatoonVehicle& vehicle);

    [[nodiscard]] const Dataset& dataset() const { return dataset_; }
    [[nodiscard]] Dataset take_dataset() { return std::move(dataset_); }
    /// Per-receiver residual time series (innovation, radar residual).
    [[nodiscard]] sim::TraceRecorder& traces() { return traces_; }

private:
    struct Receiver {
        FeatureExtractor extractor;
        std::vector<std::unique_ptr<Detector>> detectors;
    };

    void observe(const core::PlatoonVehicle& vehicle,
                 const core::PlatoonVehicle::MessageObservation& obs);

    BankTuning tuning_;
    std::vector<DetectorSpec> bank_;
    core::Scenario* scenario_ = nullptr;
    std::string run_tag_;
    std::map<std::uint32_t, Receiver> receivers_;
    Dataset dataset_;
    sim::TraceRecorder traces_;
};

/// One scored replication at `config.seed` exactly.
struct DetectionResult {
    Dataset dataset;  ///< Empty when keep_dataset was false.
    std::vector<DetectorScore> scores;
    std::vector<rsu::TrustedAuthority::Isolation> isolations;
};

[[nodiscard]] DetectionResult run_detection_once(core::ScenarioConfig config,
                                                 AttackKind kind,
                                                 bool with_attack,
                                                 const BankTuning& tuning = {},
                                                 bool keep_dataset = true);

/// Seed-aggregated score of one detector on one attack cell.
struct DetectorSummary {
    std::string detector;
    double precision = 1.0;          ///< Mean over seeds.
    double recall = 0.0;             ///< Mean over seeds.
    double f1 = 0.0;                 ///< Mean over seeds.
    double false_positive_rate = 0.0;
    double false_alarms_per_hour = 0.0;
    double detect_rate = 0.0;        ///< Seeds with >=1 true alarm.
    double mean_ttd_s = kNever;      ///< Over detected seeds.
    double isolate_rate = 0.0;       ///< Seeds whose alarms led to the TA.
    double mean_tti_s = kNever;      ///< Over isolated seeds.
    double malicious_rows = 0.0;     ///< Mean labeled-malicious rows.
    double flagged_rows = 0.0;       ///< Mean flagged rows.
};

/// One (attack, tuning) cell of the detection grid.
struct DetectionCell {
    core::ScenarioConfig config;
    AttackKind kind = AttackKind::kReplay;
    bool with_attack = true;
    std::size_t seeds = 1;
    BankTuning tuning{};
};

/// Fans the grid out at (cell x seed) granularity over `jobs` workers
/// (jobs=0 -> core::default_jobs()) and returns per-cell seed-aggregated
/// summaries in cell order, one entry per bank detector.
[[nodiscard]] std::vector<std::vector<DetectorSummary>> run_detection_grid(
    const std::vector<DetectionCell>& cells, unsigned jobs = 0);

}  // namespace platoon::detect
