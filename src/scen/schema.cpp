#include "scen/schema.hpp"

#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>

namespace platoon::scen {

namespace {

/// Joins registry names for an "expected one of ..." error tail.
std::string join_names(const std::vector<std::string>& names) {
    std::string out;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i > 0) out += ", ";
        out += names[i];
    }
    return out;
}

/// Carries the first diagnostic; later checks become no-ops once set.
struct Diag {
    std::string message;
    bool failed = false;

    void fail(const std::string& path, const std::string& what) {
        if (failed) return;
        failed = true;
        message = path + ": " + what;
    }
};

/// Rejects document keys outside `allowed` (typo guard for the whole DSL).
void check_keys(const obs::Json& object, const std::string& path,
                const std::set<std::string>& allowed, Diag& diag) {
    for (const auto& [key, value] : object.as_object()) {
        (void)value;
        if (allowed.count(key) == 0) {
            std::vector<std::string> candidates(allowed.begin(),
                                                allowed.end());
            diag.fail(path, "unknown key '" + key + "'" +
                                suggest(key, candidates) +
                                "; expected one of: " +
                                join_names(candidates));
            return;
        }
    }
}

bool want_bool(const obs::Json& v, const std::string& path, Diag& diag,
               bool* out) {
    if (v.type() != obs::Json::Type::kBool) {
        diag.fail(path, "expected true/false");
        return false;
    }
    *out = v.as_bool();
    return true;
}

bool want_int(const obs::Json& v, const std::string& path, std::int64_t lo,
              std::int64_t hi, Diag& diag, std::int64_t* out) {
    if (!v.is_int()) {
        diag.fail(path, "expected an integer");
        return false;
    }
    const std::int64_t value = v.as_int();
    if (value < lo || value > hi) {
        diag.fail(path, "value " + std::to_string(value) +
                            " out of range [" + std::to_string(lo) + ", " +
                            std::to_string(hi) + "]");
        return false;
    }
    *out = value;
    return true;
}

bool want_double(const obs::Json& v, const std::string& path, double lo,
                 double hi, Diag& diag, double* out) {
    if (!v.is_number()) {
        diag.fail(path, "expected a number");
        return false;
    }
    const double value = v.as_double();
    if (value < lo || value > hi) {
        std::ostringstream os;
        os << "value " << value << " out of range [" << lo << ", " << hi
           << "]";
        diag.fail(path, os.str());
        return false;
    }
    *out = value;
    return true;
}

bool want_string(const obs::Json& v, const std::string& path, Diag& diag,
                 std::string* out) {
    if (!v.is_string()) {
        diag.fail(path, "expected a string");
        return false;
    }
    *out = v.as_string();
    return true;
}

// -----------------------------------------------------------------------
// Config overrides.

void apply_security_overrides(const obs::Json& sec, const std::string& path,
                              security::SecurityPolicy& policy, Diag& diag) {
    static const std::set<std::string> kKeys = {
        "auth_mode",       "encrypt_payloads",    "freshness_window_s",
        "check_replay",    "pseudonym_rotation_s", "vpd_ada",
        "trust_management", "hybrid_comms",        "sensor_fusion",
        "firewall",        "antivirus",           "report_misbehavior",
        "join_rate_limit_s"};
    if (!sec.is_object()) {
        diag.fail(path, "expected an object");
        return;
    }
    check_keys(sec, path, kKeys, diag);
    if (diag.failed) return;
    for (const auto& [key, value] : sec.as_object()) {
        const std::string at = path + "." + key;
        if (key == "auth_mode") {
            std::string name;
            if (!want_string(value, at, diag, &name)) return;
            const auto mode = auth_mode_from_name(name);
            if (!mode) {
                diag.fail(at, "unknown auth mode '" + name + "'" +
                                  suggest(name, auth_mode_names()) +
                                  "; expected one of: " +
                                  join_names(auth_mode_names()));
                return;
            }
            policy.auth_mode = *mode;
        } else if (key == "encrypt_payloads") {
            if (!want_bool(value, at, diag, &policy.encrypt_payloads)) return;
        } else if (key == "freshness_window_s") {
            if (!want_double(value, at, 1e-3, 10.0, diag,
                             &policy.freshness_window_s))
                return;
        } else if (key == "check_replay") {
            if (!want_bool(value, at, diag, &policy.check_replay)) return;
        } else if (key == "pseudonym_rotation_s") {
            if (!want_double(value, at, 0.0, 1e6, diag,
                             &policy.pseudonym_rotation_s))
                return;
        } else if (key == "vpd_ada") {
            if (!want_bool(value, at, diag, &policy.vpd_ada)) return;
        } else if (key == "trust_management") {
            if (!want_bool(value, at, diag, &policy.trust_management)) return;
        } else if (key == "hybrid_comms") {
            if (!want_bool(value, at, diag, &policy.hybrid_comms)) return;
        } else if (key == "sensor_fusion") {
            if (!want_bool(value, at, diag, &policy.sensor_fusion)) return;
        } else if (key == "firewall") {
            if (!want_bool(value, at, diag, &policy.firewall)) return;
        } else if (key == "antivirus") {
            if (!want_bool(value, at, diag, &policy.antivirus)) return;
        } else if (key == "report_misbehavior") {
            if (!want_bool(value, at, diag, &policy.report_misbehavior))
                return;
        } else if (key == "join_rate_limit_s") {
            if (!want_double(value, at, 0.0, 60.0, diag,
                             &policy.join_rate_limit_s))
                return;
        }
    }
}

// Corridor topology: extra platoons sharing the channel plus scripted
// traffic events between them (core::PlatoonSpec / core::CorridorEvent).

void apply_platoons_override(const obs::Json& arr, const std::string& path,
                             core::ScenarioConfig& config, Diag& diag) {
    static const std::set<std::string> kKeys = {"size", "start_offset_m",
                                                "lane", "speed_delta_mps"};
    if (!arr.is_array() || arr.as_array().empty()) {
        diag.fail(path, "expected a non-empty array of platoon objects");
        return;
    }
    const obs::Json::Array& items = arr.as_array();
    if (items.size() > 63) {
        // corridor_node() packs platoon*100 + index below the attacker id
        // range (9001+); 63 platoons of 99 tops out at node 8399.
        diag.fail(path, "at most 63 extra platoons fit the node-id space");
        return;
    }
    config.extra_platoons.clear();
    for (std::size_t i = 0; i < items.size(); ++i) {
        const std::string at = path + "[" + std::to_string(i) + "]";
        if (!items[i].is_object()) {
            diag.fail(at, "expected an object");
            return;
        }
        check_keys(items[i], at, kKeys, diag);
        if (diag.failed) return;
        core::PlatoonSpec spec;
        const obs::Json& size = items[i].at("size");
        if (!size.is_null()) {
            std::int64_t n = 0;
            if (!want_int(size, at + ".size", 2, 99, diag, &n)) return;
            spec.size = static_cast<std::size_t>(n);
        }
        const obs::Json& offset = items[i].at("start_offset_m");
        if (!offset.is_null() &&
            !want_double(offset, at + ".start_offset_m", -1e6, 1e6, diag,
                         &spec.start_offset_m))
            return;
        const obs::Json& lane = items[i].at("lane");
        if (!lane.is_null()) {
            std::int64_t n = 0;
            if (!want_int(lane, at + ".lane", 0, 7, diag, &n)) return;
            spec.lane = static_cast<std::uint8_t>(n);
        }
        const obs::Json& delta = items[i].at("speed_delta_mps");
        if (!delta.is_null() &&
            !want_double(delta, at + ".speed_delta_mps", -20.0, 20.0, diag,
                         &spec.speed_delta_mps))
            return;
        config.extra_platoons.push_back(spec);
    }
}

const std::vector<std::string>& corridor_event_names() {
    static const std::vector<std::string> kNames = {"merge", "split",
                                                    "cut-in", "rsu-handoff"};
    return kNames;
}

std::optional<core::CorridorEvent::Kind> corridor_event_from_name(
    const std::string& name) {
    using Kind = core::CorridorEvent::Kind;
    if (name == "merge") return Kind::kMerge;
    if (name == "split") return Kind::kSplit;
    if (name == "cut-in") return Kind::kCutIn;
    if (name == "rsu-handoff") return Kind::kRsuHandoff;
    return std::nullopt;
}

void apply_corridor_override(const obs::Json& arr, const std::string& path,
                             core::ScenarioConfig& config, Diag& diag) {
    static const std::set<std::string> kKeys = {"event", "at_s", "platoon",
                                                "index"};
    if (!arr.is_array() || arr.as_array().empty()) {
        diag.fail(path, "expected a non-empty array of event objects");
        return;
    }
    const obs::Json::Array& items = arr.as_array();
    config.corridor.clear();
    for (std::size_t i = 0; i < items.size(); ++i) {
        const std::string at = path + "[" + std::to_string(i) + "]";
        if (!items[i].is_object()) {
            diag.fail(at, "expected an object");
            return;
        }
        check_keys(items[i], at, kKeys, diag);
        if (diag.failed) return;
        core::CorridorEvent event;
        std::string name;
        if (items[i].at("event").is_null()) {
            diag.fail(at, "missing required key 'event'");
            return;
        }
        if (!want_string(items[i].at("event"), at + ".event", diag, &name))
            return;
        const auto kind = corridor_event_from_name(name);
        if (!kind) {
            diag.fail(at + ".event",
                      "unknown corridor event '" + name + "'" +
                          suggest(name, corridor_event_names()) +
                          "; expected one of: " +
                          join_names(corridor_event_names()));
            return;
        }
        event.kind = *kind;
        if (items[i].at("at_s").is_null()) {
            diag.fail(at, "missing required key 'at_s'");
            return;
        }
        if (!want_double(items[i].at("at_s"), at + ".at_s", 0.0, 1e6, diag,
                         &event.at))
            return;
        const obs::Json& platoon = items[i].at("platoon");
        if (!platoon.is_null()) {
            std::int64_t n = 0;
            if (!want_int(platoon, at + ".platoon", 0, 63, diag, &n)) return;
            event.platoon = static_cast<std::size_t>(n);
        }
        const obs::Json& index = items[i].at("index");
        if (!index.is_null()) {
            std::int64_t n = 0;
            if (!want_int(index, at + ".index", 0, 98, diag, &n)) return;
            event.index = static_cast<std::size_t>(n);
        }
        config.corridor.push_back(event);
    }
}

// Stealth-frontier block (`overrides.stealth`, top-level only).

template <typename T, typename Lookup, typename ExpandAll>
std::vector<T> parse_name_axis(const obs::Json& axis, const std::string& path,
                               const std::vector<std::string>& known,
                               Lookup lookup, ExpandAll expand_all,
                               Diag& diag);

/// Parses one {"min": x, "max": y, "steps": n} axis of the search box.
void parse_stealth_axis(const obs::Json& axis, const std::string& path,
                        double lo, double hi, double* min_out,
                        double* max_out, std::size_t* steps_out, Diag& diag) {
    static const std::set<std::string> kKeys = {"min", "max", "steps"};
    if (!axis.is_object()) {
        diag.fail(path, "expected an object {\"min\", \"max\", \"steps\"}");
        return;
    }
    check_keys(axis, path, kKeys, diag);
    if (diag.failed) return;
    const obs::Json& min = axis.at("min");
    if (!min.is_null() &&
        !want_double(min, path + ".min", lo, hi, diag, min_out))
        return;
    const obs::Json& max = axis.at("max");
    if (!max.is_null() &&
        !want_double(max, path + ".max", lo, hi, diag, max_out))
        return;
    if (*max_out < *min_out) {
        diag.fail(path, "max must be >= min");
        return;
    }
    const obs::Json& steps = axis.at("steps");
    if (!steps.is_null()) {
        std::int64_t n = 0;
        if (!want_int(steps, path + ".steps", 1, 32, diag, &n)) return;
        *steps_out = static_cast<std::size_t>(n);
    }
}

void parse_stealth_overrides(const obs::Json& doc, const std::string& path,
                             StealthOverrides& out, Diag& diag) {
    static const std::set<std::string> kKeys = {
        "injections", "victim_index", "start_s",       "horizon_s",
        "amplitude",  "ramp",         "duty",          "duty_period_s",
        "onset_max_s", "cem",         "seeds"};
    if (!doc.is_object()) {
        diag.fail(path, "expected an object");
        return;
    }
    check_keys(doc, path, kKeys, diag);
    if (diag.failed) return;

    const obs::Json& injections = doc.at("injections");
    if (injections.is_null()) {
        diag.fail(path, "missing required key 'injections'");
        return;
    }
    const std::vector<std::string> known = stealth_injection_names();
    out.injections = parse_name_axis<std::string>(
        injections, path + ".injections", known,
        [&](const std::string& name) -> std::optional<std::string> {
            for (const std::string& k : known)
                if (k == name) return name;
            return std::nullopt;
        },
        [&] { return known; }, diag);
    if (diag.failed) return;

    const obs::Json& victim = doc.at("victim_index");
    if (!victim.is_null()) {
        std::int64_t n = 0;
        if (!want_int(victim, path + ".victim_index", 1, 63, diag, &n))
            return;
        out.victim_index = static_cast<std::size_t>(n);
    }
    const obs::Json& start = doc.at("start_s");
    if (!start.is_null() &&
        !want_double(start, path + ".start_s", 0.0, 1e6, diag, &out.start_s))
        return;
    const obs::Json& horizon = doc.at("horizon_s");
    if (!horizon.is_null() &&
        !want_double(horizon, path + ".horizon_s", 1.0, 1e6, diag,
                     &out.horizon_s))
        return;
    if (out.horizon_s <= out.start_s) {
        diag.fail(path, "horizon_s must be greater than start_s (the "
                        "injection window must fit inside the replication)");
        return;
    }
    if (!doc.at("amplitude").is_null()) {
        parse_stealth_axis(doc.at("amplitude"), path + ".amplitude", 0.0,
                           100.0, &out.amplitude_min, &out.amplitude_max,
                           &out.amplitude_steps, diag);
        if (diag.failed) return;
    }
    if (!doc.at("ramp").is_null()) {
        parse_stealth_axis(doc.at("ramp"), path + ".ramp", 0.0, 100.0,
                           &out.ramp_min, &out.ramp_max, &out.ramp_steps,
                           diag);
        if (diag.failed) return;
    }
    if (!doc.at("duty").is_null()) {
        parse_stealth_axis(doc.at("duty"), path + ".duty", 0.01, 1.0,
                           &out.duty_min, &out.duty_max, &out.duty_steps,
                           diag);
        if (diag.failed) return;
    }
    const obs::Json& period = doc.at("duty_period_s");
    if (!period.is_null() &&
        !want_double(period, path + ".duty_period_s", 0.1, 600.0, diag,
                     &out.duty_period_s))
        return;
    const obs::Json& onset = doc.at("onset_max_s");
    if (!onset.is_null() &&
        !want_double(onset, path + ".onset_max_s", 0.0, 60.0, diag,
                     &out.onset_max_s))
        return;
    if (!doc.at("cem").is_null()) {
        const obs::Json& cem = doc.at("cem");
        static const std::set<std::string> kCemKeys = {"iterations",
                                                       "population", "elites"};
        if (!cem.is_object()) {
            diag.fail(path + ".cem", "expected an object");
            return;
        }
        check_keys(cem, path + ".cem", kCemKeys, diag);
        if (diag.failed) return;
        std::int64_t n = 0;
        if (!cem.at("iterations").is_null()) {
            if (!want_int(cem.at("iterations"), path + ".cem.iterations", 0,
                          32, diag, &n))
                return;
            out.cem_iterations = static_cast<std::size_t>(n);
        }
        if (!cem.at("population").is_null()) {
            if (!want_int(cem.at("population"), path + ".cem.population", 2,
                          256, diag, &n))
                return;
            out.cem_population = static_cast<std::size_t>(n);
        }
        if (!cem.at("elites").is_null()) {
            if (!want_int(cem.at("elites"), path + ".cem.elites", 2, 256,
                          diag, &n))
                return;
            out.cem_elites = static_cast<std::size_t>(n);
        }
        if (out.cem_elites > out.cem_population) {
            diag.fail(path + ".cem",
                      "elites must not exceed population (the CEM refits "
                      "on the elite subset of each sampled population)");
            return;
        }
    }
    const obs::Json& seeds = doc.at("seeds");
    if (!seeds.is_null()) {
        std::int64_t n = 0;
        if (!want_int(seeds, path + ".seeds", 1, 64, diag, &n)) return;
        out.seeds = static_cast<std::size_t>(n);
    }
}

/// `stealth` receives the parsed top-level block; grid overrides pass
/// nullptr, which turns the key into a diagnostic (the search runs once per
/// description, so a per-grid stealth block cannot mean anything).
void apply_overrides(const obs::Json& overrides, const std::string& path,
                     core::ScenarioConfig& config, Diag& diag,
                     std::optional<StealthOverrides>* stealth = nullptr) {
    static const std::set<std::string> kKeys = {
        "platoon_size",     "controller",       "initial_speed_mps",
        "initial_gap_m",    "rsu_count",        "control_period_s",
        "beacon_period_s",  "share_verify_verdicts", "security",
        "platoons",         "corridor",         "stealth"};
    if (!overrides.is_object()) {
        diag.fail(path, "expected an object");
        return;
    }
    check_keys(overrides, path, kKeys, diag);
    if (diag.failed) return;
    for (const auto& [key, value] : overrides.as_object()) {
        const std::string at = path + "." + key;
        if (key == "platoon_size") {
            std::int64_t n = 0;
            if (!want_int(value, at, 2, 64, diag, &n)) return;
            config.platoon_size = static_cast<std::size_t>(n);
        } else if (key == "controller") {
            std::string name;
            if (!want_string(value, at, diag, &name)) return;
            const auto type = controller_from_name(name);
            if (!type) {
                diag.fail(at, "unknown controller '" + name + "'" +
                                  suggest(name, controller_names()) +
                                  "; expected one of: " +
                                  join_names(controller_names()));
                return;
            }
            config.controller = *type;
        } else if (key == "initial_speed_mps") {
            if (!want_double(value, at, 1.0, 60.0, diag,
                             &config.initial_speed_mps))
                return;
        } else if (key == "initial_gap_m") {
            if (!want_double(value, at, 0.5, 100.0, diag,
                             &config.initial_gap_m))
                return;
        } else if (key == "rsu_count") {
            std::int64_t n = 0;
            if (!want_int(value, at, 0, 32, diag, &n)) return;
            config.rsu_count = static_cast<std::size_t>(n);
        } else if (key == "control_period_s") {
            if (!want_double(value, at, 1e-3, 1.0, diag,
                             &config.control_period_s))
                return;
        } else if (key == "beacon_period_s") {
            if (!want_double(value, at, 1e-3, 10.0, diag,
                             &config.beacon_period_s))
                return;
        } else if (key == "share_verify_verdicts") {
            if (!want_bool(value, at, diag, &config.share_verify_verdicts))
                return;
        } else if (key == "security") {
            apply_security_overrides(value, at, config.security, diag);
            if (diag.failed) return;
        } else if (key == "platoons") {
            apply_platoons_override(value, at, config, diag);
            if (diag.failed) return;
        } else if (key == "corridor") {
            apply_corridor_override(value, at, config, diag);
            if (diag.failed) return;
        } else if (key == "stealth") {
            if (stealth == nullptr) {
                diag.fail(at,
                          "stealth is only valid in the top-level overrides "
                          "block (the frontier search runs once per "
                          "description, not once per grid)");
                return;
            }
            if (!stealth->has_value()) {
                stealth->emplace();
                parse_stealth_overrides(value, at, **stealth, diag);
            }
            if (diag.failed) return;
        }
    }
}

// -----------------------------------------------------------------------
// Fault presets.

void parse_burst_loss(const obs::Json& item, const std::string& path,
                      fault::FaultPlan& plan, Diag& diag) {
    static const std::set<std::string> kKeys = {
        "start_s", "end_s",     "mean_good_s", "mean_bad_s",
        "loss_good", "loss_bad"};
    check_keys(item, path, kKeys, diag);
    if (diag.failed) return;
    fault::BurstLossParams p;
    const obs::Json& start = item.at("start_s");
    if (!start.is_null() &&
        !want_double(start, path + ".start_s", 0.0, 1e6, diag, &p.start_s))
        return;
    const obs::Json& end = item.at("end_s");
    if (!end.is_null() &&
        !want_double(end, path + ".end_s", 0.0, 1e18, diag, &p.end_s))
        return;
    const obs::Json& good = item.at("mean_good_s");
    if (!good.is_null() && !want_double(good, path + ".mean_good_s", 1e-3,
                                        1e6, diag, &p.mean_good_s))
        return;
    const obs::Json& bad = item.at("mean_bad_s");
    if (!bad.is_null() && !want_double(bad, path + ".mean_bad_s", 1e-3, 1e6,
                                       diag, &p.mean_bad_s))
        return;
    const obs::Json& lg = item.at("loss_good");
    if (!lg.is_null() &&
        !want_double(lg, path + ".loss_good", 0.0, 1.0, diag, &p.loss_good))
        return;
    const obs::Json& lb = item.at("loss_bad");
    if (!lb.is_null() &&
        !want_double(lb, path + ".loss_bad", 0.0, 1.0, diag, &p.loss_bad))
        return;
    if (p.end_s <= p.start_s) {
        diag.fail(path, "end_s must be greater than start_s");
        return;
    }
    plan.burst_loss.push_back(p);
}

bool want_vehicle_index(const obs::Json& item, const std::string& path,
                        Diag& diag, std::size_t* out) {
    const obs::Json& v = item.at("vehicle_index");
    if (v.is_null()) {
        diag.fail(path, "missing required key 'vehicle_index'");
        return false;
    }
    std::int64_t n = 0;
    if (!want_int(v, path + ".vehicle_index", 0, 63, diag, &n)) return false;
    *out = static_cast<std::size_t>(n);
    return true;
}

void parse_crash(const obs::Json& item, const std::string& path,
                 fault::FaultPlan& plan, Diag& diag) {
    static const std::set<std::string> kKeys = {"vehicle_index", "at_s",
                                                "down_s"};
    check_keys(item, path, kKeys, diag);
    if (diag.failed) return;
    fault::NodeCrashParams p;
    if (!want_vehicle_index(item, path, diag, &p.vehicle_index)) return;
    const obs::Json& at = item.at("at_s");
    if (!at.is_null() &&
        !want_double(at, path + ".at_s", 0.0, 1e6, diag, &p.at_s))
        return;
    const obs::Json& down = item.at("down_s");
    if (!down.is_null() &&
        !want_double(down, path + ".down_s", 1e-3, 1e6, diag, &p.down_s))
        return;
    plan.crashes.push_back(p);
}

void parse_sensor_dropout(const obs::Json& item, const std::string& path,
                          fault::FaultPlan& plan, Diag& diag) {
    static const std::set<std::string> kKeys = {"vehicle_index", "start_s",
                                                "duration_s"};
    check_keys(item, path, kKeys, diag);
    if (diag.failed) return;
    fault::SensorDropoutParams p;
    if (!want_vehicle_index(item, path, diag, &p.vehicle_index)) return;
    const obs::Json& start = item.at("start_s");
    if (!start.is_null() &&
        !want_double(start, path + ".start_s", 0.0, 1e6, diag, &p.start_s))
        return;
    const obs::Json& dur = item.at("duration_s");
    if (!dur.is_null() && !want_double(dur, path + ".duration_s", 1e-3, 1e6,
                                       diag, &p.duration_s))
        return;
    plan.sensor_dropouts.push_back(p);
}

void parse_clock_drift(const obs::Json& item, const std::string& path,
                       fault::FaultPlan& plan, Diag& diag) {
    static const std::set<std::string> kKeys = {"vehicle_index", "start_s",
                                                "offset_s", "drift_s_per_s"};
    check_keys(item, path, kKeys, diag);
    if (diag.failed) return;
    fault::ClockDriftParams p;
    if (!want_vehicle_index(item, path, diag, &p.vehicle_index)) return;
    const obs::Json& start = item.at("start_s");
    if (!start.is_null() &&
        !want_double(start, path + ".start_s", 0.0, 1e6, diag, &p.start_s))
        return;
    const obs::Json& offset = item.at("offset_s");
    if (!offset.is_null() && !want_double(offset, path + ".offset_s", -60.0,
                                          60.0, diag, &p.offset_s))
        return;
    const obs::Json& drift = item.at("drift_s_per_s");
    if (!drift.is_null() && !want_double(drift, path + ".drift_s_per_s",
                                         -1.0, 1.0, diag, &p.drift_s_per_s))
        return;
    plan.clock_drifts.push_back(p);
}

fault::FaultPlan parse_fault_plan(const obs::Json& doc,
                                  const std::string& path, Diag& diag) {
    static const std::set<std::string> kKeys = {
        "burst_loss", "crashes", "sensor_dropouts", "clock_drifts"};
    fault::FaultPlan plan;
    if (!doc.is_object()) {
        diag.fail(path, "expected an object");
        return plan;
    }
    check_keys(doc, path, kKeys, diag);
    if (diag.failed) return plan;
    for (const auto& [key, value] : doc.as_object()) {
        if (!value.is_array()) {
            diag.fail(path + "." + key, "expected an array");
            return plan;
        }
        const obs::Json::Array& items = value.as_array();
        for (std::size_t i = 0; i < items.size(); ++i) {
            const std::string at =
                path + "." + key + "[" + std::to_string(i) + "]";
            if (!items[i].is_object()) {
                diag.fail(at, "expected an object");
                return plan;
            }
            if (key == "burst_loss") {
                parse_burst_loss(items[i], at, plan, diag);
            } else if (key == "crashes") {
                parse_crash(items[i], at, plan, diag);
            } else if (key == "sensor_dropouts") {
                parse_sensor_dropout(items[i], at, plan, diag);
            } else if (key == "clock_drifts") {
                parse_clock_drift(items[i], at, plan, diag);
            }
            if (diag.failed) return plan;
        }
    }
    if (plan.empty()) {
        diag.fail(path, "fault preset defines no fault at all");
        return plan;
    }
    return plan;
}

// -----------------------------------------------------------------------
// Axes.

/// Parses an axis of names; "all" expands through `expand_all`. Duplicates
/// (after expansion) are errors: a repeated axis value silently doubles a
/// table row.
template <typename T, typename Lookup, typename ExpandAll>
std::vector<T> parse_name_axis(const obs::Json& axis, const std::string& path,
                               const std::vector<std::string>& known,
                               Lookup lookup, ExpandAll expand_all,
                               Diag& diag) {
    std::vector<T> out;
    if (!axis.is_array() || axis.as_array().empty()) {
        diag.fail(path, "expected a non-empty array of names");
        return out;
    }
    const obs::Json::Array& items = axis.as_array();
    for (std::size_t i = 0; i < items.size(); ++i) {
        const std::string at = path + "[" + std::to_string(i) + "]";
        std::string name;
        if (!want_string(items[i], at, diag, &name)) return out;
        if (name == "all") {
            const std::vector<T> expanded = expand_all();
            out.insert(out.end(), expanded.begin(), expanded.end());
            continue;
        }
        const std::optional<T> value = lookup(name);
        if (!value) {
            diag.fail(at, "unknown name '" + name + "'" +
                              suggest(name, known) + "; expected one of: " +
                              join_names(known));
            return out;
        }
        out.push_back(*value);
    }
    for (std::size_t i = 0; i < out.size(); ++i)
        for (std::size_t j = i + 1; j < out.size(); ++j)
            if (out[i] == out[j]) {
                diag.fail(path,
                          "duplicate axis entry (a repeated value would "
                          "silently duplicate table rows)");
                return out;
            }
    return out;
}

std::vector<bool> parse_attacked_axis(const obs::Json& axis,
                                      const std::string& path, Diag& diag) {
    std::vector<bool> out;
    if (axis.is_null()) return {true};
    if (!axis.is_array() || axis.as_array().empty()) {
        diag.fail(path, "expected a non-empty array of booleans");
        return out;
    }
    const obs::Json::Array& items = axis.as_array();
    for (std::size_t i = 0; i < items.size(); ++i) {
        bool b = false;
        if (!want_bool(items[i], path + "[" + std::to_string(i) + "]", diag,
                       &b))
            return out;
        out.push_back(b);
    }
    if (out.size() > 2 || (out.size() == 2 && out[0] == out[1])) {
        diag.fail(path, "duplicate axis entry (a repeated value would "
                        "silently duplicate table rows)");
        return out;
    }
    return out;
}

// -----------------------------------------------------------------------
// Per-cell semantic checks: combinations that parse but cannot mean what
// the author intended.

void check_cell(const CompiledCell& cell, const fault::FaultPlan& plan,
                const std::string& path, Diag& diag) {
    const security::SecurityPolicy& sec = cell.config.security;
    if (sec.encrypt_payloads && sec.auth_mode == crypto::AuthMode::kNone) {
        diag.fail(path,
                  "incompatible combination: security.encrypt_payloads with "
                  "auth_mode 'none' (encrypt-only -- a jammer or replayer "
                  "passes unauthenticated); set security.auth_mode or use "
                  "the 'secret-and-public-keys' defense");
        return;
    }
    if (!plan.clock_drifts.empty() &&
        sec.auth_mode == crypto::AuthMode::kNone) {
        diag.fail(path,
                  "incompatible combination: fault '" + cell.fault +
                      "' injects clock drift, but auth_mode 'none' never "
                      "checks timestamps, so the fault is a no-op; add "
                      "overrides.security.auth_mode (e.g. \"signature\")");
        return;
    }
    const auto check_index = [&](std::size_t index, const char* kind) {
        if (index >= cell.config.platoon_size) {
            diag.fail(path, "fault '" + cell.fault + "': " + kind +
                                " vehicle_index " + std::to_string(index) +
                                " out of range for platoon_size " +
                                std::to_string(cell.config.platoon_size));
        }
    };
    for (const auto& c : plan.crashes) check_index(c.vehicle_index, "crash");
    for (const auto& d : plan.sensor_dropouts)
        check_index(d.vehicle_index, "sensor-dropout");
    for (const auto& d : plan.clock_drifts)
        check_index(d.vehicle_index, "clock-drift");
    if (diag.failed) return;

    // Corridor events must point at platoons/vehicles/RSUs that exist once
    // every override has been merged.
    const std::size_t platoon_count = 1 + cell.config.extra_platoons.size();
    for (std::size_t i = 0; i < cell.config.corridor.size(); ++i) {
        const core::CorridorEvent& event = cell.config.corridor[i];
        const std::string at = path + " corridor[" + std::to_string(i) + "]";
        if (event.platoon >= platoon_count) {
            diag.fail(at, "platoon " + std::to_string(event.platoon) +
                              " out of range: the corridor has " +
                              std::to_string(platoon_count) +
                              " platoon(s) (0 = primary; add 'platoons' "
                              "overrides for more)");
            return;
        }
        using Kind = core::CorridorEvent::Kind;
        if (event.kind == Kind::kMerge && event.platoon == 0) {
            diag.fail(at, "the primary platoon cannot merge into itself; "
                          "pick an extra platoon (1..)");
            return;
        }
        if (event.kind == Kind::kSplit || event.kind == Kind::kCutIn) {
            const std::size_t size =
                event.platoon == 0
                    ? cell.config.platoon_size
                    : cell.config.extra_platoons[event.platoon - 1].size;
            if (event.index >= size) {
                diag.fail(at, "index " + std::to_string(event.index) +
                                  " out of range for platoon " +
                                  std::to_string(event.platoon) + " of size " +
                                  std::to_string(size));
                return;
            }
        }
        if (event.kind == Kind::kRsuHandoff &&
            event.index >= cell.config.rsu_count) {
            diag.fail(at, "rsu-handoff to RSU " + std::to_string(event.index) +
                              " but rsu_count is " +
                              std::to_string(cell.config.rsu_count) +
                              "; raise overrides.rsu_count");
            return;
        }
    }
}

}  // namespace

std::vector<std::string> stealth_injection_names() {
    // Mirrors security::stealth::injection_names() (scen sits below
    // security in the layering DAG, so the list cannot be included); the
    // scen test suite pins the two lists equal.
    return {"gps-spoof", "sensor-spoof", "fake-maneuver"};
}

std::string coverage_key(core::AttackKind attack, core::DefenseKind defense,
                         std::string_view fault) {
    std::string key = core::to_string(attack);
    key += '|';
    key += defense_name(defense);
    key += '|';
    key += fault;
    return key;
}

std::string CompiledCell::coverage_key() const {
    return scen::coverage_key(attack, defense, fault);
}

std::optional<Compiled> compile(const obs::Json& doc, std::string* error) {
    Diag diag;
    Compiled out;

    static const std::set<std::string> kTopKeys = {
        "name", "title", "profile", "seed", "seeds", "overrides",
        "fault_presets", "grids"};

    if (!doc.is_object()) {
        diag.fail("$", "expected a top-level object");
    } else {
        check_keys(doc, "$", kTopKeys, diag);
    }

    if (!diag.failed) {
        if (!doc.at("name").is_string() || doc.at("name").as_string().empty())
            diag.fail("name", "required non-empty string");
        else
            out.description.name = doc.at("name").as_string();
    }
    if (!diag.failed && !doc.at("title").is_null())
        want_string(doc.at("title"), "title", diag, &out.description.title);

    if (!diag.failed && !doc.at("profile").is_null())
        want_string(doc.at("profile"), "profile", diag,
                    &out.description.profile);
    if (!diag.failed &&
        !base_profile(out.description.profile, /*seed=*/0)) {
        diag.fail("profile",
                  "unknown profile '" + out.description.profile + "'" +
                      suggest(out.description.profile, profile_names()) +
                      "; expected one of: " + join_names(profile_names()));
    }

    std::int64_t base_seed = 42;
    if (!diag.failed && !doc.at("seed").is_null())
        want_int(doc.at("seed"), "seed", 0,
                 std::numeric_limits<std::int64_t>::max(), diag, &base_seed);
    out.description.seed = static_cast<std::uint64_t>(base_seed);

    std::int64_t default_seeds = 1;
    if (!diag.failed && !doc.at("seeds").is_null())
        want_int(doc.at("seeds"), "seeds", 1, 1000, diag, &default_seeds);

    // Named fault presets.
    std::map<std::string, fault::FaultPlan> presets;
    if (!diag.failed && !doc.at("fault_presets").is_null()) {
        const obs::Json& block = doc.at("fault_presets");
        if (!block.is_object()) {
            diag.fail("fault_presets", "expected an object");
        } else {
            for (const auto& [name, plan_doc] : block.as_object()) {
                if (name == "none") {
                    diag.fail("fault_presets",
                              "'none' is reserved for the fault-free slot");
                    break;
                }
                presets[name] = parse_fault_plan(
                    plan_doc, "fault_presets." + name, diag);
                if (diag.failed) break;
            }
        }
    }

    // Grids.
    const obs::Json& grids = doc.at("grids");
    if (!diag.failed && (!grids.is_array() || grids.as_array().empty()))
        diag.fail("grids", "required non-empty array");

    static const std::set<std::string> kGridKeys = {"axes", "seeds",
                                                    "overrides"};
    static const std::set<std::string> kAxisKeys = {"attacks", "attacked",
                                                    "defenses", "faults"};

    std::vector<std::string> fault_names{"none"};
    for (const auto& [name, plan] : presets) {
        (void)plan;
        fault_names.push_back(name);
    }

    if (!diag.failed) {
        out.description.grid_count = grids.as_array().size();
        for (std::size_t g = 0; g < grids.as_array().size(); ++g) {
            const obs::Json& grid = grids.as_array()[g];
            const std::string gp = "grids[" + std::to_string(g) + "]";
            if (!grid.is_object()) {
                diag.fail(gp, "expected an object");
                break;
            }
            check_keys(grid, gp, kGridKeys, diag);
            if (diag.failed) break;

            const obs::Json& axes = grid.at("axes");
            if (!axes.is_object()) {
                diag.fail(gp + ".axes", "required object");
                break;
            }
            check_keys(axes, gp + ".axes", kAxisKeys, diag);
            if (diag.failed) break;

            if (axes.at("attacks").is_null()) {
                diag.fail(gp + ".axes.attacks",
                          "required (use [\"all\"] for the full Table II "
                          "catalogue)");
                break;
            }
            const std::vector<core::AttackKind> attacks =
                parse_name_axis<core::AttackKind>(
                    axes.at("attacks"), gp + ".axes.attacks", attack_names(),
                    attack_from_name, [] { return all_attacks(); }, diag);
            if (diag.failed) break;

            const std::vector<bool> attacked = parse_attacked_axis(
                axes.at("attacked"), gp + ".axes.attacked", diag);
            if (diag.failed) break;

            std::vector<core::DefenseKind> defenses{kNoDefense};
            if (!axes.at("defenses").is_null()) {
                defenses = parse_name_axis<core::DefenseKind>(
                    axes.at("defenses"), gp + ".axes.defenses",
                    defense_names(), defense_from_name,
                    [] { return all_defenses(); }, diag);
                if (diag.failed) break;
            }

            std::vector<std::string> faults{"none"};
            if (!axes.at("faults").is_null()) {
                faults = parse_name_axis<std::string>(
                    axes.at("faults"), gp + ".axes.faults", fault_names,
                    [&](const std::string& name)
                        -> std::optional<std::string> {
                        if (name == "none") return name;
                        if (presets.count(name) != 0) return name;
                        return std::nullopt;
                    },
                    [&] {
                        // "all" = every declared preset (not "none").
                        std::vector<std::string> named;
                        for (const auto& [name, plan] : presets) {
                            (void)plan;
                            named.push_back(name);
                        }
                        return named;
                    },
                    diag);
                if (diag.failed) break;
            }

            std::int64_t grid_seeds = default_seeds;
            if (!grid.at("seeds").is_null() &&
                !want_int(grid.at("seeds"), gp + ".seeds", 1, 1000, diag,
                          &grid_seeds))
                break;

            // Cell enumeration order (pinned by the table benches):
            // defenses -> faults -> attacks -> attacked.
            for (const core::DefenseKind defense : defenses) {
                for (const std::string& fault_name : faults) {
                    for (const core::AttackKind attack : attacks) {
                        for (const bool with_attack : attacked) {
                            CompiledCell cell;
                            cell.config = *base_profile(
                                out.description.profile,
                                out.description.seed);
                            if (!doc.at("overrides").is_null()) {
                                apply_overrides(doc.at("overrides"),
                                                "overrides", cell.config,
                                                diag, &out.stealth);
                                if (diag.failed) break;
                            }
                            if (!grid.at("overrides").is_null()) {
                                apply_overrides(grid.at("overrides"),
                                                gp + ".overrides",
                                                cell.config, diag);
                                if (diag.failed) break;
                            }
                            scen::apply_defense(cell.config, defense);
                            fault::FaultPlan plan;
                            if (fault_name != "none") {
                                plan = presets.at(fault_name);
                                cell.config.faults = plan;
                            }
                            cell.attack = attack;
                            cell.with_attack = with_attack;
                            cell.defense = defense;
                            cell.fault = fault_name;
                            cell.seeds = static_cast<std::size_t>(grid_seeds);
                            cell.grid = g;
                            check_cell(cell, plan, gp, diag);
                            if (diag.failed) break;
                            out.cells.push_back(std::move(cell));
                        }
                        if (diag.failed) break;
                    }
                    if (diag.failed) break;
                }
                if (diag.failed) break;
            }
            if (diag.failed) break;
        }
    }

    // The stealth block names a victim by platoon index; every compiled
    // cell must actually contain that member once overrides merge.
    if (!diag.failed && out.stealth.has_value()) {
        for (const CompiledCell& cell : out.cells) {
            if (out.stealth->victim_index < cell.config.platoon_size)
                continue;
            diag.fail("overrides.stealth.victim_index",
                      "victim_index " +
                          std::to_string(out.stealth->victim_index) +
                          " out of range for platoon_size " +
                          std::to_string(cell.config.platoon_size));
            break;
        }
    }

    if (diag.failed) {
        if (error != nullptr) *error = diag.message;
        return std::nullopt;
    }
    return out;
}

std::optional<Compiled> compile_file(const std::string& path,
                                     std::string* error) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr) *error = path + ": cannot open file";
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::optional<obs::Json> doc = obs::Json::parse(buffer.str());
    if (!doc) {
        if (error != nullptr)
            *error = path + ": not valid JSON (truncated input, a bad "
                            "escape, a duplicate key, or nesting beyond the "
                            "parser's depth limit)";
        return std::nullopt;
    }
    std::string inner;
    std::optional<Compiled> compiled = compile(*doc, &inner);
    if (!compiled && error != nullptr) *error = path + ": " + inner;
    return compiled;
}

const CompiledCell* find_cell(const std::vector<CompiledCell>& cells,
                              core::AttackKind attack, bool with_attack,
                              core::DefenseKind defense,
                              std::string_view fault) {
    for (const CompiledCell& cell : cells) {
        if (cell.attack == attack && cell.with_attack == with_attack &&
            cell.defense == defense && cell.fault == fault)
            return &cell;
    }
    return nullptr;
}

}  // namespace platoon::scen
