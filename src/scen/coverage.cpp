#include "scen/coverage.hpp"

#include <fstream>
#include <sstream>

#include "scen/generator.hpp"

namespace platoon::scen {

void Coverage::add_space(const std::vector<CompiledCell>& cells) {
    for (const std::string& key : coverage_keys(cells)) space_.insert(key);
}

void Coverage::mark_covered(const std::vector<CompiledCell>& cells) {
    for (const std::string& key : coverage_keys(cells)) covered_.insert(key);
}

void Coverage::mark_covered_key(const std::string& key) {
    covered_.insert(key);
}

bool Coverage::merge_ledger_file(const std::string& path,
                                 std::string* error) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return true;  // no ledger yet: empty coverage
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::optional<obs::Json> doc = obs::Json::parse(buffer.str());
    if (!doc || !doc->is_object() || !doc->at("covered").is_array()) {
        if (error != nullptr)
            *error = path + ": malformed coverage ledger (expected "
                            "{\"covered\": [\"attack|defense|fault\", ...]})";
        return false;
    }
    for (const obs::Json& item : doc->at("covered").as_array()) {
        if (!item.is_string()) {
            if (error != nullptr)
                *error = path + ": malformed coverage ledger entry "
                                "(expected a string key)";
            return false;
        }
        covered_.insert(item.as_string());
    }
    return true;
}

std::size_t Coverage::covered_in_space() const {
    std::size_t n = 0;
    for (const std::string& key : space_) n += covered_.count(key);
    return n;
}

std::vector<std::string> Coverage::uncovered() const {
    std::vector<std::string> out;
    for (const std::string& key : space_)
        if (covered_.count(key) == 0) out.push_back(key);
    return out;
}

obs::Json Coverage::ledger_json() const {
    obs::Json doc = obs::Json::object();
    doc.set("schema_version", obs::Json::integer(1));
    obs::Json covered = obs::Json::array();
    for (const std::string& key : covered_)
        covered.as_array().push_back(obs::Json::string(key));
    doc.set("covered", std::move(covered));
    return doc;
}

obs::Json Coverage::report_json(
    const std::map<std::string, std::uint64_t>& counters) const {
    obs::Json doc = obs::Json::object();
    doc.set("schema_version", obs::Json::integer(1));
    doc.set("space_cells",
            obs::Json::integer(static_cast<std::int64_t>(space_.size())));
    doc.set("covered_cells",
            obs::Json::integer(static_cast<std::int64_t>(covered_in_space())));
    obs::Json uncovered_list = obs::Json::array();
    for (const std::string& key : uncovered())
        uncovered_list.as_array().push_back(obs::Json::string(key));
    doc.set("uncovered", std::move(uncovered_list));
    obs::Json silent = obs::Json::array();
    for (const auto& [name, value] : counters)
        if (value == 0) silent.as_array().push_back(obs::Json::string(name));
    doc.set("counters_never_fired", std::move(silent));
    return doc;
}

void Coverage::print_report(
    std::ostream& os,
    const std::map<std::string, std::uint64_t>& counters) const {
    const std::vector<std::string> missing = uncovered();
    os << "scenario coverage: " << covered_in_space() << "/" << space_.size()
       << " attack|defense|fault cells covered, " << missing.size()
       << " uncovered\n";
    for (const std::string& key : missing) os << "  uncovered: " << key << "\n";
    std::size_t silent = 0;
    for (const auto& [name, value] : counters) {
        (void)name;
        if (value == 0) ++silent;
    }
    os << "counters never fired: " << silent << "\n";
    for (const auto& [name, value] : counters)
        if (value == 0) os << "  silent: " << name << "\n";
}

}  // namespace platoon::scen
