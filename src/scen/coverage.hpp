// Coverage tracking over the attack x defense x fault product space.
//
// The universe is whatever a space description compiles to (deduplicated
// coverage keys); covered cells accumulate from (a) the committed bench
// descriptions -- everything a table bench runs on every CI pass -- and
// (b) a persistent JSON ledger that scenfuzz appends each executed cell to.
// The report answers the two questions the survey's evaluation sections
// leave open: which combinations has this repo actually executed, and
// which instrumented code paths (obs counters) have never fired at all.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "scen/schema.hpp"

namespace platoon::scen {

class Coverage {
public:
    /// Declares cells of the universe (deduplicating; clean cells ignored).
    void add_space(const std::vector<CompiledCell>& cells);

    /// Marks attacked cells of `cells` as covered (e.g. a committed bench
    /// description: those cells run on every CI pass).
    void mark_covered(const std::vector<CompiledCell>& cells);
    void mark_covered_key(const std::string& key);

    /// Merges a ledger previously written by `ledger_json` (missing file is
    /// not an error -- first run). Returns false and sets `error` on a
    /// malformed file.
    bool merge_ledger_file(const std::string& path, std::string* error);

    [[nodiscard]] std::size_t space_size() const { return space_.size(); }
    [[nodiscard]] std::size_t covered_in_space() const;

    /// Uncovered cells in sorted key order (deterministic report surface).
    [[nodiscard]] std::vector<std::string> uncovered() const;

    /// Ledger document: {"schema_version": 1, "covered": [keys...]}.
    [[nodiscard]] obs::Json ledger_json() const;

    /// Full report: space/covered/uncovered plus every registered obs
    /// counter that never fired during this process ("which instrumented
    /// paths did the executed scenarios never reach").
    [[nodiscard]] obs::Json report_json(
        const std::map<std::string, std::uint64_t>& counters) const;
    void print_report(std::ostream& os,
                      const std::map<std::string, std::uint64_t>& counters)
        const;

private:
    std::set<std::string> space_;
    std::set<std::string> covered_;
};

}  // namespace platoon::scen
