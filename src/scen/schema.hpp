// Declarative scenario descriptions: a small JSON DSL (parsed with the
// obs::Json value type) that composes topology x controller x attack x
// fault x defense x auth-mode into validated core::ScenarioConfig grids.
// The Table II/III/V bench matrices are compiled from committed
// descriptions under scenarios/ instead of being hand-built in C++.
//
// Description schema (all names resolve through scen/registry.*):
//
//   {
//     "name": "table2_threats",            // required identifier
//     "title": "human-readable banner",    // optional
//     "profile": "eval" | "detection",     // base config, default "eval"
//     "seed": 42,                          // base master seed, default 42
//     "seeds": 3,                          // default replications per cell
//     "overrides": { ... },                // applied to every grid (below)
//     "fault_presets": {                   // named fault::FaultPlan blocks
//       "burst-loss": {"burst_loss": [{"start_s": 20.0, ...}]},
//       ...
//     },
//     "grids": [                           // required, concatenated in order
//       {
//         "axes": {
//           "attacks":  ["all"] or ["replay", "sybil", ...],  // required
//           "attacked": [false, true],     // default [true]
//           "defenses": ["none", "roadside-units", ...],  // default ["none"]
//           "faults":   ["none", "burst-loss", ...]       // default ["none"]
//         },
//         "seeds": 2,                      // optional, inherits
//         "overrides": { ... }             // optional, on top of top-level
//       }
//     ]
//   }
//
// Config overrides (validated key-by-key; unknown keys are errors):
//   platoon_size, controller, initial_speed_mps, initial_gap_m, rsu_count,
//   control_period_s, beacon_period_s, share_verify_verdicts, a nested
//   "security" object (auth_mode, encrypt_payloads, freshness_window_s,
//   check_replay, pseudonym_rotation_s, vpd_ada, trust_management,
//   hybrid_comms, sensor_fusion, firewall, antivirus, report_misbehavior,
//   join_rate_limit_s), and the corridor topology:
//
//   "platoons": [                          // extra platoons on the corridor
//     {"size": 16, "start_offset_m": -600.0, "lane": 1,
//      "speed_delta_mps": 2.0},            // all fields optional
//     ...                                  // up to 63 (node-id space)
//   ],
//   "corridor": [                          // scripted traffic events
//     {"event": "merge",       "at_s": 20.0, "platoon": 1},
//     {"event": "split",       "at_s": 30.0, "platoon": 2, "index": 8},
//     {"event": "cut-in",      "at_s": 25.0, "platoon": 3, "index": 4},
//     {"event": "rsu-handoff", "at_s": 40.0, "platoon": 0, "index": 1}
//   ]
//
//   "platoon" 0 is the primary platoon, 1.. index the "platoons" array;
//   event/platoon/vehicle/RSU references are cross-checked per cell after
//   all overrides merge.
//
//   The stealth-frontier experiment (the Table VI bench) is described by a
//   top-level-only "stealth" block (rejected inside grid overrides -- the
//   search runs once per description, not once per cell):
//
//   "stealth": {
//     "injections": ["sensor-spoof", "gps-spoof", "fake-maneuver"],
//     "victim_index": 3,                   // platoon member under injection
//     "start_s": 20.0,                     // attack window opens
//     "horizon_s": 70.0,                   // replication length
//     "amplitude": {"min": 0.5, "max": 5.0, "steps": 4},   // meters
//     "ramp":      {"min": 0.0, "max": 4.0, "steps": 2},   // meters/s
//     "duty":      {"min": 0.25, "max": 1.0, "steps": 3},  // fraction
//     "duty_period_s": 8.0,                // burst period
//     "onset_max_s": 2.0,                  // CEM onset-jitter range
//     "cem": {"iterations": 2, "population": 12, "elites": 4},
//     "seeds": 1                           // replications per candidate
//   }
//
// Cell enumeration order is deterministic and documented: grids in file
// order; within a grid defenses -> faults -> attacks -> attacked, each axis
// in its declared order. The Table benches index into this order, and the
// golden/benchdiff gates pin it.
//
// Composition order per cell: base profile, then top-level overrides, then
// grid overrides, then the defense mechanism (the defense axis wins over a
// conflicting override), then the fault preset.
//
// Validation produces one actionable error with a JSON path: unknown keys,
// unknown names (with a "did you mean" suggestion), out-of-range values,
// duplicate axis entries, and incompatible combinations (encrypt-only with
// no authenticated mode; a clock-drift fault where no receiver checks
// timestamps; a fault aimed at a vehicle index outside the platoon).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "scen/registry.hpp"

namespace platoon::scen {

/// One fully-composed point of the product space, ready to feed a run grid.
struct CompiledCell {
    core::ScenarioConfig config;
    core::AttackKind attack = core::AttackKind::kReplay;
    bool with_attack = true;
    core::DefenseKind defense = kNoDefense;
    std::string fault = "none";  ///< Fault-preset name ("none" = fault-free).
    std::size_t seeds = 1;
    std::size_t grid = 0;  ///< Index of the grid that produced this cell.

    /// The coverage coordinate: "attack|defense|fault" (attacked cells
    /// only; clean baselines exercise no attack surface).
    [[nodiscard]] std::string coverage_key() const;
};

/// Composes a coverage key without a compiled cell (report tooling).
[[nodiscard]] std::string coverage_key(core::AttackKind attack,
                                       core::DefenseKind defense,
                                       std::string_view fault);

struct Description {
    std::string name;
    std::string title;
    std::string profile = "eval";
    std::uint64_t seed = 42;
    std::size_t grid_count = 0;
};

/// Parsed `overrides.stealth` block: the attacker-optimization experiment
/// the Table VI bench runs against the description's base config. scen sits
/// below security in the layering DAG, so the injection vocabulary is
/// mirrored here as validated strings (stealth_injection_names()) instead
/// of security::stealth::InjectionKind values; detect::stealth_spec_from()
/// lowers the block onto the concrete search spec, and a scen test pins the
/// two vocabularies equal so they cannot drift.
struct StealthOverrides {
    std::vector<std::string> injections;  ///< Validated injection names.
    std::size_t victim_index = 3;
    double start_s = 20.0;
    double horizon_s = 70.0;
    double amplitude_min = 0.5;
    double amplitude_max = 6.0;
    std::size_t amplitude_steps = 5;
    double ramp_min = 0.0;
    double ramp_max = 4.0;
    std::size_t ramp_steps = 2;
    double duty_min = 0.25;
    double duty_max = 1.0;
    std::size_t duty_steps = 4;
    double duty_period_s = 8.0;
    double onset_max_s = 2.0;
    std::size_t cem_iterations = 2;
    std::size_t cem_population = 12;
    std::size_t cem_elites = 4;
    std::size_t seeds = 1;  ///< Replication seeds per candidate.
};

/// The names `overrides.stealth.injections` accepts, mirroring
/// security::stealth::injection_names() (see StealthOverrides).
[[nodiscard]] std::vector<std::string> stealth_injection_names();

struct Compiled {
    Description description;
    std::vector<CompiledCell> cells;
    /// Present when the description carries an `overrides.stealth` block.
    std::optional<StealthOverrides> stealth;
};

/// Compiles a parsed description document. On failure returns nullopt and,
/// when `error` is non-null, stores one "json-path: message" diagnostic.
[[nodiscard]] std::optional<Compiled> compile(const obs::Json& doc,
                                              std::string* error);

/// Reads, parses and compiles `path`; errors are prefixed with the path.
[[nodiscard]] std::optional<Compiled> compile_file(const std::string& path,
                                                   std::string* error);

/// First cell matching the coordinates, or nullptr. The benches use this to
/// address their matrices by meaning instead of by raw index.
[[nodiscard]] const CompiledCell* find_cell(
    const std::vector<CompiledCell>& cells, core::AttackKind attack,
    bool with_attack, core::DefenseKind defense = kNoDefense,
    std::string_view fault = "none");

}  // namespace platoon::scen
