// The shared scenario-component registry: one canonical place mapping the
// survey's attack/defense taxonomy and the evaluation base profiles to
// names and to ScenarioConfig builders.
//
// Before this registry existed, the Table II/III/IV/V benches each
// hand-built their ScenarioConfig matrices (and eval/detect duplicated the
// base profiles), so the attack x defense x fault product space was
// maintained by copy-paste. The scenario compiler (scen/schema.*) and the
// eval/detect harnesses now both resolve names and apply defenses through
// this one table; drift between "what a description says" and "what a bench
// runs" is structurally impossible.
//
// Naming contract: every name is the exact string core::to_string() prints
// (tables, descriptions and coverage reports all agree), plus "none" for
// the empty defense/fault slots.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.hpp"
#include "core/taxonomy.hpp"

namespace platoon::scen {

/// The "no defense" slot of the defense axis (Table III rows are the five
/// real mechanisms; the baseline column is kNoDefense). Uses the enum's
/// kCount_ sentinel so a CompiledCell can carry the axis in one value.
inline constexpr core::DefenseKind kNoDefense = core::DefenseKind::kCount_;

/// All Table II attacks in enum (= printed-table) order.
[[nodiscard]] const std::vector<core::AttackKind>& all_attacks();

/// All Table III defenses in enum order (kNoDefense not included).
[[nodiscard]] const std::vector<core::DefenseKind>& all_defenses();

/// Name lookups (names are core::to_string spellings; see header comment).
[[nodiscard]] std::optional<core::AttackKind> attack_from_name(
    std::string_view name);
/// Accepts "none" -> kNoDefense.
[[nodiscard]] std::optional<core::DefenseKind> defense_from_name(
    std::string_view name);
[[nodiscard]] const char* defense_name(core::DefenseKind kind);  // incl. none

[[nodiscard]] std::optional<control::ControllerType> controller_from_name(
    std::string_view name);
[[nodiscard]] std::optional<crypto::AuthMode> auth_mode_from_name(
    std::string_view name);

/// Every known name of each kind (error messages and "all" expansion).
[[nodiscard]] std::vector<std::string> attack_names();
[[nodiscard]] std::vector<std::string> defense_names();  ///< incl. "none"
[[nodiscard]] std::vector<std::string> controller_names();
[[nodiscard]] std::vector<std::string> auth_mode_names();

/// "did you mean ...?" suffix for an unknown name, or "" when nothing in
/// `candidates` is close (edit distance <= 2).
[[nodiscard]] std::string suggest(std::string_view name,
                                  const std::vector<std::string>& candidates);

/// The named base profiles the descriptions build on:
///   "eval"      -- the canonical Table II/III platoon (6 trucks, PATH
///                  CACC, braking at t=40 s of a 70 s horizon).
///   "detection" -- "eval" plus the misbehavior ecosystem (VPD-ADA, trust
///                  management, reporting, 4 RSUs) on an open channel, the
///                  Table IV/V baseline.
[[nodiscard]] std::optional<core::ScenarioConfig> base_profile(
    std::string_view profile, std::uint64_t seed);
[[nodiscard]] std::vector<std::string> profile_names();

/// Switches one Table III mechanism on (the canonical builder behind
/// eval::apply_defense). kNoDefense is a no-op.
void apply_defense(core::ScenarioConfig& config, core::DefenseKind defense);

}  // namespace platoon::scen
