#include "scen/generator.hpp"

#include <set>

#include "sim/random.hpp"

namespace platoon::scen {

std::vector<CompiledCell> sample_cells(const std::vector<CompiledCell>& space,
                                       std::size_t n,
                                       std::uint64_t master_seed) {
    if (n >= space.size()) return space;
    // Selection sampling: draw n distinct indices via a partial
    // Fisher-Yates over the index vector, then emit in enumeration order so
    // the sampled sweep reads like a sub-table of the full one.
    sim::RandomStream stream(master_seed, kSampleStream);
    std::vector<std::size_t> indices(space.size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(
                    stream.uniform_int(indices.size() - i));
        std::swap(indices[i], indices[j]);
    }
    std::set<std::size_t> chosen(indices.begin(),
                                 indices.begin() + static_cast<std::ptrdiff_t>(n));
    std::vector<CompiledCell> out;
    out.reserve(n);
    for (const std::size_t index : chosen) out.push_back(space[index]);
    return out;
}

std::vector<std::string> coverage_keys(const std::vector<CompiledCell>& cells) {
    std::vector<std::string> out;
    std::set<std::string> seen;
    for (const CompiledCell& cell : cells) {
        if (!cell.with_attack) continue;
        std::string key = cell.coverage_key();
        if (seen.insert(key).second) out.push_back(std::move(key));
    }
    return out;
}

}  // namespace platoon::scen
