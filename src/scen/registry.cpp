#include "scen/registry.hpp"

#include <algorithm>

namespace platoon::scen {

namespace {

template <typename Enum>
std::vector<Enum> enum_range() {
    std::vector<Enum> out;
    for (int k = 0; k < static_cast<int>(Enum::kCount_); ++k)
        out.push_back(static_cast<Enum>(k));
    return out;
}

/// Classic dynamic-programming Levenshtein distance; inputs are short
/// registry names, so the quadratic table is tiny.
std::size_t edit_distance(std::string_view a, std::string_view b) {
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t up = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = up;
        }
    }
    return row[b.size()];
}

}  // namespace

const std::vector<core::AttackKind>& all_attacks() {
    static const std::vector<core::AttackKind> kAll =
        enum_range<core::AttackKind>();
    return kAll;
}

const std::vector<core::DefenseKind>& all_defenses() {
    static const std::vector<core::DefenseKind> kAll =
        enum_range<core::DefenseKind>();
    return kAll;
}

std::optional<core::AttackKind> attack_from_name(std::string_view name) {
    for (const core::AttackKind kind : all_attacks())
        if (name == core::to_string(kind)) return kind;
    return std::nullopt;
}

std::optional<core::DefenseKind> defense_from_name(std::string_view name) {
    if (name == "none") return kNoDefense;
    for (const core::DefenseKind kind : all_defenses())
        if (name == core::to_string(kind)) return kind;
    return std::nullopt;
}

const char* defense_name(core::DefenseKind kind) {
    return kind == kNoDefense ? "none" : core::to_string(kind);
}

std::optional<control::ControllerType> controller_from_name(
    std::string_view name) {
    using control::ControllerType;
    for (const ControllerType type :
         {ControllerType::kSpeed, ControllerType::kAcc,
          ControllerType::kCaccPath, ControllerType::kCaccPloeg})
        if (name == control::to_string(type)) return type;
    return std::nullopt;
}

std::optional<crypto::AuthMode> auth_mode_from_name(std::string_view name) {
    using crypto::AuthMode;
    if (name == "none") return AuthMode::kNone;
    if (name == "group-mac") return AuthMode::kGroupMac;
    if (name == "pairwise-mac") return AuthMode::kPairwiseMac;
    if (name == "signature") return AuthMode::kSignature;
    return std::nullopt;
}

std::vector<std::string> attack_names() {
    std::vector<std::string> out;
    for (const core::AttackKind kind : all_attacks())
        out.emplace_back(core::to_string(kind));
    return out;
}

std::vector<std::string> defense_names() {
    std::vector<std::string> out{"none"};
    for (const core::DefenseKind kind : all_defenses())
        out.emplace_back(core::to_string(kind));
    return out;
}

std::vector<std::string> controller_names() {
    using control::ControllerType;
    std::vector<std::string> out;
    for (const ControllerType type :
         {ControllerType::kSpeed, ControllerType::kAcc,
          ControllerType::kCaccPath, ControllerType::kCaccPloeg})
        out.emplace_back(control::to_string(type));
    return out;
}

std::vector<std::string> auth_mode_names() {
    return {"none", "group-mac", "pairwise-mac", "signature"};
}

std::string suggest(std::string_view name,
                    const std::vector<std::string>& candidates) {
    std::size_t best = 3;  // suggest only within edit distance 2
    const std::string* pick = nullptr;
    for (const std::string& candidate : candidates) {
        const std::size_t d = edit_distance(name, candidate);
        if (d < best) {
            best = d;
            pick = &candidate;
        }
    }
    return pick == nullptr ? std::string()
                           : " (did you mean '" + *pick + "'?)";
}

std::optional<core::ScenarioConfig> base_profile(std::string_view profile,
                                                 std::uint64_t seed) {
    core::ScenarioConfig config;
    config.seed = seed;
    config.platoon_size = 6;
    if (profile == "eval") return config;
    if (profile == "detection") {
        config.security.vpd_ada = true;
        config.security.trust_management = true;
        config.security.report_misbehavior = true;
        config.rsu_count = 4;
        return config;
    }
    return std::nullopt;
}

std::vector<std::string> profile_names() { return {"eval", "detection"}; }

void apply_defense(core::ScenarioConfig& config, core::DefenseKind defense) {
    using crypto::AuthMode;
    switch (defense) {
        case core::DefenseKind::kSecretPublicKeys:
            config.security.auth_mode = AuthMode::kSignature;
            config.security.encrypt_payloads = true;
            break;
        case core::DefenseKind::kRoadsideUnits:
            // The RSU mechanism presumes the PKI it distributes and feeds.
            config.security.auth_mode = AuthMode::kSignature;
            config.security.report_misbehavior = true;
            config.security.vpd_ada = true;  // plausibility checks feed reports
            config.rsu_count = 4;
            break;
        case core::DefenseKind::kControlAlgorithms:
            config.security.vpd_ada = true;
            break;
        case core::DefenseKind::kHybridCommunications:
            config.security.hybrid_comms = true;
            break;
        case core::DefenseKind::kOnboardSecurity:
            config.security.sensor_fusion = true;
            config.security.firewall = true;
            config.security.antivirus = true;
            break;
        default:
            break;
    }
}

}  // namespace platoon::scen
