// Deterministic generation over a compiled scenario product space.
//
// Enumeration is what scen::compile already produces (grid order, then
// defenses -> faults -> attacks -> attacked); this header adds seeded
// sampling on top. Samples are drawn from a named sim::RandomStream
// ("scen.sample") derived from a master seed, so a sampled sweep is
// reproducible bit-for-bit and -- because the sample is fixed *before* any
// cell runs -- feeding the result to core::run_grid / eval::run_eval_grid
// folds bit-identically at any PLATOON_JOBS count.
#pragma once

#include <cstdint>
#include <vector>

#include "scen/schema.hpp"

namespace platoon::scen {

/// The name of the sampling stream (documented for EXPERIMENTS.md).
inline constexpr const char* kSampleStream = "scen.sample";

/// Draws `n` cells from `space` without replacement (n >= space.size()
/// returns the whole space), preserving relative enumeration order of the
/// chosen cells. Deterministic in (space order, n, master_seed).
[[nodiscard]] std::vector<CompiledCell> sample_cells(
    const std::vector<CompiledCell>& space, std::size_t n,
    std::uint64_t master_seed);

/// Deduplicated coverage keys of `cells` in first-seen order (clean cells
/// carry no key: an unattacked baseline exercises no attack surface).
[[nodiscard]] std::vector<std::string> coverage_keys(
    const std::vector<CompiledCell>& cells);

}  // namespace platoon::scen
