#include "fault/gilbert_elliott.hpp"

#include "sim/assert.hpp"

namespace platoon::fault {

GilbertElliott::GilbertElliott(BurstLossParams params,
                               std::uint64_t master_seed,
                               std::string_view stream_name)
    : params_(params), rng_(master_seed, stream_name) {
    PLATOON_EXPECTS(params_.mean_good_s > 0.0);
    PLATOON_EXPECTS(params_.mean_bad_s > 0.0);
    PLATOON_EXPECTS(params_.end_s >= params_.start_s);
    next_transition_ =
        params_.start_s + rng_.exponential(1.0 / params_.mean_good_s);
}

void GilbertElliott::advance_to(sim::SimTime t) {
    while (next_transition_ <= t) {
        bad_ = !bad_;
        const double mean = bad_ ? params_.mean_bad_s : params_.mean_good_s;
        next_transition_ += rng_.exponential(1.0 / mean);
    }
}

bool GilbertElliott::bad_at(sim::SimTime t) {
    if (t < params_.start_s) return false;
    advance_to(t);
    return bad_;
}

bool GilbertElliott::should_drop(sim::SimTime t) {
    if (t < params_.start_s || t > params_.end_s) return false;
    advance_to(t);
    return rng_.chance(bad_ ? params_.loss_bad : params_.loss_good);
}

}  // namespace platoon::fault
