// The fault injector: arms one FaultPlan against a built simulation world.
//
// Sits below core in the module DAG: it sees the scheduler and the network
// directly, but drives vehicles only through the opaque VehicleHooks the
// scenario layer hands it -- faults never touch protocol logic, and a
// faulted vehicle is never compromised() (benign degradation must stay
// distinguishable from attacks by outcome, not by construction).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/gilbert_elliott.hpp"
#include "fault/plan.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace platoon::fault {

/// Per-vehicle control surface (installed by core::Scenario, index =
/// platoon slot). All three are optional; an unset hook disables the
/// corresponding fault class for that vehicle.
struct VehicleHooks {
    std::function<void(bool)> set_comms_down;
    std::function<void(bool)> set_sensor_dropout;
    /// set_clock_skew(anchor, offset_s, rate): see ClockDriftParams.
    std::function<void(sim::SimTime, double, double)> set_clock_skew;
};

struct InjectorStats {
    std::uint64_t burst_drops = 0;    ///< Deliveries eaten by Gilbert-Elliott.
    std::uint64_t crashes = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t sensor_dropouts = 0;
    std::uint64_t clock_skews = 0;
};

class Injector {
public:
    /// Arms the plan immediately: installs the network loss process and
    /// schedules every crash/dropout/drift window. Vehicle indices in the
    /// plan must be < hooks.size().
    Injector(sim::Scheduler& scheduler, net::Network& network, FaultPlan plan,
             std::vector<VehicleHooks> hooks, std::uint64_t master_seed);
    ~Injector();
    Injector(const Injector&) = delete;
    Injector& operator=(const Injector&) = delete;

    [[nodiscard]] const FaultPlan& plan() const { return plan_; }
    [[nodiscard]] const InjectorStats& stats() const { return stats_; }

private:
    void arm();

    sim::Scheduler& scheduler_;
    net::Network& network_;
    FaultPlan plan_;
    std::vector<VehicleHooks> hooks_;
    std::vector<std::unique_ptr<GilbertElliott>> channels_;
    InjectorStats stats_;
};

}  // namespace platoon::fault
