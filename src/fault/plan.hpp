// Benign-fault models: the non-malicious degradation any deployed platoon
// must ride out (paper Section IV distinguishes malicious disruption from
// ordinary channel and node faults; Section VI-B asks for an executable
// suite that can tell the two apart).
//
// A FaultPlan is a first-class scenario component (core::ScenarioConfig
// carries one): every fault schedule is derived from the scenario master
// seed through named sim::RandomStream instances, so a faulted run is
// bit-identical at any PLATOON_JOBS count and adding a fault never perturbs
// the draws of existing consumers.
#pragma once

#include <cstddef>
#include <vector>

#include "net/channel.hpp"
#include "sim/types.hpp"

namespace platoon::fault {

/// Time-correlated burst packet loss: a Gilbert-Elliott two-state channel
/// (Good/Bad with exponential sojourn times) layered onto net::Network
/// delivery. Models rain fade, underpasses and dense-interference episodes
/// -- the benign twin of the jamming attack.
struct BurstLossParams {
    sim::SimTime start_s = 0.0;
    sim::SimTime end_s = 1e18;       ///< Fault window (absolute sim time).
    double mean_good_s = 2.0;        ///< Mean sojourn in the Good state.
    double mean_bad_s = 0.3;         ///< Mean sojourn in the Bad state.
    double loss_good = 0.0;          ///< Per-delivery drop prob. when Good.
    double loss_bad = 0.9;           ///< Per-delivery drop prob. when Bad.
    net::Band band = net::Band::kDsrc;
};

/// Node crash/silence: the comms stack of one platoon member goes down for a
/// recovery window (ECU reboot, antenna fault). The vehicle keeps driving --
/// its CACC degrades through the normal fallback ladder -- and is never
/// marked compromised(): silence is a fault, not an attack.
struct NodeCrashParams {
    std::size_t vehicle_index = 0;   ///< Platoon slot (0 = leader).
    sim::SimTime at_s = 0.0;         ///< Crash instant.
    double down_s = 10.0;            ///< Silence duration before recovery.
};

/// Sensor dropout: GPS and radar reads are suspended, so the CACC input and
/// the vehicle's own beacons go stale (the position claim freezes while the
/// vehicle moves on). Honest staleness looks exactly like a crude position
/// lie to plausibility gates -- the false-alarm surface Table V measures.
struct SensorDropoutParams {
    std::size_t vehicle_index = 0;
    sim::SimTime start_s = 0.0;
    double duration_s = 5.0;
};

/// Per-node clock drift on beacon timestamps: from `start_s` the node stamps
/// its envelopes with t + offset_s + drift_s_per_s * (t - start_s). Under a
/// signed policy the receivers' freshness window rejects honest-but-late
/// beacons once the skew exceeds it (the benign twin of a replay attack).
struct ClockDriftParams {
    std::size_t vehicle_index = 0;
    sim::SimTime start_s = 0.0;
    double offset_s = 0.0;           ///< Initial step offset.
    double drift_s_per_s = 0.0;      ///< Skew rate (seconds per second).
};

struct FaultPlan {
    std::vector<BurstLossParams> burst_loss;
    std::vector<NodeCrashParams> crashes;
    std::vector<SensorDropoutParams> sensor_dropouts;
    std::vector<ClockDriftParams> clock_drifts;

    [[nodiscard]] bool empty() const {
        return burst_loss.empty() && crashes.empty() &&
               sensor_dropouts.empty() && clock_drifts.empty();
    }
};

}  // namespace platoon::fault
