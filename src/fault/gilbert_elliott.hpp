// Gilbert-Elliott two-state burst-loss channel: Good/Bad states with
// exponentially distributed sojourn times and a per-delivery loss
// probability in each state. The chain advances lazily to the query time;
// queries arrive in deterministic event order with monotonic timestamps
// (net::Network delivery), so the sampled state sequence is bit-identical
// for a given master seed at any job count.
#pragma once

#include <cstdint>
#include <string_view>

#include "fault/plan.hpp"
#include "sim/random.hpp"
#include "sim/types.hpp"

namespace platoon::fault {

class GilbertElliott {
public:
    /// `stream_name` scopes the process's RandomStream (one independent
    /// stream per configured burst-loss entry).
    GilbertElliott(BurstLossParams params, std::uint64_t master_seed,
                   std::string_view stream_name);

    /// Advances the chain to `t` and draws one loss decision for a delivery
    /// at that instant. Always false outside [start_s, end_s].
    [[nodiscard]] bool should_drop(sim::SimTime t);

    /// Advances the chain to `t` and reports the state (tests/diagnostics).
    [[nodiscard]] bool bad_at(sim::SimTime t);

    [[nodiscard]] const BurstLossParams& params() const { return params_; }

private:
    void advance_to(sim::SimTime t);

    BurstLossParams params_;
    sim::RandomStream rng_;
    bool bad_ = false;
    sim::SimTime next_transition_;
};

}  // namespace platoon::fault
