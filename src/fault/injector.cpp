#include "fault/injector.hpp"

#include <string>

#include "obs/counters.hpp"
#include "sim/assert.hpp"

namespace platoon::fault {

namespace {
obs::Counter g_burst_drops{"fault.burst.drops"};
obs::Counter g_crashes{"fault.node.crashes"};
obs::Counter g_recoveries{"fault.node.recoveries"};
obs::Counter g_sensor_dropouts{"fault.sensor.dropouts"};
obs::Counter g_clock_skews{"fault.clock.skews"};
}  // namespace

Injector::Injector(sim::Scheduler& scheduler, net::Network& network,
                   FaultPlan plan, std::vector<VehicleHooks> hooks,
                   std::uint64_t master_seed)
    : scheduler_(scheduler),
      network_(network),
      plan_(std::move(plan)),
      hooks_(std::move(hooks)) {
    for (std::size_t i = 0; i < plan_.burst_loss.size(); ++i) {
        channels_.push_back(std::make_unique<GilbertElliott>(
            plan_.burst_loss[i], master_seed,
            "fault.burstloss." + std::to_string(i)));
    }
    arm();
}

Injector::~Injector() { network_.set_fault_loss(nullptr); }

void Injector::arm() {
    if (!channels_.empty()) {
        network_.set_fault_loss([this](sim::NodeId /*from*/, sim::NodeId /*to*/,
                                       net::Band band, sim::SimTime now) {
            // One shared process per entry: burst loss is an environment
            // condition (rain fade, an underpass), so every link on the band
            // sees the same Good/Bad episode, correlated in time.
            for (auto& channel : channels_) {
                if (channel->params().band != band) continue;
                if (channel->should_drop(now)) {
                    ++stats_.burst_drops;
                    g_burst_drops.inc();
                    return true;
                }
            }
            return false;
        });
    }

    for (const NodeCrashParams& crash : plan_.crashes) {
        PLATOON_EXPECTS(crash.vehicle_index < hooks_.size());
        PLATOON_EXPECTS(crash.down_s > 0.0);
        const std::size_t idx = crash.vehicle_index;
        if (!hooks_[idx].set_comms_down) continue;
        scheduler_.schedule_at(crash.at_s, [this, idx] {
            hooks_[idx].set_comms_down(true);
            ++stats_.crashes;
            g_crashes.inc();
        });
        scheduler_.schedule_at(crash.at_s + crash.down_s, [this, idx] {
            hooks_[idx].set_comms_down(false);
            ++stats_.recoveries;
            g_recoveries.inc();
        });
    }

    for (const SensorDropoutParams& dropout : plan_.sensor_dropouts) {
        PLATOON_EXPECTS(dropout.vehicle_index < hooks_.size());
        PLATOON_EXPECTS(dropout.duration_s > 0.0);
        const std::size_t idx = dropout.vehicle_index;
        if (!hooks_[idx].set_sensor_dropout) continue;
        scheduler_.schedule_at(dropout.start_s, [this, idx] {
            hooks_[idx].set_sensor_dropout(true);
            ++stats_.sensor_dropouts;
            g_sensor_dropouts.inc();
        });
        scheduler_.schedule_at(dropout.start_s + dropout.duration_s,
                               [this, idx] {
                                   hooks_[idx].set_sensor_dropout(false);
                               });
    }

    for (const ClockDriftParams& drift : plan_.clock_drifts) {
        PLATOON_EXPECTS(drift.vehicle_index < hooks_.size());
        const std::size_t idx = drift.vehicle_index;
        if (!hooks_[idx].set_clock_skew) continue;
        scheduler_.schedule_at(
            drift.start_s, [this, idx, anchor = drift.start_s,
                            offset = drift.offset_s, rate = drift.drift_s_per_s] {
                hooks_[idx].set_clock_skew(anchor, offset, rate);
                ++stats_.clock_skews;
                g_clock_skews.inc();
            });
    }
}

}  // namespace platoon::fault
