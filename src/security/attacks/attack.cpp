#include "security/attacks/attack.hpp"

#include "sim/assert.hpp"

namespace platoon::security {

AttackerRadio::AttackerRadio(core::Scenario& scenario, sim::NodeId id,
                             std::function<double()> position)
    : scenario_(&scenario), id_(id), position_(std::move(position)) {
    PLATOON_EXPECTS(id_.valid());
    PLATOON_EXPECTS(position_ != nullptr);
}

AttackerRadio::~AttackerRadio() { stop(); }

void AttackerRadio::start(ReceiveHandler on_receive) {
    PLATOON_EXPECTS(!registered_);
    registered_ = true;
    auto handler = on_receive
                       ? std::move(on_receive)
                       : ReceiveHandler([](const net::Frame&,
                                           const net::RxInfo&) {});
    scenario_->network().register_node(id_, position_, std::move(handler));
}

void AttackerRadio::stop() {
    if (!registered_) return;
    registered_ = false;
    scenario_->network().unregister_node(id_);
}

void AttackerRadio::send(net::Frame frame) {
    PLATOON_EXPECTS(registered_);
    ++frames_sent_;
    scenario_->network().broadcast(id_, std::move(frame));
}

std::function<double()> track_vehicle(core::Scenario& scenario,
                                      std::size_t vehicle_index,
                                      double offset_m) {
    core::PlatoonVehicle* v = &scenario.vehicle(vehicle_index);
    return [v, offset_m] { return v->dynamics().position() + offset_m; };
}

net::GroundTruth oracle_label(core::AttackKind kind, sim::NodeId attacker) {
    net::GroundTruth truth;
    truth.attack = static_cast<std::uint8_t>(kind);
    truth.attacker = attacker.value;
    return truth;
}

}  // namespace platoon::security
