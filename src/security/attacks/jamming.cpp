#include "security/attacks/jamming.hpp"

namespace platoon::security {

void JammingAttack::attach(core::Scenario& scenario) {
    scenario_ = &scenario;

    scenario.scheduler().schedule_at(params_.window.start_s, [this] {
        net::JammerConfig jam;
        jam.power_dbm = params_.power_dbm;
        jam.duty_cycle = params_.duty_cycle;
        jam.band = net::Band::kDsrc;
        if (params_.mobile) {
            jam.mobile = true;
            jam.position_fn = track_vehicle(
                *scenario_, scenario_->config().platoon_size / 2, 0.0);
        } else {
            jam.position_m =
                scenario_->vehicle(scenario_->config().platoon_size / 2)
                    .dynamics()
                    .position();
        }
        jammer_ids_.push_back(scenario_->network().add_jammer(jam));
        if (params_.jam_cv2x_too) {
            jam.band = net::Band::kCv2x;
            jammer_ids_.push_back(scenario_->network().add_jammer(jam));
        }
    });

    if (params_.window.has_stop()) {
        scenario.scheduler().schedule_at(params_.window.stop_s, [this] {
            for (const int id : jammer_ids_)
                scenario_->network().remove_jammer(id);
            jammer_ids_.clear();
        });
    }
}

void JammingAttack::collect(core::MetricMap& out) const {
    out["attack.jammer_power_dbm"] = params_.power_dbm;
    out["attack.jammer_duty"] = params_.duty_cycle;
}

}  // namespace platoon::security
