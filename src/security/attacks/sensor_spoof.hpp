// Radar/sensor spoofing & jamming (paper Section V-G, Table II): directly
// attack the victim's forward sensor. Jamming blinds it (laser on camera /
// noise on radar): CACC loses its gap source and must trust beacons alone.
// Spoofing injects a phantom target closing in: the victim brakes hard and
// the disturbance propagates down the string. Sensor fusion (radar-vs-beacon
// cross-check) discards the lying radar.
#pragma once

#include "security/attacks/attack.hpp"

namespace platoon::security {

class SensorSpoofAttack final : public Attack {
public:
    enum class Mode : std::uint8_t {
        kJam,    ///< Blind the radar (no measurement at all).
        kSpoof,  ///< Phantom target at a closing distance.
    };

    struct Params {
        AttackWindow window{20.0, 60.0};
        std::size_t victim_index = 3;
        Mode mode = Mode::kSpoof;
        double phantom_gap_m = 2.5;       ///< Claimed gap (dangerously close).
        double phantom_closing_mps = 3.0; ///< Claimed closing speed.
    };

    SensorSpoofAttack() : SensorSpoofAttack(Params{}) {}
    explicit SensorSpoofAttack(Params params) : params_(params) {}

    void attach(core::Scenario& scenario) override;
    [[nodiscard]] std::string name() const override {
        return params_.mode == Mode::kJam ? "sensor-jamming"
                                          : "sensor-spoofing";
    }
    [[nodiscard]] core::AttackKind kind() const override {
        return core::AttackKind::kSensorSpoofing;
    }
    void collect(core::MetricMap& out) const override;

private:
    Params params_;
    core::Scenario* scenario_ = nullptr;
    bool active_ = false;
};

}  // namespace platoon::security
