// Radar/sensor spoofing & jamming (paper Section V-G, Table II): directly
// attack the victim's forward sensor. Jamming blinds it (laser on camera /
// noise on radar): CACC loses its gap source and must trust beacons alone.
// Spoofing injects a phantom target closing in: the victim brakes hard and
// the disturbance propagates down the string. Sensor fusion (radar-vs-beacon
// cross-check) discards the lying radar.
#pragma once

#include <optional>

#include "security/attacks/attack.hpp"
#include "security/attacks/injection_shape.hpp"

namespace platoon::security {

class SensorSpoofAttack final : public Attack {
public:
    enum class Mode : std::uint8_t {
        kJam,    ///< Blind the radar (no measurement at all).
        kSpoof,  ///< Phantom target at a closing distance.
        kBias,   ///< Additive gap bias shaped by an InjectionShape.
    };

    struct Params {
        AttackWindow window{20.0, 60.0};
        std::size_t victim_index = 3;
        Mode mode = Mode::kSpoof;
        double phantom_gap_m = 2.5;       ///< Claimed gap (dangerously close).
        double phantom_closing_mps = 3.0; ///< Claimed closing speed.
        /// kBias envelope: the radar still tracks the real target, but its
        /// range reads `shape.value_at(...)` meters long -- the stealthy
        /// alternative to replacing the measurement outright.
        std::optional<InjectionShape> shape;
        sim::SimTime update_period_s = 0.1;  ///< kBias envelope refresh.
    };

    SensorSpoofAttack() : SensorSpoofAttack(Params{}) {}
    explicit SensorSpoofAttack(Params params) : params_(params) {}

    void attach(core::Scenario& scenario) override;
    [[nodiscard]] std::string name() const override {
        switch (params_.mode) {
            case Mode::kJam: return "sensor-jamming";
            case Mode::kBias: return "sensor-bias";
            case Mode::kSpoof: break;
        }
        return "sensor-spoofing";
    }
    [[nodiscard]] core::AttackKind kind() const override {
        return core::AttackKind::kSensorSpoofing;
    }
    void collect(core::MetricMap& out) const override;

private:
    Params params_;
    core::Scenario* scenario_ = nullptr;
    sim::EventHandle bias_handle_;
    bool active_ = false;
    double bias_m_ = 0.0;
};

}  // namespace platoon::security
