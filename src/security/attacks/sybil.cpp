#include "security/attacks/sybil.hpp"

#include <algorithm>

#include "sim/assert.hpp"

namespace platoon::security {

void SybilAttack::attach(core::Scenario& scenario) {
    PLATOON_EXPECTS(radio_ == nullptr);
    scenario_ = &scenario;

    radio_ = std::make_unique<AttackerRadio>(
        scenario, sim::NodeId{9002},
        track_vehicle(scenario, scenario.config().platoon_size / 2, 3.0));
    radio_->start(nullptr);

    beacon_handle_ = scenario.scheduler().schedule_every(
        params_.window.start_s, params_.beacon_period_s,
        [this] { emit_ghost_beacons(); });
    if (params_.send_join_requests) {
        join_handle_ = scenario.scheduler().schedule_every(
            params_.window.start_s, params_.join_request_period_s,
            [this] { emit_join_requests(); });
    }
}

void SybilAttack::emit_ghost_beacons() {
    const sim::SimTime now = scenario_->scheduler().now();
    if (!params_.window.active_at(now)) {
        scenario_->scheduler().cancel(beacon_handle_);
        return;
    }

    const std::size_t platoon_size = scenario_->config().platoon_size;
    for (std::size_t g = 0; g < params_.ghosts; ++g) {
        const std::size_t victim_index = std::min(
            params_.first_victim_index + g, platoon_size - 1);
        const auto& victim = const_cast<core::Scenario*>(scenario_)
                                 ->vehicle(victim_index);

        // The ghost claims to sit just ahead of the victim, braking.
        net::Beacon ghost;
        ghost.sender = 7000u + static_cast<std::uint32_t>(g);
        ghost.platoon_id = scenario_->platoon_id();
        ghost.platoon_index = 1;
        ghost.lane = victim.lane();
        ghost.length_m = 4.0;
        ghost.position_m = victim.dynamics().position() + 7.0;
        ghost.speed_mps =
            std::max(0.0, victim.dynamics().speed() + params_.ghost_speed_delta);
        ghost.accel_mps2 = params_.ghost_brake_mps2;

        net::Frame frame;
        frame.type = net::MsgType::kBeacon;
        frame.envelope = protection_.protect(ghost.sender,
                                             crypto::BytesView(ghost.encode()),
                                             now);
        frame.truth = oracle_label(kind(), radio_->id());
        radio_->send(std::move(frame));
        ++beacons_;
    }
}

void SybilAttack::emit_join_requests() {
    const sim::SimTime now = scenario_->scheduler().now();
    if (!params_.window.active_at(now)) {
        scenario_->scheduler().cancel(join_handle_);
        return;
    }
    for (std::size_t g = 0; g < params_.ghosts; ++g) {
        net::ManeuverMsg msg;
        msg.type = net::ManeuverType::kJoinRequest;
        msg.platoon_id = scenario_->platoon_id();
        msg.sender = 7000u + static_cast<std::uint32_t>(g);
        msg.subject = msg.sender;
        net::Frame frame;
        frame.type = net::MsgType::kManeuver;
        frame.envelope = protection_.protect(msg.sender,
                                             crypto::BytesView(msg.encode()),
                                             now);
        frame.truth = oracle_label(kind(), radio_->id());
        radio_->send(std::move(frame));
        ++join_requests_;
    }
}

void SybilAttack::collect(core::MetricMap& out) const {
    out["attack.ghost_beacons"] = static_cast<double>(beacons_);
    out["attack.ghost_join_requests"] = static_cast<double>(join_requests_);
}

}  // namespace platoon::security
