// Shaped-injection envelope: the common parameterization of the injection
// attacks (gps_spoof, sensor_spoof, fake_maneuver) a detector-aware attacker
// tunes. A shape turns a constant offset into a profile -- ramped onset,
// duty-cycled bursts, deterministic onset jitter -- which is exactly the
// knob space the stealth search (src/security/stealth/) optimizes over:
// ramp slow enough to stay under the innovation gate, bursts short enough
// to drain the CUSUM between them, amplitude under the EWMA threshold.
#pragma once

#include <algorithm>
#include <cmath>

namespace platoon::security {

/// Piecewise envelope for an injected magnitude as a function of time since
/// the attack's nominal onset. The value is 0 before `onset_delay_s`, then
/// inside each active fraction of a duty period it ramps from 0 at
/// `ramp_per_s` up to `amplitude` (a non-positive ramp steps instantly);
/// outside the active fraction it is 0 (the injection clears instantly,
/// letting per-peer CUSUM statistics drain).
struct InjectionShape {
    double amplitude = 0.0;      ///< Peak injected magnitude (meters).
    double ramp_per_s = 0.0;     ///< Rise rate per burst; <=0 means step.
    double duty_cycle = 1.0;     ///< Active fraction of each duty period.
    double duty_period_s = 10.0; ///< Burst repetition period.
    double onset_delay_s = 0.0;  ///< Jitter after the attack window opens.

    /// Envelope value `t_since_start` seconds after the attack window opens
    /// (lock-on delays included by the caller). Always in [0, amplitude].
    [[nodiscard]] double value_at(double t_since_start) const {
        const double t = t_since_start - onset_delay_s;
        if (t < 0.0) return 0.0;
        double since_burst = t;
        if (duty_cycle < 1.0) {
            const double phase = std::fmod(t, duty_period_s);
            if (phase >= duty_cycle * duty_period_s) return 0.0;
            since_burst = phase;
        }
        if (ramp_per_s <= 0.0) return amplitude;
        return std::min(amplitude, ramp_per_s * since_burst);
    }
};

}  // namespace platoon::security
