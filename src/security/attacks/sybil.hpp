// Sybil attack (paper Section V-A.2, Table II): one physical attacker
// fabricates ghost vehicles. Ghost beacons claim positions inside the
// platoon's gaps with hostile kinematics (braking hard), hijacking the
// followers' predecessor selection; ghost join requests clog the leader's
// admission table so real vehicles cannot join. Authentication kills both:
// ghosts cannot produce valid credentials.
#pragma once

#include <memory>
#include <vector>

#include "crypto/secured_message.hpp"
#include "security/attacks/attack.hpp"

namespace platoon::security {

class SybilAttack final : public Attack {
public:
    struct Params {
        AttackWindow window{20.0};
        std::size_t ghosts = 3;
        /// Members whose gaps the ghosts haunt (victim follows the ghost).
        std::size_t first_victim_index = 2;
        double ghost_brake_mps2 = -3.0;   ///< Claimed deceleration.
        double ghost_speed_delta = -2.0;  ///< Claimed speed below victim's.
        sim::SimTime beacon_period_s = 0.1;
        bool send_join_requests = true;
        sim::SimTime join_request_period_s = 2.0;
    };

    SybilAttack() : SybilAttack(Params{}) {}
    explicit SybilAttack(Params params) : params_(params) {}

    void attach(core::Scenario& scenario) override;
    [[nodiscard]] std::string name() const override { return "sybil"; }
    [[nodiscard]] core::AttackKind kind() const override {
        return core::AttackKind::kSybil;
    }
    void collect(core::MetricMap& out) const override;

    [[nodiscard]] std::uint64_t ghost_beacons() const { return beacons_; }

private:
    void emit_ghost_beacons();
    void emit_join_requests();

    Params params_;
    std::unique_ptr<AttackerRadio> radio_;
    core::Scenario* scenario_ = nullptr;
    sim::EventHandle beacon_handle_;
    sim::EventHandle join_handle_;
    crypto::MessageProtection protection_;  ///< kNone: ghosts cannot sign.
    std::uint64_t beacons_ = 0;
    std::uint64_t join_requests_ = 0;
};

}  // namespace platoon::security
