#include "security/attacks/sensor_spoof.hpp"

namespace platoon::security {

void SensorSpoofAttack::attach(core::Scenario& scenario) {
    scenario_ = &scenario;

    if (params_.mode == Mode::kBias) {
        // Shaped additive bias: refreshed periodically so the envelope can
        // ramp and duty-cycle; clears itself (and stops rescheduling) once
        // the window closes.
        const InjectionShape shape = params_.shape.value_or(InjectionShape{});
        bias_handle_ = scenario.scheduler().schedule_every(
            params_.window.start_s, params_.update_period_s, [this, shape] {
                const sim::SimTime now = scenario_->scheduler().now();
                auto& victim = scenario_->vehicle(params_.victim_index);
                if (!params_.window.active_at(now)) {
                    victim.radar().spoof_bias_clear();
                    active_ = false;
                    bias_m_ = 0.0;
                    scenario_->scheduler().cancel(bias_handle_);
                    return;
                }
                bias_m_ = shape.value_at(now - params_.window.start_s);
                if (bias_m_ == 0.0) {
                    victim.radar().spoof_bias_clear();
                    active_ = false;
                } else {
                    victim.radar().spoof_bias_set(bias_m_);
                    active_ = true;
                }
            });
        return;
    }

    scenario.scheduler().schedule_at(params_.window.start_s, [this] {
        auto& victim = scenario_->vehicle(params_.victim_index);
        active_ = true;
        if (params_.mode == Mode::kJam) {
            victim.radar().jam(true);
        } else {
            victim.radar().spoof_set(
                {params_.phantom_gap_m, params_.phantom_closing_mps});
        }
    });
    if (params_.window.has_stop()) {
        scenario.scheduler().schedule_at(params_.window.stop_s, [this] {
            auto& victim = scenario_->vehicle(params_.victim_index);
            active_ = false;
            victim.radar().jam(false);
            victim.radar().spoof_clear();
        });
    }
}

void SensorSpoofAttack::collect(core::MetricMap& out) const {
    switch (params_.mode) {
        case Mode::kJam: out["attack.sensor_mode"] = 0.0; break;
        case Mode::kSpoof: out["attack.sensor_mode"] = 1.0; break;
        case Mode::kBias:
            out["attack.sensor_mode"] = 2.0;
            out["attack.sensor_bias_m"] = bias_m_;
            break;
    }
}

}  // namespace platoon::security
