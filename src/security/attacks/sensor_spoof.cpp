#include "security/attacks/sensor_spoof.hpp"

namespace platoon::security {

void SensorSpoofAttack::attach(core::Scenario& scenario) {
    scenario_ = &scenario;

    scenario.scheduler().schedule_at(params_.window.start_s, [this] {
        auto& victim = scenario_->vehicle(params_.victim_index);
        active_ = true;
        if (params_.mode == Mode::kJam) {
            victim.radar().jam(true);
        } else {
            victim.radar().spoof_set(
                {params_.phantom_gap_m, params_.phantom_closing_mps});
        }
    });
    if (params_.window.stop_s < 1e17) {
        scenario.scheduler().schedule_at(params_.window.stop_s, [this] {
            auto& victim = scenario_->vehicle(params_.victim_index);
            active_ = false;
            victim.radar().jam(false);
            victim.radar().spoof_clear();
        });
    }
}

void SensorSpoofAttack::collect(core::MetricMap& out) const {
    out["attack.sensor_mode"] = params_.mode == Mode::kJam ? 0.0 : 1.0;
}

}  // namespace platoon::security
