#include "security/attacks/dos.hpp"

#include "sim/assert.hpp"

namespace platoon::security {

void DosAttack::attach(core::Scenario& scenario) {
    PLATOON_EXPECTS(radio_ == nullptr);
    scenario_ = &scenario;

    radio_ = std::make_unique<AttackerRadio>(
        scenario, sim::NodeId{9005},
        track_vehicle(scenario, 0, -60.0));
    radio_->start(nullptr);

    inject_handle_ = scenario.scheduler().schedule_every(
        params_.window.start_s, 1.0 / params_.request_rate_hz,
        [this] { flood_one(); });
}

void DosAttack::flood_one() {
    const sim::SimTime now = scenario_->scheduler().now();
    if (!params_.window.active_at(now)) {
        scenario_->scheduler().cancel(inject_handle_);
        return;
    }

    const std::uint32_t fake_id =
        params_.rotate_identities ? next_fake_id_++ : 8000u;
    net::ManeuverMsg msg;
    msg.type = net::ManeuverType::kJoinRequest;
    msg.platoon_id = scenario_->platoon_id();
    msg.sender = fake_id;
    msg.subject = fake_id;

    net::Frame frame;
    frame.type = net::MsgType::kManeuver;
    frame.envelope =
        protection_.protect(fake_id, crypto::BytesView(msg.encode()), now);
    frame.truth = oracle_label(kind(), radio_->id());
    radio_->send(std::move(frame));
    ++requests_;
}

void DosAttack::collect(core::MetricMap& out) const {
    out["attack.join_requests_sent"] = static_cast<double>(requests_);
}

}  // namespace platoon::security
