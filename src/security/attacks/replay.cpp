#include "security/attacks/replay.hpp"

#include "sim/assert.hpp"

namespace platoon::security {

void ReplayAttack::attach(core::Scenario& scenario) {
    PLATOON_EXPECTS(radio_ == nullptr);
    scenario_ = &scenario;
    target_wire_ = scenario.vehicle(params_.target_index).wire_id();

    // The attacker tails the platoon on the adjacent lane.
    radio_ = std::make_unique<AttackerRadio>(
        scenario, sim::NodeId{9001},
        track_vehicle(scenario, scenario.config().platoon_size - 1, -20.0));

    radio_->start([this](const net::Frame& frame, const net::RxInfo& info) {
        (void)info;
        if (frame.envelope.sender != target_wire_) return;
        if (frame.type == net::MsgType::kKeyMgmt) return;
        if (frame.type == net::MsgType::kManeuver && !params_.replay_maneuvers)
            return;
        if (info.physical_sender == radio_->id()) return;
        buffer_.push_back({frame, scenario_->scheduler().now()});
        ++recorded_;
        if (buffer_.size() > params_.buffer_limit) buffer_.pop_front();
    });

    inject_handle_ = scenario.scheduler().schedule_every(
        params_.window.start_s, 1.0 / params_.replay_rate_hz,
        [this] { replay_one(); });
}

void ReplayAttack::replay_one() {
    const sim::SimTime now = scenario_->scheduler().now();
    if (!params_.window.active_at(now)) {
        scenario_->scheduler().cancel(inject_handle_);
        return;
    }

    // Replay the oldest frame that is at least replay_delay_s old: stale
    // enough to conflict with current truth, fresh enough to look alive.
    while (!buffer_.empty() &&
           now - buffer_.front().heard_at > 3.0 * params_.replay_delay_s) {
        buffer_.pop_front();
    }
    for (const Recorded& rec : buffer_) {
        if (now - rec.heard_at >= params_.replay_delay_s) {
            net::Frame frame = rec.frame;
            frame.truth = oracle_label(kind(), radio_->id());
            radio_->send(std::move(frame));
            ++replayed_;
            return;
        }
    }
}

void ReplayAttack::collect(core::MetricMap& out) const {
    out["attack.frames_recorded"] = static_cast<double>(recorded_);
    out["attack.frames_replayed"] = static_cast<double>(replayed_);
}

}  // namespace platoon::security
