#include "security/attacks/gps_spoof.hpp"

#include <algorithm>

namespace platoon::security {

void GpsSpoofAttack::attach(core::Scenario& scenario) {
    scenario_ = &scenario;

    inject_handle_ = scenario.scheduler().schedule_every(
        params_.window.start_s + params_.lock_on_delay_s,
        params_.update_period_s, [this] {
            const sim::SimTime now = scenario_->scheduler().now();
            auto& victim = scenario_->vehicle(params_.victim_index);
            if (!params_.window.active_at(now)) {
                if (locked_) {
                    victim.gps().spoof_clear();
                    victim.clear_beacon_truth();
                    locked_ = false;
                }
                scenario_->scheduler().cancel(inject_handle_);
                return;
            }
            if (params_.shape) {
                // Shaped profile: the offset follows the envelope, releasing
                // the receiver between bursts so residual statistics drain.
                offset_m_ = params_.shape->value_at(
                    now - params_.window.start_s - params_.lock_on_delay_s);
                if (offset_m_ <= 0.0) {
                    if (locked_) {
                        victim.gps().spoof_clear();
                        victim.clear_beacon_truth();
                        locked_ = false;
                    }
                    return;
                }
            } else {
                offset_m_ = std::min(
                    params_.max_offset_m,
                    offset_m_ +
                        params_.walk_rate_mps * params_.update_period_s);
            }
            locked_ = true;
            // The victim is honest but its position claims are poisoned:
            // taint its beacon stream so detection scoring knows which
            // messages carried attacker-induced data.
            victim.set_beacon_truth(oracle_label(kind(), victim.id()));
            victim.gps().spoof_set_offset(offset_m_);
        });
}

void GpsSpoofAttack::collect(core::MetricMap& out) const {
    out["attack.gps_offset_m"] = offset_m_;
}

}  // namespace platoon::security
