#include "security/attacks/rogue_rsu.hpp"

#include "sim/assert.hpp"

namespace platoon::security {

void RogueRsuAttack::attach(core::Scenario& scenario) {
    PLATOON_EXPECTS(radio_ == nullptr);
    scenario_ = &scenario;

    radio_ = std::make_unique<AttackerRadio>(
        scenario, sim::NodeId{9007},
        [pos = params_.position_m] { return pos; });
    radio_->start(nullptr);

    inject_handle_ = scenario.scheduler().schedule_every(
        params_.window.start_s, params_.broadcast_period_s,
        [this] { broadcast_poison(); });
}

void RogueRsuAttack::broadcast_poison() {
    const sim::SimTime now = scenario_->scheduler().now();
    if (!params_.window.active_at(now)) {
        scenario_->scheduler().cancel(inject_handle_);
        return;
    }

    if (params_.poison_crl) {
        // "Revoke" the first N member credentials. Against an open platoon
        // the serials are guessable (they are small integers issued in
        // enrollment order); against a signed platoon this frame fails
        // verification long before the CRL is parsed.
        net::KeyMgmtMsg msg;
        msg.type = net::KeyMgmtType::kCrlUpdate;
        msg.sender = 9007;
        for (std::uint64_t serial = 1;
             serial <= params_.victims_per_crl * 13; ++serial) {
            crypto::append_u64(msg.blob, serial);
        }
        net::Frame frame;
        frame.type = net::MsgType::kKeyMgmt;
        frame.envelope = protection_.protect(9007,
                                             crypto::BytesView(msg.encode()),
                                             now);
        radio_->send(std::move(frame));
        ++broadcasts_;
    }

    if (params_.offer_bogus_group_key) {
        // Unsolicited "group key" for the platoon tail: a vehicle that
        // installs it can no longer authenticate to its real peers.
        net::KeyMgmtMsg msg;
        msg.type = net::KeyMgmtType::kGroupKeyDistribution;
        msg.sender = 9007;
        msg.receiver = scenario_->tail().wire_id();
        msg.blob = crypto::Bytes(32, 0xEE);
        net::Frame frame;
        frame.type = net::MsgType::kKeyMgmt;
        frame.envelope = protection_.protect(9007,
                                             crypto::BytesView(msg.encode()),
                                             now);
        radio_->send(std::move(frame));
        ++broadcasts_;
    }
}

void RogueRsuAttack::collect(core::MetricMap& out) const {
    out["attack.rogue_broadcasts"] = static_cast<double>(broadcasts_);
}

}  // namespace platoon::security
