// Fake-maneuver attack (paper Section V-A.3, Table II): forged protocol
// messages with the leader's claimed identity. Variants map to the paper's
// fake entrance (gap-open), fake split, and dissolve. Without message
// authentication the members obey; with it the forgeries fail signature /
// MAC checks.
#pragma once

#include <memory>

#include "crypto/secured_message.hpp"
#include "security/attacks/attack.hpp"

namespace platoon::security {

class FakeManeuverAttack final : public Attack {
public:
    enum class Variant : std::uint8_t {
        kGapOpen,   ///< Fake entrance: members open 30 m gaps for nobody.
        kSplit,     ///< Fake split: rear half detaches.
        kDissolve,  ///< Everyone detaches; the platoon is gone.
    };

    struct Params {
        AttackWindow window{20.0};
        Variant variant = Variant::kGapOpen;
        double gap_open_m = 30.0;
        sim::SimTime repeat_period_s = 5.0;  ///< Keep re-asserting the lie.
        /// kGapOpen fan-out per burst: 0 targets every member at once (the
        /// loud default); a stealthy attacker rotates through N members per
        /// burst to stay under the maneuver-rate flood gate.
        std::size_t targets_per_burst = 0;
    };

    FakeManeuverAttack() : FakeManeuverAttack(Params{}) {}
    explicit FakeManeuverAttack(Params params) : params_(params) {}

    void attach(core::Scenario& scenario) override;
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] core::AttackKind kind() const override {
        return core::AttackKind::kFakeManeuver;
    }
    void collect(core::MetricMap& out) const override;

private:
    void inject();

    Params params_;
    std::unique_ptr<AttackerRadio> radio_;
    core::Scenario* scenario_ = nullptr;
    sim::EventHandle inject_handle_;
    crypto::MessageProtection protection_;
    std::uint32_t leader_wire_ = sim::NodeId::kInvalidValue;
    std::uint64_t injected_ = 0;
    std::size_t next_target_ = 0;  ///< kGapOpen round-robin cursor.
};

}  // namespace platoon::security
