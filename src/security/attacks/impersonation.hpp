// Impersonation attack (paper Section V-F, Table II): the attacker holds a
// STOLEN credential (key + certificate) of a legitimate vehicle -- typically
// the leader -- and speaks with its identity. Unlike Sybil/fake-maneuver,
// this defeats signatures: the messages verify. What stops it is the
// ecosystem: the victim hears "itself" transmitting (self-echo), reports to
// an RSU, the trusted authority revokes the credential, and CRL broadcasts
// propagate the revocation.
#pragma once

#include <memory>

#include "crypto/secured_message.hpp"
#include "security/attacks/attack.hpp"

namespace platoon::security {

class ImpersonationAttack final : public Attack {
public:
    struct Params {
        AttackWindow window{20.0};
        std::size_t victim_index = 0;   ///< Whose identity is stolen.
        /// What the impersonator does with the identity.
        bool send_dissolve = false;     ///< Forged leader dissolve command.
        bool send_beacons = true;       ///< Fake kinematics as the victim.
        double beacon_accel_lie = -2.5;
        sim::SimTime repeat_period_s = 1.0;
    };

    ImpersonationAttack() : ImpersonationAttack(Params{}) {}
    explicit ImpersonationAttack(Params params) : params_(params) {}

    void attach(core::Scenario& scenario) override;
    [[nodiscard]] std::string name() const override { return "impersonation"; }
    [[nodiscard]] core::AttackKind kind() const override {
        return core::AttackKind::kImpersonation;
    }
    void collect(core::MetricMap& out) const override;

private:
    void inject();

    Params params_;
    std::unique_ptr<AttackerRadio> radio_;
    core::Scenario* scenario_ = nullptr;
    sim::EventHandle inject_handle_;
    crypto::MessageProtection protection_;  ///< Configured like the victim's.
    std::uint32_t victim_wire_ = sim::NodeId::kInvalidValue;
    std::uint64_t injected_ = 0;
};

}  // namespace platoon::security
