#include "security/attacks/eavesdrop.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"

namespace platoon::security {

void EavesdropAttack::attach(core::Scenario& scenario) {
    PLATOON_EXPECTS(radio_ == nullptr);
    scenario_ = &scenario;

    std::function<double()> position;
    if (params_.mobile) {
        position = track_vehicle(scenario, scenario.config().platoon_size - 1,
                                 -25.0);
    } else {
        position = [pos = params_.post_position_m] { return pos; };
    }
    radio_ = std::make_unique<AttackerRadio>(scenario, sim::NodeId{9004},
                                             std::move(position));

    radio_->start([this](const net::Frame& frame, const net::RxInfo& info) {
        const sim::SimTime now = scenario_->scheduler().now();
        if (!params_.window.active_at(now)) return;
        ++heard_;
        payload_bytes_captured_ += frame.envelope.payload.size();
        if (frame.type != net::MsgType::kBeacon) return;

        // The eavesdropper has no keys: an encrypted payload is noise (the
        // decode magic will not match).
        const auto beacon =
            net::Beacon::decode(crypto::BytesView(frame.envelope.payload));
        if (!beacon) return;
        ++decoded_;

        Track& track = tracks_[frame.envelope.sender];
        if (track.points == 0) track.first = now;
        track.last = now;
        ++track.points;

        // Ground truth: how well does the claimed position pin the actual
        // physical transmitter? (The simulator knows; a real attacker would
        // be correlating with camera/toll data.)
        if (scenario_->network().is_registered(info.physical_sender)) {
            const double truth =
                scenario_->network().node_position(info.physical_sender);
            abs_error_sum_ += std::abs(truth - beacon->position_m);
            ++error_samples_;
        }
    });
}

double EavesdropAttack::longest_track_s() const {
    double best = 0.0;
    for (const auto& [id, track] : tracks_) {
        if (track.points >= 2) best = std::max(best, track.last - track.first);
    }
    return best;
}

double EavesdropAttack::tracking_error_m() const {
    return error_samples_ == 0
               ? 0.0
               : abs_error_sum_ / static_cast<double>(error_samples_);
}

void EavesdropAttack::collect(core::MetricMap& out) const {
    out["attack.frames_heard"] = static_cast<double>(heard_);
    out["attack.beacons_decoded"] = static_cast<double>(decoded_);
    out["attack.decode_ratio"] =
        heard_ == 0 ? 0.0
                    : static_cast<double>(decoded_) / static_cast<double>(heard_);
    out["attack.bytes_captured"] =
        static_cast<double>(payload_bytes_captured_);
    out["attack.identities_tracked"] = static_cast<double>(tracks_.size());
    out["attack.longest_track_s"] = longest_track_s();
    out["attack.tracking_error_m"] = tracking_error_m();
}

}  // namespace platoon::security
