#include "security/attacks/fake_maneuver.hpp"

#include <algorithm>

#include "sim/assert.hpp"

namespace platoon::security {

std::string FakeManeuverAttack::name() const {
    switch (params_.variant) {
        case Variant::kGapOpen: return "fake-maneuver/gap-open";
        case Variant::kSplit: return "fake-maneuver/split";
        case Variant::kDissolve: return "fake-maneuver/dissolve";
    }
    return "fake-maneuver";
}

void FakeManeuverAttack::attach(core::Scenario& scenario) {
    PLATOON_EXPECTS(radio_ == nullptr);
    scenario_ = &scenario;

    radio_ = std::make_unique<AttackerRadio>(
        scenario, sim::NodeId{9003},
        track_vehicle(scenario, scenario.config().platoon_size / 2, -5.0));

    // Learn the leader's wire identity from its beacons (index 0 claims).
    radio_->start([this](const net::Frame& frame, const net::RxInfo&) {
        if (frame.type != net::MsgType::kBeacon) return;
        if (frame.envelope.encrypted) return;
        const auto beacon =
            net::Beacon::decode(crypto::BytesView(frame.envelope.payload));
        if (beacon && beacon->platoon_index == 0 &&
            beacon->platoon_id == scenario_->platoon_id()) {
            leader_wire_ = frame.envelope.sender;
        }
    });

    inject_handle_ = scenario.scheduler().schedule_every(
        params_.window.start_s, params_.repeat_period_s, [this] { inject(); });
}

void FakeManeuverAttack::inject() {
    const sim::SimTime now = scenario_->scheduler().now();
    if (!params_.window.active_at(now)) {
        scenario_->scheduler().cancel(inject_handle_);
        return;
    }
    if (leader_wire_ == sim::NodeId::kInvalidValue) {
        // Fall back to the well-known slot id (open networks leak it anyway).
        leader_wire_ = core::Scenario::platoon_node(0).value;
    }

    const std::size_t platoon_size = scenario_->config().platoon_size;
    const auto send = [&](net::ManeuverType type, std::uint32_t subject,
                          double param) {
        net::ManeuverMsg msg;
        msg.type = type;
        msg.platoon_id = scenario_->platoon_id();
        msg.sender = leader_wire_;  // the forgery
        msg.subject = subject;
        msg.param = param;
        net::Frame frame;
        frame.type = net::MsgType::kManeuver;
        frame.envelope = protection_.protect(leader_wire_,
                                             crypto::BytesView(msg.encode()),
                                             now);
        frame.truth = oracle_label(kind(), radio_->id());
        radio_->send(std::move(frame));
        ++injected_;
    };

    switch (params_.variant) {
        case Variant::kGapOpen: {
            // Members open an entrance gap for a vehicle that will never
            // come. The default bursts to everyone at once; a bounded
            // fan-out rotates through the members round-robin instead.
            const std::size_t members = platoon_size - 1;
            const std::size_t fanout =
                params_.targets_per_burst == 0
                    ? members
                    : std::min(params_.targets_per_burst, members);
            for (std::size_t n = 0; n < fanout; ++n) {
                const std::size_t i = 1 + (next_target_ + n) % members;
                send(net::ManeuverType::kGapOpen,
                     scenario_->vehicle(i).wire_id(), params_.gap_open_m);
            }
            next_target_ = (next_target_ + fanout) % members;
            break;
        }
        case Variant::kSplit:
            send(net::ManeuverType::kSplitRequest,
                 scenario_->vehicle(platoon_size / 2).wire_id(), 0.0);
            break;
        case Variant::kDissolve:
            send(net::ManeuverType::kDissolve, 0, 0.0);
            break;
    }
}

void FakeManeuverAttack::collect(core::MetricMap& out) const {
    out["attack.maneuvers_injected"] = static_cast<double>(injected_);
}

}  // namespace platoon::security
