// Eavesdropping attack (paper Section V-C, Table II): a passive listener
// parked by the roadside (or tailing the platoon) records everything. The
// attack's yield is measured, not assumed:
//  - how many beacons were heard and how many *decoded* (encryption stops
//    decoding, not hearing),
//  - how many distinct identities could be tracked and for how long
//    (pseudonym rotation shortens linkable trajectories),
//  - how accurately a victim's trajectory was reconstructed.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "security/attacks/attack.hpp"

namespace platoon::security {

class EavesdropAttack final : public Attack {
public:
    struct Params {
        AttackWindow window{0.0};
        bool mobile = false;      ///< Tail the platoon vs. roadside post.
        double post_position_m = 2500.0;
    };

    EavesdropAttack() : EavesdropAttack(Params{}) {}
    explicit EavesdropAttack(Params params) : params_(params) {}

    void attach(core::Scenario& scenario) override;
    [[nodiscard]] std::string name() const override { return "eavesdropping"; }
    [[nodiscard]] core::AttackKind kind() const override {
        return core::AttackKind::kEavesdropping;
    }
    void collect(core::MetricMap& out) const override;

    [[nodiscard]] std::uint64_t frames_heard() const { return heard_; }
    [[nodiscard]] std::uint64_t beacons_decoded() const { return decoded_; }
    /// Longest continuously-linkable trajectory (one wire identity), seconds.
    [[nodiscard]] double longest_track_s() const;
    /// Mean absolute error between claimed and true positions for frames
    /// attributed to platoon vehicles (requires ground truth = simulator).
    [[nodiscard]] double tracking_error_m() const;

private:
    Params params_;
    std::unique_ptr<AttackerRadio> radio_;
    core::Scenario* scenario_ = nullptr;
    std::uint64_t heard_ = 0;
    std::uint64_t decoded_ = 0;
    std::uint64_t payload_bytes_captured_ = 0;

    struct Track {
        sim::SimTime first = 0.0;
        sim::SimTime last = 0.0;
        std::size_t points = 0;
    };
    std::map<std::uint32_t, Track> tracks_;
    double abs_error_sum_ = 0.0;
    std::size_t error_samples_ = 0;
};

}  // namespace platoon::security
