#include "security/attacks/impersonation.hpp"

#include "sim/assert.hpp"

namespace platoon::security {

void ImpersonationAttack::attach(core::Scenario& scenario) {
    PLATOON_EXPECTS(radio_ == nullptr);
    scenario_ = &scenario;

    core::PlatoonVehicle& victim = scenario.vehicle(params_.victim_index);
    victim_wire_ = victim.wire_id();

    // Mirror the victim's protection configuration with the stolen material.
    crypto::MessageProtection::Config config;
    config.mode = victim.policy().auth_mode;
    config.encrypt = victim.policy().encrypt_payloads;
    protection_ = crypto::MessageProtection(config);
    if (config.mode == crypto::AuthMode::kSignature) {
        // Credential theft: enrollment is deterministic, so re-enrolling the
        // victim's id hands the attacker a bit-for-bit copy of its key and
        // certificate (the simulator's stand-in for an extracted HSM key).
        auto stolen = scenario.enroll(victim.id());
        victim_wire_ = stolen.long_term.cert.subject.value;
        protection_.set_credential(std::move(stolen.long_term));
    } else if (config.mode == crypto::AuthMode::kGroupMac ||
               config.encrypt) {
        protection_.set_group_key(scenario.group_key());
    }

    // Outrun the victim's sequence numbers so forgeries pass replay checks
    // (and the victim's own traffic starts looking replayed -- a bonus for
    // the attacker).
    protection_.set_seq_base(1u << 20);

    radio_ = std::make_unique<AttackerRadio>(
        scenario, sim::NodeId{9006},
        track_vehicle(scenario, scenario.config().platoon_size - 1, -40.0));
    radio_->start(nullptr);

    inject_handle_ = scenario.scheduler().schedule_every(
        params_.window.start_s, params_.repeat_period_s, [this] { inject(); });
}

void ImpersonationAttack::inject() {
    const sim::SimTime now = scenario_->scheduler().now();
    if (!params_.window.active_at(now)) {
        scenario_->scheduler().cancel(inject_handle_);
        return;
    }

    if (params_.send_dissolve) {
        net::ManeuverMsg msg;
        msg.type = net::ManeuverType::kDissolve;
        msg.platoon_id = scenario_->platoon_id();
        msg.sender = victim_wire_;
        net::Frame frame;
        frame.type = net::MsgType::kManeuver;
        frame.envelope = protection_.protect(victim_wire_,
                                             crypto::BytesView(msg.encode()),
                                             now);
        frame.truth = oracle_label(kind(), radio_->id());
        radio_->send(std::move(frame));
        ++injected_;
    }
    if (params_.send_beacons) {
        core::PlatoonVehicle& victim =
            scenario_->vehicle(params_.victim_index);
        net::Beacon beacon;
        beacon.sender = victim_wire_;
        beacon.platoon_id = scenario_->platoon_id();
        beacon.platoon_index = params_.victim_index == 0 ? 0 : 1;
        beacon.lane = victim.lane();
        // The attacker transmits from its own location; claiming it under
        // the stolen identity is what RSU impossible-motion monitoring and
        // per-vehicle plausibility checks can catch.
        beacon.position_m =
            scenario_->vehicle(scenario_->config().platoon_size - 1)
                .dynamics()
                .position() -
            40.0;
        beacon.speed_mps = victim.dynamics().speed() - 3.0;
        beacon.accel_mps2 = params_.beacon_accel_lie;
        beacon.length_m = victim.dynamics().length();
        net::Frame frame;
        frame.type = net::MsgType::kBeacon;
        frame.envelope = protection_.protect(
            victim_wire_, crypto::BytesView(beacon.encode()), now);
        frame.truth = oracle_label(kind(), radio_->id());
        radio_->send(std::move(frame));
        ++injected_;
    }
}

void ImpersonationAttack::collect(core::MetricMap& out) const {
    out["attack.impersonated_frames"] = static_cast<double>(injected_);
}

}  // namespace platoon::security
