// Replay attack (paper Section V-A.1, Table II): record legitimate platoon
// traffic, re-inject it later. The replayed beacons carry stale kinematics
// ("close the gap" when the leader has since slowed), so unauthenticated
// followers oscillate. Replay guards (timestamps + sequence numbers inside
// the authenticated envelope) neutralise it.
#pragma once

#include <deque>
#include <memory>

#include "security/attacks/attack.hpp"

namespace platoon::security {

class ReplayAttack final : public Attack {
public:
    struct Params {
        AttackWindow window{20.0};
        /// Which platoon slot to record (0 = leader -- the juiciest target:
        /// its beacons steer everyone).
        std::size_t target_index = 0;
        sim::SimTime replay_delay_s = 3.0;  ///< Age of replayed material.
        double replay_rate_hz = 20.0;       ///< Injection rate.
        std::size_t buffer_limit = 512;
        bool replay_maneuvers = true;       ///< Also replay maneuver frames.
    };

    ReplayAttack() : ReplayAttack(Params{}) {}
    explicit ReplayAttack(Params params) : params_(params) {}

    void attach(core::Scenario& scenario) override;
    [[nodiscard]] std::string name() const override { return "replay"; }
    [[nodiscard]] core::AttackKind kind() const override {
        return core::AttackKind::kReplay;
    }
    void collect(core::MetricMap& out) const override;

    [[nodiscard]] std::uint64_t frames_recorded() const { return recorded_; }
    [[nodiscard]] std::uint64_t frames_replayed() const { return replayed_; }

private:
    void replay_one();

    Params params_;
    std::unique_ptr<AttackerRadio> radio_;
    core::Scenario* scenario_ = nullptr;
    sim::EventHandle inject_handle_;
    std::uint32_t target_wire_ = sim::NodeId::kInvalidValue;
    struct Recorded {
        net::Frame frame;
        sim::SimTime heard_at;
    };
    std::deque<Recorded> buffer_;
    std::size_t next_replay_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t replayed_ = 0;
};

}  // namespace platoon::security
