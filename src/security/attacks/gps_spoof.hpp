// GPS spoofing attack (paper Section V-G, Table II): the attacker captures
// the victim's GPS receiver (overpowered counterfeit constellation) and then
// walks the reported position away at a slow rate -- slow enough to evade a
// naive jump check. The victim's own position estimate, its beacons, and its
// predecessor-selection all inherit the walked-off error; sensor fusion
// (dead reckoning gate) catches the walk and falls back to odometry.
#pragma once

#include <optional>

#include "security/attacks/attack.hpp"
#include "security/attacks/injection_shape.hpp"

namespace platoon::security {

class GpsSpoofAttack final : public Attack {
public:
    struct Params {
        AttackWindow window{20.0};
        std::size_t victim_index = 3;
        double walk_rate_mps = 2.0;   ///< Spoofed-position drift rate.
        double max_offset_m = 120.0;
        sim::SimTime lock_on_delay_s = 2.0;  ///< Capturing the receiver.
        sim::SimTime update_period_s = 0.1;
        /// Detector-aware profile: when set, the offset follows the shaped
        /// envelope (ramp/duty/onset) instead of the legacy monotone walk.
        std::optional<InjectionShape> shape;
    };

    GpsSpoofAttack() : GpsSpoofAttack(Params{}) {}
    explicit GpsSpoofAttack(Params params) : params_(params) {}

    void attach(core::Scenario& scenario) override;
    [[nodiscard]] std::string name() const override { return "gps-spoofing"; }
    [[nodiscard]] core::AttackKind kind() const override {
        return core::AttackKind::kSensorSpoofing;
    }
    void collect(core::MetricMap& out) const override;

    [[nodiscard]] double current_offset() const { return offset_m_; }

private:
    Params params_;
    core::Scenario* scenario_ = nullptr;
    sim::EventHandle inject_handle_;
    double offset_m_ = 0.0;
    bool locked_ = false;
};

}  // namespace platoon::security
