// Denial-of-service attack (paper Section V-D, Table II): flood the leader
// with join requests under rotating fake identities. The leader's bounded
// pending-admission table fills; legitimate joiners get kDenyPending and
// cannot enter the platoon. Requiring authenticated join requests (fake ids
// cannot sign) or rate-limiting restores availability.
#pragma once

#include <memory>

#include "crypto/secured_message.hpp"
#include "security/attacks/attack.hpp"

namespace platoon::security {

class DosAttack final : public Attack {
public:
    struct Params {
        AttackWindow window{15.0};
        double request_rate_hz = 20.0;
        bool rotate_identities = true;  ///< Fresh fake id per request.
    };

    DosAttack() : DosAttack(Params{}) {}
    explicit DosAttack(Params params) : params_(params) {}

    void attach(core::Scenario& scenario) override;
    [[nodiscard]] std::string name() const override {
        return "denial-of-service";
    }
    [[nodiscard]] core::AttackKind kind() const override {
        return core::AttackKind::kDenialOfService;
    }
    void collect(core::MetricMap& out) const override;

    [[nodiscard]] std::uint64_t requests_sent() const { return requests_; }

private:
    void flood_one();

    Params params_;
    std::unique_ptr<AttackerRadio> radio_;
    core::Scenario* scenario_ = nullptr;
    sim::EventHandle inject_handle_;
    crypto::MessageProtection protection_;
    std::uint32_t next_fake_id_ = 8000;
    std::uint64_t requests_ = 0;
};

}  // namespace platoon::security
