// Attack framework: every Table II threat is an Attack that attaches to a
// built Scenario. Attacks are external actors -- they get a radio (a raw
// network node), the ability to schedule events, and whatever the threat
// model grants them (e.g. a stolen credential for impersonation); they never
// reach into defended vehicles except through the explicitly modelled
// compromise hooks (sensors, malware).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "core/taxonomy.hpp"

namespace platoon::security {

/// When the attack is active.
struct AttackWindow {
    /// Sentinel for "the attack never stops". Any configured stop below the
    /// sentinel is a real stop -- attacks must test via has_stop(), never by
    /// comparing against ad-hoc magic numbers (a historical `< 1e17` check
    /// silently treated stops in [1e17, 1e18) as "never").
    static constexpr sim::SimTime kNeverStops = 1e18;

    sim::SimTime start_s = 20.0;
    sim::SimTime stop_s = kNeverStops;

    /// True when a finite stop time was configured.
    [[nodiscard]] bool has_stop() const { return stop_s < kNeverStops; }

    /// True while `now` lies inside [start_s, stop_s].
    [[nodiscard]] bool active_at(sim::SimTime now) const {
        return now >= start_s && now <= stop_s;
    }
};

/// Lifetime contract: an Attack must be destroyed BEFORE the Scenario it
/// attached to (attacker radios deregister from the scenario's network on
/// destruction). Construct the scenario first, the attack second.
class Attack {
public:
    virtual ~Attack() = default;

    /// Installs the attack into the scenario (schedules its events). Must be
    /// called exactly once, before the scenario runs past `window.start_s`.
    virtual void attach(core::Scenario& scenario) = 0;

    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual core::AttackKind kind() const = 0;

    /// Merges attack-side outcome metrics (attacker's view) into `out`.
    virtual void collect(core::MetricMap& out) const { (void)out; }
};

/// The attacker's radio: a raw node on the broadcast medium. It can hear
/// everything in range (the medium is open) and transmit arbitrary frames.
class AttackerRadio {
public:
    using ReceiveHandler = net::Network::ReceiveHandler;

    AttackerRadio(core::Scenario& scenario, sim::NodeId id,
                  std::function<double()> position);
    ~AttackerRadio();
    AttackerRadio(const AttackerRadio&) = delete;
    AttackerRadio& operator=(const AttackerRadio&) = delete;

    /// Registers on the medium. `on_receive` may be null (transmit-only).
    void start(ReceiveHandler on_receive);
    void stop();

    void send(net::Frame frame);
    [[nodiscard]] sim::NodeId id() const { return id_; }
    [[nodiscard]] core::Scenario& scenario() { return *scenario_; }
    [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }

private:
    core::Scenario* scenario_;
    sim::NodeId id_;
    std::function<double()> position_;
    bool registered_ = false;
    std::uint64_t frames_sent_ = 0;
};

/// Position helper: track a scenario vehicle with an offset (the attacker
/// drives along with the platoon, e.g. on the adjacent lane).
[[nodiscard]] std::function<double()> track_vehicle(
    core::Scenario& scenario, std::size_t vehicle_index, double offset_m);

/// Ground-truth oracle label for a frame this attack forged, tampered with
/// or replayed. Every attack stamps the frames it injects (and the beacon
/// streams it corrupts) so detection benchmarks can score against truth;
/// the label never reaches protocol logic.
[[nodiscard]] net::GroundTruth oracle_label(core::AttackKind kind,
                                            sim::NodeId attacker);

}  // namespace platoon::security
