// Jamming attack (paper Section V-B, Table II): raise the RF noise floor on
// the platoon's frequencies. Beacons stop decoding, CACC starves and the
// platoon degrades to radar ACC ("disbands" in the paper's terms: all
// platooning gains are lost). The hybrid-communication defense keeps the
// platoon alive over VLC.
#pragma once

#include <memory>

#include "security/attacks/attack.hpp"

namespace platoon::security {

class JammingAttack final : public Attack {
public:
    struct Params {
        AttackWindow window{20.0};
        double power_dbm = 40.0;   ///< High-power wideband noise source.
        double duty_cycle = 1.0;   ///< 1.0 = continuous jammer.
        bool mobile = true;        ///< Drives along with the platoon.
        bool jam_cv2x_too = false; ///< Wideband: also hit the C-V2X band.
    };

    JammingAttack() : JammingAttack(Params{}) {}
    explicit JammingAttack(Params params) : params_(params) {}

    void attach(core::Scenario& scenario) override;
    [[nodiscard]] std::string name() const override { return "jamming"; }
    [[nodiscard]] core::AttackKind kind() const override {
        return core::AttackKind::kJamming;
    }
    void collect(core::MetricMap& out) const override;

private:
    Params params_;
    core::Scenario* scenario_ = nullptr;
    std::vector<int> jammer_ids_;
};

}  // namespace platoon::security
