// Rogue RSU (paper Section VI-A.2: "RSUs are still susceptible to damage,
// failure and attack... The open challenge with them is identifying and
// removing faulty RSUs").
//
// The attacker stands up a fake roadside unit that abuses the trust
// vehicles place in infrastructure:
//   - poisoned CRL broadcasts that "revoke" honest platoon members
//     (revocation-as-DoS: a vehicle that believes the CRL drops its
//     neighbours' messages), and/or
//   - a bogus group key offered to joiners (key-substitution: a vehicle
//     keyed by the rogue can no longer talk to the platoon).
//
// The defense is the PKI chain: vehicles in signature mode only accept
// key-management messages from holders of TA-issued credentials, which a
// rogue RSU by definition lacks.
#pragma once

#include <memory>

#include "crypto/secured_message.hpp"
#include "security/attacks/attack.hpp"

namespace platoon::security {

class RogueRsuAttack final : public Attack {
public:
    struct Params {
        AttackWindow window{20.0};
        double position_m = 2600.0;      ///< Fixed roadside post.
        bool poison_crl = true;          ///< Broadcast fake revocations.
        bool offer_bogus_group_key = true;
        sim::SimTime broadcast_period_s = 1.0;
        /// How many honest platoon members each poisoned CRL "revokes".
        std::size_t victims_per_crl = 4;
    };

    RogueRsuAttack() : RogueRsuAttack(Params{}) {}
    explicit RogueRsuAttack(Params params) : params_(params) {}

    void attach(core::Scenario& scenario) override;
    [[nodiscard]] std::string name() const override { return "rogue-rsu"; }
    [[nodiscard]] core::AttackKind kind() const override {
        // The paper files infrastructure abuse under impersonation
        // (pretending to be a trusted entity).
        return core::AttackKind::kImpersonation;
    }
    void collect(core::MetricMap& out) const override;

    [[nodiscard]] std::uint64_t broadcasts() const { return broadcasts_; }

private:
    void broadcast_poison();

    Params params_;
    std::unique_ptr<AttackerRadio> radio_;
    core::Scenario* scenario_ = nullptr;
    sim::EventHandle inject_handle_;
    crypto::MessageProtection protection_;  ///< No TA credential!
    std::uint64_t broadcasts_ = 0;
};

}  // namespace platoon::security
