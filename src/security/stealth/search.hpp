// The attacker optimization loop: coarse grid refine + cross-entropy method
// over injection profiles, maximizing spacing-error impact subject to not
// tripping the detector bank's innovation/EWMA/CUSUM gates. The search is
// detector-blind about internals -- it only sees the black-box Outcome an
// evaluator returns -- and fully deterministic: every stochastic choice
// draws from the named "stealth.search" stream (src/sim/streams.def), and
// candidate batches are evaluated by the caller, who is responsible for
// folding replications bit-identically at any PLATOON_JOBS.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "security/stealth/profile.hpp"

namespace platoon::security::stealth {

/// What the defense saw while one candidate profile ran.
struct Outcome {
    /// Spacing-error impact vs the clean run (averaged over seeds).
    double impact = 0.0;
    /// Flags from the three threshold gates the search must stay under
    /// (innovation gate, EWMA residual, CUSUM residual), summed over seeds.
    std::uint64_t gate_alarms = 0;
    /// Flags from the whole bank (all detectors), summed over seeds.
    std::uint64_t total_alarms = 0;
    /// Per-detector flag totals, in bank order.
    std::vector<std::uint64_t> detector_flags;
};

struct Evaluated {
    InjectionProfile profile;
    Outcome outcome;
};

/// A feasible candidate never tripped a threshold gate.
[[nodiscard]] inline bool feasible(const Outcome& outcome) {
    return outcome.gate_alarms == 0;
}

struct SearchSpec {
    InjectionKind kind = InjectionKind::kSensorSpoof;
    ProfileBounds bounds;
    std::size_t cem_iterations = 2;
    std::size_t cem_population = 12;
    std::size_t cem_elites = 4;
    std::uint64_t seed = 42;  ///< Master seed for the "stealth.search" stream.
};

/// Evaluates one batch of candidates (one search round). Implementations
/// fan the (profile x replication-seed) product out via core::run_grid so
/// the whole search is bit-identical at any job count.
using BatchEvaluator = std::function<std::vector<Outcome>(
    const std::vector<InjectionProfile>&)>;

struct SearchResult {
    /// Every candidate in evaluation order (grid first, then CEM rounds).
    std::vector<Evaluated> evaluated;
    /// Highest-impact feasible candidate; nullopt if nothing was feasible.
    std::optional<Evaluated> best_stealthy;
    /// Highest-impact feasible *static* candidate (full duty, instant step,
    /// no onset jitter): the classic constant-offset attacker the shaped
    /// profiles must strictly beat.
    std::optional<Evaluated> best_static;
};

[[nodiscard]] SearchResult search(const SearchSpec& spec,
                                  const BatchEvaluator& evaluate);

/// One point on a per-detector stealth-impact frontier.
struct FrontierPoint {
    std::uint64_t alarms = 0;  ///< Flags of that one detector.
    double impact = 0.0;
    InjectionProfile profile;
};

/// Non-dominated set over (alarms ascending, impact ascending): the most
/// impact achievable at each alarm budget against detector
/// `detector_index`. Deterministic: ties resolve by profile key.
[[nodiscard]] std::vector<FrontierPoint> pareto_frontier(
    const std::vector<Evaluated>& evaluated, std::size_t detector_index);

}  // namespace platoon::security::stealth
