#include "security/stealth/search.hpp"

#include <algorithm>
#include <cmath>

#include "obs/counters.hpp"
#include "sim/assert.hpp"
#include "sim/random.hpp"

namespace platoon::security::stealth {

namespace {

obs::Counter g_candidates{"stealth.search.candidates"};
obs::Counter g_feasible{"stealth.search.feasible"};
obs::Counter g_rounds{"stealth.search.rounds"};

std::vector<double> linspace(double lo, double hi, std::size_t steps) {
    std::vector<double> out;
    if (steps <= 1 || hi <= lo) {
        out.push_back(lo);
        return out;
    }
    for (std::size_t i = 0; i < steps; ++i) {
        out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                               static_cast<double>(steps - 1));
    }
    return out;
}

/// Elite ordering: feasible candidates first, then impact (descending),
/// then fewer gate alarms, with the profile key as the total-order anchor.
bool better(const Evaluated& a, const Evaluated& b) {
    const bool fa = feasible(a.outcome);
    const bool fb = feasible(b.outcome);
    if (fa != fb) return fa;
    if (a.outcome.impact != b.outcome.impact)
        return a.outcome.impact > b.outcome.impact;
    if (a.outcome.gate_alarms != b.outcome.gate_alarms)
        return a.outcome.gate_alarms < b.outcome.gate_alarms;
    return profile_key(a.profile) < profile_key(b.profile);
}

struct Dimension {
    double lo;
    double hi;
    double mean = 0.0;
    double stddev = 0.0;
};

/// Fits mean/stddev to the elites along one dimension; the stddev floor
/// (10% of the box) keeps the CEM exploring instead of collapsing onto the
/// first elite it sees.
void fit(Dimension& dim, const std::vector<double>& samples) {
    double sum = 0.0;
    for (const double s : samples) sum += s;
    dim.mean = sum / static_cast<double>(samples.size());
    double var = 0.0;
    for (const double s : samples) var += (s - dim.mean) * (s - dim.mean);
    var /= static_cast<double>(samples.size());
    const double floor = 0.1 * (dim.hi - dim.lo);
    dim.stddev = std::max(std::sqrt(var), floor);
}

double sample_clamped(Dimension& dim, sim::RandomStream& rng) {
    return std::clamp(rng.normal(dim.mean, dim.stddev), dim.lo, dim.hi);
}

void record_batch(const SearchSpec& spec,
                  const std::vector<InjectionProfile>& batch,
                  const BatchEvaluator& evaluate,
                  std::vector<Evaluated>& evaluated) {
    const std::vector<Outcome> outcomes = evaluate(batch);
    PLATOON_ASSERT(outcomes.size() == batch.size());
    (void)spec;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        g_candidates.inc();
        if (feasible(outcomes[i])) g_feasible.inc();
        evaluated.push_back({batch[i], outcomes[i]});
    }
    g_rounds.inc();
}

}  // namespace

SearchResult search(const SearchSpec& spec, const BatchEvaluator& evaluate) {
    SearchResult result;
    const ProfileBounds& b = spec.bounds;

    // Phase A: coarse grid over amplitude x ramp x duty (no onset jitter).
    // The duty=1/ramp=0 corner doubles as the static-attacker sweep.
    std::vector<InjectionProfile> grid;
    for (const double amp :
         linspace(b.amplitude_min, b.amplitude_max, b.amplitude_steps)) {
        for (const double ramp : linspace(b.ramp_min, b.ramp_max, b.ramp_steps)) {
            for (const double duty :
                 linspace(b.duty_min, b.duty_max, b.duty_steps)) {
                InjectionProfile p;
                p.kind = spec.kind;
                p.shape.amplitude = amp;
                p.shape.ramp_per_s = ramp;
                p.shape.duty_cycle = duty;
                p.shape.duty_period_s = b.duty_period_s;
                grid.push_back(p);
            }
        }
    }
    record_batch(spec, grid, evaluate, result.evaluated);

    // Phase B: cross-entropy refinement seeded from the grid's elites, with
    // onset jitter as an extra dimension. Every draw comes from the named
    // stream, so the refinement is a pure function of (spec, outcomes).
    sim::RandomStream rng(spec.seed, "stealth.search");
    Dimension amp{b.amplitude_min, b.amplitude_max};
    Dimension ramp{b.ramp_min, b.ramp_max};
    Dimension duty{b.duty_min, b.duty_max};
    Dimension onset{0.0, b.onset_max_s};
    for (std::size_t iter = 0; iter < spec.cem_iterations; ++iter) {
        std::vector<Evaluated> ranked = result.evaluated;
        std::sort(ranked.begin(), ranked.end(), better);
        const std::size_t elites =
            std::min(std::max<std::size_t>(spec.cem_elites, 2), ranked.size());
        std::vector<double> amps, ramps, duties, onsets;
        for (std::size_t i = 0; i < elites; ++i) {
            amps.push_back(ranked[i].profile.shape.amplitude);
            ramps.push_back(ranked[i].profile.shape.ramp_per_s);
            duties.push_back(ranked[i].profile.shape.duty_cycle);
            onsets.push_back(ranked[i].profile.shape.onset_delay_s);
        }
        fit(amp, amps);
        fit(ramp, ramps);
        fit(duty, duties);
        fit(onset, onsets);

        std::vector<InjectionProfile> population;
        for (std::size_t i = 0; i < spec.cem_population; ++i) {
            InjectionProfile p;
            p.kind = spec.kind;
            p.shape.amplitude = sample_clamped(amp, rng);
            p.shape.ramp_per_s = sample_clamped(ramp, rng);
            p.shape.duty_cycle = sample_clamped(duty, rng);
            p.shape.duty_period_s = b.duty_period_s;
            p.shape.onset_delay_s = sample_clamped(onset, rng);
            population.push_back(p);
        }
        record_batch(spec, population, evaluate, result.evaluated);
    }

    // Champions. `better` already prefers feasible-then-impact, so the top
    // of a full sort is the stealthy champion iff it is feasible at all.
    for (const Evaluated& e : result.evaluated) {
        if (!feasible(e.outcome)) continue;
        if (!result.best_stealthy || better(e, *result.best_stealthy))
            result.best_stealthy = e;
        if (is_static(e.profile) &&
            (!result.best_static || better(e, *result.best_static)))
            result.best_static = e;
    }
    return result;
}

std::vector<FrontierPoint> pareto_frontier(
    const std::vector<Evaluated>& evaluated, std::size_t detector_index) {
    std::vector<FrontierPoint> points;
    for (const Evaluated& e : evaluated) {
        if (detector_index >= e.outcome.detector_flags.size()) continue;
        points.push_back({e.outcome.detector_flags[detector_index],
                          e.outcome.impact, e.profile});
    }
    std::sort(points.begin(), points.end(),
              [](const FrontierPoint& a, const FrontierPoint& b) {
                  if (a.alarms != b.alarms) return a.alarms < b.alarms;
                  if (a.impact != b.impact) return a.impact > b.impact;
                  return profile_key(a.profile) < profile_key(b.profile);
              });
    std::vector<FrontierPoint> frontier;
    double best_impact = -1e300;
    for (const FrontierPoint& p : points) {
        if (p.impact <= best_impact) continue;
        // Equal alarm counts keep only their best-impact representative.
        if (!frontier.empty() && frontier.back().alarms == p.alarms) continue;
        frontier.push_back(p);
        best_impact = p.impact;
    }
    return frontier;
}

}  // namespace platoon::security::stealth
