#include "security/stealth/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "security/attacks/fake_maneuver.hpp"
#include "security/attacks/gps_spoof.hpp"
#include "security/attacks/sensor_spoof.hpp"

namespace platoon::security::stealth {

std::string_view to_string(InjectionKind kind) {
    switch (kind) {
        case InjectionKind::kGpsSpoof: return "gps-spoof";
        case InjectionKind::kSensorSpoof: return "sensor-spoof";
        case InjectionKind::kFakeManeuver: return "fake-maneuver";
    }
    return "unknown";
}

std::optional<InjectionKind> injection_from_name(std::string_view name) {
    if (name == "gps-spoof") return InjectionKind::kGpsSpoof;
    if (name == "sensor-spoof") return InjectionKind::kSensorSpoof;
    if (name == "fake-maneuver") return InjectionKind::kFakeManeuver;
    return std::nullopt;
}

std::vector<std::string> injection_names() {
    return {std::string(to_string(InjectionKind::kGpsSpoof)),
            std::string(to_string(InjectionKind::kSensorSpoof)),
            std::string(to_string(InjectionKind::kFakeManeuver))};
}

bool is_static(const InjectionProfile& profile) {
    return profile.shape.duty_cycle >= 1.0 && profile.shape.ramp_per_s <= 0.0 &&
           profile.shape.onset_delay_s == 0.0;
}

std::string profile_key(const InjectionProfile& profile) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "%s|a=%.4f|r=%.4f|d=%.4f|p=%.4f|o=%.4f",
                  std::string(to_string(profile.kind)).c_str(),
                  profile.shape.amplitude, profile.shape.ramp_per_s,
                  profile.shape.duty_cycle, profile.shape.duty_period_s,
                  profile.shape.onset_delay_s);
    return buf;
}

std::unique_ptr<Attack> make_profiled_attack(const InjectionProfile& profile,
                                             const AttackWindow& window,
                                             std::size_t victim_index,
                                             std::size_t platoon_size) {
    switch (profile.kind) {
        case InjectionKind::kGpsSpoof: {
            GpsSpoofAttack::Params params;
            params.window = window;
            params.victim_index = victim_index;
            params.shape = profile.shape;
            return std::make_unique<GpsSpoofAttack>(params);
        }
        case InjectionKind::kSensorSpoof: {
            SensorSpoofAttack::Params params;
            params.window = window;
            params.victim_index = victim_index;
            params.mode = SensorSpoofAttack::Mode::kBias;
            params.shape = profile.shape;
            return std::make_unique<SensorSpoofAttack>(params);
        }
        case InjectionKind::kFakeManeuver: {
            // Amplitude is the gap-open lie; duty scales the per-burst
            // fan-out (1.0 = every member, the classic loud attack); the
            // onset jitter shifts the injection start.
            FakeManeuverAttack::Params params;
            params.window = window;
            params.window.start_s += profile.shape.onset_delay_s;
            params.variant = FakeManeuverAttack::Variant::kGapOpen;
            params.gap_open_m = profile.shape.amplitude;
            params.repeat_period_s = profile.shape.duty_period_s;
            const std::size_t members = platoon_size > 1 ? platoon_size - 1 : 1;
            if (profile.shape.duty_cycle >= 1.0) {
                params.targets_per_burst = 0;  // everyone at once
            } else {
                const double scaled = std::round(profile.shape.duty_cycle *
                                                 static_cast<double>(members));
                params.targets_per_burst = static_cast<std::size_t>(
                    std::clamp(scaled, 1.0, static_cast<double>(members)));
            }
            return std::make_unique<FakeManeuverAttack>(params);
        }
    }
    return nullptr;
}

}  // namespace platoon::security::stealth
