// Detector-aware injection profiles: the knob space a stealthy attacker
// tunes (paper §VI open challenges; arxiv 2510.14119). A profile names one
// of the shapeable injection attacks and the envelope it drives; the search
// (stealth/search.hpp) optimizes profiles against the detector bank, and
// make_profiled_attack() lowers a profile onto the concrete Attack.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "security/attacks/attack.hpp"
#include "security/attacks/injection_shape.hpp"

namespace platoon::security::stealth {

/// The shapeable injection attacks. These are deliberately distinct names
/// from core::AttackKind: gps_spoof and sensor_spoof share a single
/// AttackKind (kSensorSpoofing), so the taxonomy cannot address them
/// individually -- the stealth vocabulary can.
enum class InjectionKind : std::uint8_t {
    kGpsSpoof,      ///< Walked/shaped GPS position offset on the victim.
    kSensorSpoof,   ///< Additive radar range bias on the victim.
    kFakeManeuver,  ///< Forged leader gap-open maneuvers.
};

[[nodiscard]] std::string_view to_string(InjectionKind kind);
[[nodiscard]] std::optional<InjectionKind> injection_from_name(
    std::string_view name);
/// All injection names, in enum order ("gps-spoof", "sensor-spoof",
/// "fake-maneuver") -- the vocabulary `overrides.stealth.injections` accepts.
[[nodiscard]] std::vector<std::string> injection_names();

/// One candidate the search evaluates: which attack, shaped how.
struct InjectionProfile {
    InjectionKind kind = InjectionKind::kSensorSpoof;
    InjectionShape shape;
};

/// A profile is "static" when its envelope degenerates to the classic
/// constant-offset attack: full duty, instant step, no onset jitter. The
/// best zero-alarm static profile is the comparator the searched shaped
/// profiles must beat.
[[nodiscard]] bool is_static(const InjectionProfile& profile);

/// Stable text key (fixed-precision) for deterministic sorting/dedup.
[[nodiscard]] std::string profile_key(const InjectionProfile& profile);

/// The box the search explores, plus the coarse-grid resolution.
struct ProfileBounds {
    double amplitude_min = 0.5;   ///< Meters (gap-open meters for maneuver).
    double amplitude_max = 6.0;
    double ramp_min = 0.0;        ///< 0 = instant step.
    double ramp_max = 4.0;
    double duty_min = 0.25;
    double duty_max = 1.0;
    double duty_period_s = 8.0;   ///< Fixed burst period.
    double onset_max_s = 2.0;     ///< Onset jitter range (CEM only).
    std::size_t amplitude_steps = 5;
    std::size_t ramp_steps = 2;
    std::size_t duty_steps = 4;
};

/// Lowers a profile onto the concrete attack, victimizing
/// `victim_index` inside `window`. `platoon_size` sizes the fake-maneuver
/// fan-out (duty scales how many members each burst targets).
[[nodiscard]] std::unique_ptr<Attack> make_profiled_attack(
    const InjectionProfile& profile, const AttackWindow& window,
    std::size_t victim_index, std::size_t platoon_size);

}  // namespace platoon::security::stealth
