#include "obs/export.hpp"

#include <cstdlib>
#include <fstream>

#include "obs/counters.hpp"
#include "obs/timer.hpp"

namespace platoon::obs {

Json counters_json() {
    Json j = Json::object();
    for (const auto& [name, value] : counter_snapshot()) {
        j.set(name, Json::integer(static_cast<std::int64_t>(value)));
    }
    return j;
}

Json timings_json() {
    Json timers = Json::object();
    for (const auto& [path, stat] : timer_snapshot()) {
        Json entry = Json::object();
        entry.set("calls",
                  Json::integer(static_cast<std::int64_t>(stat.calls)));
        entry.set("total_ms",
                  Json::number(static_cast<double>(stat.total_ns) / 1e6));
        entry.set("mean_us",
                  Json::number(stat.calls == 0
                                   ? 0.0
                                   : static_cast<double>(stat.total_ns) /
                                         static_cast<double>(stat.calls) /
                                         1e3));
        entry.set("max_ms",
                  Json::number(static_cast<double>(stat.max_ns) / 1e6));
        timers.set(path, std::move(entry));
    }
    Json section = Json::object();
    section.set("note",
                Json::string("wall-clock timings: machine- and "
                             "schedule-dependent; compared with relative "
                             "thresholds only, never for equality"));
    section.set("timers", std::move(timers));
    return section;
}

Json snapshot_json(const Manifest& manifest) {
    Json j = Json::object();
    j.set("counters", counters_json());
    j.set("manifest", manifest_json(manifest));
    j.set("schema_version", Json::integer(kSchemaVersion));
    j.set("timings_nondeterministic", timings_json());
    return j;
}

std::string bench_json_path(const std::string& bench) {
    std::string dir = ".";
    if (const char* env = std::getenv("PLATOON_BENCH_JSON_DIR")) {
        if (*env != '\0') dir = env;
    }
    return dir + "/BENCH_" + bench + ".json";
}

bool write_json_file(const std::string& path, const Json& json) {
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    out << json.dump();
    return static_cast<bool>(out);
}

}  // namespace platoon::obs
