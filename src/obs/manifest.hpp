// Per-run manifest: the provenance block of every BENCH_*.json artifact.
// Records what produced the numbers (binary, git SHA, compiler, build
// type, job count, scenario/seed) so a baseline snapshot is auditable and
// benchdiff can annotate a delta with "compared across compilers" style
// caveats. Deliberately contains no wall-clock timestamp: artifacts must be
// byte-reproducible, and platoonlint bans wall-clock reads anyway.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/json.hpp"

namespace platoon::obs {

struct Manifest {
    std::string bench;         ///< Binary name, e.g. "bench_table2_threats".
    std::string scenario;      ///< Human label, e.g. "eval_config(6 trucks)".
    std::uint64_t seed = 0;    ///< Base seed of the deterministic phase.
    unsigned jobs = 1;         ///< Worker count the run used.
    std::string git_sha;       ///< Filled by make_manifest when empty.
    std::string compiler;      ///< Filled by make_manifest when empty.
    std::string build_type;    ///< Filled by make_manifest when empty.
    std::map<std::string, std::string> extra;  ///< Free-form provenance.
};

/// Fills the environment-derived fields: git SHA (PLATOON_GIT_SHA env var,
/// else the configure-time PLATOON_GIT_SHA compile definition, else
/// "unknown"), compiler (__VERSION__), build type (NDEBUG).
[[nodiscard]] Manifest make_manifest(std::string bench, std::string scenario,
                                     std::uint64_t seed, unsigned jobs);

[[nodiscard]] Json manifest_json(const Manifest& manifest);

}  // namespace platoon::obs
