// Scoped wall/CPU timers with hierarchical aggregation: the explicitly
// NON-deterministic half of the observability layer.
//
// A ScopedTimer names a region ("crypto.verify", "eval.run_once", ...);
// nested scopes aggregate under slash-joined paths, so a signature check
// inside an eval replication lands at "eval.run_once/sim.run/crypto.verify"
// and the same check from a microbenchmark at "crypto.verify". Aggregation
// is per-(path): call count, total and max wall nanoseconds.
//
// Timings are machine- and schedule-dependent by nature, so the exporter
// quarantines them under "timings_nondeterministic" and benchdiff treats
// them as advisory (relative thresholds), never as an equality gate.
// timer.cpp is the repo's single sanctioned monotonic-clock reader -- see
// the platoonlint no-steady-clock rule.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace platoon::obs {

struct TimerStat {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;

    friend bool operator==(const TimerStat&, const TimerStat&) = default;
};

/// RAII region timer. Inert (two relaxed loads, no clock read) while
/// observability is disabled; cheap enough for per-message hot paths when
/// enabled. Scopes nest per thread; results merge into a global table under
/// a mutex when the scope closes.
class ScopedTimer {
public:
    explicit ScopedTimer(const char* name);
    ~ScopedTimer();
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    bool active_;
    std::uint64_t start_ns_ = 0;
};

/// All aggregated timer paths, sorted. The *key set and call counts* are
/// deterministic for a deterministic workload; the nanosecond fields never
/// are -- consumers must not diff them for equality.
[[nodiscard]] std::map<std::string, TimerStat> timer_snapshot();

/// Clears all aggregated timers (tests and multi-phase benches).
void reset_timers();

}  // namespace platoon::obs
