#include "obs/counters.hpp"

namespace platoon::obs {

namespace {

/// Head of the intrusive registry. Registration is a CAS push so counters
/// defined as function-local statics (first touched on a worker thread)
/// register safely too.
std::atomic<Counter*>& registry_head() {
    static std::atomic<Counter*> head{nullptr};
    return head;
}

}  // namespace

Counter::Counter(const char* name) : name_(name) {
    auto& head = registry_head();
    Counter* expected = head.load(std::memory_order_relaxed);
    do {
        next_ = expected;
    } while (!head.compare_exchange_weak(expected, this,
                                         std::memory_order_release,
                                         std::memory_order_relaxed));
}

std::map<std::string, std::uint64_t> counter_snapshot() {
    std::map<std::string, std::uint64_t> out;
    for (const Counter* c = registry_head().load(std::memory_order_acquire);
         c != nullptr; c = c->next_) {
        out[c->name_] += c->value();
    }
    return out;
}

void reset_counters() {
    for (Counter* c = registry_head().load(std::memory_order_acquire);
         c != nullptr; c = c->next_) {
        c->value_.store(0, std::memory_order_relaxed);
    }
}

}  // namespace platoon::obs
