// Named monotonic counters: the deterministic half of the observability
// layer (src/obs/).
//
// A Counter is a process-global, relaxed-atomic uint64 registered under a
// stable dotted name ("net.sent", "crypto.verify.ok", ...). Instrumented
// code defines one at namespace scope in its own TU and bumps it on the hot
// path; when observability is disabled (the default) an increment is a
// single relaxed load + branch, and nothing is ever allocated.
//
// The determinism contract: every counter counts *logical simulation
// events*, and every simulation task contributes a fixed count regardless
// of which worker thread ran it. Integer addition commutes, so the totals
// -- and the exported, sorted-key counter JSON -- are byte-identical at any
// PLATOON_JOBS. Wall-clock timings live in timer.hpp and are quarantined in
// a separate, explicitly non-deterministic export section.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace platoon::obs {

/// Master switch. Disabled by default; bench binaries (and tests that
/// assert on counters) enable it. Instrumentation compiled into the
/// libraries is inert while disabled.
inline std::atomic<bool> g_enabled{false};

[[nodiscard]] inline bool enabled() {
    return g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
    g_enabled.store(on, std::memory_order_relaxed);
}

/// A named monotonic counter. Define at namespace scope (static storage):
/// registration hooks the instance into a global intrusive list and is
/// lock-free; instances must therefore never be destroyed before process
/// exit (namespace-scope statics satisfy this trivially).
class Counter {
public:
    explicit Counter(const char* name);
    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

    void add(std::uint64_t n) {
        if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
    }
    void inc() { add(1); }

    [[nodiscard]] std::uint64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] const char* name() const { return name_; }

private:
    friend std::map<std::string, std::uint64_t> counter_snapshot();
    friend void reset_counters();

    const char* name_;
    std::atomic<std::uint64_t> value_{0};
    Counter* next_ = nullptr;  ///< Intrusive registry link.
};

/// All registered counters by name, sorted (duplicate names sum). Includes
/// zero-valued counters so the exported schema is stable: the key set is
/// the set of linked instrumentation TUs, not what happened to run.
[[nodiscard]] std::map<std::string, std::uint64_t> counter_snapshot();

/// Zeroes every registered counter (tests and multi-phase benches).
void reset_counters();

}  // namespace platoon::obs
