// Assembles the BENCH_*.json artifact: manifest + exact counter section +
// quarantined timing section, all deterministic, sorted-key JSON.
//
// Schema v1:
//   {
//     "counters": { "<name>": <uint>, ... },          // exact, deterministic
//     "manifest": { "bench": ..., "git_sha": ..., ... },
//     "schema_version": 1,
//     "timings_nondeterministic": {                   // advisory only
//       "note": "...",
//       "timers": { "<path>": {"calls": n, "max_ms": x,
//                              "mean_us": y, "total_ms": z}, ... }
//     }
//   }
//
// The "counters" object is the byte-identity surface: for a deterministic
// workload it must not change with PLATOON_JOBS, the machine, or the run.
// Everything under "timings_nondeterministic" is wall-clock and explicitly
// out of scope for equality checks (benchdiff applies relative thresholds).
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/manifest.hpp"

namespace platoon::obs {

inline constexpr int kSchemaVersion = 1;

/// The counter section alone (sorted, exact). Tests byte-compare its dump
/// across job counts.
[[nodiscard]] Json counters_json();

/// The timing section (calls deterministic, nanoseconds not).
[[nodiscard]] Json timings_json();

/// The full artifact for the current counter/timer state.
[[nodiscard]] Json snapshot_json(const Manifest& manifest);

/// Where a bench artifact lives: $PLATOON_BENCH_JSON_DIR (when set) or the
/// working directory, file name "BENCH_<bench>.json".
[[nodiscard]] std::string bench_json_path(const std::string& bench);

/// Writes `json` to `path` (+ trailing newline already included by dump).
/// Returns false on IO failure.
bool write_json_file(const std::string& path, const Json& json);

}  // namespace platoon::obs
