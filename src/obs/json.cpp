#include "obs/json.hpp"

#include <charconv>
#include <cstdio>

namespace platoon::obs {

Json Json::boolean(bool b) {
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = b;
    return j;
}

Json Json::integer(std::int64_t v) {
    Json j;
    j.type_ = Type::kInt;
    j.int_ = v;
    return j;
}

Json Json::number(double v) {
    Json j;
    j.type_ = Type::kDouble;
    j.double_ = v;
    return j;
}

Json Json::string(std::string s) {
    Json j;
    j.type_ = Type::kString;
    j.string_ = std::move(s);
    return j;
}

Json Json::array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
}

Json Json::object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
}

double Json::as_double() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
}

const Json& Json::at(const std::string& key) const {
    static const Json kNull;
    if (type_ != Type::kObject) return kNull;
    const auto it = object_.find(key);
    return it == object_.end() ? kNull : it->second;
}

void Json::set(std::string key, Json value) {
    type_ = Type::kObject;
    object_[std::move(key)] = std::move(value);
}

bool operator==(const Json& a, const Json& b) {
    if (a.type_ != b.type_) return false;
    switch (a.type_) {
        case Json::Type::kNull: return true;
        case Json::Type::kBool: return a.bool_ == b.bool_;
        case Json::Type::kInt: return a.int_ == b.int_;
        case Json::Type::kDouble: return a.double_ == b.double_;
        case Json::Type::kString: return a.string_ == b.string_;
        case Json::Type::kArray: return a.array_ == b.array_;
        case Json::Type::kObject: return a.object_ == b.object_;
    }
    return false;
}

namespace {

void escape_to(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void number_to(std::string& out, double v) {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
    // Ensure a double never re-parses as an integer (schema stability).
    const std::string_view written(buf, static_cast<std::size_t>(res.ptr - buf));
    if (written.find_first_of(".eE") == std::string_view::npos &&
        written != "inf" && written != "-inf" && written != "nan") {
        out += ".0";
    }
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
    const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
    const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
    switch (type_) {
        case Type::kNull: out += "null"; break;
        case Type::kBool: out += bool_ ? "true" : "false"; break;
        case Type::kInt: {
            char buf[24];
            const auto res = std::to_chars(buf, buf + sizeof buf, int_);
            out.append(buf, res.ptr);
            break;
        }
        case Type::kDouble: number_to(out, double_); break;
        case Type::kString: escape_to(out, string_); break;
        case Type::kArray: {
            if (array_.empty()) {
                out += "[]";
                break;
            }
            out += "[\n";
            for (std::size_t i = 0; i < array_.size(); ++i) {
                out += pad;
                array_[i].dump_to(out, indent, depth + 1);
                if (i + 1 < array_.size()) out += ',';
                out += '\n';
            }
            out += close_pad;
            out += ']';
            break;
        }
        case Type::kObject: {
            if (object_.empty()) {
                out += "{}";
                break;
            }
            out += "{\n";
            std::size_t i = 0;
            for (const auto& [key, value] : object_) {
                out += pad;
                escape_to(out, key);
                out += ": ";
                value.dump_to(out, indent, depth + 1);
                if (++i < object_.size()) out += ',';
                out += '\n';
            }
            out += close_pad;
            out += '}';
            break;
        }
    }
}

std::string Json::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    out += '\n';
    return out;
}

// ---------------------------------------------------------------------------
// Parser.

namespace {

struct Parser {
    /// Containers may nest this deep before the parser refuses: recursion
    /// is bounded so hostile input (or a miswritten artifact) cannot blow
    /// the stack. Our own artifacts nest < 10 levels.
    static constexpr int kMaxDepth = 96;

    std::string_view text;
    std::size_t pos = 0;
    int depth = 0;

    void skip_ws() {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                text[pos] == '\r'))
            ++pos;
    }

    [[nodiscard]] bool eat(char c) {
        skip_ws();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    [[nodiscard]] bool literal(std::string_view word) {
        if (text.compare(pos, word.size(), word) != 0) return false;
        pos += word.size();
        return true;
    }

    std::optional<std::string> parse_string() {
        if (!eat('"')) return std::nullopt;
        std::string out;
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"') return out;
            if (c == '\\') {
                if (pos >= text.size()) return std::nullopt;
                const char esc = text[pos++];
                switch (esc) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'u': {
                        if (pos + 4 > text.size()) return std::nullopt;
                        unsigned code = 0;
                        for (int k = 0; k < 4; ++k) {
                            const char h = text[pos++];
                            code <<= 4;
                            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                            else return std::nullopt;
                        }
                        // Our own dumps only emit \u00XX; decode BMP code
                        // points as UTF-8 for completeness.
                        if (code < 0x80) {
                            out += static_cast<char>(code);
                        } else if (code < 0x800) {
                            out += static_cast<char>(0xC0 | (code >> 6));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        } else {
                            out += static_cast<char>(0xE0 | (code >> 12));
                            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        }
                        break;
                    }
                    default: return std::nullopt;
                }
            } else {
                out += c;
            }
        }
        return std::nullopt;  // unterminated
    }

    std::optional<Json> parse_value() {
        skip_ws();
        if (pos >= text.size()) return std::nullopt;
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            if (++depth > kMaxDepth) return std::nullopt;
            Json obj = Json::object();
            skip_ws();
            if (eat('}')) {
                --depth;
                return obj;
            }
            for (;;) {
                auto key = parse_string();
                if (!key) return std::nullopt;
                // A duplicate key would silently drop one of the two
                // values into the std::map; reject it instead.
                if (obj.as_object().count(*key) != 0) return std::nullopt;
                if (!eat(':')) return std::nullopt;
                auto value = parse_value();
                if (!value) return std::nullopt;
                obj.as_object()[std::move(*key)] = std::move(*value);
                if (eat(',')) {
                    skip_ws();
                    continue;
                }
                if (eat('}')) {
                    --depth;
                    return obj;
                }
                return std::nullopt;
            }
        }
        if (c == '[') {
            ++pos;
            if (++depth > kMaxDepth) return std::nullopt;
            Json arr = Json::array();
            skip_ws();
            if (eat(']')) {
                --depth;
                return arr;
            }
            for (;;) {
                auto value = parse_value();
                if (!value) return std::nullopt;
                arr.as_array().push_back(std::move(*value));
                if (eat(',')) continue;
                if (eat(']')) {
                    --depth;
                    return arr;
                }
                return std::nullopt;
            }
        }
        if (c == '"') {
            auto s = parse_string();
            if (!s) return std::nullopt;
            return Json::string(std::move(*s));
        }
        if (literal("true")) return Json::boolean(true);
        if (literal("false")) return Json::boolean(false);
        if (literal("null")) return Json{};

        // Number: integer unless it spells a fraction or exponent.
        const std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
        bool is_double = false;
        while (pos < text.size()) {
            const char d = text[pos];
            if (d >= '0' && d <= '9') {
                ++pos;
            } else if (d == '.' || d == 'e' || d == 'E' || d == '-' ||
                       d == '+') {
                if (d == '.' || d == 'e' || d == 'E') is_double = true;
                ++pos;
            } else {
                break;
            }
        }
        if (pos == start) return std::nullopt;
        const std::string_view num = text.substr(start, pos - start);
        if (!is_double) {
            std::int64_t v = 0;
            const auto res = std::from_chars(num.data(), num.data() + num.size(), v);
            if (res.ec == std::errc() && res.ptr == num.data() + num.size())
                return Json::integer(v);
        }
        double v = 0.0;
        const auto res = std::from_chars(num.data(), num.data() + num.size(), v);
        if (res.ec != std::errc() || res.ptr != num.data() + num.size())
            return std::nullopt;
        return Json::number(v);
    }
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
    Parser p{text};
    auto value = p.parse_value();
    if (!value) return std::nullopt;
    p.skip_ws();
    if (p.pos != text.size()) return std::nullopt;  // trailing junk
    return value;
}

}  // namespace platoon::obs
