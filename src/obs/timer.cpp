// The one sanctioned monotonic-clock reader in src/ (see the platoonlint
// no-steady-clock rule): every other library TU must express timing through
// ScopedTimer so that wall-clock reads stay corralled behind the obs enable
// switch and out of simulation semantics.
#include "obs/timer.hpp"

#include <chrono>
#include <mutex>
#include <vector>

#include "obs/counters.hpp"

namespace platoon::obs {

namespace {

std::uint64_t monotonic_now_ns() {
    // platoonlint: allow(no-steady-clock) the sanctioned reader: perf timing only, gated on obs::enabled(), never feeds simulation state
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

struct TimerTable {
    std::mutex mu;
    std::map<std::string, TimerStat> stats;
};

TimerTable& table() {
    static TimerTable t;
    return t;
}

/// Per-thread stack of open scopes; the joined names form the aggregation
/// path. Plain pointers: ScopedTimer is scope-bound, so the string literals
/// outlive their stack entries.
thread_local std::vector<const char*> t_scope_stack;

std::string current_path() {
    std::string path;
    for (const char* name : t_scope_stack) {
        if (!path.empty()) path += '/';
        path += name;
    }
    return path;
}

}  // namespace

ScopedTimer::ScopedTimer(const char* name) : active_(enabled()) {
    if (!active_) return;
    t_scope_stack.push_back(name);
    start_ns_ = monotonic_now_ns();
}

ScopedTimer::~ScopedTimer() {
    if (!active_) return;
    const std::uint64_t end_ns = monotonic_now_ns();
    const std::uint64_t elapsed = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
    const std::string path = current_path();
    t_scope_stack.pop_back();

    TimerTable& t = table();
    const std::lock_guard<std::mutex> lock(t.mu);
    TimerStat& s = t.stats[path];
    ++s.calls;
    s.total_ns += elapsed;
    if (elapsed > s.max_ns) s.max_ns = elapsed;
}

std::map<std::string, TimerStat> timer_snapshot() {
    TimerTable& t = table();
    const std::lock_guard<std::mutex> lock(t.mu);
    return t.stats;
}

void reset_timers() {
    TimerTable& t = table();
    const std::lock_guard<std::mutex> lock(t.mu);
    t.stats.clear();
}

}  // namespace platoon::obs
