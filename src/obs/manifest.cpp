#include "obs/manifest.hpp"

#include <cstdlib>

namespace platoon::obs {

namespace {

#ifndef PLATOON_GIT_SHA
#define PLATOON_GIT_SHA "unknown"
#endif

std::string detect_git_sha() {
    if (const char* env = std::getenv("PLATOON_GIT_SHA")) {
        if (*env != '\0') return env;
    }
    return PLATOON_GIT_SHA;
}

std::string detect_compiler() {
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
}

std::string detect_build_type() {
#ifdef NDEBUG
    return "release";
#else
    return "debug";
#endif
}

}  // namespace

Manifest make_manifest(std::string bench, std::string scenario,
                       std::uint64_t seed, unsigned jobs) {
    Manifest m;
    m.bench = std::move(bench);
    m.scenario = std::move(scenario);
    m.seed = seed;
    m.jobs = jobs;
    m.git_sha = detect_git_sha();
    m.compiler = detect_compiler();
    m.build_type = detect_build_type();
    return m;
}

Json manifest_json(const Manifest& manifest) {
    Json j = Json::object();
    j.set("bench", Json::string(manifest.bench));
    // platoonlint: allow(stream-registry) JSON key, not a RandomStream name
    j.set("scenario", Json::string(manifest.scenario));
    j.set("seed", Json::integer(static_cast<std::int64_t>(manifest.seed)));
    j.set("jobs", Json::integer(static_cast<std::int64_t>(manifest.jobs)));
    j.set("git_sha", Json::string(manifest.git_sha));
    j.set("compiler", Json::string(manifest.compiler));
    j.set("build_type", Json::string(manifest.build_type));
    for (const auto& [key, value] : manifest.extra) {
        j.set("x_" + key, Json::string(value));
    }
    return j;
}

}  // namespace platoon::obs
