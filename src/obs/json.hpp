// Minimal deterministic JSON value: enough for the BENCH_*.json artifacts
// and the benchdiff comparator, nothing more.
//
// Design constraints that a third-party library would fight us on:
//   - Objects are std::map-backed, so dumped keys are always sorted and the
//     serialization is byte-deterministic (the PLATOON_JOBS contract).
//   - Integers and doubles are distinct: counters round-trip exactly as
//     integers; doubles dump via shortest-round-trip std::to_chars.
//   - No locale, no exceptions on the parse path (std::optional instead).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace platoon::obs {

class Json {
public:
    enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    Json() = default;  ///< null
    static Json boolean(bool b);
    static Json integer(std::int64_t v);
    static Json number(double v);
    static Json string(std::string s);
    static Json array();
    static Json object();

    [[nodiscard]] Type type() const { return type_; }
    [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
    [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
    [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
    [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
    /// Any numeric value (integer or double).
    [[nodiscard]] bool is_number() const {
        return type_ == Type::kInt || type_ == Type::kDouble;
    }
    [[nodiscard]] bool is_int() const { return type_ == Type::kInt; }

    [[nodiscard]] bool as_bool() const { return bool_; }
    [[nodiscard]] std::int64_t as_int() const { return int_; }
    /// Numeric value widened to double (works for kInt too).
    [[nodiscard]] double as_double() const;
    [[nodiscard]] const std::string& as_string() const { return string_; }
    [[nodiscard]] const Array& as_array() const { return array_; }
    [[nodiscard]] Array& as_array() { return array_; }
    [[nodiscard]] const Object& as_object() const { return object_; }
    [[nodiscard]] Object& as_object() { return object_; }

    /// Object member or null-Json if absent / not an object.
    [[nodiscard]] const Json& at(const std::string& key) const;
    void set(std::string key, Json value);

    /// Deterministic serialization: sorted keys (std::map), fixed 2-space
    /// indentation, shortest-round-trip doubles, "\uXXXX" for control chars.
    [[nodiscard]] std::string dump(int indent = 2) const;

    /// Strict-enough parser for our own artifacts (objects, arrays,
    /// strings with escapes, numbers, bools, null). Rejects trailing junk,
    /// duplicate object keys (a std::map would silently drop one value),
    /// and container nesting deeper than 96 levels (bounded recursion).
    [[nodiscard]] static std::optional<Json> parse(std::string_view text);

    friend bool operator==(const Json& a, const Json& b);

private:
    void dump_to(std::string& out, int indent, int depth) const;

    Type type_ = Type::kNull;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

}  // namespace platoon::obs
