#include "net/channel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/assert.hpp"

namespace platoon::net {

const char* to_string(Band band) {
    switch (band) {
        case Band::kDsrc: return "802.11p";
        case Band::kVlc: return "vlc";
        case Band::kCv2x: return "c-v2x";
    }
    return "?";
}

Channel::Channel(ChannelParams params, std::uint64_t master_seed)
    : params_(params),
      fading_rng_(master_seed, "channel.fading"),
      fading_keys_(1024, kEmptySlotKey),
      fading_states_(1024) {
    PLATOON_EXPECTS(params_.coherence_time_s > 0.0);
    PLATOON_EXPECTS(params_.data_rate_bps > 0.0);
}

namespace {

// NodeId values are 32-bit, so the canonical pair packs losslessly into one
// u64 (asserted: a wider id would silently merge fading processes).
std::uint64_t pack_pair(Channel::PairKey key) {
    PLATOON_EXPECTS(key.lo <= 0xFFFFFFFFull && key.hi <= 0xFFFFFFFFull);
    return (key.lo << 32) | key.hi;
}

std::size_t slot_hash(std::uint64_t packed) {
    std::uint64_t h = packed * 0x9E3779B97F4A7C15ull;
    h ^= h >> 32;
    return static_cast<std::size_t>(h);
}

}  // namespace

Channel::FadingState& Channel::fading_slot(PairKey key) {
    // Keep the load factor under 1/2 so linear probe runs stay short.
    if ((fading_count_ + 1) * 2 > fading_keys_.size()) grow_fading();
    const std::uint64_t packed = pack_pair(key);
    PLATOON_EXPECTS(packed != kEmptySlotKey);
    const std::size_t mask = fading_keys_.size() - 1;
    std::size_t i = slot_hash(packed) & mask;
    while (fading_keys_[i] != kEmptySlotKey) {
        if (fading_keys_[i] == packed) return fading_states_[i];
        i = (i + 1) & mask;
    }
    fading_keys_[i] = packed;
    FadingState& state = fading_states_[i];
    state.last_t = std::numeric_limits<double>::quiet_NaN();
    ++fading_count_;
    return state;
}

void Channel::grow_fading() {
    std::vector<std::uint64_t> old_keys = std::move(fading_keys_);
    std::vector<FadingState> old_states = std::move(fading_states_);
    fading_keys_.assign(old_keys.size() * 2, kEmptySlotKey);
    fading_states_.assign(old_states.size() * 2, FadingState{});
    const std::size_t mask = fading_keys_.size() - 1;
    for (std::size_t j = 0; j < old_keys.size(); ++j) {
        if (old_keys[j] == kEmptySlotKey) continue;
        std::size_t i = slot_hash(old_keys[j]) & mask;
        while (fading_keys_[i] != kEmptySlotKey) i = (i + 1) & mask;
        fading_keys_[i] = old_keys[j];
        fading_states_[i] = old_states[j];
    }
}

double Channel::path_loss_db(double distance_m) const {
    const double d = std::max(distance_m, 1.0);
    return params_.ref_loss_db +
           10.0 * params_.path_loss_exponent * std::log10(d);
}

Channel::PairKey Channel::pair_key(sim::NodeId a, sim::NodeId b) {
    const std::uint64_t lo = std::min(a.value, b.value);
    const std::uint64_t hi = std::max(a.value, b.value);
    return PairKey{lo, hi};
}

double Channel::fading_db(sim::NodeId a, sim::NodeId b, sim::SimTime t) {
    FadingState& state = fading_slot(pair_key(a, b));
    if (std::isnan(state.last_t)) {  // freshly inserted: first draw
        state.value_db = fading_rng_.normal(0.0, params_.fading_stddev_db);
        state.last_t = t;
        return state.value_db;
    }
    const double dt = t - state.last_t;
    if (dt <= 0.0) return state.value_db;  // same instant: reciprocal & stable
    const double rho = std::exp(-dt / params_.coherence_time_s);
    state.value_db = rho * state.value_db +
                     std::sqrt(std::max(0.0, 1.0 - rho * rho)) *
                         fading_rng_.normal(0.0, params_.fading_stddev_db);
    state.last_t = t;
    return state.value_db;
}

double Channel::gain_db(sim::NodeId a, sim::NodeId b, double distance_m,
                        sim::SimTime t) {
    return -path_loss_db(distance_m) + fading_db(a, b, t);
}

double Channel::rx_power_dbm(sim::NodeId from, sim::NodeId to,
                             double distance_m, sim::SimTime t,
                             double tx_power_dbm) {
    return tx_power_dbm + gain_db(from, to, distance_m, t);
}

sim::SimTime Channel::airtime(std::size_t bytes) const {
    return params_.preamble_s +
           static_cast<double>(bytes) * 8.0 / params_.data_rate_bps;
}

double Channel::packet_error_rate(double sinr_db, std::size_t bytes) const {
    // Sigmoid PER centred on the capture threshold; longer frames shift the
    // curve right (more bits to corrupt) by ~1 dB per 4x length over 100 B.
    const double length_shift =
        std::log2(std::max<double>(static_cast<double>(bytes), 32.0) / 100.0) *
        0.5;
    const double x = (sinr_db - params_.capture_threshold_db - length_shift) /
                     params_.per_slope_db;
    return 1.0 / (1.0 + std::exp(x * 2.0));
}

}  // namespace platoon::net
