#include "net/channel.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"

namespace platoon::net {

const char* to_string(Band band) {
    switch (band) {
        case Band::kDsrc: return "802.11p";
        case Band::kVlc: return "vlc";
        case Band::kCv2x: return "c-v2x";
    }
    return "?";
}

Channel::Channel(ChannelParams params, std::uint64_t master_seed)
    : params_(params), fading_rng_(master_seed, "channel.fading") {
    PLATOON_EXPECTS(params_.coherence_time_s > 0.0);
    PLATOON_EXPECTS(params_.data_rate_bps > 0.0);
}

double Channel::path_loss_db(double distance_m) const {
    const double d = std::max(distance_m, 1.0);
    return params_.ref_loss_db +
           10.0 * params_.path_loss_exponent * std::log10(d);
}

Channel::PairKey Channel::pair_key(sim::NodeId a, sim::NodeId b) {
    const std::uint64_t lo = std::min(a.value, b.value);
    const std::uint64_t hi = std::max(a.value, b.value);
    return PairKey{lo, hi};
}

double Channel::fading_db(sim::NodeId a, sim::NodeId b, sim::SimTime t) {
    FadingState& state = fading_[pair_key(a, b)];
    if (!state.initialised) {
        state.initialised = true;
        state.value_db = fading_rng_.normal(0.0, params_.fading_stddev_db);
        state.last_t = t;
        return state.value_db;
    }
    const double dt = t - state.last_t;
    if (dt <= 0.0) return state.value_db;  // same instant: reciprocal & stable
    const double rho = std::exp(-dt / params_.coherence_time_s);
    state.value_db = rho * state.value_db +
                     std::sqrt(std::max(0.0, 1.0 - rho * rho)) *
                         fading_rng_.normal(0.0, params_.fading_stddev_db);
    state.last_t = t;
    return state.value_db;
}

double Channel::gain_db(sim::NodeId a, sim::NodeId b, double distance_m,
                        sim::SimTime t) {
    return -path_loss_db(distance_m) + fading_db(a, b, t);
}

double Channel::rx_power_dbm(sim::NodeId from, sim::NodeId to,
                             double distance_m, sim::SimTime t,
                             double tx_power_dbm) {
    return tx_power_dbm + gain_db(from, to, distance_m, t);
}

sim::SimTime Channel::airtime(std::size_t bytes) const {
    return params_.preamble_s +
           static_cast<double>(bytes) * 8.0 / params_.data_rate_bps;
}

double Channel::packet_error_rate(double sinr_db, std::size_t bytes) const {
    // Sigmoid PER centred on the capture threshold; longer frames shift the
    // curve right (more bits to corrupt) by ~1 dB per 4x length over 100 B.
    const double length_shift =
        std::log2(std::max<double>(static_cast<double>(bytes), 32.0) / 100.0) *
        0.5;
    const double x = (sinr_db - params_.capture_threshold_db - length_shift) /
                     params_.per_slope_db;
    return 1.0 / (1.0 + std::exp(x * 2.0));
}

}  // namespace platoon::net
