// Application-level platoon messages and their canonical wire encodings.
//
// Two families matter for the paper's attack surface:
//  - periodic CAM beacons (position / speed / acceleration), the inputs to
//    the CACC controllers, and
//  - maneuver messages (join / leave / split protocol), the inputs to the
//    platoon-management FSMs.
// Both are serialised to bytes before entering the crypto envelope so that
// authentication covers the real payload.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/bytes.hpp"
#include "sim/types.hpp"

namespace platoon::net {

enum class MsgType : std::uint8_t {
    kBeacon = 1,
    kManeuver = 2,
    kKeyMgmt = 3,
};

/// Simulation-only ground truth riding alongside a message: which attack (if
/// any) forged, tampered with, or replayed it, and which physical node did
/// it. Never serialized into the wire bytes and never read by protocol,
/// defense, or controller code -- it exists so the misbehavior-detection
/// benchmark (src/detect) can score detectors against an oracle. `attack`
/// holds a core::AttackKind value (kept as a raw byte here so net stays
/// below core in the layering).
struct GroundTruth {
    static constexpr std::uint8_t kBenign = 0xFF;
    std::uint8_t attack = kBenign;
    std::uint32_t attacker = sim::NodeId::kInvalidValue;

    [[nodiscard]] bool malicious() const { return attack != kBenign; }
    friend bool operator==(const GroundTruth&, const GroundTruth&) = default;
};

/// Cooperative Awareness Message, broadcast at 10 Hz by every platoon
/// vehicle (the Plexe default).
struct Beacon {
    std::uint32_t sender = sim::NodeId::kInvalidValue;
    std::uint32_t platoon_id = 0;
    std::uint8_t platoon_index = 0;  ///< 0 = leader.
    std::uint8_t lane = 0;           ///< 0 = rightmost lane.
    double position_m = 0.0;         ///< Front bumper along the lane.
    double speed_mps = 0.0;
    double accel_mps2 = 0.0;
    double length_m = 0.0;

    [[nodiscard]] crypto::Bytes encode() const;
    [[nodiscard]] static std::optional<Beacon> decode(crypto::BytesView bytes);
};

enum class ManeuverType : std::uint8_t {
    kJoinRequest = 1,   ///< New vehicle asks the leader to join at the tail.
    kJoinAccept,        ///< Leader grants; param = target slot gap position.
    kJoinDeny,
    kGapOpen,           ///< Leader tells a member to open a gap; param = gap.
    kGapReady,          ///< Member reports the gap is open.
    kJoinComplete,      ///< Joiner is in position and under CACC.
    kLeaveRequest,      ///< Member asks to leave.
    kLeaveAccept,
    kLeaveComplete,
    kSplitRequest,      ///< Split the platoon at `subject`'s position.
    kDissolve,          ///< Emergency: everyone falls back to manual/ACC.
};

[[nodiscard]] const char* to_string(ManeuverType t);

struct ManeuverMsg {
    ManeuverType type = ManeuverType::kJoinRequest;
    std::uint32_t platoon_id = 0;
    std::uint32_t sender = sim::NodeId::kInvalidValue;
    std::uint32_t subject = sim::NodeId::kInvalidValue;  ///< Affected vehicle.
    double param = 0.0;  ///< Meaning depends on type (gap size, slot, ...).

    [[nodiscard]] crypto::Bytes encode() const;
    [[nodiscard]] static std::optional<ManeuverMsg> decode(
        crypto::BytesView bytes);
};

/// Key-management payloads (RSU key distribution, CRL broadcast).
enum class KeyMgmtType : std::uint8_t {
    kGroupKeyDistribution = 1,  ///< Encrypted group key (to one vehicle).
    kCrlUpdate,                 ///< Revoked serials.
    kKeyRequest,
    kMisbehaviorReport,         ///< Vehicle -> RSU: suspected attacker id.
};

struct KeyMgmtMsg {
    KeyMgmtType type = KeyMgmtType::kKeyRequest;
    std::uint32_t sender = sim::NodeId::kInvalidValue;
    std::uint32_t receiver = sim::NodeId::kInvalidValue;
    crypto::Bytes blob;  ///< Wrapped key / CRL serials.

    [[nodiscard]] crypto::Bytes encode() const;
    [[nodiscard]] static std::optional<KeyMgmtMsg> decode(
        crypto::BytesView bytes);
};

}  // namespace platoon::net
