// Radio propagation: log-distance path loss plus a reciprocal,
// time-correlated small-scale fading process.
//
// Reciprocity matters twice in this codebase: it is what makes the
// fading-based key agreement of [5]/[9] work (both ends of a link observe
// the same gain, an eavesdropper elsewhere observes an independent one), and
// it keeps the SINR model symmetric. Temporal correlation is modelled as an
// AR(1) (Gauss-Markov) process in dB per unordered node pair, parameterised
// by a coherence time.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/types.hpp"

namespace platoon::net {

enum class Band : std::uint8_t {
    kDsrc = 0,  ///< IEEE 802.11p at 5.9 GHz.
    kVlc,       ///< Visible light, line-of-sight to adjacent vehicle.
    kCv2x,      ///< 3GPP C-V2X sidelink (separate RF resource).
};

[[nodiscard]] const char* to_string(Band band);

struct ChannelParams {
    double tx_power_dbm = 20.0;
    double ref_loss_db = 47.86;      ///< Free-space loss at 1 m, 5.9 GHz.
    double path_loss_exponent = 2.2;
    double noise_floor_dbm = -95.0;
    double fading_stddev_db = 4.0;   ///< Small-scale fading sigma (dB).
    double coherence_time_s = 0.05;  ///< Fading decorrelation time.
    double carrier_sense_dbm = -85.0;
    double capture_threshold_db = 6.0;  ///< SINR for near-certain reception.
    double per_slope_db = 1.5;          ///< PER sigmoid slope.
    double data_rate_bps = 6'000'000.0;
    double preamble_s = 40e-6;
};

class Channel {
public:
    Channel(ChannelParams params, std::uint64_t master_seed);

    [[nodiscard]] const ChannelParams& params() const { return params_; }

    /// Deterministic path loss (dB) over `distance_m`.
    [[nodiscard]] double path_loss_db(double distance_m) const;

    /// Instantaneous channel gain (dB, negative) between nodes `a` and `b`
    /// at time `t`, including fading. Symmetric in (a, b): gain(a,b,t) ==
    /// gain(b,a,t) exactly (reciprocity).
    double gain_db(sim::NodeId a, sim::NodeId b, double distance_m,
                   sim::SimTime t);

    /// Received power (dBm) for a transmission at `tx_power_dbm`.
    double rx_power_dbm(sim::NodeId from, sim::NodeId to, double distance_m,
                        sim::SimTime t, double tx_power_dbm);

    /// Airtime of a frame of `bytes` at the configured data rate.
    [[nodiscard]] sim::SimTime airtime(std::size_t bytes) const;

    /// Packet-error rate given SINR: sigmoid centred on the capture
    /// threshold, steeper for short frames.
    [[nodiscard]] double packet_error_rate(double sinr_db,
                                           std::size_t bytes) const;

    /// The raw fading value (dB) of the pair process — exposed so the
    /// fading key agreement can probe the same reciprocal randomness the
    /// packets experience.
    double fading_db(sim::NodeId a, sim::NodeId b, sim::SimTime t);

    /// Canonical unordered-pair identity for the per-link fading process.
    /// Both node id words are kept in full: packing them as (hi << 32) | lo
    /// would silently collide for id values >= 2^32 (e.g. if the jammer
    /// pseudo-node range ever widens), merging independent fading processes.
    struct PairKey {
        std::uint64_t lo = 0;  ///< min(a, b), full width.
        std::uint64_t hi = 0;  ///< max(a, b), full width.
        friend bool operator==(PairKey, PairKey) = default;
    };
    struct PairKeyHash {
        std::size_t operator()(PairKey k) const {
            // Mix both full words (boost::hash_combine flavour).
            std::uint64_t h = k.lo * 0x9E3779B97F4A7C15ull;
            h ^= k.hi + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
            return static_cast<std::size_t>(h);
        }
    };

    /// Order-insensitive: pair_key(a, b) == pair_key(b, a) (reciprocity).
    [[nodiscard]] static PairKey pair_key(sim::NodeId a, sim::NodeId b);

private:
    /// Open-addressing fading table. The AR(1) state is touched once per
    /// rx_power/gain computation, which makes this the hottest lookup in
    /// the simulator at highway scale (hundreds of thousands of live node
    /// pairs): linear probing over one contiguous power-of-two slot array
    /// replaces the bucket-chain pointer chase of unordered_map with a
    /// probe that almost always resolves within one cache line. Same
    /// states, same draw order -- only the container changed.
    ///
    /// Keys and values live in parallel arrays so the probe loop walks a
    /// dense u64 array (8 bytes per slot, three slots per cache line)
    /// instead of dragging the 16-byte AR(1) state through the cache on
    /// every collision; the state array is touched exactly once, at the
    /// resolved index. The PairKey words are NodeId values (32-bit today),
    /// so they fit one u64 with the id range asserted at insert; `last_t`
    /// doubles as both the AR(1) clock and the initialised flag (NaN =
    /// never drawn). The all-ones packed key (two kInvalidValue ids --
    /// unregisterable, so no real pair) marks an empty slot.
    struct FadingState {
        double last_t = 0.0;
        double value_db = 0.0;
    };
    static constexpr std::uint64_t kEmptySlotKey = ~0ull;

    /// State for `key`, inserted empty (key claimed, last_t = NaN) if
    /// absent.
    FadingState& fading_slot(PairKey key);
    void grow_fading();

    ChannelParams params_;
    sim::RandomStream fading_rng_;
    std::vector<std::uint64_t> fading_keys_;
    std::vector<FadingState> fading_states_;
    std::size_t fading_count_ = 0;
};


}  // namespace platoon::net
