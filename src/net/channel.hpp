// Radio propagation: log-distance path loss plus a reciprocal,
// time-correlated small-scale fading process.
//
// Reciprocity matters twice in this codebase: it is what makes the
// fading-based key agreement of [5]/[9] work (both ends of a link observe
// the same gain, an eavesdropper elsewhere observes an independent one), and
// it keeps the SINR model symmetric. Temporal correlation is modelled as an
// AR(1) (Gauss-Markov) process in dB per unordered node pair, parameterised
// by a coherence time.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/random.hpp"
#include "sim/types.hpp"

namespace platoon::net {

enum class Band : std::uint8_t {
    kDsrc = 0,  ///< IEEE 802.11p at 5.9 GHz.
    kVlc,       ///< Visible light, line-of-sight to adjacent vehicle.
    kCv2x,      ///< 3GPP C-V2X sidelink (separate RF resource).
};

[[nodiscard]] const char* to_string(Band band);

struct ChannelParams {
    double tx_power_dbm = 20.0;
    double ref_loss_db = 47.86;      ///< Free-space loss at 1 m, 5.9 GHz.
    double path_loss_exponent = 2.2;
    double noise_floor_dbm = -95.0;
    double fading_stddev_db = 4.0;   ///< Small-scale fading sigma (dB).
    double coherence_time_s = 0.05;  ///< Fading decorrelation time.
    double carrier_sense_dbm = -85.0;
    double capture_threshold_db = 6.0;  ///< SINR for near-certain reception.
    double per_slope_db = 1.5;          ///< PER sigmoid slope.
    double data_rate_bps = 6'000'000.0;
    double preamble_s = 40e-6;
};

class Channel {
public:
    Channel(ChannelParams params, std::uint64_t master_seed);

    [[nodiscard]] const ChannelParams& params() const { return params_; }

    /// Deterministic path loss (dB) over `distance_m`.
    [[nodiscard]] double path_loss_db(double distance_m) const;

    /// Instantaneous channel gain (dB, negative) between nodes `a` and `b`
    /// at time `t`, including fading. Symmetric in (a, b): gain(a,b,t) ==
    /// gain(b,a,t) exactly (reciprocity).
    double gain_db(sim::NodeId a, sim::NodeId b, double distance_m,
                   sim::SimTime t);

    /// Received power (dBm) for a transmission at `tx_power_dbm`.
    double rx_power_dbm(sim::NodeId from, sim::NodeId to, double distance_m,
                        sim::SimTime t, double tx_power_dbm);

    /// Airtime of a frame of `bytes` at the configured data rate.
    [[nodiscard]] sim::SimTime airtime(std::size_t bytes) const;

    /// Packet-error rate given SINR: sigmoid centred on the capture
    /// threshold, steeper for short frames.
    [[nodiscard]] double packet_error_rate(double sinr_db,
                                           std::size_t bytes) const;

    /// The raw fading value (dB) of the pair process — exposed so the
    /// fading key agreement can probe the same reciprocal randomness the
    /// packets experience.
    double fading_db(sim::NodeId a, sim::NodeId b, sim::SimTime t);

private:
    struct PairKey {
        std::uint64_t key;
        friend bool operator==(PairKey, PairKey) = default;
    };
    struct PairKeyHash {
        std::size_t operator()(PairKey k) const {
            return std::hash<std::uint64_t>{}(k.key);
        }
    };
    struct FadingState {
        bool initialised = false;
        sim::SimTime last_t = 0.0;
        double value_db = 0.0;
    };

    static PairKey pair_key(sim::NodeId a, sim::NodeId b);

    ChannelParams params_;
    sim::RandomStream fading_rng_;
    std::unordered_map<PairKey, FadingState, PairKeyHash> fading_;
};

}  // namespace platoon::net
