#include "net/network.hpp"

#include <algorithm>
#include <cmath>

#include "obs/counters.hpp"
#include "obs/timer.hpp"
#include "sim/assert.hpp"
#include "sim/logging.hpp"

namespace platoon::net {

namespace {
double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }
double mw_to_dbm(double mw) { return 10.0 * std::log10(std::max(mw, 1e-15)); }

obs::Counter g_sent{"net.sent"};
obs::Counter g_sent_forged{"net.sent_forged"};
obs::Counter g_delivered{"net.delivered"};
obs::Counter g_dropped_per{"net.dropped.per"};
obs::Counter g_dropped_mac{"net.dropped.mac"};
obs::Counter g_dropped_half_duplex{"net.dropped.half_duplex"};
obs::Counter g_dropped_range{"net.dropped.range"};
obs::Counter g_dropped_fault{"net.dropped.fault"};
}  // namespace

Network::Network(sim::Scheduler& scheduler, Params params, std::uint64_t seed)
    : scheduler_(scheduler),
      params_(params),
      channel_(params.channel, seed),
      rng_(seed, "network.mac"),
      batch_rng_(seed, "network.batchverify") {}

void Network::register_node(sim::NodeId id, PositionFn position,
                            ReceiveHandler on_receive) {
    register_node(id, std::move(position), std::move(on_receive),
                  NodeTraits{});
}

void Network::register_node(sim::NodeId id, PositionFn position,
                            ReceiveHandler on_receive, NodeTraits traits) {
    PLATOON_EXPECTS(id.valid());
    PLATOON_EXPECTS(position != nullptr);
    PLATOON_EXPECTS(on_receive != nullptr);
    nodes_[id] = Node{std::move(position), std::move(on_receive), traits,
                      false};
}

void Network::unregister_node(sim::NodeId id) { nodes_.erase(id); }

bool Network::is_registered(sim::NodeId id) const {
    return nodes_.contains(id);
}

double Network::node_position(sim::NodeId id) const {
    const auto it = nodes_.find(id);
    PLATOON_EXPECTS(it != nodes_.end());
    return it->second.position();
}

int Network::add_jammer(JammerConfig config) {
    const int id = next_jammer_id_++;
    jammers_[id] = std::move(config);
    return id;
}

void Network::remove_jammer(int jammer_id) { jammers_.erase(jammer_id); }

double Network::jammer_power_mw(double rx_pos, Band band, sim::NodeId rx,
                                sim::SimTime t) {
    double total = 0.0;
    for (auto& [id, jammer] : jammers_) {
        if (jammer.band != band) continue;
        const double jam_pos =
            jammer.mobile && jammer.position_fn ? jammer.position_fn()
                                                : jammer.position_m;
        const double dist = std::abs(jam_pos - rx_pos);
        // Jammer noise experiences the same propagation; use a synthetic
        // node id far outside the normal range for its fading process.
        const sim::NodeId jam_node{0xFFFF0000u + static_cast<std::uint32_t>(id)};
        const double rx_dbm =
            channel_.rx_power_dbm(jam_node, rx, dist, t, jammer.power_dbm);
        total += dbm_to_mw(rx_dbm) * jammer.duty_cycle;
    }
    return total;
}

bool Network::medium_busy(sim::NodeId at, Band band) {
    if (band != Band::kDsrc) return false;  // VLC/C-V2X: no CSMA
    const auto it = nodes_.find(at);
    if (it == nodes_.end()) return false;
    const double my_pos = it->second.position();
    const sim::SimTime now = scheduler_.now();

    for (const auto& tx : active_) {
        if (tx.frame.band != band || tx.end <= now || tx.from == at) continue;
        const double dist = std::abs(tx.tx_position - my_pos);
        const double rx_dbm = channel_.rx_power_dbm(
            tx.from, at, dist, now, params_.channel.tx_power_dbm);
        if (rx_dbm > params_.channel.carrier_sense_dbm) return true;
    }
    const double jam_mw = jammer_power_mw(my_pos, band, at, now);
    return mw_to_dbm(jam_mw) > params_.channel.carrier_sense_dbm;
}

void Network::broadcast(sim::NodeId from, Frame frame) {
    PLATOON_EXPECTS(nodes_.contains(from));
    // Observability only: the oracle label is counted (one bump per forged
    // submission), never branched on for delivery.
    if (frame.truth.malicious()) g_sent_forged.inc();
    if (frame.band == Band::kVlc) {
        ++stats_.sent;
        g_sent.inc();
        deliver_vlc(from, frame);
        return;
    }
    attempt_transmit(from, std::move(frame), 0);
}

void Network::attempt_transmit(sim::NodeId from, Frame frame, int attempt) {
    if (!nodes_.contains(from)) return;  // node left while backing off
    if (attempt > params_.max_mac_attempts) {
        ++stats_.dropped_mac;
        g_dropped_mac.inc();
        return;
    }
    // Half-duplex: one outgoing frame at a time, on any band -- a second
    // send while transmitting waits for a backoff slot like a busy medium.
    const auto self_it = nodes_.find(from);
    const bool self_busy = self_it->second.transmitting;
    if (self_busy || (frame.band == Band::kDsrc && medium_busy(from, frame.band))) {
        const int cw = contention_window(attempt);
        const double backoff =
            params_.aifs_s +
            params_.slot_time_s *
                static_cast<double>(rng_.uniform_int(static_cast<std::uint64_t>(cw)));
        scheduler_.schedule_in(backoff, [this, from, frame = std::move(frame),
                                         attempt]() mutable {
            attempt_transmit(from, std::move(frame), attempt + 1);
        });
        return;
    }
    start_transmission(from, std::move(frame));
}

void Network::prune_finished(sim::SimTime now) {
    std::erase_if(active_, [now](const Transmission& tx) {
        return tx.end < now - 0.001;
    });
}

void Network::start_transmission(sim::NodeId from, Frame frame) {
    auto node_it = nodes_.find(from);
    if (node_it == nodes_.end()) return;
    const sim::SimTime now = scheduler_.now();
    prune_finished(now);

    Transmission tx;
    tx.from = from;
    tx.start = now;
    tx.end = now + channel_.airtime(frame.wire_size());
    tx.tx_position = node_it->second.position();
    tx.frame = std::move(frame);
    active_.push_back(std::move(tx));
    node_it->second.transmitting = true;
    ++stats_.sent;
    g_sent.inc();

    // Identify this transmission by its (from, start) pair at finish time;
    // (a node cannot start two simultaneous transmissions on one band).
    const sim::SimTime start = now;
    scheduler_.schedule_at(active_.back().end, [this, from, start] {
        for (std::size_t i = 0; i < active_.size(); ++i) {
            if (active_[i].from == from && active_[i].start == start) {
                finish_transmission(i);
                return;
            }
        }
    });
}

void Network::finish_transmission(std::size_t tx_index) {
    PLATOON_EXPECTS(tx_index < active_.size());
    const obs::ScopedTimer timer("net.deliver");
    // Copy: delivery handlers may trigger new transmissions that mutate
    // active_.
    const Transmission tx = active_[tx_index];

    if (auto it = nodes_.find(tx.from); it != nodes_.end())
        it->second.transmitting = false;

    const sim::SimTime now = scheduler_.now();
    const double noise_mw = dbm_to_mw(params_.channel.noise_floor_dbm);

    // Snapshot receivers: handlers can (un)register nodes.
    std::vector<sim::NodeId> receivers;
    receivers.reserve(nodes_.size());
    for (const auto& [id, node] : nodes_) {
        if (id != tx.from) receivers.push_back(id);
    }
    std::sort(receivers.begin(), receivers.end());  // deterministic order

    // Settle receiver-independent signature facts once, before the fan-out,
    // so each receiver below hits the shared verdict cache. Gated on the
    // envelope mode here (cheaply) as well as inside the hook: unsigned
    // traffic must not touch batch_rng_.
    if (verify_prewarm_ && receivers.size() > 1 &&
        tx.frame.envelope.mode == crypto::AuthMode::kSignature) {
        verify_prewarm_(tx.frame.envelope, batch_rng_);
    }

    for (const sim::NodeId rx : receivers) {
        const auto it = nodes_.find(rx);
        if (it == nodes_.end()) continue;
        const double rx_pos = it->second.position();
        const double dist = std::abs(tx.tx_position - rx_pos);
        if (dist > params_.max_range_m) {
            ++stats_.dropped_range;
            g_dropped_range.inc();
            continue;
        }
        if (it->second.transmitting) {
            ++stats_.dropped_half_duplex;
            g_dropped_half_duplex.inc();
            continue;
        }
        // Benign fault process (burst loss): a faulted delivery is decided
        // before the SINR/PER draw -- the frame never reaches the decoder,
        // so it must not be double-counted as a PER loss.
        if (fault_loss_ && fault_loss_(tx.from, rx, tx.frame.band, now)) {
            ++stats_.dropped_fault;
            g_dropped_fault.inc();
            continue;
        }
        const double signal_mw = dbm_to_mw(channel_.rx_power_dbm(
            tx.from, rx, dist, tx.start, params_.channel.tx_power_dbm));
        const double interference =
            interference_mw(rx, rx_pos, tx.frame.band, tx.start, tx.end,
                            tx_index) +
            jammer_power_mw(rx_pos, tx.frame.band, rx, now);
        const double sinr_db =
            mw_to_dbm(signal_mw) - mw_to_dbm(noise_mw + interference);
        const double per =
            channel_.packet_error_rate(sinr_db, tx.frame.wire_size());
        if (rng_.chance(per)) {
            ++stats_.dropped_per;
            g_dropped_per.inc();
            continue;
        }
        ++stats_.delivered;
        g_delivered.inc();
        RxInfo info{sinr_db, tx.frame.band, now, tx.from};
        it->second.on_receive(tx.frame, info);
    }
}

double Network::interference_mw(sim::NodeId rx, double rx_pos, Band band,
                                sim::SimTime start, sim::SimTime end,
                                std::optional<std::size_t> self_index) {
    double total = 0.0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
        if (self_index && i == *self_index) continue;
        const Transmission& other = active_[i];
        if (other.frame.band != band) continue;
        if (other.from == rx) continue;  // own tx counted as half-duplex
        const double overlap =
            std::min(end, other.end) - std::max(start, other.start);
        if (overlap <= 0.0) continue;
        const double dist = std::abs(other.tx_position - rx_pos);
        const double rx_dbm = channel_.rx_power_dbm(
            other.from, rx, dist, other.start, params_.channel.tx_power_dbm);
        total += dbm_to_mw(rx_dbm);
    }
    return total;
}

void Network::deliver_vlc(sim::NodeId from, const Frame& frame) {
    // Line-of-sight optical link: reaches only the nearest vehicle ahead and
    // the nearest behind (the bodies of vehicles block anything further),
    // within the optical range. Immune to RF jamming by construction; an
    // ambient-light loss probability models glare (paper Section VI-A.4).
    const auto from_it = nodes_.find(from);
    if (from_it == nodes_.end()) return;
    const double my_pos = from_it->second.position();

    sim::NodeId ahead, behind;
    double best_ahead = params_.vlc_range_m + 1.0;
    double best_behind = params_.vlc_range_m + 1.0;
    for (const auto& [id, node] : nodes_) {
        if (id == from) continue;
        if (!node.traits.vlc) continue;  // not in the optical chain
        const double delta = node.position() - my_pos;
        if (delta > 0.0 && delta < best_ahead) {
            best_ahead = delta;
            ahead = id;
        } else if (delta < 0.0 && -delta < best_behind) {
            best_behind = -delta;
            behind = id;
        }
    }

    for (const sim::NodeId rx : {ahead, behind}) {
        if (!rx.valid()) continue;
        if (rng_.chance(params_.vlc_loss_prob)) {
            ++stats_.dropped_per;
            g_dropped_per.inc();
            continue;
        }
        scheduler_.schedule_in(
            params_.vlc_latency_s, [this, rx, frame, from] {
                const auto it = nodes_.find(rx);
                if (it == nodes_.end()) return;
                ++stats_.delivered;
                g_delivered.inc();
                RxInfo info{40.0, Band::kVlc, scheduler_.now(), from};
                it->second.on_receive(frame, info);
            });
    }
}

}  // namespace platoon::net
