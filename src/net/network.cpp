#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/counters.hpp"
#include "obs/timer.hpp"
#include "sim/assert.hpp"
#include "sim/logging.hpp"

namespace platoon::net {

namespace {
double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }
double mw_to_dbm(double mw) { return 10.0 * std::log10(std::max(mw, 1e-15)); }

bool brute_force_env() {
    const char* v = std::getenv("PLATOON_BRUTE_FORCE_NET");
    return v != nullptr && v[0] == '1';
}

obs::Counter g_sent{"net.sent"};
obs::Counter g_sent_forged{"net.sent_forged"};
obs::Counter g_delivered{"net.delivered"};
obs::Counter g_dropped_per{"net.dropped.per"};
obs::Counter g_dropped_mac{"net.dropped.mac"};
obs::Counter g_dropped_half_duplex{"net.dropped.half_duplex"};
obs::Counter g_dropped_range{"net.dropped.range"};
obs::Counter g_dropped_fault{"net.dropped.fault"};
obs::Counter g_arena_alloc{"net.arena.alloc"};
obs::Counter g_arena_reuse{"net.arena.reuse"};
}  // namespace

Network::Network(sim::Scheduler& scheduler, Params params, std::uint64_t seed)
    : scheduler_(scheduler),
      params_(params),
      channel_(params.channel, seed),
      rng_(seed, "network.mac"),
      batch_rng_(seed, "network.batchverify"),
      brute_force_(params.brute_force_delivery || brute_force_env()) {}

void Network::register_node(sim::NodeId id, PositionFn position,
                            ReceiveHandler on_receive) {
    register_node(id, std::move(position), std::move(on_receive),
                  NodeTraits{});
}

void Network::register_node(sim::NodeId id, PositionFn position,
                            ReceiveHandler on_receive, NodeTraits traits) {
    PLATOON_EXPECTS(id.valid());
    PLATOON_EXPECTS(position != nullptr);
    PLATOON_EXPECTS(on_receive != nullptr);
    nodes_[id] = Node{std::move(position), std::move(on_receive), traits,
                      false};
    index_dirty_ = true;
}

void Network::unregister_node(sim::NodeId id) {
    nodes_.erase(id);
    index_dirty_ = true;
}

bool Network::is_registered(sim::NodeId id) const {
    return nodes_.contains(id);
}

double Network::node_position(sim::NodeId id) const {
    const auto it = nodes_.find(id);
    PLATOON_EXPECTS(it != nodes_.end());
    return it->second.position();
}

void Network::ensure_index() {
    const sim::SimTime now = scheduler_.now();
    if (!index_dirty_ && index_.ever_built() &&
        now - index_.built_at() <= params_.spatial_rebuild_period_s) {
        return;
    }
    std::vector<SpatialIndex::Entry> entries;
    entries.reserve(nodes_.size());
    for (const auto& [id, node] : nodes_) {
        entries.push_back({node.position(), id, node.traits.vlc});
    }
    index_.rebuild(std::move(entries), now);
    index_dirty_ = false;
}

double Network::index_slack(sim::SimTime now) const {
    return params_.max_node_speed_mps * (now - index_.built_at()) +
           params_.spatial_slack_margin_m;
}

int Network::add_jammer(JammerConfig config) {
    const int id = next_jammer_id_++;
    jammers_[id] = std::move(config);
    return id;
}

void Network::remove_jammer(int jammer_id) { jammers_.erase(jammer_id); }

double Network::jammer_power_mw(double rx_pos, Band band, sim::NodeId rx,
                                sim::SimTime t) {
    double total = 0.0;
    for (auto& [id, jammer] : jammers_) {
        if (jammer.band != band) continue;
        const double jam_pos =
            jammer.mobile && jammer.position_fn ? jammer.position_fn()
                                                : jammer.position_m;
        const double dist = std::abs(jam_pos - rx_pos);
        // Jammer noise experiences the same propagation; use a synthetic
        // node id far outside the normal range for its fading process.
        const sim::NodeId jam_node{0xFFFF0000u + static_cast<std::uint32_t>(id)};
        const double rx_dbm =
            channel_.rx_power_dbm(jam_node, rx, dist, t, jammer.power_dbm);
        total += dbm_to_mw(rx_dbm) * jammer.duty_cycle;
    }
    return total;
}

bool Network::medium_busy(sim::NodeId at, Band band) {
    if (band != Band::kDsrc) return false;  // VLC/C-V2X: no CSMA
    const auto it = nodes_.find(at);
    if (it == nodes_.end()) return false;
    const double my_pos = it->second.position();
    const sim::SimTime now = scheduler_.now();

    for (const std::uint32_t slot : active_slots_) {
        const Transmission& tx = slab_[slot]->tx;
        if (tx.frame.band != band || tx.end <= now || tx.from == at) continue;
        const double dist = std::abs(tx.tx_position - my_pos);
        const double rx_dbm = channel_.rx_power_dbm(
            tx.from, at, dist, now, params_.channel.tx_power_dbm);
        if (rx_dbm > params_.channel.carrier_sense_dbm) return true;
    }
    const double jam_mw = jammer_power_mw(my_pos, band, at, now);
    return mw_to_dbm(jam_mw) > params_.channel.carrier_sense_dbm;
}

void Network::broadcast(sim::NodeId from, Frame frame) {
    PLATOON_EXPECTS(nodes_.contains(from));
    // Observability only: the oracle label is counted (one bump per forged
    // submission), never branched on for delivery.
    if (frame.truth.malicious()) g_sent_forged.inc();
    if (frame.band == Band::kVlc) {
        ++stats_.sent;
        g_sent.inc();
        deliver_vlc(from, frame);
        return;
    }
    attempt_transmit(from, std::move(frame), 0);
}

void Network::attempt_transmit(sim::NodeId from, Frame frame, int attempt) {
    if (!nodes_.contains(from)) return;  // node left while backing off
    if (attempt > params_.max_mac_attempts) {
        ++stats_.dropped_mac;
        g_dropped_mac.inc();
        return;
    }
    // Half-duplex: one outgoing frame at a time, on any band -- a second
    // send while transmitting waits for a backoff slot like a busy medium.
    const auto self_it = nodes_.find(from);
    const bool self_busy = self_it->second.transmitting;
    if (self_busy || (frame.band == Band::kDsrc && medium_busy(from, frame.band))) {
        const int cw = contention_window(attempt);
        const double backoff =
            params_.aifs_s +
            params_.slot_time_s *
                static_cast<double>(rng_.uniform_int(static_cast<std::uint64_t>(cw)));
        scheduler_.schedule_in(backoff, [this, from, frame = std::move(frame),
                                         attempt]() mutable {
            attempt_transmit(from, std::move(frame), attempt + 1);
        });
        return;
    }
    start_transmission(from, std::move(frame));
}

void Network::prune_finished(sim::SimTime now) {
    std::erase_if(active_slots_, [this, now](std::uint32_t slot) {
        Slot& s = *slab_[slot];
        if (s.tx.end >= now - 0.001) return false;
        s.live = false;
        free_slots_.push_back(slot);
        return true;
    });
}

std::uint32_t Network::allocate_slot() {
    std::uint32_t slot;
    if (free_slots_.empty()) {
        slot = static_cast<std::uint32_t>(slab_.size());
        slab_.push_back(std::make_unique<Slot>());
        g_arena_alloc.inc();
    } else {
        slot = free_slots_.back();
        free_slots_.pop_back();
        g_arena_reuse.inc();
    }
    Slot& s = *slab_[slot];
    ++s.gen;
    s.live = true;
    active_slots_.push_back(slot);
    return slot;
}

void Network::start_transmission(sim::NodeId from, Frame frame) {
    auto node_it = nodes_.find(from);
    if (node_it == nodes_.end()) return;
    const sim::SimTime now = scheduler_.now();
    prune_finished(now);

    const std::uint32_t slot = allocate_slot();
    Slot& s = *slab_[slot];
    s.tx.from = from;
    s.tx.start = now;
    s.tx.end = now + channel_.airtime(frame.wire_size());
    s.tx.tx_position = node_it->second.position();
    s.tx.frame = std::move(frame);
    node_it->second.transmitting = true;
    ++stats_.sent;
    g_sent.inc();

    scheduler_.schedule_at(s.tx.end, [this, slot, gen = s.gen] {
        finish_transmission(slot, gen);
    });
}

void Network::finish_transmission(std::uint32_t slot, std::uint64_t gen) {
    PLATOON_EXPECTS(slot < slab_.size());
    if (!slab_[slot]->live || slab_[slot]->gen != gen) return;
    const obs::ScopedTimer timer("net.deliver");
    // Slab slots are heap-stable: handlers may start new transmissions
    // while this reference is held, and this slot cannot be pruned before
    // the loop ends (its end time is `now`, inside the prune window).
    const Transmission& tx = slab_[slot]->tx;

    if (auto it = nodes_.find(tx.from); it != nodes_.end())
        it->second.transmitting = false;

    const sim::SimTime now = scheduler_.now();
    const double noise_mw = dbm_to_mw(params_.channel.noise_floor_dbm);
    const std::size_t total_receivers =
        nodes_.size() - (nodes_.contains(tx.from) ? 1u : 0u);

    // Reception candidates, sorted by NodeId (deterministic order; handlers
    // can (un)register nodes, so the set is snapshotted before delivery).
    std::vector<sim::NodeId> receivers;
    if (brute_force_) {
        receivers.reserve(nodes_.size());
        for (const auto& [id, node] : nodes_) {
            if (id != tx.from) receivers.push_back(id);
        }
    } else {
        ensure_index();
        const double reach = params_.max_range_m + index_slack(now);
        std::vector<SpatialIndex::Entry> window;
        index_.collect(tx.tx_position - reach, tx.tx_position + reach,
                       window);
        receivers.reserve(window.size());
        for (const SpatialIndex::Entry& e : window) {
            if (e.id != tx.from) receivers.push_back(e.id);
        }
        // Everyone outside the slack-widened window is guaranteed outside
        // max_range_m at its exact position too (spatial_index.hpp), so the
        // far tail is bulk-counted without sampling positions.
        const std::uint64_t far = total_receivers - receivers.size();
        stats_.dropped_range += far;
        g_dropped_range.add(far);
    }
    std::sort(receivers.begin(), receivers.end());

    // Settle receiver-independent signature facts once, before the fan-out,
    // so each receiver below hits the shared verdict cache. Gated on the
    // envelope mode here (cheaply) as well as inside the hook: unsigned
    // traffic must not touch batch_rng_. The gate counts *all* registered
    // receivers, not just in-range candidates, so both delivery paths draw
    // from batch_rng_ identically.
    if (verify_prewarm_ && total_receivers > 1 &&
        tx.frame.envelope.mode == crypto::AuthMode::kSignature) {
        verify_prewarm_(tx.frame.envelope, batch_rng_);
    }

    for (const sim::NodeId rx : receivers) {
        const auto it = nodes_.find(rx);
        if (it == nodes_.end()) continue;
        const double rx_pos = it->second.position();
        const double dist = std::abs(tx.tx_position - rx_pos);
        if (dist > params_.max_range_m) {
            ++stats_.dropped_range;
            g_dropped_range.inc();
            continue;
        }
        if (it->second.transmitting) {
            ++stats_.dropped_half_duplex;
            g_dropped_half_duplex.inc();
            continue;
        }
        // Benign fault process (burst loss): a faulted delivery is decided
        // before the SINR/PER draw -- the frame never reaches the decoder,
        // so it must not be double-counted as a PER loss.
        if (fault_loss_ && fault_loss_(tx.from, rx, tx.frame.band, now)) {
            ++stats_.dropped_fault;
            g_dropped_fault.inc();
            continue;
        }
        const double signal_mw = dbm_to_mw(channel_.rx_power_dbm(
            tx.from, rx, dist, tx.start, params_.channel.tx_power_dbm));
        const double interference =
            interference_mw(rx, rx_pos, tx.frame.band, tx.start, tx.end,
                            slot) +
            jammer_power_mw(rx_pos, tx.frame.band, rx, now);
        const double sinr_db =
            mw_to_dbm(signal_mw) - mw_to_dbm(noise_mw + interference);
        const double per =
            channel_.packet_error_rate(sinr_db, tx.frame.wire_size());
        if (rng_.chance(per)) {
            ++stats_.dropped_per;
            g_dropped_per.inc();
            continue;
        }
        ++stats_.delivered;
        g_delivered.inc();
        RxInfo info{sinr_db, tx.frame.band, now, tx.from};
        it->second.on_receive(tx.frame, info);
    }
}

double Network::interference_mw(sim::NodeId rx, double rx_pos, Band band,
                                sim::SimTime start, sim::SimTime end,
                                std::optional<std::uint32_t> self_slot) {
    double total = 0.0;
    for (const std::uint32_t slot : active_slots_) {
        if (self_slot && slot == *self_slot) continue;
        const Transmission& other = slab_[slot]->tx;
        if (other.frame.band != band) continue;
        if (other.from == rx) continue;  // own tx counted as half-duplex
        const double overlap =
            std::min(end, other.end) - std::max(start, other.start);
        if (overlap <= 0.0) continue;
        const double dist = std::abs(other.tx_position - rx_pos);
        const double rx_dbm = channel_.rx_power_dbm(
            other.from, rx, dist, other.start, params_.channel.tx_power_dbm);
        total += dbm_to_mw(rx_dbm);
    }
    return total;
}

std::pair<sim::NodeId, sim::NodeId> Network::vlc_targets(sim::NodeId from) {
    const auto from_it = nodes_.find(from);
    if (from_it == nodes_.end()) return {};
    const double my_pos = from_it->second.position();

    // Candidates as (id, exact position), gathered either from the whole
    // registry or from the index window, then scanned in NodeId order so an
    // exact-distance tie resolves identically on both paths. The window is
    // widened past the strict-< reach (vlc_range_m + 1.0) by the slack, so
    // any node that could win the nearest-neighbor scan is inside it.
    std::vector<std::pair<sim::NodeId, double>> cands;
    if (brute_force_) {
        for (const auto& [id, node] : nodes_) {
            if (id == from || !node.traits.vlc) continue;
            cands.emplace_back(id, node.position());
        }
    } else {
        ensure_index();
        const double reach =
            params_.vlc_range_m + 1.0 + index_slack(scheduler_.now());
        std::vector<SpatialIndex::Entry> window;
        index_.collect_vlc(my_pos - reach, my_pos + reach, window);
        cands.reserve(window.size());
        for (const SpatialIndex::Entry& e : window) {
            if (e.id == from) continue;
            const auto it = nodes_.find(e.id);
            if (it == nodes_.end()) continue;
            cands.emplace_back(e.id, it->second.position());
        }
    }
    std::sort(cands.begin(), cands.end());

    sim::NodeId ahead, behind;
    double best_ahead = params_.vlc_range_m + 1.0;
    double best_behind = params_.vlc_range_m + 1.0;
    for (const auto& [id, pos] : cands) {
        const double delta = pos - my_pos;
        if (delta > 0.0 && delta < best_ahead) {
            best_ahead = delta;
            ahead = id;
        } else if (delta < 0.0 && -delta < best_behind) {
            best_behind = -delta;
            behind = id;
        }
    }
    return {ahead, behind};
}

void Network::deliver_vlc(sim::NodeId from, const Frame& frame) {
    // Line-of-sight optical link: reaches only the nearest vehicle ahead and
    // the nearest behind (the bodies of vehicles block anything further),
    // within the optical range. Immune to RF jamming by construction; an
    // ambient-light loss probability models glare (paper Section VI-A.4).
    const auto [ahead, behind] = vlc_targets(from);

    for (const sim::NodeId rx : {ahead, behind}) {
        if (!rx.valid()) continue;
        if (rng_.chance(params_.vlc_loss_prob)) {
            ++stats_.dropped_per;
            g_dropped_per.inc();
            continue;
        }
        scheduler_.schedule_in(
            params_.vlc_latency_s, [this, rx, frame, from] {
                const auto it = nodes_.find(rx);
                if (it == nodes_.end()) return;
                ++stats_.delivered;
                g_delivered.inc();
                RxInfo info{40.0, Band::kVlc, scheduler_.now(), from};
                it->second.on_receive(frame, info);
            });
    }
}

}  // namespace platoon::net
