// Sorted-by-x neighbor index over the registered radio nodes.
//
// The index is a snapshot: positions are sampled once per rebuild from the
// lazy PositionFn callbacks and then queried many times, so every lookup has
// to tolerate *stale* coordinates. Callers widen their query window by a
// slack term (max node speed x snapshot age, plus a safety margin) so that a
// node whose stale x falls outside the window is guaranteed to also fail the
// exact range check -- that guarantee is what lets Network bulk-count the
// non-candidates as out-of-range without sampling their positions, and what
// keeps the indexed delivery path bit-identical to the brute-force scan
// (pinned by tests/net/test_spatial_delivery.cpp).
#pragma once

#include <vector>

#include "sim/scheduler.hpp"

namespace platoon::net {

class SpatialIndex {
public:
    struct Entry {
        double x = 0.0;
        sim::NodeId id;
        bool vlc = false;  ///< Participates in the optical chain.
    };

    /// Replaces the snapshot. Entries are sorted by (x, id); the id
    /// tie-break keeps the stored order deterministic when two nodes share a
    /// coordinate (callers still re-sort query results by NodeId).
    void rebuild(std::vector<Entry> entries, sim::SimTime at);

    /// Appends every entry with stale x in [lo, hi] to `out` (in x order).
    void collect(double lo, double hi, std::vector<Entry>& out) const;

    /// As collect(), but only entries with the vlc trait.
    void collect_vlc(double lo, double hi, std::vector<Entry>& out) const;

    [[nodiscard]] sim::SimTime built_at() const { return built_at_; }
    [[nodiscard]] bool ever_built() const { return built_at_ >= 0.0; }
    [[nodiscard]] std::size_t size() const { return entries_.size(); }

private:
    std::vector<Entry> entries_;  // sorted by (x, id)
    sim::SimTime built_at_ = -1.0;
};

}  // namespace platoon::net
