#include "net/message.hpp"

#include <stdexcept>

namespace platoon::net {

namespace {
constexpr std::uint32_t kBeaconMagic = 0x4245434Eu;    // "BECN"
constexpr std::uint32_t kManeuverMagic = 0x4D4E5652u;  // "MNVR"
constexpr std::uint32_t kKeyMgmtMagic = 0x4B455953u;   // "KEYS"
}  // namespace

crypto::Bytes Beacon::encode() const {
    crypto::Bytes out;
    crypto::append_u32(out, kBeaconMagic);
    crypto::append_u32(out, sender);
    crypto::append_u32(out, platoon_id);
    out.push_back(platoon_index);
    out.push_back(lane);
    crypto::append_f64(out, position_m);
    crypto::append_f64(out, speed_mps);
    crypto::append_f64(out, accel_mps2);
    crypto::append_f64(out, length_m);
    return out;
}

std::optional<Beacon> Beacon::decode(crypto::BytesView bytes) {
    try {
        std::size_t off = 0;
        if (crypto::read_u32(bytes, off) != kBeaconMagic) return std::nullopt;
        Beacon b;
        b.sender = crypto::read_u32(bytes, off);
        b.platoon_id = crypto::read_u32(bytes, off);
        if (off >= bytes.size()) return std::nullopt;
        b.platoon_index = bytes[off++];
        if (off >= bytes.size()) return std::nullopt;
        b.lane = bytes[off++];
        b.position_m = crypto::read_f64(bytes, off);
        b.speed_mps = crypto::read_f64(bytes, off);
        b.accel_mps2 = crypto::read_f64(bytes, off);
        b.length_m = crypto::read_f64(bytes, off);
        return b;
    } catch (const std::out_of_range&) {
        return std::nullopt;
    }
}

const char* to_string(ManeuverType t) {
    switch (t) {
        case ManeuverType::kJoinRequest: return "join-request";
        case ManeuverType::kJoinAccept: return "join-accept";
        case ManeuverType::kJoinDeny: return "join-deny";
        case ManeuverType::kGapOpen: return "gap-open";
        case ManeuverType::kGapReady: return "gap-ready";
        case ManeuverType::kJoinComplete: return "join-complete";
        case ManeuverType::kLeaveRequest: return "leave-request";
        case ManeuverType::kLeaveAccept: return "leave-accept";
        case ManeuverType::kLeaveComplete: return "leave-complete";
        case ManeuverType::kSplitRequest: return "split-request";
        case ManeuverType::kDissolve: return "dissolve";
    }
    return "?";
}

crypto::Bytes ManeuverMsg::encode() const {
    crypto::Bytes out;
    crypto::append_u32(out, kManeuverMagic);
    out.push_back(static_cast<std::uint8_t>(type));
    crypto::append_u32(out, platoon_id);
    crypto::append_u32(out, sender);
    crypto::append_u32(out, subject);
    crypto::append_f64(out, param);
    return out;
}

std::optional<ManeuverMsg> ManeuverMsg::decode(crypto::BytesView bytes) {
    try {
        std::size_t off = 0;
        if (crypto::read_u32(bytes, off) != kManeuverMagic) return std::nullopt;
        if (off >= bytes.size()) return std::nullopt;
        ManeuverMsg m;
        m.type = static_cast<ManeuverType>(bytes[off++]);
        if (static_cast<std::uint8_t>(m.type) <
                static_cast<std::uint8_t>(ManeuverType::kJoinRequest) ||
            static_cast<std::uint8_t>(m.type) >
                static_cast<std::uint8_t>(ManeuverType::kDissolve)) {
            return std::nullopt;
        }
        m.platoon_id = crypto::read_u32(bytes, off);
        m.sender = crypto::read_u32(bytes, off);
        m.subject = crypto::read_u32(bytes, off);
        m.param = crypto::read_f64(bytes, off);
        return m;
    } catch (const std::out_of_range&) {
        return std::nullopt;
    }
}

crypto::Bytes KeyMgmtMsg::encode() const {
    crypto::Bytes out;
    crypto::append_u32(out, kKeyMgmtMagic);
    out.push_back(static_cast<std::uint8_t>(type));
    crypto::append_u32(out, sender);
    crypto::append_u32(out, receiver);
    crypto::append_u64(out, blob.size());
    crypto::append(out, blob);
    return out;
}

std::optional<KeyMgmtMsg> KeyMgmtMsg::decode(crypto::BytesView bytes) {
    try {
        std::size_t off = 0;
        if (crypto::read_u32(bytes, off) != kKeyMgmtMagic) return std::nullopt;
        if (off >= bytes.size()) return std::nullopt;
        KeyMgmtMsg m;
        m.type = static_cast<KeyMgmtType>(bytes[off++]);
        m.sender = crypto::read_u32(bytes, off);
        m.receiver = crypto::read_u32(bytes, off);
        const std::uint64_t len = crypto::read_u64(bytes, off);
        if (off + len > bytes.size()) return std::nullopt;
        m.blob.assign(bytes.begin() + static_cast<std::ptrdiff_t>(off),
                      bytes.begin() + static_cast<std::ptrdiff_t>(off + len));
        return m;
    } catch (const std::out_of_range&) {
        return std::nullopt;
    }
}

}  // namespace platoon::net
