// The wireless network: node registry, CSMA/CA broadcast MAC (802.11p-like),
// SINR-based reception with interference and capture, RF jammers, a VLC
// side-channel and a C-V2X slotted band.
//
// Everything a frame experiences is modelled per receiver: path loss +
// fading (Channel), interference from overlapping transmissions in the same
// band, jammer noise, half-duplex deafness while transmitting, and a
// PER-vs-SINR reception draw. Jamming "fills the frequencies with random
// noise" (paper Section V-B) by raising the interference floor — which both
// corrupts receptions and starves the CSMA medium.
//
// Delivery scale: reception candidates and VLC neighbor lookups run through
// a sorted-by-x SpatialIndex so each fan-out costs O(nodes nearby) instead
// of O(all registered nodes). The index is a stale snapshot; queries widen
// their window by a slack term so the indexed path stays bit-identical to
// the O(all-pairs) reference scan (Params::brute_force_delivery or
// PLATOON_BRUTE_FORCE_NET=1), which tests pin. In-flight Transmissions live
// in a slab arena (stable slots + free list) so the steady-state hot path
// performs no per-frame container growth or deep frame copies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "crypto/secured_message.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"
#include "net/spatial_index.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace platoon::net {

/// What the radio carries: a typed security envelope.
struct Frame {
    MsgType type = MsgType::kBeacon;
    crypto::Envelope envelope;
    Band band = Band::kDsrc;
    /// Oracle label (see GroundTruth): not part of the wire bytes, costs no
    /// airtime, and must never influence delivery or protocol decisions.
    GroundTruth truth;

    [[nodiscard]] std::size_t wire_size() const {
        return envelope.wire_size() + 8;  // MAC/PHY header
    }
};

struct RxInfo {
    double sinr_db = 0.0;
    Band band = Band::kDsrc;
    sim::SimTime rx_time = 0.0;
    sim::NodeId physical_sender;  ///< Ground truth (NOT what crypto claims).
};

struct JammerConfig {
    double position_m = 0.0;
    double power_dbm = 33.0;       ///< Effective radiated power.
    Band band = Band::kDsrc;
    double duty_cycle = 1.0;       ///< 1.0 = continuous.
    bool mobile = false;           ///< Follows position_fn when set.
    std::function<double()> position_fn;
};

struct NetworkStats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped_per = 0;         ///< Lost to SINR/PER draw.
    std::uint64_t dropped_mac = 0;         ///< CSMA gave up (medium busy).
    std::uint64_t dropped_half_duplex = 0; ///< Receiver was transmitting.
    std::uint64_t dropped_range = 0;
    std::uint64_t dropped_fault = 0;       ///< Benign fault process (src/fault).

    /// Delivery ratio over receivers in range. MAC-starved frames count
    /// once each (they reached nobody); under total starvation this goes
    /// to zero even though per-receiver drops were never evaluated.
    [[nodiscard]] double pdr() const {
        const std::uint64_t attempts = delivered + dropped_per +
                                       dropped_half_duplex + dropped_mac +
                                       dropped_fault;
        return attempts == 0
                   ? 1.0
                   : static_cast<double>(delivered) /
                         static_cast<double>(attempts);
    }
};

class Network {
public:
    struct Params {
        ChannelParams channel;
        double vlc_range_m = 30.0;
        double vlc_loss_prob = 0.02;
        double vlc_latency_s = 0.002;
        double slot_time_s = 13e-6;
        int cw_min = 15;
        double aifs_s = 58e-6;
        int max_mac_attempts = 7;
        double max_range_m = 800.0;

        /// Force the O(all-pairs) reference delivery scan instead of the
        /// spatial index. The env var PLATOON_BRUTE_FORCE_NET=1 flips the
        /// same switch at construction time; both paths are pinned
        /// bit-identical by tests/net/test_spatial_delivery.cpp.
        bool brute_force_delivery = false;
        /// Snapshot refresh cadence. Between rebuilds, queries widen their
        /// window by max_node_speed_mps x snapshot age + the safety margin,
        /// so a longer period trades extra candidates for fewer O(n)
        /// position sweeps.
        double spatial_rebuild_period_s = 0.05;
        double max_node_speed_mps = 60.0;
        double spatial_slack_margin_m = 10.0;
    };

    using ReceiveHandler = std::function<void(const Frame&, const RxInfo&)>;
    using PositionFn = std::function<double()>;

    /// Physical capabilities of a node beyond "has an RF radio".
    struct NodeTraits {
        /// Participates in the in-lane visible-light chain (has front/rear
        /// optical transceivers and a vehicle body in the lane). RSUs,
        /// roadside listeners and adjacent-lane attackers do not -- VLC is
        /// directional and lane-bound.
        bool vlc = false;
    };

    Network(sim::Scheduler& scheduler, Params params, std::uint64_t seed);

    /// Registers a node. `position` is sampled lazily whenever propagation
    /// needs it; `on_receive` is invoked for every successfully decoded
    /// frame (broadcast medium: every node in range hears everything).
    void register_node(sim::NodeId id, PositionFn position,
                       ReceiveHandler on_receive);
    void register_node(sim::NodeId id, PositionFn position,
                       ReceiveHandler on_receive, NodeTraits traits);
    void unregister_node(sim::NodeId id);
    [[nodiscard]] bool is_registered(sim::NodeId id) const;

    /// Queues a broadcast through the band's MAC.
    void broadcast(sim::NodeId from, Frame frame);

    /// The two nodes a VLC frame from `from` can reach: nearest
    /// optical-chain node ahead and nearest behind (vehicle bodies block
    /// anything further), within the optical range. Either id may be
    /// invalid. Exact ties resolve to the lower NodeId on both delivery
    /// paths.
    [[nodiscard]] std::pair<sim::NodeId, sim::NodeId> vlc_targets(
        sim::NodeId from);

    /// --- jammers ----------------------------------------------------------
    int add_jammer(JammerConfig config);
    void remove_jammer(int jammer_id);
    [[nodiscard]] std::size_t active_jammers() const { return jammers_.size(); }

    /// --- benign faults ----------------------------------------------------
    /// Loss process installed by fault::Injector: consulted once per
    /// (transmitter, receiver) delivery on the RF bands, after the
    /// half-duplex check and before the SINR/PER draw (VLC is optical and
    /// bypasses it). Returning true drops that delivery and counts it as
    /// dropped_fault. Pass nullptr to uninstall.
    using FaultLossFn = std::function<bool(sim::NodeId from, sim::NodeId to,
                                           Band band, sim::SimTime now)>;
    void set_fault_loss(FaultLossFn fn) { fault_loss_ = std::move(fn); }

    /// --- verification prewarm --------------------------------------------
    /// Hook installed by the scenario layer and invoked once per *signed*
    /// broadcast just before the per-receiver delivery loop (RF bands only;
    /// VLC relays bypass it). It batch-verifies the envelope's receiver-
    /// independent facts into the shared VerdictCache so the fan-out pays
    /// one batched check instead of N individual ones. The named
    /// RandomStream ("network.batchverify") supplies the batch coefficients;
    /// it is drawn from only for signed fan-outs, so unsigned scenarios are
    /// bit-identical with or without the hook. Prewarming affects counters
    /// and cost, never verdicts. Pass nullptr to uninstall.
    using VerifyPrewarmFn =
        std::function<void(const crypto::Envelope&, sim::RandomStream&)>;
    void set_verify_prewarm(VerifyPrewarmFn fn) {
        verify_prewarm_ = std::move(fn);
    }

    /// Contention window for MAC backoff `attempt` (binary exponential,
    /// capped at 2^5 doublings of cw_min+1). The backoff slot count is drawn
    /// uniformly from [0, contention_window(attempt) - 1] -- uniform_int's
    /// upper bound is exclusive, which the MAC-backoff tests pin.
    [[nodiscard]] int contention_window(int attempt) const {
        return (params_.cw_min + 1) << std::min(attempt, 5);
    }

    [[nodiscard]] const NetworkStats& stats() const { return stats_; }
    [[nodiscard]] NetworkStats& mutable_stats() { return stats_; }
    [[nodiscard]] Channel& channel() { return channel_; }
    [[nodiscard]] const Params& params() const { return params_; }
    [[nodiscard]] double node_position(sim::NodeId id) const;
    [[nodiscard]] bool brute_force_delivery() const { return brute_force_; }

private:
    struct Node {
        PositionFn position;
        ReceiveHandler on_receive;
        NodeTraits traits;
        bool transmitting = false;
    };

    struct Transmission {
        sim::NodeId from;
        Frame frame;
        sim::SimTime start;
        sim::SimTime end;
        double tx_position;
    };

    /// Arena slot for an in-flight (or recently finished) Transmission.
    /// Slots are heap-stable: delivery handlers may start new transmissions
    /// (growing the slab) while a reference to the finishing slot's
    /// Transmission is held. The generation guards the finish callback
    /// against slot reuse.
    struct Slot {
        Transmission tx;
        std::uint64_t gen = 0;
        bool live = false;
    };

    void attempt_transmit(sim::NodeId from, Frame frame, int attempt);
    void start_transmission(sim::NodeId from, Frame frame);
    void finish_transmission(std::uint32_t slot, std::uint64_t gen);
    void deliver_vlc(sim::NodeId from, const Frame& frame);
    [[nodiscard]] bool medium_busy(sim::NodeId at, Band band);
    /// Total interference power (mW) at `rx_pos` for `rx` during [start,end],
    /// excluding arena slot `self_slot`.
    double interference_mw(sim::NodeId rx, double rx_pos, Band band,
                           sim::SimTime start, sim::SimTime end,
                           std::optional<std::uint32_t> self_slot);
    double jammer_power_mw(double rx_pos, Band band, sim::NodeId rx,
                           sim::SimTime t);
    void prune_finished(sim::SimTime now);
    [[nodiscard]] std::uint32_t allocate_slot();
    /// Rebuilds the spatial snapshot when the registry changed or the
    /// snapshot aged past spatial_rebuild_period_s.
    void ensure_index();
    /// Window widening that covers node movement since the snapshot.
    [[nodiscard]] double index_slack(sim::SimTime now) const;

    sim::Scheduler& scheduler_;
    Params params_;
    Channel channel_;
    sim::RandomStream rng_;
    sim::RandomStream batch_rng_;  ///< Coefficients for batch verification.
    std::unordered_map<sim::NodeId, Node> nodes_;
    /// Transmission arena: stable slots + LIFO free list. active_slots_
    /// holds live slots in insertion order -- interference sums iterate it,
    /// so the float summation order matches the old growing-vector path.
    std::vector<std::unique_ptr<Slot>> slab_;
    std::vector<std::uint32_t> free_slots_;
    std::vector<std::uint32_t> active_slots_;  // includes recently finished
    SpatialIndex index_;
    bool index_dirty_ = true;
    bool brute_force_ = false;
    std::unordered_map<int, JammerConfig> jammers_;
    int next_jammer_id_ = 1;
    FaultLossFn fault_loss_;
    VerifyPrewarmFn verify_prewarm_;
    NetworkStats stats_;
};

}  // namespace platoon::net
