#include "net/spatial_index.hpp"

#include <algorithm>

namespace platoon::net {

void SpatialIndex::rebuild(std::vector<Entry> entries, sim::SimTime at) {
    entries_ = std::move(entries);
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) {
                  if (a.x != b.x) return a.x < b.x;
                  return a.id < b.id;
              });
    built_at_ = at;
}

void SpatialIndex::collect(double lo, double hi,
                           std::vector<Entry>& out) const {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), lo,
        [](const Entry& e, double bound) { return e.x < bound; });
    for (; it != entries_.end() && it->x <= hi; ++it) out.push_back(*it);
}

void SpatialIndex::collect_vlc(double lo, double hi,
                               std::vector<Entry>& out) const {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), lo,
        [](const Entry& e, double bound) { return e.x < bound; });
    for (; it != entries_.end() && it->x <= hi; ++it) {
        if (it->vlc) out.push_back(*it);
    }
}

}  // namespace platoon::net
