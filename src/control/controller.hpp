// Longitudinal controllers for platooning, following Plexe's catalogue:
//
//  - SpeedController: leader cruise control tracking a desired speed.
//  - AccController: constant time-gap Adaptive Cruise Control (radar only;
//    the degraded/fallback mode and the non-cooperative baseline).
//  - PathCaccController: the PATH/Rajamani constant-spacing CACC that Plexe
//    ships as its default -- consumes predecessor AND leader beacons.
//  - PloegCaccController: Ploeg et al.'s time-gap CACC with acceleration
//    feedforward from the predecessor beacon.
//
// Controllers are pure: they map ControlInputs to a commanded acceleration.
// What data reaches them (radar vs beacons, fresh vs stale vs forged) is the
// attack surface this repository studies, so the inputs carry explicit
// freshness and availability.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "sim/types.hpp"

namespace platoon::control {

/// Data a vehicle knows about another platoon vehicle (from its beacons).
struct PeerState {
    double position_m = 0.0;   ///< Front-bumper position (claimed).
    double speed_mps = 0.0;
    double accel_mps2 = 0.0;
    double length_m = 4.0;
    sim::SimTime received_at = -1.0;  ///< When the beacon arrived.

    [[nodiscard]] double age(sim::SimTime now) const {
        return now - received_at;
    }
};

struct ControlInputs {
    sim::SimTime now = 0.0;
    double own_position_m = 0.0;  ///< From GPS (spoofable!).
    double own_speed_mps = 0.0;
    double own_accel_mps2 = 0.0;
    double desired_speed_mps = 25.0;           ///< Leader target.
    std::optional<double> radar_gap_m;         ///< Bumper-to-bumper.
    std::optional<double> radar_closing_mps;   ///< Positive = approaching.
    std::optional<PeerState> predecessor;      ///< From beacons.
    std::optional<PeerState> leader;           ///< From beacons.
};

class LongitudinalController {
public:
    virtual ~LongitudinalController() = default;

    /// Commanded acceleration (m/s^2), clamped by the vehicle afterwards.
    virtual double compute(const ControlInputs& in, double dt) = 0;

    /// Human-readable controller name (for traces / reports).
    [[nodiscard]] virtual std::string name() const = 0;

    /// Resets internal state (used when switching controllers).
    virtual void reset() {}
};

/// Leader cruise control: proportional speed tracking.
class SpeedController final : public LongitudinalController {
public:
    explicit SpeedController(double gain = 0.8) : gain_(gain) {}
    double compute(const ControlInputs& in, double dt) override;
    [[nodiscard]] std::string name() const override { return "speed"; }

private:
    double gain_;
};

struct AccParams {
    double time_gap_s = 1.2;
    double lambda = 0.1;
    double min_gap_m = 2.0;
    double free_flow_gain = 0.8;  ///< Speed tracking when no target ahead.
};

/// Constant time-gap ACC (Rajamani ch. 6): u = -(1/h)(edot + lambda e).
class AccController final : public LongitudinalController {
public:
    explicit AccController(AccParams params = {}) : params_(params) {}
    double compute(const ControlInputs& in, double dt) override;
    [[nodiscard]] std::string name() const override { return "acc"; }
    [[nodiscard]] const AccParams& params() const { return params_; }

private:
    AccParams params_;
};

struct PathCaccParams {
    double spacing_m = 5.0;   ///< Constant bumper-to-bumper gap.
    double c1 = 0.5;          ///< Leader weighting.
    double xi = 1.0;          ///< Damping.
    double omega_n = 0.2;     ///< Bandwidth (rad/s).
};

/// PATH constant-spacing CACC (Plexe default). Needs predecessor gap (radar
/// preferred, beacon fallback), predecessor speed/accel and leader
/// speed/accel from beacons.
class PathCaccController final : public LongitudinalController {
public:
    explicit PathCaccController(PathCaccParams params = {})
        : params_(params) {}
    double compute(const ControlInputs& in, double dt) override;
    [[nodiscard]] std::string name() const override { return "cacc-path"; }
    [[nodiscard]] const PathCaccParams& params() const { return params_; }
    /// Runtime spacing override (gap-open maneuvers and attacks change it).
    void set_spacing(double spacing_m) { params_.spacing_m = spacing_m; }
    [[nodiscard]] double spacing() const { return params_.spacing_m; }

private:
    PathCaccParams params_;
};

struct PloegParams {
    /// Must exceed ~2x the vehicle actuation lag for string stability
    /// (Ploeg et al. 2011); trucks here have tau = 0.5 s. kd is raised
    /// above Ploeg's 0.7 because beacons carry *realised* (lagged)
    /// acceleration rather than the commanded value the original protocol
    /// feeds forward; the extra damping restores the stability margin.
    double time_gap_s = 1.1;
    double standstill_m = 2.0;
    double kp = 0.2;
    double kd = 1.2;
};

/// Ploeg et al. CACC: time-gap policy with feedforward of the predecessor's
/// acceleration through a first-order filter (internal controller state).
class PloegCaccController final : public LongitudinalController {
public:
    explicit PloegCaccController(PloegParams params = {}) : params_(params) {}
    double compute(const ControlInputs& in, double dt) override;
    [[nodiscard]] std::string name() const override { return "cacc-ploeg"; }
    void reset() override { u_state_ = 0.0; }

private:
    PloegParams params_;
    double u_state_ = 0.0;
};

enum class ControllerType { kSpeed, kAcc, kCaccPath, kCaccPloeg };

[[nodiscard]] const char* to_string(ControllerType t);
[[nodiscard]] std::unique_ptr<LongitudinalController> make_controller(
    ControllerType type);

}  // namespace platoon::control
