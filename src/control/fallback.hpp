// Controller degradation policy.
//
// CACC is only safe while cooperation data is fresh; when beacons stop
// arriving (jamming, DoS at the MAC, leader gone) the vehicle must degrade:
//
//   CACC (beacons fresh)  ->  ACC on radar (beacons stale, radar alive)
//                         ->  open-loop gap widening (nothing trustworthy)
//
// This is the behaviour Plexe implements and the paper's jamming discussion
// assumes ("platoon disbands", Section V-B): degradation to ACC stretches
// the gaps from 5 m to a time-gap policy, destroying the platooning gains
// but preserving safety.
#pragma once

#include <memory>

#include "control/controller.hpp"

namespace platoon::control {

enum class ControlMode : std::uint8_t {
    kCacc = 0,      ///< Full cooperation.
    kAccFallback,   ///< Beacons stale; radar-based ACC.
    kCoast,         ///< No beacons, no radar: gentle deceleration.
    kLeader,        ///< This vehicle leads (speed control).
};

[[nodiscard]] const char* to_string(ControlMode m);

struct FallbackPolicy {
    sim::SimTime beacon_timeout_s = 0.5;  ///< Staleness bound for CACC.
    double coast_decel_mps2 = -1.0;
};

/// Wraps a CACC controller with the degradation ladder. Tracks how much
/// time was spent in each mode (a key platoon-availability metric).
class ControllerStack {
public:
    ControllerStack(std::unique_ptr<LongitudinalController> cacc,
                    FallbackPolicy policy = {});

    /// Computes the command, choosing the mode from input freshness.
    double compute(const ControlInputs& in, double dt);

    [[nodiscard]] ControlMode mode() const { return mode_; }
    [[nodiscard]] double time_in_mode(ControlMode m) const;
    [[nodiscard]] double cacc_availability() const;
    [[nodiscard]] LongitudinalController& cacc() { return *cacc_; }
    [[nodiscard]] AccController& acc() { return acc_; }

    /// Forces ACC fallback regardless of freshness (used by defenses when
    /// beacons are detected as untrustworthy, e.g. VPD-ADA mitigation).
    void quarantine_beacons(bool on) { quarantine_ = on; }
    [[nodiscard]] bool quarantined() const { return quarantine_; }

private:
    std::unique_ptr<LongitudinalController> cacc_;
    AccController acc_;
    FallbackPolicy policy_;
    ControlMode mode_ = ControlMode::kCacc;
    bool quarantine_ = false;
    double mode_time_[4] = {0, 0, 0, 0};
};

}  // namespace platoon::control
