#include "control/controller.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"

namespace platoon::control {

double SpeedController::compute(const ControlInputs& in, double /*dt*/) {
    return gain_ * (in.desired_speed_mps - in.own_speed_mps);
}

double AccController::compute(const ControlInputs& in, double /*dt*/) {
    // Gap source preference: radar; beacon-derived as fallback.
    std::optional<double> gap = in.radar_gap_m;
    std::optional<double> closing = in.radar_closing_mps;
    if (!gap && in.predecessor) {
        gap = in.predecessor->position_m - in.predecessor->length_m -
              in.own_position_m;
        closing = in.own_speed_mps - in.predecessor->speed_mps;
    }
    if (!gap) {
        // Free flow: behave like cruise control.
        return params_.free_flow_gain *
               (in.desired_speed_mps - in.own_speed_mps);
    }
    // Spacing error: e = -(gap) + min_gap + h*v  (positive = too close).
    const double e =
        params_.min_gap_m + params_.time_gap_s * in.own_speed_mps - *gap;
    const double edot = closing.value_or(0.0);
    const double u = -(edot + params_.lambda * e) / params_.time_gap_s;
    // Never accelerate past what cruise control would command (standard
    // ACC arbitration: the more conservative of gap and speed control).
    const double cruise =
        params_.free_flow_gain * (in.desired_speed_mps - in.own_speed_mps);
    return std::min(u, cruise);
}

double PathCaccController::compute(const ControlInputs& in, double /*dt*/) {
    if (!in.predecessor || !in.leader) {
        // CACC cannot run without cooperation data; the caller's degradation
        // policy should not reach this branch, but fail safe (coast).
        return 0.0;
    }
    const PeerState& pred = *in.predecessor;
    const PeerState& lead = *in.leader;

    // Gap: radar when available, else beacon positions.
    const double gap = in.radar_gap_m
                           ? *in.radar_gap_m
                           : pred.position_m - pred.length_m -
                                 in.own_position_m;

    const double xi = params_.xi;
    const double wn = params_.omega_n;
    const double c1 = params_.c1;
    const double root = std::sqrt(std::max(0.0, xi * xi - 1.0));
    const double alpha1 = 1.0 - c1;
    const double alpha2 = c1;
    const double alpha3 = -(2.0 * xi - c1 * (xi + root)) * wn;
    const double alpha4 = -(xi + root) * wn * c1;
    const double alpha5 = -wn * wn;

    // e = desired_spacing - gap  (positive = too close).
    const double e = params_.spacing_m - gap;
    // Gap-closing mode (Plexe's FAKED_CACC): the linear constant-spacing
    // law is a small-perturbation tracker; far behind the slot it would
    // close a large deficit at ~omega_n^2 pace. Catch up by speed instead.
    if (-e > 10.0) {
        const double target_speed =
            pred.speed_mps + std::min(5.0, -e * 0.08);
        return 0.8 * (target_speed - in.own_speed_mps);
    }
    const double edot = in.radar_closing_mps
                            ? *in.radar_closing_mps
                            : in.own_speed_mps - pred.speed_mps;

    return alpha1 * pred.accel_mps2 + alpha2 * lead.accel_mps2 +
           alpha3 * edot + alpha4 * (in.own_speed_mps - lead.speed_mps) +
           alpha5 * e;
}

double PloegCaccController::compute(const ControlInputs& in, double dt) {
    if (!in.predecessor) return 0.0;
    const PeerState& pred = *in.predecessor;
    const double gap = in.radar_gap_m
                           ? *in.radar_gap_m
                           : pred.position_m - pred.length_m -
                                 in.own_position_m;

    // Spacing error (positive = too far): e = gap - (r + h*v).
    const double e =
        gap - (params_.standstill_m + params_.time_gap_s * in.own_speed_mps);
    const double edot = (pred.speed_mps - in.own_speed_mps) -
                        params_.time_gap_s * in.own_accel_mps2;

    // u' = (-u + kp*e + kd*edot + u_{i-1}) / h  (first-order feedforward).
    const double du = (-u_state_ + params_.kp * e + params_.kd * edot +
                       pred.accel_mps2) /
                      params_.time_gap_s;
    u_state_ += du * dt;
    u_state_ = std::clamp(u_state_, -8.0, 4.0);
    return u_state_;
}

const char* to_string(ControllerType t) {
    switch (t) {
        case ControllerType::kSpeed: return "speed";
        case ControllerType::kAcc: return "acc";
        case ControllerType::kCaccPath: return "cacc-path";
        case ControllerType::kCaccPloeg: return "cacc-ploeg";
    }
    return "?";
}

std::unique_ptr<LongitudinalController> make_controller(ControllerType type) {
    switch (type) {
        case ControllerType::kSpeed: return std::make_unique<SpeedController>();
        case ControllerType::kAcc: return std::make_unique<AccController>();
        case ControllerType::kCaccPath:
            return std::make_unique<PathCaccController>();
        case ControllerType::kCaccPloeg:
            return std::make_unique<PloegCaccController>();
    }
    PLATOON_ASSERT(false);
    return nullptr;
}

}  // namespace platoon::control
