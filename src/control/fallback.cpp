#include "control/fallback.hpp"

#include "sim/assert.hpp"

namespace platoon::control {

const char* to_string(ControlMode m) {
    switch (m) {
        case ControlMode::kCacc: return "cacc";
        case ControlMode::kAccFallback: return "acc-fallback";
        case ControlMode::kCoast: return "coast";
        case ControlMode::kLeader: return "leader";
    }
    return "?";
}

ControllerStack::ControllerStack(
    std::unique_ptr<LongitudinalController> cacc, FallbackPolicy policy)
    : cacc_(std::move(cacc)), policy_(policy) {
    PLATOON_EXPECTS(cacc_ != nullptr);
}

double ControllerStack::compute(const ControlInputs& in, double dt) {
    const bool beacons_fresh =
        !quarantine_ && in.predecessor &&
        in.predecessor->age(in.now) <= policy_.beacon_timeout_s && in.leader &&
        in.leader->age(in.now) <= policy_.beacon_timeout_s;

    ControlMode next;
    if (beacons_fresh) {
        next = ControlMode::kCacc;
    } else if (in.radar_gap_m.has_value()) {
        next = ControlMode::kAccFallback;
    } else {
        next = ControlMode::kCoast;
    }
    if (next != mode_) {
        mode_ = next;
        if (mode_ == ControlMode::kCacc) cacc_->reset();
    }
    mode_time_[static_cast<int>(mode_)] += dt;

    switch (mode_) {
        case ControlMode::kCacc:
            return cacc_->compute(in, dt);
        case ControlMode::kAccFallback: {
            // Strip cooperative data so ACC runs on radar alone.
            ControlInputs radar_only = in;
            radar_only.predecessor.reset();
            radar_only.leader.reset();
            return acc_.compute(radar_only, dt);
        }
        case ControlMode::kCoast:
            return policy_.coast_decel_mps2;
        case ControlMode::kLeader:
            break;
    }
    PLATOON_ASSERT(false);
    return 0.0;
}

double ControllerStack::time_in_mode(ControlMode m) const {
    return mode_time_[static_cast<int>(m)];
}

double ControllerStack::cacc_availability() const {
    const double total = mode_time_[0] + mode_time_[1] + mode_time_[2];
    return total <= 0.0 ? 1.0 : mode_time_[0] / total;
}

}  // namespace platoon::control
