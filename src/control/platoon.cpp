#include "control/platoon.hpp"

#include <algorithm>

#include "sim/assert.hpp"

namespace platoon::control {

const char* to_string(Role r) {
    switch (r) {
        case Role::kLeader: return "leader";
        case Role::kMember: return "member";
        case Role::kJoiner: return "joiner";
        case Role::kFree: return "free";
    }
    return "?";
}

bool Membership::contains(sim::NodeId id) const {
    return std::find(order_.begin(), order_.end(), id) != order_.end();
}

std::optional<std::size_t> Membership::index_of(sim::NodeId id) const {
    const auto it = std::find(order_.begin(), order_.end(), id);
    if (it == order_.end()) return std::nullopt;
    return static_cast<std::size_t>(it - order_.begin());
}

std::optional<sim::NodeId> Membership::predecessor_of(sim::NodeId id) const {
    const auto idx = index_of(id);
    if (!idx || *idx == 0) return std::nullopt;
    return order_[*idx - 1];
}

void Membership::append(sim::NodeId id) {
    PLATOON_EXPECTS(!contains(id));
    order_.push_back(id);
}

void Membership::remove(sim::NodeId id) {
    PLATOON_EXPECTS(id != leader_);
    std::erase(order_, id);
}

AdmissionControl::AdmissionControl() : AdmissionControl(Params{}) {}

AdmissionControl::Decision AdmissionControl::on_join_request(
    sim::NodeId joiner, std::size_t member_count, sim::SimTime now) {
    expire(now);

    if (params_.per_id_min_interval_s > 0.0) {
        const auto it = std::find_if(
            last_request_.begin(), last_request_.end(),
            [joiner](const auto& entry) { return entry.first == joiner; });
        if (it != last_request_.end() &&
            now - it->second < params_.per_id_min_interval_s) {
            return Decision::kDenyRateLimited;
        }
        if (it != last_request_.end()) {
            it->second = now;
        } else {
            last_request_.emplace_back(joiner, now);
        }
    }

    // Already pending? Refresh, accept idempotently.
    for (auto& p : pending_) {
        if (p.joiner == joiner) {
            p.since = now;
            return Decision::kAccept;
        }
    }
    if (member_count + pending_.size() >= params_.max_members)
        return Decision::kDenyFull;
    if (pending_.size() >= params_.max_pending)
        return Decision::kDenyPending;
    pending_.push_back(Pending{joiner, now});
    return Decision::kAccept;
}

void AdmissionControl::on_join_resolved(sim::NodeId joiner) {
    std::erase_if(pending_,
                  [joiner](const Pending& p) { return p.joiner == joiner; });
}

std::size_t AdmissionControl::expire(sim::SimTime now) {
    const std::size_t before = pending_.size();
    std::erase_if(pending_, [&](const Pending& p) {
        return now - p.since > params_.pending_timeout_s;
    });
    return before - pending_.size();
}

JoinerFsm::JoinerFsm() : JoinerFsm(Params{}) {}

bool JoinerFsm::on_request_sent(sim::SimTime now) {
    if (state_ != State::kIdle && state_ != State::kRequested) return false;
    state_ = State::kRequested;
    requested_at_ = now;
    ++attempts_;
    return true;
}

bool JoinerFsm::on_accept(sim::SimTime /*now*/) {
    if (state_ != State::kRequested) return false;
    state_ = State::kApproach;
    return true;
}

bool JoinerFsm::on_deny() {
    if (state_ != State::kRequested) return false;
    state_ = State::kDenied;
    return true;
}

bool JoinerFsm::on_progress(double gap_error_m, double speed_error_mps) {
    if (state_ != State::kApproach) return false;
    if (std::abs(gap_error_m) <= params_.engage_gap_error_m &&
        std::abs(speed_error_mps) <= params_.engage_speed_error_mps) {
        state_ = State::kJoined;
        return true;
    }
    return false;
}

bool JoinerFsm::on_timeout(sim::SimTime now) {
    if (state_ != State::kRequested) return false;
    if (now - requested_at_ < params_.request_timeout_s) return false;
    state_ = State::kIdle;  // caller may retry
    return true;
}

const char* to_string(JoinerFsm::State s) {
    switch (s) {
        case JoinerFsm::State::kIdle: return "idle";
        case JoinerFsm::State::kRequested: return "requested";
        case JoinerFsm::State::kApproach: return "approach";
        case JoinerFsm::State::kJoined: return "joined";
        case JoinerFsm::State::kDenied: return "denied";
    }
    return "?";
}

}  // namespace platoon::control
