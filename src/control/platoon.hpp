// Platoon membership bookkeeping and the maneuver protocol state machines.
//
// The leader owns the authoritative member list; members track their platoon
// id, index and spacing target; joiners run a request/approach/complete FSM
// (the VENTOS-style join-at-tail protocol the paper's "fake maneuver"
// attacks target, Section V-A.3). The classes here are pure protocol logic:
// message I/O and timers are wired up by core::PlatoonVehicle.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/message.hpp"
#include "sim/types.hpp"

namespace platoon::control {

enum class Role : std::uint8_t { kLeader, kMember, kJoiner, kFree };
[[nodiscard]] const char* to_string(Role r);

/// Leader-side membership registry.
class Membership {
public:
    explicit Membership(std::uint32_t platoon_id, sim::NodeId leader)
        : platoon_id_(platoon_id), leader_(leader) {
        order_.push_back(leader);
    }

    [[nodiscard]] std::uint32_t platoon_id() const { return platoon_id_; }
    [[nodiscard]] sim::NodeId leader() const { return leader_; }
    [[nodiscard]] std::size_t size() const { return order_.size(); }
    [[nodiscard]] const std::vector<sim::NodeId>& order() const {
        return order_;
    }
    [[nodiscard]] bool contains(sim::NodeId id) const;
    /// Index in the platoon (0 = leader); nullopt if not a member.
    [[nodiscard]] std::optional<std::size_t> index_of(sim::NodeId id) const;
    [[nodiscard]] std::optional<sim::NodeId> predecessor_of(
        sim::NodeId id) const;
    [[nodiscard]] sim::NodeId tail() const { return order_.back(); }

    void append(sim::NodeId id);
    void remove(sim::NodeId id);

private:
    std::uint32_t platoon_id_;
    sim::NodeId leader_;
    std::vector<sim::NodeId> order_;
};

/// Leader-side admission control for join requests (the DoS target:
/// a bounded pending-join table, paper Section V-D).
class AdmissionControl {
public:
    struct Params {
        std::size_t max_members = 10;
        std::size_t max_pending = 3;
        sim::SimTime pending_timeout_s = 15.0;
        /// Minimum interval between join requests from one id (rate limit;
        /// part of the DoS defense when enabled).
        sim::SimTime per_id_min_interval_s = 0.0;
    };

    AdmissionControl();
    explicit AdmissionControl(Params params) : params_(params) {}

    enum class Decision { kAccept, kDenyFull, kDenyPending, kDenyRateLimited };

    /// Decides on a join request arriving at `now` from `joiner` given the
    /// current member count.
    Decision on_join_request(sim::NodeId joiner, std::size_t member_count,
                             sim::SimTime now);

    /// The joiner completed (or abandoned): frees its pending slot.
    void on_join_resolved(sim::NodeId joiner);

    /// Expires stale pending entries; returns how many were dropped.
    std::size_t expire(sim::SimTime now);

    [[nodiscard]] std::size_t pending() const { return pending_.size(); }
    [[nodiscard]] const Params& params() const { return params_; }
    void set_rate_limit(sim::SimTime min_interval) {
        params_.per_id_min_interval_s = min_interval;
    }

private:
    struct Pending {
        sim::NodeId joiner;
        sim::SimTime since;
    };
    Params params_;
    std::vector<Pending> pending_;
    std::vector<std::pair<sim::NodeId, sim::SimTime>> last_request_;
};

/// Joiner-side FSM for the join-at-tail maneuver.
class JoinerFsm {
public:
    enum class State : std::uint8_t {
        kIdle,
        kRequested,   ///< JoinRequest sent, awaiting accept.
        kApproach,    ///< Accepted: closing on the tail under ACC.
        kJoined,      ///< CACC engaged, leader notified.
        kDenied,
    };

    struct Params {
        sim::SimTime request_timeout_s = 5.0;
        /// Gap error to hand over to CACC; generous, because CACC closes the
        /// remaining distance smoothly while the approach ACC would park at
        /// its own (much wider) equilibrium.
        double engage_gap_error_m = 10.0;
        double engage_speed_error_mps = 2.0;
    };

    JoinerFsm();
    explicit JoinerFsm(Params params) : params_(params) {}

    [[nodiscard]] State state() const { return state_; }
    [[nodiscard]] sim::SimTime requested_at() const { return requested_at_; }
    [[nodiscard]] int attempts() const { return attempts_; }

    /// Events. Each returns true when the event caused a transition.
    bool on_request_sent(sim::SimTime now);
    bool on_accept(sim::SimTime now);
    bool on_deny();
    /// Checks gap/speed error against the engage thresholds.
    bool on_progress(double gap_error_m, double speed_error_mps);
    bool on_timeout(sim::SimTime now);
    void reset() { state_ = State::kIdle; }

private:
    Params params_;
    State state_ = State::kIdle;
    sim::SimTime requested_at_ = -1.0;
    int attempts_ = 0;
};

[[nodiscard]] const char* to_string(JoinerFsm::State s);

}  // namespace platoon::control
