#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/assert.hpp"

namespace platoon::core {

void Table::add_row(std::vector<std::string> cells) {
    PLATOON_EXPECTS(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
    char buf[64];
    if (std::abs(v) >= 10000.0 && std::abs(v - std::round(v)) < 1e-9) {
        std::snprintf(buf, sizeof buf, "%.0f", v);
    } else {
        std::snprintf(buf, sizeof buf, "%.*g", precision + 2, v);
    }
    return buf;
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    const auto rule = [&] {
        os << '+';
        for (const std::size_t w : widths) {
            for (std::size_t i = 0; i < w + 2; ++i) os << '-';
            os << '+';
        }
        os << '\n';
    };
    const auto line = [&](const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << cells[c];
            for (std::size_t i = cells[c].size(); i < widths[c] + 1; ++i)
                os << ' ';
            os << '|';
        }
        os << '\n';
    };

    rule();
    line(headers_);
    rule();
    for (const auto& row : rows_) line(row);
    rule();
}

void Table::print_csv(std::ostream& os) const {
    const auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0) os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
}

void print_banner(std::ostream& os, const std::string& title) {
    os << '\n' << "=== " << title << " ===" << '\n';
}

}  // namespace platoon::core
