#include "core/scenario.hpp"

#include <algorithm>

#include "crypto/fading_key_agreement.hpp"
#include "sim/assert.hpp"
#include "sim/logging.hpp"

namespace platoon::core {

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)),
      network_(std::make_unique<net::Network>(scheduler_, config_.network,
                                              config_.seed)),
      metrics_(config_.metrics),
      scenario_rng_(config_.seed, "scenario") {
    PLATOON_EXPECTS(config_.platoon_size >= 2);

    crypto::Bytes ta_seed;
    crypto::append_u64(ta_seed, config_.seed);
    crypto::append(ta_seed, crypto::to_bytes("trusted-authority"));
    authority_ = std::make_unique<rsu::TrustedAuthority>(
        crypto::BytesView(ta_seed));

    // Shared verification fast path: one fact cache for every receiver in
    // this scenario (per-scenario state keeps parallel seed sweeps
    // bit-identical), plus a network-level prewarm hook that batch-verifies
    // signed fan-outs into it before delivery.
    if (config_.share_verify_verdicts) {
        verdict_cache_ = std::make_unique<crypto::VerdictCache>();
        network_->set_verify_prewarm(
            [cache = verdict_cache_.get(),
             ca_pub = authority_->public_key()](
                const crypto::Envelope& envelope, sim::RandomStream& rng) {
                crypto::prewarm_signature_verdicts(
                    envelope, crypto::BytesView(ca_pub), *cache,
                    [&rng] { return rng.bits(); });
            });
    }

    // Group key (generated lazily but deterministically).
    if (config_.security.auth_mode == crypto::AuthMode::kGroupMac ||
        config_.security.encrypt_payloads) {
        group_key_.resize(32);
        for (auto& b : group_key_)
            b = static_cast<std::uint8_t>(scenario_rng_.bits());
    }

    // --- platoon -----------------------------------------------------------
    const double length = phys::truck_params().length_m;
    std::vector<const PlatoonVehicle*> watched;
    for (std::size_t i = 0; i < config_.platoon_size; ++i) {
        VehicleConfig vc;
        vc.id = platoon_node(i);
        vc.role = i == 0 ? control::Role::kLeader : control::Role::kMember;
        vc.platoon_id = platoon_id();
        vc.leader_hint = platoon_node(0);
        vc.initial_state.position_m =
            config_.leader_start_m -
            static_cast<double>(i) * (config_.initial_gap_m + length);
        vc.initial_state.speed_mps = config_.initial_speed_mps;
        vc.cacc_type = config_.controller;
        vc.desired_speed_mps = config_.initial_speed_mps;
        vc.control_period_s = config_.control_period_s;
        vc.beacon_period_s = config_.beacon_period_s;
        vc.security = config_.security;
        vc.admission = config_.admission;
        if (!rsus_.empty()) vc.rsu_hint = rsus_.front()->id();

        auto vehicle = std::make_unique<PlatoonVehicle>(vc, scheduler_,
                                                        *network_, config_.seed);
        provision(*vehicle, vc.security);
        install_radar_resolver(*vehicle);
        vehicles_.push_back(std::move(vehicle));
    }

    if (config_.security.auth_mode == crypto::AuthMode::kGroupMac &&
        config_.security.key_establishment ==
            security::KeyEstablishment::kFadingChannel) {
        establish_pairwise_keys();
    }

    // --- extra corridor platoons -------------------------------------------
    // Built after the primary platoon and its key establishment so a config
    // with no extra_platoons consumes randomness in exactly the historical
    // order (bit-identical to the single-platoon codebase).
    platoon_spans_.emplace_back(0, config_.platoon_size);
    build_extra_platoons();
    // Corridor scale makes the peer table hold every node in radio range;
    // switch topology derivation onto the same-platoon peer index. Gated on
    // the corridor so single-platoon scenarios keep the exact legacy scan.
    if (!config_.extra_platoons.empty())
        for (auto& vehicle : vehicles_) vehicle->enable_peer_index();

    // --- RSUs ----------------------------------------------------------------
    for (std::size_t i = 0; i < config_.rsu_count; ++i) {
        const sim::NodeId rsu_id{1000u + static_cast<std::uint32_t>(i)};
        rsu::RsuNode::Params rp;
        // RSUs line the road ahead of the platoon's starting point so the
        // convoy drives through their coverage during the run.
        rp.position_m = config_.leader_start_m + 200.0 +
                        static_cast<double>(i) * config_.rsu_spacing_m;
        rp.require_signatures = config_.rsus_require_signatures;
        auto node = std::make_unique<rsu::RsuNode>(rsu_id, rp, scheduler_,
                                                   *network_, *authority_);
        node->set_credential(
            authority_->enroll(rsu_id, scheduler_.now()).long_term);
        node->set_verdict_cache(verdict_cache_.get());
        if (!group_key_.empty()) node->set_group_key(group_key_);
        node->start();
        rsus_.push_back(std::move(node));
    }
    // Vehicles report to the first RSU when present (hint set post hoc is
    // not possible through config; reports are broadcast anyway).

    // The pre-formed platoon is already admitted: seed the leader's
    // membership with every initial member.
    if (auto* membership = vehicles_.front()->membership()) {
        for (std::size_t i = 1; i < config_.platoon_size; ++i)
            membership->append(platoon_node(i));
    }

    // --- start everything ----------------------------------------------------
    // Metrics watch the primary platoon only: golden Table II/III numbers
    // stay comparable across corridor densities, and the extra platoons act
    // as channel load + maneuver traffic, not as scored subjects.
    for (std::size_t i = 0; i < vehicles_.size(); ++i) {
        vehicles_[i]->start();
        if (i < config_.platoon_size) watched.push_back(vehicles_[i].get());
    }
    metrics_.watch(std::move(watched));

    // --- benign faults -------------------------------------------------------
    // Built after the vehicles exist (hooks capture stable pointers; the
    // vehicles_ vector only grows and owns by unique_ptr). An empty plan
    // skips construction entirely, so fault-free scenarios are bit-identical
    // to the pre-fault codebase.
    if (!config_.faults.empty()) {
        std::vector<fault::VehicleHooks> hooks;
        hooks.reserve(config_.platoon_size);
        for (std::size_t i = 0; i < config_.platoon_size; ++i) {
            PlatoonVehicle* v = vehicles_[i].get();
            fault::VehicleHooks h;
            h.set_comms_down = [v](bool down) { v->set_comms_down(down); };
            h.set_sensor_dropout = [v](bool on) { v->set_sensor_dropout(on); };
            h.set_clock_skew = [v](sim::SimTime anchor, double offset,
                                   double rate) {
                v->set_clock_skew(anchor, offset, rate);
            };
            hooks.push_back(std::move(h));
        }
        fault_injector_ = std::make_unique<fault::Injector>(
            scheduler_, *network_, config_.faults, std::move(hooks),
            config_.seed);
    }

    // Leader speed profile.
    for (const SpeedStep& step : config_.speed_profile) {
        PlatoonVehicle* leader = vehicles_.front().get();
        scheduler_.schedule_at(step.at, [leader, speed = step.speed_mps] {
            leader->set_desired_speed(speed);
        });
    }

    // Corridor events (merge / split / cut-in / RSU handoff).
    for (const CorridorEvent& event : config_.corridor) {
        PLATOON_EXPECTS(event.platoon < platoon_spans_.size());
        if (event.kind == CorridorEvent::Kind::kSplit ||
            event.kind == CorridorEvent::Kind::kCutIn) {
            PLATOON_EXPECTS(event.index < platoon_spans_[event.platoon].second);
        }
        scheduler_.schedule_at(
            event.at, [this, event] { apply_corridor_event(event); });
    }

    // Metrics sampling.
    scheduler_.schedule_every(config_.metrics.sample_period_s,
                              config_.metrics.sample_period_s,
                              [this] { metrics_.sample(scheduler_.now()); });
}

void Scenario::build_extra_platoons() {
    const double length = phys::truck_params().length_m;
    for (std::size_t p = 0; p < config_.extra_platoons.size(); ++p) {
        const PlatoonSpec& spec = config_.extra_platoons[p];
        PLATOON_EXPECTS(spec.size >= 2 && spec.size < 100);
        const std::size_t platoon = p + 1;
        const std::uint32_t pid =
            platoon_id() + static_cast<std::uint32_t>(platoon);
        const double speed = config_.initial_speed_mps + spec.speed_delta_mps;
        platoon_spans_.emplace_back(vehicles_.size(), spec.size);

        for (std::size_t i = 0; i < spec.size; ++i) {
            VehicleConfig vc;
            vc.id = corridor_node(platoon, i);
            vc.role = i == 0 ? control::Role::kLeader : control::Role::kMember;
            vc.platoon_id = pid;
            vc.leader_hint = corridor_node(platoon, 0);
            vc.lane = spec.lane;
            vc.initial_state.position_m =
                config_.leader_start_m + spec.start_offset_m -
                static_cast<double>(i) * (config_.initial_gap_m + length);
            vc.initial_state.speed_mps = speed;
            vc.cacc_type = config_.controller;
            vc.desired_speed_mps = speed;
            vc.control_period_s = config_.control_period_s;
            vc.beacon_period_s = config_.beacon_period_s;
            vc.security = config_.security;
            vc.admission = config_.admission;

            auto vehicle = std::make_unique<PlatoonVehicle>(
                vc, scheduler_, *network_, config_.seed);
            provision(*vehicle, vc.security);
            // Fading-channel key agreement is modelled for the primary
            // platoon only; extra platoons are assumed to have completed
            // theirs before the simulated window (no probe randomness).
            if (!group_key_.empty()) vehicle->provision_group_key(group_key_);
            install_radar_resolver(*vehicle);
            vehicles_.push_back(std::move(vehicle));
        }

        const std::size_t base = platoon_spans_.back().first;
        if (auto* membership = vehicles_[base]->membership()) {
            for (std::size_t i = 1; i < spec.size; ++i)
                membership->append(corridor_node(platoon, i));
        }

        // The extra leader follows the same disturbance profile, shifted by
        // its speed delta, so the whole corridor brakes and re-accelerates.
        PlatoonVehicle* extra_leader = vehicles_[base].get();
        for (const SpeedStep& step : config_.speed_profile) {
            scheduler_.schedule_at(
                step.at,
                [extra_leader, speed = step.speed_mps + spec.speed_delta_mps] {
                    extra_leader->set_desired_speed(speed);
                });
        }
    }
}

void Scenario::apply_corridor_event(const CorridorEvent& event) {
    const auto [base, size] = platoon_spans_[event.platoon];
    switch (event.kind) {
        case CorridorEvent::Kind::kMerge: {
            // The platoon joins the primary platoon's id, lane and leader;
            // CACC topology re-derives from the next beacons, and the
            // primary leader's membership absorbs the merged vehicles.
            if (event.platoon == 0) break;  // primary cannot merge into itself
            auto* membership = vehicles_.front()->membership();
            for (std::size_t i = 0; i < size; ++i) {
                PlatoonVehicle& v = *vehicles_[base + i];
                v.adopt_platoon(platoon_id(), platoon_node(0));
                v.set_lane(0);
                if (membership) membership->append(v.id());
            }
            radar_cache_.built_at = -1e18;  // lanes changed: resnapshot
            break;
        }
        case CorridorEvent::Kind::kSplit: {
            // Real on-wire maneuver: the platoon's leader broadcasts a
            // kSplitRequest; everyone at or behind the subject detaches.
            net::ManeuverMsg msg;
            msg.type = net::ManeuverType::kSplitRequest;
            msg.platoon_id = vehicles_[base]->platoon_id();
            msg.sender = vehicles_[base]->wire_id();
            msg.subject = vehicles_[base + event.index]->wire_id();
            vehicles_[base]->send_maneuver(msg);
            break;
        }
        case CorridorEvent::Kind::kCutIn: {
            vehicles_[base + event.index]->set_lane(0);
            radar_cache_.built_at = -1e18;
            break;
        }
        case CorridorEvent::Kind::kRsuHandoff: {
            if (event.index >= rsus_.size()) break;  // no such RSU built
            const sim::NodeId rsu = rsus_[event.index]->id();
            for (std::size_t i = 0; i < size; ++i)
                vehicles_[base + i]->set_rsu_hint(rsu);
            break;
        }
    }
}

std::size_t Scenario::platoon_size(std::size_t platoon) const {
    PLATOON_EXPECTS(platoon < platoon_spans_.size());
    return platoon_spans_[platoon].second;
}

PlatoonVehicle& Scenario::corridor_vehicle(std::size_t platoon,
                                           std::size_t index) {
    PLATOON_EXPECTS(platoon < platoon_spans_.size());
    const auto [base, size] = platoon_spans_[platoon];
    PLATOON_EXPECTS(index < size);
    return *vehicles_[base + index];
}

Scenario::~Scenario() {
    for (auto& r : rsus_) r->stop();
    for (auto& v : vehicles_) v->stop();
}

void Scenario::run_until(sim::SimTime until) { scheduler_.run_until(until); }

PlatoonVehicle& Scenario::vehicle(std::size_t index) {
    PLATOON_EXPECTS(index < vehicles_.size());
    return *vehicles_[index];
}

PlatoonVehicle* Scenario::find(sim::NodeId id) {
    for (auto& v : vehicles_) {
        if (v->id() == id) return v.get();
    }
    return nullptr;
}

PlatoonVehicle& Scenario::tail() {
    PLATOON_EXPECTS(!vehicles_.empty());
    return *vehicles_[config_.platoon_size - 1];
}

std::vector<rsu::RsuNode*> Scenario::rsus() {
    std::vector<rsu::RsuNode*> out;
    out.reserve(rsus_.size());
    for (auto& r : rsus_) out.push_back(r.get());
    return out;
}

PlatoonVehicle& Scenario::add_vehicle(VehicleConfig config) {
    auto vehicle = std::make_unique<PlatoonVehicle>(config, scheduler_,
                                                    *network_, config_.seed);
    provision(*vehicle, config.security);
    install_radar_resolver(*vehicle);
    vehicle->start();
    vehicles_.push_back(std::move(vehicle));
    return *vehicles_.back();
}

rsu::TrustedAuthority::Enrollment Scenario::enroll(sim::NodeId id) {
    return authority_->enroll(id, scheduler_.now());
}

void Scenario::provision(PlatoonVehicle& vehicle,
                         const security::SecurityPolicy& policy) {
    vehicle.set_ca_public_key(authority_->public_key());
    vehicle.set_verdict_cache(verdict_cache_.get());

    if (policy.auth_mode == crypto::AuthMode::kSignature ||
        policy.pseudonym_rotation_s > 0.0) {
        auto enrollment = authority_->enroll(vehicle.id(), scheduler_.now());
        vehicle.provision_credential(std::move(enrollment.long_term),
                                     std::move(enrollment.pseudonyms));
    }

    const bool needs_group_key =
        policy.auth_mode == crypto::AuthMode::kGroupMac ||
        policy.encrypt_payloads;
    if (needs_group_key &&
        policy.key_establishment == security::KeyEstablishment::kPreShared) {
        if (group_key_.empty()) {
            group_key_.resize(32);
            for (auto& b : group_key_)
                b = static_cast<std::uint8_t>(scenario_rng_.bits());
        }
        vehicle.provision_group_key(group_key_);
    }
    // kFadingChannel handled in establish_pairwise_keys();
    // kRsuDistribution happens at runtime via request_group_key().
}

void Scenario::establish_pairwise_keys() {
    // Li et al. [5]: the leader agrees a secret with each member from the
    // reciprocal fading of their link, then uses those secured channels to
    // share the platoon key. A member whose agreement failed stays unkeyed
    // (its messages will be rejected and it degrades to radar ACC).
    PLATOON_EXPECTS(!vehicles_.empty());
    PLATOON_EXPECTS(!group_key_.empty());
    PlatoonVehicle& leader = *vehicles_.front();
    leader.provision_group_key(group_key_);

    sim::RandomStream noise(config_.seed, "fka.noise");
    constexpr std::size_t kProbes = 512;
    constexpr double kProbeSpacing = 0.04;  // ~coherence time: fresh fading
    constexpr double kMeasurementNoiseDb = 0.35;

    for (std::size_t i = 1; i < vehicles_.size(); ++i) {
        PlatoonVehicle& member = *vehicles_[i];
        std::vector<double> leader_samples(kProbes), member_samples(kProbes);
        for (std::size_t p = 0; p < kProbes; ++p) {
            const double t = -30.0 + static_cast<double>(p) * kProbeSpacing;
            const double gain = network_->channel().fading_db(
                leader.id(), member.id(), t);
            leader_samples[p] = gain + noise.normal(0.0, kMeasurementNoiseDb);
            member_samples[p] = gain + noise.normal(0.0, kMeasurementNoiseDb);
        }
        const auto result = crypto::agree(leader_samples, member_samples);
        if (result.success) {
            member.provision_group_key(group_key_);
            // Record the pairwise key too (usable for unicast).
            leader.set_pairwise_key(member.id().value, result.key);
            member.set_pairwise_key(leader.id().value, result.key);
        } else {
            PLATOON_LOG_WARN("fading key agreement failed for node %u",
                             member.id().value);
        }
    }
}

void Scenario::install_radar_resolver(PlatoonVehicle& vehicle) {
    // Single-platoon scenarios keep the exact per-call scan (golden
    // metrics); corridor scenarios route through the sorted snapshot so the
    // 100 Hz control loop is O(log n) instead of O(n) per vehicle.
    if (!config_.extra_platoons.empty()) {
        vehicle.set_radar_target_resolver(
            [this](const PlatoonVehicle& self) {
                return resolve_radar_target_indexed(self);
            });
        return;
    }
    vehicle.set_radar_target_resolver(
        [this](const PlatoonVehicle& self) -> const phys::VehicleDynamics* {
            const double my_pos = self.dynamics().position();
            const PlatoonVehicle* best = nullptr;
            double best_gap = 1e18;
            for (const auto& other : vehicles_) {
                if (other.get() == &self) continue;
                if (other->lane() != self.lane()) continue;
                const double gap = other->dynamics().position() -
                                   other->dynamics().length() - my_pos;
                if (gap > -2.0 && gap < best_gap) {
                    best_gap = gap;
                    best = other.get();
                }
            }
            return best != nullptr ? &best->dynamics() : nullptr;
        });
}

const phys::VehicleDynamics* Scenario::resolve_radar_target_indexed(
    const PlatoonVehicle& self) {
    constexpr double kPeriod = 0.05;    // snapshot refresh (sim seconds)
    constexpr double kMaxSpeed = 60.0;  // corridor speed bound (m/s)
    const sim::SimTime now = scheduler_.now();
    if (now - radar_cache_.built_at > kPeriod) {
        std::size_t max_lane = 0;
        for (const auto& v : vehicles_)
            max_lane = std::max<std::size_t>(max_lane, v->lane());
        radar_cache_.lanes.assign(max_lane + 1, {});
        for (const auto& v : vehicles_) {
            radar_cache_.lanes[v->lane()].push_back(
                {v->dynamics().position() - v->dynamics().length(), v.get()});
        }
        for (auto& lane : radar_cache_.lanes) {
            std::sort(lane.begin(), lane.end(),
                      [](const RadarCacheEntry& a, const RadarCacheEntry& b) {
                          if (a.rear_m != b.rear_m) return a.rear_m < b.rear_m;
                          return a.vehicle->id() < b.vehicle->id();
                      });
        }
        radar_cache_.built_at = now;
    }

    if (self.lane() >= radar_cache_.lanes.size()) return nullptr;
    const auto& lane = radar_cache_.lanes[self.lane()];
    // Stale snapshot: every cached rear bumper is within `slack` of its
    // fresh position, so scanning from (threshold - slack) and stopping
    // once the cached rear exceeds my_pos + best_gap + slack evaluates the
    // exact predicate on every vehicle that could possibly win.
    const double slack = kMaxSpeed * (now - radar_cache_.built_at) + 2.0;
    const double my_pos = self.dynamics().position();
    const double threshold = my_pos - 2.0;
    auto it = std::lower_bound(
        lane.begin(), lane.end(), threshold - slack,
        [](const RadarCacheEntry& e, double bound) { return e.rear_m < bound; });
    const PlatoonVehicle* best = nullptr;
    double best_gap = 1e18;
    for (; it != lane.end(); ++it) {
        if (best != nullptr && it->rear_m - slack > my_pos + best_gap) break;
        const PlatoonVehicle* other = it->vehicle;
        if (other == &self) continue;
        if (other->lane() != self.lane()) continue;  // changed lanes since build
        const double gap = other->dynamics().position() -
                           other->dynamics().length() - my_pos;
        if (gap > -2.0 && gap < best_gap) {
            best_gap = gap;
            best = other;
        }
    }
    return best != nullptr ? &best->dynamics() : nullptr;
}

}  // namespace platoon::core
