#include "core/scenario.hpp"

#include <algorithm>

#include "crypto/fading_key_agreement.hpp"
#include "sim/assert.hpp"
#include "sim/logging.hpp"

namespace platoon::core {

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)),
      network_(std::make_unique<net::Network>(scheduler_, config_.network,
                                              config_.seed)),
      metrics_(config_.metrics),
      scenario_rng_(config_.seed, "scenario") {
    PLATOON_EXPECTS(config_.platoon_size >= 2);

    crypto::Bytes ta_seed;
    crypto::append_u64(ta_seed, config_.seed);
    crypto::append(ta_seed, crypto::to_bytes("trusted-authority"));
    authority_ = std::make_unique<rsu::TrustedAuthority>(
        crypto::BytesView(ta_seed));

    // Shared verification fast path: one fact cache for every receiver in
    // this scenario (per-scenario state keeps parallel seed sweeps
    // bit-identical), plus a network-level prewarm hook that batch-verifies
    // signed fan-outs into it before delivery.
    if (config_.share_verify_verdicts) {
        verdict_cache_ = std::make_unique<crypto::VerdictCache>();
        network_->set_verify_prewarm(
            [cache = verdict_cache_.get(),
             ca_pub = authority_->public_key()](
                const crypto::Envelope& envelope, sim::RandomStream& rng) {
                crypto::prewarm_signature_verdicts(
                    envelope, crypto::BytesView(ca_pub), *cache,
                    [&rng] { return rng.bits(); });
            });
    }

    // Group key (generated lazily but deterministically).
    if (config_.security.auth_mode == crypto::AuthMode::kGroupMac ||
        config_.security.encrypt_payloads) {
        group_key_.resize(32);
        for (auto& b : group_key_)
            b = static_cast<std::uint8_t>(scenario_rng_.bits());
    }

    // --- platoon -----------------------------------------------------------
    const double length = phys::truck_params().length_m;
    std::vector<const PlatoonVehicle*> watched;
    for (std::size_t i = 0; i < config_.platoon_size; ++i) {
        VehicleConfig vc;
        vc.id = platoon_node(i);
        vc.role = i == 0 ? control::Role::kLeader : control::Role::kMember;
        vc.platoon_id = platoon_id();
        vc.leader_hint = platoon_node(0);
        vc.initial_state.position_m =
            config_.leader_start_m -
            static_cast<double>(i) * (config_.initial_gap_m + length);
        vc.initial_state.speed_mps = config_.initial_speed_mps;
        vc.cacc_type = config_.controller;
        vc.desired_speed_mps = config_.initial_speed_mps;
        vc.control_period_s = config_.control_period_s;
        vc.beacon_period_s = config_.beacon_period_s;
        vc.security = config_.security;
        vc.admission = config_.admission;
        if (!rsus_.empty()) vc.rsu_hint = rsus_.front()->id();

        auto vehicle = std::make_unique<PlatoonVehicle>(vc, scheduler_,
                                                        *network_, config_.seed);
        provision(*vehicle, vc.security);
        install_radar_resolver(*vehicle);
        vehicles_.push_back(std::move(vehicle));
    }

    if (config_.security.auth_mode == crypto::AuthMode::kGroupMac &&
        config_.security.key_establishment ==
            security::KeyEstablishment::kFadingChannel) {
        establish_pairwise_keys();
    }

    // --- RSUs ----------------------------------------------------------------
    for (std::size_t i = 0; i < config_.rsu_count; ++i) {
        const sim::NodeId rsu_id{1000u + static_cast<std::uint32_t>(i)};
        rsu::RsuNode::Params rp;
        // RSUs line the road ahead of the platoon's starting point so the
        // convoy drives through their coverage during the run.
        rp.position_m = config_.leader_start_m + 200.0 +
                        static_cast<double>(i) * config_.rsu_spacing_m;
        rp.require_signatures = config_.rsus_require_signatures;
        auto node = std::make_unique<rsu::RsuNode>(rsu_id, rp, scheduler_,
                                                   *network_, *authority_);
        node->set_credential(
            authority_->enroll(rsu_id, scheduler_.now()).long_term);
        node->set_verdict_cache(verdict_cache_.get());
        if (!group_key_.empty()) node->set_group_key(group_key_);
        node->start();
        rsus_.push_back(std::move(node));
    }
    // Vehicles report to the first RSU when present (hint set post hoc is
    // not possible through config; reports are broadcast anyway).

    // The pre-formed platoon is already admitted: seed the leader's
    // membership with every initial member.
    if (auto* membership = vehicles_.front()->membership()) {
        for (std::size_t i = 1; i < config_.platoon_size; ++i)
            membership->append(platoon_node(i));
    }

    // --- start everything ----------------------------------------------------
    for (auto& v : vehicles_) {
        v->start();
        watched.push_back(v.get());
    }
    metrics_.watch(std::move(watched));

    // --- benign faults -------------------------------------------------------
    // Built after the vehicles exist (hooks capture stable pointers; the
    // vehicles_ vector only grows and owns by unique_ptr). An empty plan
    // skips construction entirely, so fault-free scenarios are bit-identical
    // to the pre-fault codebase.
    if (!config_.faults.empty()) {
        std::vector<fault::VehicleHooks> hooks;
        hooks.reserve(config_.platoon_size);
        for (std::size_t i = 0; i < config_.platoon_size; ++i) {
            PlatoonVehicle* v = vehicles_[i].get();
            fault::VehicleHooks h;
            h.set_comms_down = [v](bool down) { v->set_comms_down(down); };
            h.set_sensor_dropout = [v](bool on) { v->set_sensor_dropout(on); };
            h.set_clock_skew = [v](sim::SimTime anchor, double offset,
                                   double rate) {
                v->set_clock_skew(anchor, offset, rate);
            };
            hooks.push_back(std::move(h));
        }
        fault_injector_ = std::make_unique<fault::Injector>(
            scheduler_, *network_, config_.faults, std::move(hooks),
            config_.seed);
    }

    // Leader speed profile.
    for (const SpeedStep& step : config_.speed_profile) {
        PlatoonVehicle* leader = vehicles_.front().get();
        scheduler_.schedule_at(step.at, [leader, speed = step.speed_mps] {
            leader->set_desired_speed(speed);
        });
    }

    // Metrics sampling.
    scheduler_.schedule_every(config_.metrics.sample_period_s,
                              config_.metrics.sample_period_s,
                              [this] { metrics_.sample(scheduler_.now()); });
}

Scenario::~Scenario() {
    for (auto& r : rsus_) r->stop();
    for (auto& v : vehicles_) v->stop();
}

void Scenario::run_until(sim::SimTime until) { scheduler_.run_until(until); }

PlatoonVehicle& Scenario::vehicle(std::size_t index) {
    PLATOON_EXPECTS(index < vehicles_.size());
    return *vehicles_[index];
}

PlatoonVehicle* Scenario::find(sim::NodeId id) {
    for (auto& v : vehicles_) {
        if (v->id() == id) return v.get();
    }
    return nullptr;
}

PlatoonVehicle& Scenario::tail() {
    PLATOON_EXPECTS(!vehicles_.empty());
    return *vehicles_[config_.platoon_size - 1];
}

std::vector<rsu::RsuNode*> Scenario::rsus() {
    std::vector<rsu::RsuNode*> out;
    out.reserve(rsus_.size());
    for (auto& r : rsus_) out.push_back(r.get());
    return out;
}

PlatoonVehicle& Scenario::add_vehicle(VehicleConfig config) {
    auto vehicle = std::make_unique<PlatoonVehicle>(config, scheduler_,
                                                    *network_, config_.seed);
    provision(*vehicle, config.security);
    install_radar_resolver(*vehicle);
    vehicle->start();
    vehicles_.push_back(std::move(vehicle));
    return *vehicles_.back();
}

rsu::TrustedAuthority::Enrollment Scenario::enroll(sim::NodeId id) {
    return authority_->enroll(id, scheduler_.now());
}

void Scenario::provision(PlatoonVehicle& vehicle,
                         const security::SecurityPolicy& policy) {
    vehicle.set_ca_public_key(authority_->public_key());
    vehicle.set_verdict_cache(verdict_cache_.get());

    if (policy.auth_mode == crypto::AuthMode::kSignature ||
        policy.pseudonym_rotation_s > 0.0) {
        auto enrollment = authority_->enroll(vehicle.id(), scheduler_.now());
        vehicle.provision_credential(std::move(enrollment.long_term),
                                     std::move(enrollment.pseudonyms));
    }

    const bool needs_group_key =
        policy.auth_mode == crypto::AuthMode::kGroupMac ||
        policy.encrypt_payloads;
    if (needs_group_key &&
        policy.key_establishment == security::KeyEstablishment::kPreShared) {
        if (group_key_.empty()) {
            group_key_.resize(32);
            for (auto& b : group_key_)
                b = static_cast<std::uint8_t>(scenario_rng_.bits());
        }
        vehicle.provision_group_key(group_key_);
    }
    // kFadingChannel handled in establish_pairwise_keys();
    // kRsuDistribution happens at runtime via request_group_key().
}

void Scenario::establish_pairwise_keys() {
    // Li et al. [5]: the leader agrees a secret with each member from the
    // reciprocal fading of their link, then uses those secured channels to
    // share the platoon key. A member whose agreement failed stays unkeyed
    // (its messages will be rejected and it degrades to radar ACC).
    PLATOON_EXPECTS(!vehicles_.empty());
    PLATOON_EXPECTS(!group_key_.empty());
    PlatoonVehicle& leader = *vehicles_.front();
    leader.provision_group_key(group_key_);

    sim::RandomStream noise(config_.seed, "fka.noise");
    constexpr std::size_t kProbes = 512;
    constexpr double kProbeSpacing = 0.04;  // ~coherence time: fresh fading
    constexpr double kMeasurementNoiseDb = 0.35;

    for (std::size_t i = 1; i < vehicles_.size(); ++i) {
        PlatoonVehicle& member = *vehicles_[i];
        std::vector<double> leader_samples(kProbes), member_samples(kProbes);
        for (std::size_t p = 0; p < kProbes; ++p) {
            const double t = -30.0 + static_cast<double>(p) * kProbeSpacing;
            const double gain = network_->channel().fading_db(
                leader.id(), member.id(), t);
            leader_samples[p] = gain + noise.normal(0.0, kMeasurementNoiseDb);
            member_samples[p] = gain + noise.normal(0.0, kMeasurementNoiseDb);
        }
        const auto result = crypto::agree(leader_samples, member_samples);
        if (result.success) {
            member.provision_group_key(group_key_);
            // Record the pairwise key too (usable for unicast).
            leader.set_pairwise_key(member.id().value, result.key);
            member.set_pairwise_key(leader.id().value, result.key);
        } else {
            PLATOON_LOG_WARN("fading key agreement failed for node %u",
                             member.id().value);
        }
    }
}

void Scenario::install_radar_resolver(PlatoonVehicle& vehicle) {
    vehicle.set_radar_target_resolver(
        [this](const PlatoonVehicle& self) -> const phys::VehicleDynamics* {
            const double my_pos = self.dynamics().position();
            const PlatoonVehicle* best = nullptr;
            double best_gap = 1e18;
            for (const auto& other : vehicles_) {
                if (other.get() == &self) continue;
                if (other->lane() != self.lane()) continue;
                const double gap = other->dynamics().position() -
                                   other->dynamics().length() - my_pos;
                if (gap > -2.0 && gap < best_gap) {
                    best_gap = gap;
                    best = other.get();
                }
            }
            return best != nullptr ? &best->dynamics() : nullptr;
        });
}

}  // namespace platoon::core
