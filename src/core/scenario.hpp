// Scenario: builds and runs one complete simulated world -- scheduler,
// network, trusted authority, RSUs, a platoon of PlatoonVehicles with the
// configured controller and security policy, leader speed profile, and the
// metrics sampler. Attacks attach to a built Scenario (they are external
// actors), defenses are switched on through the SecurityPolicy.
#pragma once

#include <memory>
#include <vector>

#include "core/metrics.hpp"
#include "core/vehicle.hpp"
#include "fault/injector.hpp"
#include "net/network.hpp"
#include "rsu/rsu.hpp"
#include "rsu/trusted_authority.hpp"
#include "sim/scheduler.hpp"

namespace platoon::core {

struct SpeedStep {
    sim::SimTime at;
    double speed_mps;
};

struct ScenarioConfig {
    std::uint64_t seed = 42;
    std::size_t platoon_size = 8;
    control::ControllerType controller = control::ControllerType::kCaccPath;
    double initial_speed_mps = 25.0;
    double initial_gap_m = 5.0;
    double leader_start_m = 2000.0;
    security::SecurityPolicy security;
    net::Network::Params network;
    control::AdmissionControl::Params admission;
    /// Leader speed profile (a braking/re-acceleration disturbance excites
    /// string-stability problems; defaults below).
    std::vector<SpeedStep> speed_profile = {
        {0.0, 25.0}, {40.0, 20.0}, {60.0, 25.0}};
    MetricsParams metrics;
    /// Benign faults (burst loss, node crash, sensor dropout, clock drift)
    /// injected at build time as first-class scenario components. Empty by
    /// default: a fault-free scenario constructs no injector and consumes
    /// no randomness, so adding this field changes nothing downstream.
    fault::FaultPlan faults;
    std::size_t rsu_count = 0;
    double rsu_spacing_m = 1000.0;
    bool rsus_require_signatures = false;
    /// Share receiver-independent verification facts (signature / cert /
    /// group-MAC validity) across all receivers through one bounded
    /// deterministic VerdictCache, and batch-verify signed fan-outs before
    /// delivery. Affects cost and the crypto.verify.* counter split only --
    /// verdicts are bit-identical either way (the differential fast-path
    /// suite pins this). Off = every receiver verifies independently.
    bool share_verify_verdicts = true;
    sim::SimTime control_period_s = 0.01;
    sim::SimTime beacon_period_s = 0.1;
};

class Scenario {
public:
    explicit Scenario(ScenarioConfig config);
    ~Scenario();
    Scenario(const Scenario&) = delete;
    Scenario& operator=(const Scenario&) = delete;

    /// Advances the simulation to absolute time `until` (seconds).
    void run_until(sim::SimTime until);

    /// --- access -----------------------------------------------------------
    [[nodiscard]] sim::Scheduler& scheduler() { return scheduler_; }
    [[nodiscard]] net::Network& network() { return *network_; }
    [[nodiscard]] rsu::TrustedAuthority& authority() { return *authority_; }
    [[nodiscard]] const ScenarioConfig& config() const { return config_; }
    [[nodiscard]] PlatoonMetrics& metrics() { return metrics_; }
    /// Fault injector, or nullptr when the config's FaultPlan is empty.
    [[nodiscard]] fault::Injector* faults() { return fault_injector_.get(); }
    [[nodiscard]] std::uint64_t seed() const { return config_.seed; }

    [[nodiscard]] std::size_t vehicle_count() const { return vehicles_.size(); }
    [[nodiscard]] PlatoonVehicle& vehicle(std::size_t index);
    [[nodiscard]] PlatoonVehicle* find(sim::NodeId id);
    [[nodiscard]] PlatoonVehicle& leader() { return vehicle(0); }
    [[nodiscard]] PlatoonVehicle& tail();
    [[nodiscard]] std::vector<rsu::RsuNode*> rsus();

    /// Node id of platoon slot `index` (0 = leader).
    [[nodiscard]] static sim::NodeId platoon_node(std::size_t index) {
        return sim::NodeId{100u + static_cast<std::uint32_t>(index)};
    }
    [[nodiscard]] std::uint32_t platoon_id() const { return 1; }

    /// Adds an extra vehicle (joiner, attacker platform, ...) and starts it.
    /// Security material is provisioned per the vehicle's own policy.
    PlatoonVehicle& add_vehicle(VehicleConfig config);

    /// Enrolls `id` with the TA and returns its credentials (used to model
    /// credential theft: the attacker is handed a copy).
    rsu::TrustedAuthority::Enrollment enroll(sim::NodeId id);

    /// The shared platoon group key (empty unless group-MAC/encryption on).
    [[nodiscard]] const crypto::Bytes& group_key() const { return group_key_; }

    /// Summarizes the run so far.
    [[nodiscard]] MetricsSummary summarize() const {
        return metrics_.summarize(network_->stats());
    }

private:
    void provision(PlatoonVehicle& vehicle, const security::SecurityPolicy& policy);
    void install_radar_resolver(PlatoonVehicle& vehicle);
    void establish_pairwise_keys();

    ScenarioConfig config_;
    sim::Scheduler scheduler_;
    std::unique_ptr<net::Network> network_;
    std::unique_ptr<rsu::TrustedAuthority> authority_;
    /// Shared verification-fact cache; null when share_verify_verdicts is
    /// off. Declared before vehicles_/rsus_ so it outlives every
    /// MessageProtection holding a pointer to it.
    std::unique_ptr<crypto::VerdictCache> verdict_cache_;
    std::vector<std::unique_ptr<PlatoonVehicle>> vehicles_;
    std::vector<std::unique_ptr<rsu::RsuNode>> rsus_;
    /// Declared after network_ and vehicles_: its destructor uninstalls the
    /// network fault hook, so it must die first.
    std::unique_ptr<fault::Injector> fault_injector_;
    PlatoonMetrics metrics_;
    crypto::Bytes group_key_;
    sim::RandomStream scenario_rng_;
};

}  // namespace platoon::core
