// Scenario: builds and runs one complete simulated world -- scheduler,
// network, trusted authority, RSUs, a platoon of PlatoonVehicles with the
// configured controller and security policy, leader speed profile, and the
// metrics sampler. Attacks attach to a built Scenario (they are external
// actors), defenses are switched on through the SecurityPolicy.
#pragma once

#include <memory>
#include <vector>

#include "core/metrics.hpp"
#include "core/vehicle.hpp"
#include "fault/injector.hpp"
#include "net/network.hpp"
#include "rsu/rsu.hpp"
#include "rsu/trusted_authority.hpp"
#include "sim/scheduler.hpp"

namespace platoon::core {

struct SpeedStep {
    sim::SimTime at;
    double speed_mps;
};

/// One additional platoon sharing the corridor and the channel. The primary
/// platoon is described by the top-level ScenarioConfig fields; extra
/// platoon `p` (1-based) gets platoon id 1+p and node ids 2000 + p*100 + i,
/// so up to 100 vehicles per platoon never collide with the primary platoon
/// (100+i), joiners (300), RSUs (1000+i) or attackers (9001+).
struct PlatoonSpec {
    std::size_t size = 8;
    /// Leader start relative to the primary leader (negative = behind).
    double start_offset_m = -500.0;
    std::uint8_t lane = 0;
    /// Added to the primary initial/desired speed (and to every speed
    /// profile step this platoon's leader follows).
    double speed_delta_mps = 0.0;
};

/// Scripted corridor traffic event, applied at an absolute sim time. Events
/// model the *outcome* of a maneuver where no on-wire protocol exists
/// (merge, cut-in, handoff); splits go through the real kSplitRequest
/// maneuver so the survey's maneuver attack surface stays exercised.
struct CorridorEvent {
    enum class Kind {
        kMerge,      ///< Platoon `platoon` merges into the primary platoon.
        kSplit,      ///< Leader of `platoon` splits it at vehicle `index`.
        kCutIn,      ///< Vehicle `index` of `platoon` cuts into the primary lane.
        kRsuHandoff  ///< Platoon `platoon` re-homes reports to RSU `index`.
    };
    Kind kind = Kind::kMerge;
    sim::SimTime at = 10.0;
    std::size_t platoon = 1;  ///< 0 = primary, 1.. = extra_platoons entry.
    std::size_t index = 0;    ///< Vehicle slot (kSplit/kCutIn), RSU slot (kRsuHandoff).
};

struct ScenarioConfig {
    std::uint64_t seed = 42;
    std::size_t platoon_size = 8;
    control::ControllerType controller = control::ControllerType::kCaccPath;
    double initial_speed_mps = 25.0;
    double initial_gap_m = 5.0;
    double leader_start_m = 2000.0;
    security::SecurityPolicy security;
    net::Network::Params network;
    control::AdmissionControl::Params admission;
    /// Leader speed profile (a braking/re-acceleration disturbance excites
    /// string-stability problems; defaults below).
    std::vector<SpeedStep> speed_profile = {
        {0.0, 25.0}, {40.0, 20.0}, {60.0, 25.0}};
    MetricsParams metrics;
    /// Benign faults (burst loss, node crash, sensor dropout, clock drift)
    /// injected at build time as first-class scenario components. Empty by
    /// default: a fault-free scenario constructs no injector and consumes
    /// no randomness, so adding this field changes nothing downstream.
    fault::FaultPlan faults;
    std::size_t rsu_count = 0;
    double rsu_spacing_m = 1000.0;
    bool rsus_require_signatures = false;
    /// Share receiver-independent verification facts (signature / cert /
    /// group-MAC validity) across all receivers through one bounded
    /// deterministic VerdictCache, and batch-verify signed fan-outs before
    /// delivery. Affects cost and the crypto.verify.* counter split only --
    /// verdicts are bit-identical either way (the differential fast-path
    /// suite pins this). Off = every receiver verifies independently.
    bool share_verify_verdicts = true;
    sim::SimTime control_period_s = 0.01;
    sim::SimTime beacon_period_s = 0.1;
    /// Extra platoons sharing the corridor (empty = classic single-platoon
    /// scenario, bit-identical to the pre-multi-platoon codebase) and the
    /// scripted traffic events between them.
    std::vector<PlatoonSpec> extra_platoons;
    std::vector<CorridorEvent> corridor;
};

class Scenario {
public:
    explicit Scenario(ScenarioConfig config);
    ~Scenario();
    Scenario(const Scenario&) = delete;
    Scenario& operator=(const Scenario&) = delete;

    /// Advances the simulation to absolute time `until` (seconds).
    void run_until(sim::SimTime until);

    /// --- access -----------------------------------------------------------
    [[nodiscard]] sim::Scheduler& scheduler() { return scheduler_; }
    [[nodiscard]] net::Network& network() { return *network_; }
    [[nodiscard]] rsu::TrustedAuthority& authority() { return *authority_; }
    [[nodiscard]] const ScenarioConfig& config() const { return config_; }
    [[nodiscard]] PlatoonMetrics& metrics() { return metrics_; }
    /// Fault injector, or nullptr when the config's FaultPlan is empty.
    [[nodiscard]] fault::Injector* faults() { return fault_injector_.get(); }
    [[nodiscard]] std::uint64_t seed() const { return config_.seed; }

    [[nodiscard]] std::size_t vehicle_count() const { return vehicles_.size(); }
    [[nodiscard]] PlatoonVehicle& vehicle(std::size_t index);
    [[nodiscard]] PlatoonVehicle* find(sim::NodeId id);
    [[nodiscard]] PlatoonVehicle& leader() { return vehicle(0); }
    [[nodiscard]] PlatoonVehicle& tail();
    [[nodiscard]] std::vector<rsu::RsuNode*> rsus();

    /// Node id of platoon slot `index` (0 = leader).
    [[nodiscard]] static sim::NodeId platoon_node(std::size_t index) {
        return sim::NodeId{100u + static_cast<std::uint32_t>(index)};
    }
    [[nodiscard]] std::uint32_t platoon_id() const { return 1; }

    /// --- corridor topology --------------------------------------------------
    /// Platoon 0 is the primary platoon; 1.. index config().extra_platoons.
    [[nodiscard]] std::size_t platoon_count() const {
        return 1 + config_.extra_platoons.size();
    }
    [[nodiscard]] std::size_t platoon_size(std::size_t platoon) const;
    /// Node id of slot `index` in corridor platoon `platoon`.
    [[nodiscard]] static sim::NodeId corridor_node(std::size_t platoon,
                                                   std::size_t index) {
        if (platoon == 0) return platoon_node(index);
        return sim::NodeId{2000u + static_cast<std::uint32_t>(platoon) * 100u +
                           static_cast<std::uint32_t>(index)};
    }
    [[nodiscard]] PlatoonVehicle& corridor_vehicle(std::size_t platoon,
                                                   std::size_t index);

    /// Adds an extra vehicle (joiner, attacker platform, ...) and starts it.
    /// Security material is provisioned per the vehicle's own policy.
    PlatoonVehicle& add_vehicle(VehicleConfig config);

    /// Enrolls `id` with the TA and returns its credentials (used to model
    /// credential theft: the attacker is handed a copy).
    rsu::TrustedAuthority::Enrollment enroll(sim::NodeId id);

    /// The shared platoon group key (empty unless group-MAC/encryption on).
    [[nodiscard]] const crypto::Bytes& group_key() const { return group_key_; }

    /// Summarizes the run so far.
    [[nodiscard]] MetricsSummary summarize() const {
        return metrics_.summarize(network_->stats());
    }

private:
    void provision(PlatoonVehicle& vehicle, const security::SecurityPolicy& policy);
    void install_radar_resolver(PlatoonVehicle& vehicle);
    void establish_pairwise_keys();
    void build_extra_platoons();
    void apply_corridor_event(const CorridorEvent& event);
    /// Per-lane sorted radar snapshot (multi-platoon scenarios only): the
    /// brute target scan is O(vehicles) per 100 Hz control step, O(n^2)
    /// corridor-wide. The snapshot refreshes every kRadarCachePeriod of sim
    /// time; candidate selection re-checks exact fresh positions inside a
    /// slack-widened window, so only target *association* latency is
    /// bounded by the period, never the measured gap.
    struct RadarCacheEntry {
        double rear_m = 0.0;  ///< Stale rear-bumper position at build time.
        PlatoonVehicle* vehicle = nullptr;
    };
    struct RadarCache {
        sim::SimTime built_at = -1e18;
        std::vector<std::vector<RadarCacheEntry>> lanes;  // indexed by lane
    };
    const phys::VehicleDynamics* resolve_radar_target_indexed(
        const PlatoonVehicle& self);

    ScenarioConfig config_;
    sim::Scheduler scheduler_;
    std::unique_ptr<net::Network> network_;
    std::unique_ptr<rsu::TrustedAuthority> authority_;
    /// Shared verification-fact cache; null when share_verify_verdicts is
    /// off. Declared before vehicles_/rsus_ so it outlives every
    /// MessageProtection holding a pointer to it.
    std::unique_ptr<crypto::VerdictCache> verdict_cache_;
    std::vector<std::unique_ptr<PlatoonVehicle>> vehicles_;
    std::vector<std::unique_ptr<rsu::RsuNode>> rsus_;
    /// Declared after network_ and vehicles_: its destructor uninstalls the
    /// network fault hook, so it must die first.
    std::unique_ptr<fault::Injector> fault_injector_;
    PlatoonMetrics metrics_;
    crypto::Bytes group_key_;
    sim::RandomStream scenario_rng_;
    /// (first vehicles_ index, size) per corridor platoon; entry 0 is the
    /// primary platoon. Single-entry when extra_platoons is empty.
    std::vector<std::pair<std::size_t, std::size_t>> platoon_spans_;
    RadarCache radar_cache_;
};

}  // namespace platoon::core
