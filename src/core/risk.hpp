// Risk-assessment framework (paper open challenge VI-B.4).
//
// The paper notes that SAE J3061 / ISO/SAE 21434 risk assessment has not
// been applied to platoons. This module closes that loop with the
// simulator: *likelihood* is encoded from each attack's feasibility profile
// (equipment cost, required proximity, required knowledge/keys -- the
// attack-potential factors of ISO/SAE 21434 annex G), and *severity* is
// derived from the attack's MEASURED impact on the simulated platoon, not
// from expert guesses. The product is a ranked risk register.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/taxonomy.hpp"

namespace platoon::core {

/// ISO/SAE 21434-style attack-feasibility rating (higher = easier).
enum class Likelihood : int {
    kVeryLow = 1,   ///< Needs stolen key material or physical access.
    kLow = 2,       ///< Needs sustained proximity and custom hardware.
    kMedium = 3,    ///< Needs commodity SDR and protocol knowledge.
    kHigh = 4,      ///< Needs commodity hardware, public standard only.
    kVeryHigh = 5,  ///< Passive or trivial with off-the-shelf equipment.
};

/// Severity of the measured outcome (higher = worse).
enum class Severity : int {
    kNegligible = 1,  ///< No operational effect measured.
    kMinor = 2,       ///< Efficiency/privacy degradation.
    kModerate = 3,    ///< Platooning function lost (fallback engaged).
    kMajor = 4,       ///< Dangerous proximity / emergency interventions.
    kSevere = 5,      ///< Collision observed.
};

[[nodiscard]] const char* to_string(Likelihood l);
[[nodiscard]] const char* to_string(Severity s);

struct RiskEntry {
    AttackKind kind;
    Likelihood likelihood;
    Severity severity;
    int score = 0;  ///< likelihood x severity (1..25).
    std::string rationale;
};

/// Feasibility profile per attack (deterministic, from the threat model).
[[nodiscard]] Likelihood likelihood_for(AttackKind kind);

/// Grades measured harm into a severity class. Inputs are the metric maps
/// of an attacked run and its clean baseline (core::MetricMap from
/// run_once/run_eval).
[[nodiscard]] Severity severity_from_metrics(
    const std::map<std::string, double>& attacked,
    const std::map<std::string, double>& clean);

/// Builds the ranked register (highest risk first).
[[nodiscard]] std::vector<RiskEntry> build_risk_register(
    const std::vector<std::pair<AttackKind,
                                std::pair<std::map<std::string, double>,
                                          std::map<std::string, double>>>>&
        measured);

}  // namespace platoon::core
