// The survey's knowledge base as data: attacks, compromised security
// attributes, targeted assets, mitigating mechanisms and the surveyed prior
// work. This is the machine-readable form of the paper's Tables I, II and
// III; the table benches regenerate those tables from this registry and
// cross-check every attack row against the implemented attack suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace platoon::core {

/// Security attributes (the cryptography-related classification the paper
/// adopts from [11], [22]).
enum class Attribute : std::uint8_t {
    kAuthenticity,
    kIntegrity,
    kAvailability,
    kConfidentiality,
};
[[nodiscard]] const char* to_string(Attribute a);

/// Network assets an attack can target (paper Section IV).
enum class Asset : std::uint8_t {
    kLeader,
    kMember,
    kJoinLeave,
    kRsu,
    kTrustedAuthority,
    kSensors,
    kV2vLink,
    kV2iLink,
};
[[nodiscard]] const char* to_string(Asset a);

/// The attack catalogue of Table II.
enum class AttackKind : std::uint8_t {
    kSybil = 0,
    kFakeManeuver,
    kReplay,
    kJamming,
    kEavesdropping,
    kDenialOfService,
    kImpersonation,
    kSensorSpoofing,  ///< GPS & sensor jamming/spoofing (one Table II row).
    kMalware,
    kCount_,
};
[[nodiscard]] const char* to_string(AttackKind k);

/// Table III's defense mechanisms.
enum class DefenseKind : std::uint8_t {
    kSecretPublicKeys = 0,
    kRoadsideUnits,
    kControlAlgorithms,
    kHybridCommunications,
    kOnboardSecurity,
    kCount_,
};
[[nodiscard]] const char* to_string(DefenseKind d);

struct AttackEntry {
    AttackKind kind;
    std::vector<Attribute> compromises;
    std::vector<Asset> targets;
    std::string summary;          ///< Table II wording (condensed).
    std::string implemented_by;   ///< Class in security/attacks.
    std::string references;       ///< Paper citation keys.
};

struct DefenseEntry {
    DefenseKind kind;
    std::vector<AttackKind> mitigates;          ///< Table III mapping.
    std::string open_challenge;                 ///< Table III column 3.
    std::string implemented_by;
};

/// One row of Table I (related surveys).
struct SurveyEntry {
    std::string authors_year;
    std::string classification;   ///< How that survey organises attacks.
    std::vector<std::string> attacks_discussed;
};

class Taxonomy {
public:
    /// The singleton registry, populated with the paper's content.
    [[nodiscard]] static const Taxonomy& instance();

    [[nodiscard]] const std::vector<AttackEntry>& attacks() const {
        return attacks_;
    }
    [[nodiscard]] const std::vector<DefenseEntry>& defenses() const {
        return defenses_;
    }
    [[nodiscard]] const std::vector<SurveyEntry>& surveys() const {
        return surveys_;
    }

    [[nodiscard]] const AttackEntry& attack(AttackKind kind) const;
    [[nodiscard]] const DefenseEntry& defense(DefenseKind kind) const;
    /// Whether Table III marks `defense` as mitigating `attack`.
    [[nodiscard]] bool mitigates(DefenseKind defense, AttackKind attack) const;

private:
    Taxonomy();
    std::vector<AttackEntry> attacks_;
    std::vector<DefenseEntry> defenses_;
    std::vector<SurveyEntry> surveys_;
};

}  // namespace platoon::core
