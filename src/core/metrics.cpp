#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"

namespace platoon::core {

double population_stddev(const std::vector<double>& values) {
    const std::size_t n = values.size();
    if (n < 2) return 0.0;
    double sum = 0.0;
    for (const double v : values) sum += v;
    const double mean = sum / static_cast<double>(n);
    double sq_dev = 0.0;
    for (const double v : values) sq_dev += (v - mean) * (v - mean);
    return std::sqrt(sq_dev / static_cast<double>(n));
}

std::map<std::string, double> MetricsSummary::as_map() const {
    return {
        {"spacing_rms_m", spacing_rms_m},
        {"spacing_max_abs_m", spacing_max_abs_m},
        {"min_gap_m", min_gap_m},
        {"has_gap_samples", has_gap_samples ? 1.0 : 0.0},
        {"collisions", static_cast<double>(collisions)},
        {"follower_speed_stddev", follower_speed_stddev},
        {"max_abs_accel", max_abs_accel},
        {"cacc_availability", cacc_availability},
        {"fuel_l_per_100km", fuel_l_per_100km},
        {"pdr", pdr},
        {"frames_sent", static_cast<double>(frames_sent)},
        {"rejected_auth", static_cast<double>(rejected_auth)},
        {"rejected_replay", static_cast<double>(rejected_replay)},
        {"vpd_detections", static_cast<double>(vpd_detections)},
        {"self_echoes", static_cast<double>(self_echoes)},
    };
}

void PlatoonMetrics::sample(sim::SimTime now) {
    if (vehicles_.size() < 2) return;

    // Sort by ground truth position (front of platoon first).
    std::vector<const PlatoonVehicle*> ordered = vehicles_;
    std::sort(ordered.begin(), ordered.end(),
              [](const PlatoonVehicle* a, const PlatoonVehicle* b) {
                  return a->dynamics().position() > b->dynamics().position();
              });

    bool any_collision = false;
    for (std::size_t i = 1; i < ordered.size(); ++i) {
        // Only score pairs sharing a lane (a left vehicle opens its slot).
        if (ordered[i]->lane() != ordered[i - 1]->lane()) continue;
        const double gap = ordered[i - 1]->dynamics().position() -
                           ordered[i - 1]->dynamics().length() -
                           ordered[i]->dynamics().position();
        const std::string pair_name =
            "gap." + std::to_string(ordered[i]->id().value);
        traces_.series(pair_name).record(now, gap);
        traces_.series("gap_error." + std::to_string(ordered[i]->id().value))
            .record(now, gap - params_.desired_gap_m);
        if (gap < params_.collision_gap_m) any_collision = true;
    }
    if (any_collision && !in_collision_) ++collisions_;
    in_collision_ = any_collision;

    for (std::size_t i = 0; i < ordered.size(); ++i) {
        const auto* v = ordered[i];
        traces_.series("speed." + std::to_string(v->id().value))
            .record(now, v->dynamics().speed());
        traces_.series("accel." + std::to_string(v->id().value))
            .record(now, v->dynamics().accel());
    }
}

MetricsSummary PlatoonMetrics::summarize(
    const net::NetworkStats& network_stats) const {
    MetricsSummary out;
    out.collisions = collisions_;
    out.pdr = network_stats.pdr();
    out.frames_sent = network_stats.sent;

    const double warmup = params_.warmup_s;
    double sq_sum = 0.0;
    std::size_t n = 0;
    double min_gap = 1e18;

    for (const auto* v : vehicles_) {
        const auto* err =
            traces_.find("gap_error." + std::to_string(v->id().value));
        if (err != nullptr && !err->empty()) {
            for (std::size_t i = 0; i < err->size(); ++i) {
                if (err->times()[i] < warmup) continue;
                sq_sum += err->values()[i] * err->values()[i];
                ++n;
                out.spacing_max_abs_m =
                    std::max(out.spacing_max_abs_m, std::abs(err->values()[i]));
            }
        }
        const auto* gap = traces_.find("gap." + std::to_string(v->id().value));
        if (gap != nullptr && !gap->empty()) {
            for (std::size_t i = 0; i < gap->size(); ++i) {
                if (gap->times()[i] < warmup) continue;
                min_gap = std::min(min_gap, gap->values()[i]);
            }
        }
        const auto* accel =
            traces_.find("accel." + std::to_string(v->id().value));
        if (accel != nullptr && !accel->empty()) {
            out.max_abs_accel =
                std::max(out.max_abs_accel, accel->max_abs_after(warmup));
        }
    }
    out.spacing_rms_m = n > 0 ? std::sqrt(sq_sum / static_cast<double>(n)) : 0.0;
    out.has_gap_samples = min_gap <= 1e17;
    out.min_gap_m = out.has_gap_samples
                        ? min_gap
                        : std::numeric_limits<double>::quiet_NaN();

    // Follower speed oscillation: pooled stddev across followers.
    std::vector<double> follower_speeds;
    bool first = true;
    double fuel_sum = 0.0;
    std::size_t fuel_n = 0;
    double avail_sum = 0.0;
    std::size_t avail_n = 0;

    for (const auto* v : vehicles_) {
        if (first) {
            first = false;  // skip the leader for follower stats
            continue;
        }
        const auto* speed =
            traces_.find("speed." + std::to_string(v->id().value));
        if (speed != nullptr) {
            for (std::size_t i = 0; i < speed->size(); ++i) {
                if (speed->times()[i] < warmup) continue;
                follower_speeds.push_back(speed->values()[i]);
            }
        }
        fuel_sum += v->fuel().litres_per_100km();
        ++fuel_n;
        avail_sum += v->stack().cacc_availability();
        ++avail_n;

        out.rejected_auth += v->counters().rejected_total();
        out.rejected_replay += v->counters().rejected_replay;
        out.vpd_detections += v->vpd().detections();
        out.self_echoes = std::max(
            out.self_echoes,
            static_cast<std::uint64_t>(v->impersonation_self_echoes()));
    }
    out.follower_speed_stddev = population_stddev(follower_speeds);
    if (fuel_n > 0) out.fuel_l_per_100km = fuel_sum / static_cast<double>(fuel_n);
    if (avail_n > 0) out.cacc_availability = avail_sum / static_cast<double>(avail_n);
    return out;
}

}  // namespace platoon::core
