// Metrics: what an attack (or a defense) did to the platoon.
//
// A PlatoonMetrics samples the ground-truth state of a fixed set of vehicles
// at 10 Hz and aggregates, after a configurable warm-up:
//  - spacing statistics (RMS error vs the CACC set-point, min gap),
//  - collision episodes (bumper-to-bumper gap reaching ~0),
//  - speed oscillation (stddev of follower speeds, max |accel|),
//  - platooning availability (time the CACC stayed engaged),
//  - fuel economy (the quantity platooning exists to improve),
// plus network and security counters read from the stack at summary time.
#pragma once

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/vehicle.hpp"
#include "sim/trace.hpp"

namespace platoon::core {

struct MetricsParams {
    double desired_gap_m = 5.0;     ///< CACC set-point.
    double collision_gap_m = 0.05;  ///< Gap below this counts as a collision.
    sim::SimTime warmup_s = 10.0;   ///< Excluded from aggregate statistics.
    sim::SimTime sample_period_s = 0.1;
};

/// Aggregated outcome of one run; also the row format for benches (flat
/// name -> value map keeps reporting generic).
struct MetricsSummary {
    double spacing_rms_m = 0.0;      ///< RMS of (gap - desired) over pairs.
    double spacing_max_abs_m = 0.0;
    /// Smallest post-warmup inter-vehicle gap. NaN (with has_gap_samples
    /// false) when no post-warmup gap was ever sampled -- the old 0.0
    /// sentinel was indistinguishable from "vehicles were touching".
    double min_gap_m = std::numeric_limits<double>::quiet_NaN();
    bool has_gap_samples = false;
    int collisions = 0;
    double follower_speed_stddev = 0.0;
    double max_abs_accel = 0.0;
    double cacc_availability = 1.0;  ///< Fraction of time CACC engaged.
    double fuel_l_per_100km = 0.0;   ///< Mean across followers.
    double pdr = 1.0;                ///< Network packet delivery ratio.
    std::uint64_t frames_sent = 0;
    std::uint64_t rejected_auth = 0; ///< Sum of all crypto rejections.
    std::uint64_t rejected_replay = 0;
    std::uint64_t vpd_detections = 0;
    std::uint64_t self_echoes = 0;

    [[nodiscard]] std::map<std::string, double> as_map() const;
};

/// Numerically stable (two-pass) population standard deviation. The naive
/// E[x^2] - mean^2 form cancels catastrophically when the mean dwarfs the
/// spread (speeds ~25 m/s with mm/s oscillation already loses digits; a
/// position-like series loses everything). Returns 0.0 for n < 2.
[[nodiscard]] double population_stddev(const std::vector<double>& values);

class PlatoonMetrics {
public:
    explicit PlatoonMetrics(MetricsParams params = {}) : params_(params) {}

    /// Fixes the set of vehicles whose formation is being scored (usually
    /// the initial platoon, leader first). Order is irrelevant; samples
    /// sort by ground-truth position.
    void watch(std::vector<const PlatoonVehicle*> vehicles) {
        vehicles_ = std::move(vehicles);
    }

    /// Takes one ground-truth sample (wired to the scheduler by Scenario).
    void sample(sim::SimTime now);

    /// Aggregates everything sampled after warm-up. `network_stats` and the
    /// per-vehicle counters are read live.
    [[nodiscard]] MetricsSummary summarize(
        const net::NetworkStats& network_stats) const;

    [[nodiscard]] const sim::TraceRecorder& traces() const { return traces_; }
    [[nodiscard]] sim::TraceRecorder& traces() { return traces_; }
    [[nodiscard]] const MetricsParams& params() const { return params_; }

private:
    MetricsParams params_;
    std::vector<const PlatoonVehicle*> vehicles_;
    sim::TraceRecorder traces_;
    int collisions_ = 0;
    bool in_collision_ = false;
};

}  // namespace platoon::core
