#include "core/experiment.hpp"

#include <cmath>

namespace platoon::core {

MetricMap run_once(const RunSpec& spec) {
    Scenario scenario(spec.scenario);
    if (spec.setup) spec.setup(scenario);
    scenario.run_until(spec.duration_s);
    MetricMap out = scenario.summarize().as_map();
    if (spec.collect) spec.collect(scenario, out);
    return out;
}

Aggregate run_seeds(RunSpec spec, std::size_t seeds) {
    Aggregate agg;
    MetricMap sum, sum_sq;
    const std::uint64_t base_seed = spec.scenario.seed;
    for (std::size_t k = 0; k < seeds; ++k) {
        spec.scenario.seed = base_seed + k;
        const MetricMap result = run_once(spec);
        for (const auto& [name, value] : result) {
            sum[name] += value;
            sum_sq[name] += value * value;
        }
        ++agg.runs;
    }
    for (const auto& [name, total] : sum) {
        const double mean = total / static_cast<double>(agg.runs);
        agg.mean[name] = mean;
        const double var =
            sum_sq[name] / static_cast<double>(agg.runs) - mean * mean;
        agg.stddev[name] = std::sqrt(std::max(0.0, var));
    }
    return agg;
}

}  // namespace platoon::core
