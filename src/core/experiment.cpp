#include "core/experiment.hpp"

#include <cmath>
#include <cstdlib>

namespace platoon::core {

MetricMap run_once(const RunSpec& spec) {
    Scenario scenario(spec.scenario);
    if (spec.setup) spec.setup(scenario);
    scenario.run_until(spec.duration_s);
    MetricMap out = scenario.summarize().as_map();
    if (spec.collect) spec.collect(scenario, out);
    return out;
}

Aggregate aggregate_runs(const std::vector<MetricMap>& runs) {
    Aggregate agg;
    agg.runs = runs.size();
    if (runs.empty()) return agg;
    MetricMap sum, sum_sq;
    for (const MetricMap& result : runs) {
        for (const auto& [name, value] : result) {
            sum[name] += value;
            sum_sq[name] += value * value;
        }
    }
    for (const auto& [name, total] : sum) {
        const double mean = total / static_cast<double>(agg.runs);
        agg.mean[name] = mean;
        const double var =
            sum_sq[name] / static_cast<double>(agg.runs) - mean * mean;
        agg.stddev[name] = std::sqrt(std::max(0.0, var));
    }
    return agg;
}

unsigned default_jobs() {
    if (const char* env = std::getenv("PLATOON_JOBS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0) return static_cast<unsigned>(parsed);
    }
    return sim::ThreadPool::hardware_jobs();
}

Aggregate run_seeds(RunSpec spec, std::size_t seeds, unsigned jobs) {
    const std::uint64_t base_seed = spec.scenario.seed;
    std::vector<std::function<MetricMap()>> cells;
    cells.reserve(seeds);
    for (std::size_t k = 0; k < seeds; ++k) {
        RunSpec seed_spec = spec;
        seed_spec.scenario.seed = base_seed + k;
        cells.emplace_back(
            [seed_spec = std::move(seed_spec)] { return run_once(seed_spec); });
    }
    // run_grid_protected returns per-seed outcomes in seed order; the fold
    // below is the same accumulation at any job count, hence bit-identical
    // output. A replication that throws becomes a RunFailure record instead
    // of aborting the sweep (and the other seeds' results with it).
    const std::vector<CellOutcome<MetricMap>> outcomes =
        run_grid_protected(std::move(cells), jobs == 0 ? 1 : jobs);
    std::vector<MetricMap> succeeded;
    succeeded.reserve(outcomes.size());
    std::vector<RunFailure> failures;
    for (std::size_t k = 0; k < outcomes.size(); ++k) {
        if (outcomes[k].value) {
            succeeded.push_back(*outcomes[k].value);
        } else {
            failures.push_back(RunFailure{k, base_seed + k, outcomes[k].error});
        }
    }
    Aggregate agg = aggregate_runs(succeeded);
    agg.failures = std::move(failures);
    return agg;
}

Aggregate run_seeds_parallel(RunSpec spec, std::size_t seeds, unsigned jobs) {
    return run_seeds(std::move(spec), seeds, jobs == 0 ? default_jobs() : jobs);
}

}  // namespace platoon::core
