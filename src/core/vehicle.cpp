#include "core/vehicle.hpp"

#include "crypto/chacha20.hpp"
#include "crypto/eddsa.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"
#include "sim/logging.hpp"

namespace platoon::core {

namespace {

std::string stream_name(const char* what, sim::NodeId id) {
    return std::string(what) + "." + std::to_string(id.value);
}

}  // namespace

PlatoonVehicle::PlatoonVehicle(VehicleConfig config, sim::Scheduler& scheduler,
                               net::Network& network,
                               std::uint64_t master_seed)
    : config_(config),
      scheduler_(scheduler),
      network_(network),
      rng_(master_seed, stream_name("vehicle", config.id)),
      dynamics_(config.vehicle, config.initial_state),
      gps_(dynamics_, {}, rng_),
      radar_(dynamics_, {}, rng_),
      odometry_(dynamics_, {}, rng_),
      stack_(control::make_controller(config.cacc_type), config.fallback),
      approach_controller_(control::AccParams{
          .time_gap_s = 0.3, .lambda = 0.15, .min_gap_m = 3.0,
          .free_flow_gain = 0.8}),
      role_(config.role),
      platoon_id_(config.platoon_id),
      lane_(config.lane),
      desired_speed_mps_(config.desired_speed_mps),
      admission_(config.admission),
      joiner_(config.joiner),
      hardening_(security::OnboardHardening::Params{
          config.security.firewall, config.security.antivirus, 0.85, 8.0}) {
    PLATOON_EXPECTS(config_.id.valid());
    wire_id_ = config_.id.value;

    crypto::MessageProtection::Config prot;
    prot.mode = config_.security.auth_mode;
    prot.encrypt = config_.security.encrypt_payloads;
    prot.freshness_window_s = config_.security.freshness_window_s;
    prot.check_replay = config_.security.check_replay;
    protection_ = crypto::MessageProtection(prot);

    if (config_.role == control::Role::kLeader) {
        membership_.emplace(platoon_id_, config_.id);
        admission_.set_rate_limit(config_.security.join_rate_limit_s);
    }
    if (config_.leader_hint.valid()) leader_wire_ = config_.leader_hint.value;

    security::HybridComms::Params hybrid_params;
    hybrid_params.require_dual_channel_maneuvers =
        config_.security.require_dual_channel_maneuvers;
    hybrid_ = security::HybridComms(hybrid_params);

    last_own_position_ = config_.initial_state.position_m;
}

std::uint32_t PlatoonVehicle::wire_id() const { return wire_id_; }

void PlatoonVehicle::provision_group_key(crypto::Bytes key) {
    protection_.set_group_key(std::move(key));
}

void PlatoonVehicle::provision_credential(crypto::Credential long_term,
                                          crypto::PseudonymPool pseudonyms) {
    wire_id_ = long_term.cert.subject.value;
    active_credential_ = long_term;
    protection_.set_credential(std::move(long_term));
    pseudonyms_ = std::move(pseudonyms);
}

void PlatoonVehicle::set_ca_public_key(crypto::Bytes ca_pub) {
    protection_.set_ca_public_key(std::move(ca_pub));
}

void PlatoonVehicle::set_pairwise_key(std::uint32_t peer, crypto::Bytes key) {
    protection_.set_pairwise_key(peer, std::move(key));
}

void PlatoonVehicle::set_verdict_cache(crypto::VerdictCache* cache) {
    protection_.set_verdict_cache(cache);
}

void PlatoonVehicle::start() {
    PLATOON_EXPECTS(!running_);
    running_ = true;
    net::Network::NodeTraits traits;
    traits.vlc = true;  // vehicles carry front/rear optical transceivers
    network_.register_node(
        config_.id, [this] { return dynamics_.position(); },
        [this](const net::Frame& frame, const net::RxInfo& info) {
            on_frame(frame, info);
        },
        traits);

    // Stagger the periodic loops per vehicle so events don't all collide on
    // identical timestamps (and so the MAC sees realistic beacon phasing).
    const sim::SimTime control_phase =
        rng_.uniform(0.0, config_.control_period_s);
    const sim::SimTime beacon_phase = rng_.uniform(0.0, config_.beacon_period_s);
    control_timer_ = scheduler_.schedule_every(
        scheduler_.now() + control_phase, config_.control_period_s,
        [this] { control_step(); });
    beacon_timer_ = scheduler_.schedule_every(
        scheduler_.now() + beacon_phase, config_.beacon_period_s,
        [this] { send_beacon(); });

    if (config_.security.pseudonym_rotation_s > 0.0 && !pseudonyms_.empty()) {
        rotate_pseudonym();  // start on a pseudonym, not the long-term id
        pseudonym_timer_ = scheduler_.schedule_every(
            scheduler_.now() + config_.security.pseudonym_rotation_s,
            config_.security.pseudonym_rotation_s,
            [this] { rotate_pseudonym(); });
    }
}

void PlatoonVehicle::stop() {
    if (!running_) return;
    running_ = false;
    scheduler_.cancel(control_timer_);
    scheduler_.cancel(beacon_timer_);
    scheduler_.cancel(pseudonym_timer_);
    network_.unregister_node(config_.id);
}

void PlatoonVehicle::rotate_pseudonym() {
    if (pseudonyms_.empty()) return;
    const crypto::Credential& cred = pseudonyms_.rotate();
    wire_id_ = cred.cert.subject.value;
    active_credential_ = cred;
    protection_.set_credential(cred);
}

void PlatoonVehicle::request_group_key() {
    net::KeyMgmtMsg msg;
    msg.type = net::KeyMgmtType::kKeyRequest;
    msg.sender = wire_id();
    send_typed(net::MsgType::kKeyMgmt, crypto::BytesView(msg.encode()));
}

void PlatoonVehicle::prune_peers(sim::SimTime now) {
    // Sweep gate: erase_if walks the whole peer table -- at corridor scale
    // that is every node in radio range, 100 times per second per vehicle,
    // and it dominated the highway-scale profile. peers_min_received_ is a
    // conservative lower bound on every entry's received_at (beacon
    // refreshes only raise timestamps; the bound only ratchets down), so
    // when no entry can have aged past the 2 s horizon the sweep is
    // provably a no-op and the peer table is bit-identical either way.
    if (peers_min_received_ < now - 2.0) {
        std::erase_if(peers_, [now](const auto& entry) {
            return entry.second.state.age(now) > 2.0;
        });
        peers_min_received_ = std::numeric_limits<double>::infinity();
        for (const auto& [wire, peer] : peers_)
            peers_min_received_ =
                std::min(peers_min_received_, peer.state.received_at);
        rebuild_peer_index();
    }
    if (predecessor_wire_ && !peers_.contains(*predecessor_wire_))
        predecessor_wire_.reset();
    if (leader_wire_ && !peers_.contains(*leader_wire_) &&
        role_ != control::Role::kLeader) {
        // Keep the hint around briefly; CACC freshness checks handle staleness.
    }
}

void PlatoonVehicle::enable_peer_index() {
    peer_index_enabled_ = true;
    rebuild_peer_index();
}

void PlatoonVehicle::rebuild_peer_index() {
    if (!peer_index_enabled_) return;
    platoon_peer_wires_.clear();
    if (platoon_id_ == 0) return;
    for (const auto& [wire, peer] : peers_)
        if (peer.platoon_id == platoon_id_) platoon_peer_wires_.push_back(wire);
}

void PlatoonVehicle::refresh_topology(double own_position, sim::SimTime now) {
    if (role_ == control::Role::kLeader) {
        predecessor_wire_.reset();
        return;
    }
    // Predecessor: nearest same-platoon, same-lane peer claiming a position
    // ahead of us. Position-based derivation keeps working across joins,
    // leaves and pseudonym rotations -- and is exactly the surface Sybil
    // ghost vehicles exploit.
    std::optional<std::uint32_t> best;
    double best_delta = 1e18;
    const auto consider = [&](std::uint32_t wire, const Peer& peer) {
        if (platoon_id_ == 0 || peer.platoon_id != platoon_id_) return;
        if (peer.lane != lane_) return;
        if (peer.state.age(now) > 1.5) return;
        if (config_.security.trust_management && !trust_.trusted(wire))
            return;
        const double delta = peer.state.position_m - own_position;
        if (delta > 0.0 && delta < best_delta) {
            best_delta = delta;
            best = wire;
        }
        // Leader claim: index 0 in our platoon. Sanity: the leader is
        // ahead of every member by definition -- an index-0 claim from
        // behind us is someone abusing the leader's identity or role.
        if (peer.platoon_index == 0 && peer.state.position_m > own_position)
            leader_wire_ = wire;
    };
    if (peer_index_enabled_) {
        // Corridor mode: only same-platoon peers can pass the filters, so
        // scan the maintained index instead of every node in radio range.
        for (const std::uint32_t wire : platoon_peer_wires_) {
            const auto it = peers_.find(wire);
            if (it != peers_.end()) consider(wire, it->second);
        }
    } else {
        for (const auto& [wire, peer] : peers_) consider(wire, peer);
    }
    predecessor_wire_ = best;
}

std::optional<double> PlatoonVehicle::beacon_gap(double own_position) const {
    if (!predecessor_wire_) return std::nullopt;
    const auto it = peers_.find(*predecessor_wire_);
    if (it == peers_.end()) return std::nullopt;
    // Dead-reckon the claim to now: beacons are up to one period old and a
    // platoon moves ~2.5 m per beacon interval, which would otherwise read
    // as a systematic gap error (and trip VPD-ADA on honest traffic).
    const control::PeerState& pred = it->second.state;
    const double age = std::max(0.0, scheduler_.now() - pred.received_at);
    const double predicted =
        pred.position_m + pred.speed_mps * age +
        0.5 * pred.accel_mps2 * age * age;
    return predicted - pred.length_m - own_position;
}

void PlatoonVehicle::control_step() {
    const double dt = config_.control_period_s;
    const sim::SimTime now = scheduler_.now();
    prune_peers(now);

    // --- sensing -----------------------------------------------------------
    // Sensor dropout (benign fault): the sensors return nothing, so the
    // vehicle drives on -- and beacons -- its last fused position while its
    // true position moves on. An honest vehicle that looks like it is lying
    // about where it is, which is the detectors' hardest benign case.
    double own_position = last_own_position_;
    if (!sensor_dropout_) {
        const phys::GpsSensor::Fix fix = gps_.read();
        own_position = fix.position_m;
        if (config_.security.sensor_fusion) {
            const auto fused = gps_fusion_.update(now, fix.position_m,
                                                  odometry_.read_speed(), dt);
            own_position = fused.position_m;
        }
        last_own_position_ = own_position;
    }

    if (radar_target_resolver_)
        radar_.set_target(radar_target_resolver_(*this));
    std::optional<phys::RadarSensor::Measurement> radar_meas;
    if (!sensor_dropout_) radar_meas = radar_.read();
    last_radar_gap_m_.reset();
    last_radar_closing_mps_.reset();
    if (radar_meas) {
        last_radar_gap_m_ = radar_meas->gap_m;
        last_radar_closing_mps_ = radar_meas->closing_mps;
    }

    refresh_topology(own_position, now);

    // --- control inputs ------------------------------------------------------
    control::ControlInputs in;
    in.now = now;
    in.own_position_m = own_position;
    in.own_speed_mps = dynamics_.speed();
    in.own_accel_mps2 = dynamics_.accel();
    in.desired_speed_mps = desired_speed_mps_;

    const bool radar_trusted =
        !config_.security.sensor_fusion || !radar_fusion_.distrusted(now);
    if (radar_meas && radar_trusted) {
        in.radar_gap_m = radar_meas->gap_m;
        in.radar_closing_mps = radar_meas->closing_mps;
    }
    if (predecessor_wire_) {
        const auto it = peers_.find(*predecessor_wire_);
        if (it != peers_.end()) in.predecessor = it->second.state;
    }
    if (leader_wire_) {
        const auto it = peers_.find(*leader_wire_);
        if (it != peers_.end()) in.leader = it->second.state;
    }

    // --- defenses ------------------------------------------------------------
    const auto claimed_gap = beacon_gap(own_position);
    std::optional<double> radar_gap, radar_closing;
    if (radar_meas) {
        radar_gap = radar_meas->gap_m;
        radar_closing = radar_meas->closing_mps;
    }
    // The claimed gap only changes when a beacon arrives (10 Hz); clocking
    // the detectors at the control rate (100 Hz) would turn one noisy
    // beacon into ten "consecutive" strikes. Feed them per fresh beacon.
    const bool fresh_evidence =
        in.predecessor && in.predecessor->received_at != vpd_last_evidence_;
    if (config_.security.vpd_ada) {
        if (fresh_evidence) {
            std::optional<double> claimed_closing =
                in.own_speed_mps - in.predecessor->speed_mps;
            const bool new_detection = vpd_.update(
                now, radar_gap, claimed_gap, radar_closing, claimed_closing);
            if (new_detection && predecessor_wire_) {
                if (config_.security.report_misbehavior)
                    report_misbehavior(*predecessor_wire_);
            }
            // Sustained evidence burns trust per beacon -- but only when
            // THIS beacon is discrepant, and only against the peer that
            // produced it. (Penalising whoever is predecessor while a
            // quarantine lingers would chase honest vehicles after the
            // liar is excluded.)
            if (config_.security.trust_management && predecessor_wire_ &&
                fresh_evidence) {
                // Stricter than the VPD quarantine gate: a penalty is ~30
                // rewards, so its false-positive rate must be far below the
                // ~2-sigma VPD threshold (claimed gaps carry ~2.1 m of GPS
                // noise). 2x the VPD threshold is a >3.5-sigma event.
                const bool gap_strike =
                    radar_gap && claimed_gap &&
                    std::abs(*radar_gap - *claimed_gap) >
                        2.0 * vpd_.params().gap_threshold_m;
                const bool speed_strike =
                    radar_closing && claimed_closing &&
                    std::abs(*radar_closing - *claimed_closing) >
                        vpd_.params().speed_threshold_mps;
                if (gap_strike || speed_strike)
                    trust_.penalize(*predecessor_wire_);
            }
        }
        stack_.quarantine_beacons(vpd_.quarantined(now) || detached_);
    } else {
        stack_.quarantine_beacons(detached_);
    }
    if (config_.security.sensor_fusion && fresh_evidence)
        radar_fusion_.update(now, radar_gap, claimed_gap);
    if (fresh_evidence) vpd_last_evidence_ = in.predecessor->received_at;

    if (spacing_override_ && now > spacing_override_until_) {
        spacing_override_.reset();
        if (auto* path = dynamic_cast<control::PathCaccController*>(
                &stack_.cacc())) {
            path->set_spacing(control::PathCaccParams{}.spacing_m);
        }
        // VPD-ADA family [10]: a gap we opened for an entrance that never
        // happened was a fake maneuver -- stop honouring gap-opens for a
        // while and tell the RSU.
        if (config_.security.vpd_ada &&
            predecessor_wire_ == gap_open_predecessor_) {
            gap_open_ignore_until_ = now + 120.0;
            if (config_.security.report_misbehavior && leader_wire_)
                report_misbehavior(*leader_wire_);
        }
    }
    if (config_.security.hybrid_comms) hybrid_.expire(now);

    // --- command by role -------------------------------------------------------
    double command = 0.0;
    switch (role_) {
        case control::Role::kLeader:
            command = leader_controller_.compute(in, dt);
            break;
        case control::Role::kMember:
            command = stack_.compute(in, dt);
            break;
        case control::Role::kJoiner: {
            if (joiner_.state() == control::JoinerFsm::State::kRequested &&
                joiner_.on_timeout(now)) {
                if (joiner_.attempts() < 5) {
                    request_join(join_platoon_, join_leader_);
                } else {
                    role_ = control::Role::kFree;
                    break;
                }
            }
            if (joiner_.state() == control::JoinerFsm::State::kApproach) {
                const auto it = peers_.find(join_tail_wire_);
                if (it != peers_.end()) {
                    in.predecessor = it->second.state;
                    in.desired_speed_mps =
                        std::min(dynamics_.params().max_speed_mps,
                                 it->second.state.speed_mps + 3.0);
                    const double gap = it->second.state.position_m -
                                       it->second.state.length_m -
                                       own_position;
                    const double target_gap =
                        control::PathCaccParams{}.spacing_m;
                    if (joiner_.on_progress(
                            gap - target_gap,
                            dynamics_.speed() - it->second.state.speed_mps)) {
                        // In position: engage CACC and notify the leader.
                        role_ = control::Role::kMember;
                        platoon_id_ = join_platoon_;
                        rebuild_peer_index();
                        net::ManeuverMsg done;
                        done.type = net::ManeuverType::kJoinComplete;
                        done.platoon_id = join_platoon_;
                        done.sender = wire_id();
                        done.subject = wire_id();
                        send_maneuver(done);
                        break;
                    }
                }
            }
            command = approach_controller_.compute(in, dt);
            break;
        }
        case control::Role::kFree:
            command = approach_controller_.compute(in, dt);
            break;
    }

    // Autonomous emergency braking: radar-based last-resort safety net.
    // PATH CACC is a small-perturbation tracking law; when the physical
    // predecessor brakes away from the leader's speed (split, fallback,
    // attack fallout) the constant-spacing law alone can be too soft.
    // Brake proportionally: enough to null the closing speed half a metre
    // before contact, floored at a firm 2 m/s^2 and capped by the brakes.
    if (radar_meas && radar_trusted && role_ != control::Role::kLeader) {
        const double gap = radar_meas->gap_m;
        const double closing = radar_meas->closing_mps;
        if (closing > 0.05 && (gap / closing < 2.5 || gap < 3.0)) {
            // 1.6x margin: the predecessor is usually still decelerating
            // while we react through the 0.5 s actuation lag.
            const double required =
                1.6 * closing * closing / (2.0 * std::max(0.3, gap - 1.0));
            command = std::min(
                command, -std::min(dynamics_.params().max_decel_mps2,
                                   std::max(2.0, required)));
        } else if (gap < 1.0) {
            command = std::min(command, -dynamics_.params().max_decel_mps2);
        }
    }

    dynamics_.set_command(command);
    dynamics_.step(dt);

    // --- fuel (ground-truth slipstream) -----------------------------------
    double drag = 1.0;
    if (const auto* target = radar_.target()) {
        const double true_gap =
            target->position() - target->length() - dynamics_.position();
        if (true_gap >= 0.0 && true_gap < 120.0)
            drag = phys::drag_fraction(true_gap);
    }
    fuel_.accumulate(dynamics_.speed(), dynamics_.accel(), drag, dt);
}

sim::SimTime PlatoonVehicle::stamped_now() const {
    const sim::SimTime now = scheduler_.now();
    if (!clock_skew_active_) return now;
    return now + clock_skew_offset_s_ +
           clock_skew_rate_ * (now - clock_skew_anchor_);
}

void PlatoonVehicle::send_beacon() {
    if (drop_beacons_ || comms_down_) return;

    net::Beacon beacon;
    beacon.sender = wire_id();
    beacon.platoon_id = detached_ ? 0 : platoon_id_;
    beacon.platoon_index =
        role_ == control::Role::kLeader && !detached_ ? 0 : 1;
    beacon.lane = lane_;
    beacon.position_m = last_own_position_;
    beacon.speed_mps = dynamics_.speed();
    beacon.accel_mps2 = dynamics_.accel();
    beacon.length_m = dynamics_.length();

    if (beacon_mutator_) beacon_mutator_(beacon);

    const crypto::Bytes payload = beacon.encode();
    crypto::Envelope envelope = protection_.protect(
        beacon.sender, crypto::BytesView(payload), stamped_now());

    net::Frame frame;
    frame.type = net::MsgType::kBeacon;
    frame.envelope = envelope;
    frame.band = net::Band::kDsrc;
    frame.truth = beacon_truth_;
    network_.broadcast(config_.id, frame);

    if (config_.security.hybrid_comms) {
        net::Frame secondary;
        secondary.type = net::MsgType::kBeacon;
        secondary.envelope = std::move(envelope);
        secondary.band = config_.security.secondary_band;
        secondary.truth = beacon_truth_;
        network_.broadcast(config_.id, std::move(secondary));
    }
    ++beacons_sent_;
}

void PlatoonVehicle::send_typed(net::MsgType type, crypto::BytesView payload) {
    if (comms_down_) return;
    crypto::Envelope envelope =
        protection_.protect(wire_id(), payload, stamped_now());
    net::Frame frame;
    frame.type = type;
    frame.envelope = envelope;
    frame.band = net::Band::kDsrc;
    network_.broadcast(config_.id, frame);

    if (config_.security.hybrid_comms) {
        net::Frame secondary;
        secondary.type = type;
        secondary.envelope = std::move(envelope);
        secondary.band = config_.security.secondary_band;
        network_.broadcast(config_.id, std::move(secondary));
    }
}

void PlatoonVehicle::adopt_platoon(std::uint32_t platoon_id,
                                   sim::NodeId leader_hint) {
    platoon_id_ = platoon_id;
    rebuild_peer_index();
    config_.leader_hint = leader_hint;
    role_ = control::Role::kMember;
    detached_ = false;
    // Stale wires point into the old platoon; refresh_topology() re-derives
    // both from the next beacons under the new platoon id.
    predecessor_wire_.reset();
    leader_wire_.reset();
}

void PlatoonVehicle::send_maneuver(const net::ManeuverMsg& msg) {
    send_typed(net::MsgType::kManeuver, crypto::BytesView(msg.encode()));
}

void PlatoonVehicle::request_join(std::uint32_t platoon_id,
                                  sim::NodeId leader) {
    role_ = control::Role::kJoiner;
    join_platoon_ = platoon_id;
    join_leader_ = leader;
    net::ManeuverMsg msg;
    msg.type = net::ManeuverType::kJoinRequest;
    msg.platoon_id = platoon_id;
    msg.sender = wire_id();
    msg.subject = wire_id();
    send_maneuver(msg);
    joiner_.on_request_sent(scheduler_.now());
}

void PlatoonVehicle::request_leave() {
    if (role_ != control::Role::kMember) return;
    net::ManeuverMsg msg;
    msg.type = net::ManeuverType::kLeaveRequest;
    msg.platoon_id = platoon_id_;
    msg.sender = wire_id();
    msg.subject = wire_id();
    send_maneuver(msg);
}

void PlatoonVehicle::report_misbehavior(std::uint32_t suspect) {
    net::KeyMgmtMsg report;
    report.type = net::KeyMgmtType::kMisbehaviorReport;
    report.sender = wire_id();
    report.receiver = config_.rsu_hint.valid() ? config_.rsu_hint.value
                                               : sim::NodeId::kInvalidValue;
    crypto::append_u32(report.blob, suspect);
    send_typed(net::MsgType::kKeyMgmt, crypto::BytesView(report.encode()));
}

void PlatoonVehicle::on_frame(const net::Frame& frame,
                              const net::RxInfo& info) {
    if (!running_ || comms_down_) return;  // crashed OBU hears nothing

    if (config_.security.hybrid_comms) {
        const auto action =
            hybrid_.on_receive(frame.envelope.sender, frame.envelope.seq,
                               frame.type, info.band, scheduler_.now());
        if (action != security::HybridComms::Action::kDeliver) return;
    }

    net::Frame copy = frame;
    process_payload(copy, info);
}

void PlatoonVehicle::process_payload(net::Frame& frame,
                                     const net::RxInfo& info) {
    // verify_and_open decrypts in place; relaying (SP-VLC chain) must
    // forward the pristine wire bytes or the tag no longer verifies.
    const crypto::Envelope original_envelope = frame.envelope;
    const crypto::VerifyResult vr =
        protection_.verify_and_open(frame.envelope, scheduler_.now());
    counters_.count(vr);
    // Legacy hole, modelled deliberately (rogue-RSU studies): a deployment
    // that does not insist on signed infrastructure lets unauthenticated
    // key-management frames through the policy gate.
    const bool legacy_infra_hole =
        !config_.security.require_signed_infrastructure &&
        frame.type == net::MsgType::kKeyMgmt &&
        vr == crypto::VerifyResult::kUnprotected;
    if (vr != crypto::VerifyResult::kOk && !legacy_infra_hole) return;

    // Self-echo: hearing "our own" identity from another physical node means
    // the identity is stolen (impersonation, Section V-F). Report it -- the
    // TA revokes the stolen credential and the vehicle re-enrolls.
    // Our own identity from another transmitter is an echo only when the
    // sequence number is one we never issued: SP-VLC relays re-broadcast
    // our past frames verbatim (seq < next_seq), while an impersonator must
    // out-run our counter to beat the receivers' replay guards.
    if (frame.envelope.sender == wire_id() &&
        info.physical_sender != config_.id &&
        frame.envelope.seq >= protection_.next_seq()) {
        ++self_echoes_;
        if (config_.security.report_misbehavior)
            report_misbehavior(frame.envelope.sender);
        // The identity is burned: when we participate in the misbehaviour
        // ecosystem (reporting / re-credentialing), move to a fresh
        // pseudonym so the platoon keeps trusting *us* while the TA
        // revokes the stolen credential. A bare-PKI vehicle has no recourse.
        if (config_.security.report_misbehavior && !pseudonyms_.empty())
            rotate_pseudonym();
        return;
    }
    if (info.physical_sender == config_.id) return;  // own relay echo

    switch (frame.type) {
        case net::MsgType::kBeacon: {
            const auto beacon =
                net::Beacon::decode(crypto::BytesView(frame.envelope.payload));
            if (beacon) {
                // handle_beacon needs the pristine envelope for the SP-VLC
                // relay; hand it the frame with the wire bytes restored (the
                // oracle truth rides along untouched).
                net::Frame relayable = frame;
                relayable.envelope = original_envelope;
                handle_beacon(*beacon, info, relayable);
            } else {
                ++counters_.rejected_malformed;
            }
            break;
        }
        case net::MsgType::kManeuver: {
            const auto msg = net::ManeuverMsg::decode(
                crypto::BytesView(frame.envelope.payload));
            if (msg) {
                if (message_observer_) {
                    MessageObservation obs{frame, info, nullptr, &*msg, true};
                    message_observer_(*this, obs);
                }
                handle_maneuver(*msg);
            } else {
                ++counters_.rejected_malformed;
            }
            break;
        }
        case net::MsgType::kKeyMgmt: {
            const auto msg = net::KeyMgmtMsg::decode(
                crypto::BytesView(frame.envelope.payload));
            if (msg) handle_keymgmt(*msg, frame.envelope);
            break;
        }
    }
}

void PlatoonVehicle::handle_beacon(const net::Beacon& beacon,
                                   const net::RxInfo& info,
                                   const net::Frame& frame) {
    const crypto::Envelope& envelope = frame.envelope;
    ++beacons_received_;
    // Oracle tap: the observer sees every beacon that cleared the crypto
    // gate, with `accepted` recording whether the defense gates below let
    // it influence state. Must stay side-effect free w.r.t. the simulation.
    const auto observe = [&](bool accepted) {
        if (!message_observer_) return;
        MessageObservation obs{frame, info, &beacon, nullptr, accepted};
        message_observer_(*this, obs);
    };
    if (config_.security.trust_management &&
        !trust_.trusted(envelope.sender)) {
        trust_.observe_dropped(envelope.sender);
        observe(false);
        return;  // surgically ignored until it re-earns trust
    }
    Peer& peer = peers_[envelope.sender];
    // A fresh insert carries received_at = -1.0 until the claim below is
    // accepted; track it so the next prune sweep sees it either way.
    peers_min_received_ =
        std::min(peers_min_received_, peer.state.received_at);

    // Plausibility gate (control-algorithm defense family): consecutive
    // claims from one identity must be kinematically consistent. Two
    // transmitters sharing an id (impersonation) or a crudely lying insider
    // interleave inconsistent claims and trip this check.
    if (config_.security.vpd_ada && peer.state.received_at >= 0.0) {
        const double dt = scheduler_.now() - peer.state.received_at;
        if (dt > 1e-3 && dt < 1.0) {
            const double dv = std::abs(beacon.speed_mps - peer.state.speed_mps);
            const double predicted =
                peer.state.position_m + peer.state.speed_mps * dt;
            const double dx = std::abs(beacon.position_m - predicted);
            if (dv > std::max(1.0, 12.0 * dt) || dx > 8.0) {
                ++plausibility_flags_;
                if (config_.security.trust_management)
                    trust_.penalize(envelope.sender);
                if (config_.security.report_misbehavior &&
                    scheduler_.now() - last_report_at_ > 1.0) {
                    last_report_at_ = scheduler_.now();
                    report_misbehavior(envelope.sender);
                }
                observe(false);
                return;  // reject the implausible claim
            }
        }
    }

    observe(true);
    if (config_.security.trust_management) trust_.reward(envelope.sender);
    peer.state.position_m = beacon.position_m;
    peer.state.speed_mps = beacon.speed_mps;
    peer.state.accel_mps2 = beacon.accel_mps2;
    peer.state.length_m = beacon.length_m;
    peer.state.received_at = scheduler_.now();
    peer.platoon_id = beacon.platoon_id;
    peer.platoon_index = beacon.platoon_index;
    peer.lane = beacon.lane;
    if (peer_index_enabled_) {
        const bool want =
            platoon_id_ != 0 && peer.platoon_id == platoon_id_;
        const auto at = std::find(platoon_peer_wires_.begin(),
                                  platoon_peer_wires_.end(), envelope.sender);
        if (want && at == platoon_peer_wires_.end())
            platoon_peer_wires_.push_back(envelope.sender);
        else if (!want && at != platoon_peer_wires_.end())
            platoon_peer_wires_.erase(at);
    }

    // SP-VLC chain relay: leader beacons hop member-to-member over VLC so
    // CACC keeps its leader feed when RF is jammed.
    if (config_.security.hybrid_comms && role_ == control::Role::kMember &&
        beacon.platoon_id == platoon_id_ && beacon.platoon_index == 0) {
        const std::uint64_t relay_key =
            (static_cast<std::uint64_t>(envelope.sender) << 32) ^ envelope.seq;
        if (vlc_forwarded_.insert(relay_key).second) {
            if (vlc_forwarded_.size() > 8192) vlc_forwarded_.clear();
            net::Frame relay;
            relay.type = net::MsgType::kBeacon;
            relay.envelope = envelope;
            relay.band = config_.security.secondary_band;
            relay.truth = frame.truth;  // a relayed forgery stays a forgery
            network_.broadcast(config_.id, std::move(relay));
        }
    }
    (void)info;
}

void PlatoonVehicle::handle_maneuver(const net::ManeuverMsg& msg) {
    if (role_ == control::Role::kLeader) {
        handle_maneuver_as_leader(msg);
    } else {
        handle_maneuver_as_member(msg);
    }
}

void PlatoonVehicle::handle_maneuver_as_leader(const net::ManeuverMsg& msg) {
    if (!membership_) return;
    if (msg.platoon_id != platoon_id_) return;
    const sim::NodeId subject{msg.subject};
    const sim::SimTime now = scheduler_.now();

    switch (msg.type) {
        case net::ManeuverType::kJoinRequest: {
            // Physical-presence check (control-algorithm defense, VPD-ADA
            // family [10]): a joiner must have been beaconing from a
            // plausible position near the platoon. A join-flood of ghost
            // identities never beacons and is dropped before it can occupy
            // an admission slot.
            if (config_.security.vpd_ada) {
                const auto peer = peers_.find(msg.sender);
                if (peer == peers_.end() ||
                    std::abs(peer->second.state.position_m -
                             last_own_position_) > 250.0) {
                    break;
                }
            }
            const auto decision = admission_.on_join_request(
                sim::NodeId{msg.sender}, membership_->size(), now);
            net::ManeuverMsg reply;
            reply.platoon_id = platoon_id_;
            reply.sender = wire_id();
            reply.subject = msg.sender;
            if (decision == control::AdmissionControl::Decision::kAccept) {
                reply.type = net::ManeuverType::kJoinAccept;
                reply.param = static_cast<double>(membership_->tail().value);
            } else {
                reply.type = net::ManeuverType::kJoinDeny;
            }
            send_maneuver(reply);
            break;
        }
        case net::ManeuverType::kJoinComplete: {
            if (!membership_->contains(sim::NodeId{msg.sender}))
                membership_->append(sim::NodeId{msg.sender});
            admission_.on_join_resolved(sim::NodeId{msg.sender});
            break;
        }
        case net::ManeuverType::kLeaveRequest: {
            if (!membership_->contains(sim::NodeId{msg.sender})) break;
            net::ManeuverMsg reply;
            reply.type = net::ManeuverType::kLeaveAccept;
            reply.platoon_id = platoon_id_;
            reply.sender = wire_id();
            reply.subject = msg.sender;
            send_maneuver(reply);
            break;
        }
        case net::ManeuverType::kLeaveComplete: {
            if (membership_->contains(sim::NodeId{msg.sender}) &&
                sim::NodeId{msg.sender} != membership_->leader())
                membership_->remove(sim::NodeId{msg.sender});
            break;
        }
        default:
            break;
    }
    (void)subject;
}

void PlatoonVehicle::handle_maneuver_as_member(const net::ManeuverMsg& msg) {
    const sim::SimTime now = scheduler_.now();

    // Joiner protocol replies are matched by subject, not platoon state.
    if (role_ == control::Role::kJoiner) {
        if (msg.subject == wire_id() &&
            msg.type == net::ManeuverType::kJoinAccept) {
            join_tail_wire_ = static_cast<std::uint32_t>(msg.param);
            joiner_.on_accept(now);
            return;
        }
        if (msg.subject == wire_id() &&
            msg.type == net::ManeuverType::kJoinDeny) {
            joiner_.on_deny();
            role_ = control::Role::kFree;
            return;
        }
        return;
    }

    if (role_ != control::Role::kMember) return;
    if (msg.platoon_id != platoon_id_) return;
    // Commands must come from (what we believe is) the leader. Without
    // authentication this check is trivially satisfied by a forged sender
    // field -- which is precisely the fake-maneuver attack.
    if (!leader_wire_ || msg.sender != *leader_wire_) return;

    switch (msg.type) {
        case net::ManeuverType::kGapOpen: {
            if (msg.subject != wire_id()) break;
            if (config_.security.vpd_ada && now < gap_open_ignore_until_)
                break;  // we were burned by a wasted gap recently
            if (spacing_override_) break;  // one gap at a time: re-assertions
                                           // don't extend the entrance window
            spacing_override_ = std::max(1.0, msg.param);
            spacing_override_until_ = now + 10.0;
            gap_open_predecessor_ = predecessor_wire_;
            if (auto* path = dynamic_cast<control::PathCaccController*>(
                    &stack_.cacc())) {
                path->set_spacing(*spacing_override_);
            }
            break;
        }
        case net::ManeuverType::kSplitRequest: {
            // Everyone at or behind the split subject detaches.
            if (msg.subject == wire_id()) {
                detached_ = true;
            } else if (const auto it = peers_.find(msg.subject);
                       it != peers_.end() &&
                       last_own_position_ <= it->second.state.position_m) {
                detached_ = true;
            }
            break;
        }
        case net::ManeuverType::kDissolve:
            detached_ = true;
            break;
        case net::ManeuverType::kLeaveAccept: {
            if (msg.subject != wire_id()) break;
            // Change lane, leave the platoon, confirm.
            lane_ += 1;
            platoon_id_ = 0;
            rebuild_peer_index();
            role_ = control::Role::kFree;
            detached_ = false;
            net::ManeuverMsg done;
            done.type = net::ManeuverType::kLeaveComplete;
            done.platoon_id = msg.platoon_id;
            done.sender = wire_id();
            done.subject = wire_id();
            send_maneuver(done);
            break;
        }
        default:
            break;
    }
}

void PlatoonVehicle::handle_keymgmt(const net::KeyMgmtMsg& msg,
                                    const crypto::Envelope& envelope) {
    switch (msg.type) {
        case net::KeyMgmtType::kCrlUpdate: {
            std::size_t off = 0;
            const crypto::BytesView blob(msg.blob);
            while (off + 8 <= blob.size()) {
                protection_.crl().revoke(crypto::read_u64(blob, off));
            }
            break;
        }
        case net::KeyMgmtType::kGroupKeyDistribution: {
            if (msg.receiver != wire_id()) break;
            if (!envelope.cert) {
                // Unwrapped key from uncertified "infrastructure": only a
                // misconfigured vehicle installs it (and promptly loses the
                // ability to talk to its real peers if the key is bogus).
                if (!config_.security.require_signed_infrastructure)
                    protection_.set_group_key(msg.blob);
                break;
            }
            if (!active_credential_) break;
            // Unwrap: ChaCha20 under ECDH(self, RSU).
            const crypto::Bytes shared = crypto::dh_shared_key(
                active_credential_->key.secret,
                crypto::BytesView(envelope.cert->public_key));
            crypto::Bytes nonce(12, 0);
            for (std::size_t i = 0; i < 4; ++i)
                nonce[i] = static_cast<std::uint8_t>(wire_id() >> (8 * i));
            const crypto::Bytes key = crypto::ChaCha20::crypt(
                crypto::BytesView(shared), crypto::BytesView(nonce),
                crypto::BytesView(msg.blob));
            protection_.set_group_key(key);
            break;
        }
        default:
            break;
    }
}

}  // namespace platoon::core
