// ASCII table / CSV reporting for benches and examples.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace platoon::core {

/// Column-aligned ASCII table.
class Table {
public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers)) {}

    void add_row(std::vector<std::string> cells);

    /// Formats a double compactly ("3.14", "0.002", "12400").
    [[nodiscard]] static std::string num(double v, int precision = 3);

    void print(std::ostream& os) const;
    void print_csv(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner (bench output structure).
void print_banner(std::ostream& os, const std::string& title);

}  // namespace platoon::core
