// Experiment harness: runs scenarios across seeds and aggregates metric
// maps. Attacks/defenses compose through a setup callback so that this
// module stays independent of the attack library (benches link both).
//
// Replications are embarrassingly parallel -- every seed builds its own
// Scenario (scheduler, network, RNG streams) with no shared mutable state --
// so `run_seeds` and `run_grid` can fan work out over a sim::ThreadPool.
// The determinism contract: results are always collected and aggregated in
// seed/cell order on the calling thread, so the output is bit-identical for
// any job count, including the serial jobs=1 path.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "sim/thread_pool.hpp"

namespace platoon::core {

using MetricMap = std::map<std::string, double>;

struct RunSpec {
    ScenarioConfig scenario;
    sim::SimTime duration_s = 100.0;
    /// Called after the scenario is built, before it runs (attach attacks,
    /// tweak vehicles, add joiners, ...).
    std::function<void(Scenario&)> setup;
    /// Called after the run; merge extra metrics into the result
    /// (attack-specific outcomes such as "bytes leaked").
    std::function<void(Scenario&, MetricMap&)> collect;
};

/// Runs one scenario to completion and returns its metrics.
[[nodiscard]] MetricMap run_once(const RunSpec& spec);

/// One replication that threw instead of producing metrics. Failures are
/// first-class results: a sweep over hostile configurations must report
/// "seed 43 exploded" next to the seeds that survived, not abort the batch.
struct RunFailure {
    std::size_t index = 0;     ///< Replication index (0-based).
    std::uint64_t seed = 0;    ///< The seed that failed.
    std::string error;         ///< exception .what(), or "unknown exception".
};

struct Aggregate {
    MetricMap mean;
    MetricMap stddev;
    std::size_t runs = 0;  ///< Successful replications (the divisor).
    std::vector<RunFailure> failures;
};

/// Folds per-run metric maps (in run order) into mean/stddev. Keys missing
/// from some runs are treated as contributing 0 to those runs, i.e. the
/// mean always divides by the total run count. seeds=0 -> empty aggregate.
[[nodiscard]] Aggregate aggregate_runs(const std::vector<MetricMap>& runs);

/// Number of worker threads to use when a caller passes jobs=0: the
/// PLATOON_JOBS environment variable if set and positive, else
/// hardware concurrency. PLATOON_JOBS=1 reproduces the serial path.
[[nodiscard]] unsigned default_jobs();

/// Runs `seeds` independent replications (seed = base_seed + k) on `jobs`
/// worker threads and aggregates them in seed order, so mean/stddev are
/// bit-identical regardless of `jobs`. jobs<=1 runs inline on the calling
/// thread (exactly the historical serial behavior).
[[nodiscard]] Aggregate run_seeds(RunSpec spec, std::size_t seeds,
                                  unsigned jobs = 1);

/// Same as run_seeds, but jobs=0 resolves through default_jobs()
/// (PLATOON_JOBS / hardware concurrency).
[[nodiscard]] Aggregate run_seeds_parallel(RunSpec spec, std::size_t seeds,
                                           unsigned jobs = 0);

/// Fans a grid of independent cells out over `jobs` workers and returns the
/// results *in cell order* (jobs=0 -> default_jobs(); jobs<=1 -> inline, in
/// order). Cells must be self-contained: each builds, runs, and summarizes
/// its own scenario(s). The bench binaries use this to run whole
/// (config, attack, defense, seed) grids concurrently while printing
/// byte-identical tables at any job count.
template <typename T>
[[nodiscard]] std::vector<T> run_grid(std::vector<std::function<T()>> cells,
                                      unsigned jobs = 0) {
    if (jobs == 0) jobs = default_jobs();
    std::vector<T> results;
    results.reserve(cells.size());
    if (jobs <= 1 || cells.size() <= 1) {
        for (auto& cell : cells) results.push_back(cell());
        return results;
    }
    sim::ThreadPool pool(jobs);
    std::vector<std::future<T>> futures;
    futures.reserve(cells.size());
    for (auto& cell : cells) futures.push_back(pool.submit(std::move(cell)));
    for (auto& future : futures) results.push_back(future.get());
    return results;
}

/// Result of one protected cell: exactly one of `value` / `error` is set.
template <typename T>
struct CellOutcome {
    std::optional<T> value;
    std::string error;
};

/// run_grid with per-cell exception isolation: a throwing cell yields a
/// CellOutcome carrying the exception message instead of tearing down the
/// whole grid (futures rethrow on .get(), which would otherwise abandon
/// every other cell's result). Outcome order matches cell order at any job
/// count, preserving the determinism contract.
template <typename T>
[[nodiscard]] std::vector<CellOutcome<T>> run_grid_protected(
    std::vector<std::function<T()>> cells, unsigned jobs = 0) {
    std::vector<std::function<CellOutcome<T>()>> wrapped;
    wrapped.reserve(cells.size());
    for (auto& cell : cells) {
        wrapped.emplace_back([cell = std::move(cell)]() -> CellOutcome<T> {
            try {
                return CellOutcome<T>{cell(), {}};
            } catch (const std::exception& e) {
                return CellOutcome<T>{std::nullopt, e.what()};
            } catch (...) {
                return CellOutcome<T>{std::nullopt, "unknown exception"};
            }
        });
    }
    return run_grid(std::move(wrapped), jobs);
}

}  // namespace platoon::core
