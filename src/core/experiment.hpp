// Experiment harness: runs scenarios across seeds and aggregates metric
// maps. Attacks/defenses compose through a setup callback so that this
// module stays independent of the attack library (benches link both).
#pragma once

#include <functional>
#include <map>
#include <string>

#include "core/scenario.hpp"

namespace platoon::core {

using MetricMap = std::map<std::string, double>;

struct RunSpec {
    ScenarioConfig scenario;
    sim::SimTime duration_s = 100.0;
    /// Called after the scenario is built, before it runs (attach attacks,
    /// tweak vehicles, add joiners, ...).
    std::function<void(Scenario&)> setup;
    /// Called after the run; merge extra metrics into the result
    /// (attack-specific outcomes such as "bytes leaked").
    std::function<void(Scenario&, MetricMap&)> collect;
};

/// Runs one scenario to completion and returns its metrics.
[[nodiscard]] MetricMap run_once(const RunSpec& spec);

struct Aggregate {
    MetricMap mean;
    MetricMap stddev;
    std::size_t runs = 0;
};

/// Runs `seeds` independent replications (seed = base_seed + k).
[[nodiscard]] Aggregate run_seeds(RunSpec spec, std::size_t seeds);

}  // namespace platoon::core
