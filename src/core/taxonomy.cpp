#include "core/taxonomy.hpp"

#include <algorithm>

#include "sim/assert.hpp"

namespace platoon::core {

const char* to_string(Attribute a) {
    switch (a) {
        case Attribute::kAuthenticity: return "authenticity";
        case Attribute::kIntegrity: return "integrity";
        case Attribute::kAvailability: return "availability";
        case Attribute::kConfidentiality: return "confidentiality";
    }
    return "?";
}

const char* to_string(Asset a) {
    switch (a) {
        case Asset::kLeader: return "leader";
        case Asset::kMember: return "member";
        case Asset::kJoinLeave: return "join/leave";
        case Asset::kRsu: return "RSU";
        case Asset::kTrustedAuthority: return "trusted-authority";
        case Asset::kSensors: return "sensors";
        case Asset::kV2vLink: return "V2V";
        case Asset::kV2iLink: return "V2I";
    }
    return "?";
}

const char* to_string(AttackKind k) {
    switch (k) {
        case AttackKind::kSybil: return "sybil";
        case AttackKind::kFakeManeuver: return "fake-maneuver";
        case AttackKind::kReplay: return "replay";
        case AttackKind::kJamming: return "jamming";
        case AttackKind::kEavesdropping: return "eavesdropping";
        case AttackKind::kDenialOfService: return "denial-of-service";
        case AttackKind::kImpersonation: return "impersonation";
        case AttackKind::kSensorSpoofing: return "gps/sensor-spoofing";
        case AttackKind::kMalware: return "malware";
        default: return "?";
    }
}

const char* to_string(DefenseKind d) {
    switch (d) {
        case DefenseKind::kSecretPublicKeys: return "secret-and-public-keys";
        case DefenseKind::kRoadsideUnits: return "roadside-units";
        case DefenseKind::kControlAlgorithms: return "control-algorithms";
        case DefenseKind::kHybridCommunications: return "hybrid-communications";
        case DefenseKind::kOnboardSecurity: return "onboard-security";
        default: return "?";
    }
}

Taxonomy::Taxonomy() {
    using AK = AttackKind;
    using DK = DefenseKind;
    using At = Attribute;
    using As = Asset;

    attacks_ = {
        {AK::kSybil,
         {At::kAuthenticity},
         {As::kLeader, As::kMember, As::kRsu},
         "Attacker inside the platoon fabricates ghost vehicles that request "
         "to join; destabilises the platoon and blocks real joiners",
         "security::SybilAttack",
         "[3], [6]"},
        {AK::kFakeManeuver,
         {At::kIntegrity},
         {As::kMember, As::kRsu},
         "Forged join/leave/split requests break the platoon apart or open "
         "gaps for nonexistent vehicles",
         "security::FakeManeuverAttack",
         "[17], [32]"},
        {AK::kReplay,
         {At::kIntegrity},
         {As::kLeader, As::kMember, As::kJoinLeave, As::kRsu},
         "Old messages re-injected; members receive conflicting information "
         "and the platoon oscillates",
         "security::ReplayAttack",
         "[2], [10]"},
        {AK::kJamming,
         {At::kAvailability},
         {As::kV2vLink, As::kV2iLink},
         "Communication frequencies flooded with noise; members cannot "
         "communicate and the platoon disbands",
         "security::JammingAttack",
         "[2]"},
        {AK::kEavesdropping,
         {At::kConfidentiality},
         {As::kV2vLink, As::kV2iLink},
         "Attacker understands transmitted information; data theft and "
         "privacy violation",
         "security::EavesdropAttack",
         "[34]"},
        {AK::kDenialOfService,
         {At::kAvailability},
         {As::kJoinLeave, As::kRsu},
         "Join-request flood exhausts the admission table; users cannot "
         "join or create a platoon",
         "security::DosAttack",
         "[33]"},
        {AK::kImpersonation,
         {At::kIntegrity, At::kConfidentiality},
         {As::kLeader, As::kMember, As::kRsu, As::kTrustedAuthority},
         "Attacker poses as another individual using a stolen or forged ID; "
         "false representation and reputation damage",
         "security::ImpersonationAttack, security::RogueRsuAttack",
         "[6]"},
        {AK::kSensorSpoofing,
         {At::kAuthenticity, At::kAvailability},
         {As::kSensors},
         "GPS signals overpowered and sensors jammed/spoofed; false sensing "
         "feeds the controllers",
         "security::GpsSpoofAttack, security::SensorSpoofAttack",
         "[13], [31]"},
        {AK::kMalware,
         {At::kAvailability, At::kIntegrity},
         {As::kLeader, As::kMember, As::kRsu, As::kTrustedAuthority},
         "Compromised on-board computer prevents platooning or turns the "
         "vehicle into a lying insider (FDI, data theft, DoS)",
         "security::MalwareAttack",
         "[6], [13]"},
    };

    defenses_ = {
        // Exactly the paper's Table III "attack target" column. (The
        // measured matrix in bench_table3 shows keys also stop Sybil and
        // DoS -- a superset of the paper's mapping; see EXPERIMENTS.md.)
        {DK::kSecretPublicKeys,
         {AK::kEavesdropping, AK::kFakeManeuver, AK::kReplay},
         "Large-scale testing of key creation and distribution methods to "
         "compare effectiveness against cost",
         "crypto::MessageProtection (+ crypto::agree for fading keys)"},
        {DK::kRoadsideUnits,
         {AK::kImpersonation, AK::kFakeManeuver},
         "More research into RSU network security and identification of "
         "rogue RSUs",
         "rsu::RsuNode, rsu::TrustedAuthority"},
        {DK::kControlAlgorithms,
         {AK::kDenialOfService, AK::kSybil, AK::kReplay, AK::kFakeManeuver},
         "Where in the network is it most efficient to deploy and use the "
         "algorithms",
         "security::VpdAdaDetector, control::ControllerStack"},
        {DK::kHybridCommunications,
         {AK::kJamming, AK::kSybil, AK::kReplay, AK::kFakeManeuver},
         "The use of VLC and wireless radio communications between V2I is "
         "lacking",
         "security::HybridComms, net::Network (VLC/C-V2X bands)"},
        {DK::kOnboardSecurity,
         {AK::kMalware, AK::kSensorSpoofing},
         "Most effective means to deploy such security measures without "
         "affecting response",
         "security::GpsFusion, security::RadarFusion, "
         "security::OnboardHardening"},
    };

    surveys_ = {
        {"Isaac et al., 2010 [18]",
         "cryptography-related: anonymity, key management, privacy, "
         "reputation, location",
         {"brute force", "misbehaving & malicious vehicles",
          "traffic analysis", "illusion", "position forging",
          "sybil / false position dissemination"}},
        {"Checkoway et al., 2011 [21]",
         "by attacker range: indirect physical, short-range wireless, "
         "long-range wireless",
         {"CD-based malware", "bluetooth", "remote keyless entry",
          "infrared ID", "cellular", "tyre pressure sensors"}},
        {"AL-Kahtani et al., 2012 [12]",
         "by broken security requirement (integrity, authentication, "
         "availability, confidentiality)",
         {"bogus information", "DoS", "masquerading", "blackhole", "malware",
          "spamming", "timing", "GPS spoofing", "man-in-the-middle", "sybil",
          "wormhole", "illusion", "impersonation"}},
        {"Mejri et al., 2014 [22]",
         "by attribute: availability, authenticity, confidentiality, "
         "integrity, non-repudiation",
         {"DoS", "jamming", "greedy behaviour", "malware",
          "broadcast tampering", "blackhole", "spamming", "eavesdrop",
          "sybil", "GPS spoofing", "masquerade", "replay", "tunneling",
          "key/certificate replication", "position faking",
          "message alteration", "information gathering", "traffic analysis"}},
        {"Parkinson et al., 2017 [13]",
         "threats to vehicles, human aspects and infrastructure",
         {"sensor spoofing", "jamming and DoS", "malware", "FDI on CAN",
          "TPMS attacks", "information theft", "location tracking",
          "bad driver", "communication jamming", "password and key attacks",
          "phishing", "rogue updates"}},
        {"Zhaojun et al., 2018 [11]",
         "by attribute: availability, authenticity, confidentiality, "
         "integrity, non-repudiation",
         {"DoS", "jamming", "malware", "broadcast tampering",
          "black/grey hole", "greedy behaviour", "spamming", "eavesdrop",
          "traffic analysis", "sybil", "tunneling", "GPS spoofing",
          "freeriding", "message falsification", "masquerade", "replay",
          "repudiation"}},
        {"Harkness et al., 2020 [19]",
         "ITS risk assessment; test-bed security recommendations",
         {"sensor spoofing and jamming", "information theft", "eavesdropping",
          "malware on vehicles and infrastructure"}},
        {"Hussain et al., 2020 [20]",
         "trust management in VANETs (incl. REPLACE for platoons)",
         {"(trust management methods rather than attacks)"}},
    };
}

const Taxonomy& Taxonomy::instance() {
    static const Taxonomy taxonomy;
    return taxonomy;
}

const AttackEntry& Taxonomy::attack(AttackKind kind) const {
    const auto it =
        std::find_if(attacks_.begin(), attacks_.end(),
                     [kind](const AttackEntry& e) { return e.kind == kind; });
    PLATOON_ASSERT(it != attacks_.end());
    return *it;
}

const DefenseEntry& Taxonomy::defense(DefenseKind kind) const {
    const auto it =
        std::find_if(defenses_.begin(), defenses_.end(),
                     [kind](const DefenseEntry& e) { return e.kind == kind; });
    PLATOON_ASSERT(it != defenses_.end());
    return *it;
}

bool Taxonomy::mitigates(DefenseKind defense, AttackKind attack) const {
    const auto& entry = this->defense(defense);
    return std::find(entry.mitigates.begin(), entry.mitigates.end(), attack) !=
           entry.mitigates.end();
}

}  // namespace platoon::core
