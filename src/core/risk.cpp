#include "core/risk.hpp"

#include <algorithm>
#include <sstream>

namespace platoon::core {

const char* to_string(Likelihood l) {
    switch (l) {
        case Likelihood::kVeryLow: return "very-low";
        case Likelihood::kLow: return "low";
        case Likelihood::kMedium: return "medium";
        case Likelihood::kHigh: return "high";
        case Likelihood::kVeryHigh: return "very-high";
    }
    return "?";
}

const char* to_string(Severity s) {
    switch (s) {
        case Severity::kNegligible: return "negligible";
        case Severity::kMinor: return "minor";
        case Severity::kModerate: return "moderate";
        case Severity::kMajor: return "major";
        case Severity::kSevere: return "severe";
    }
    return "?";
}

Likelihood likelihood_for(AttackKind kind) {
    switch (kind) {
        case AttackKind::kEavesdropping:
            // Purely passive; any 802.11p-capable receiver works.
            return Likelihood::kVeryHigh;
        case AttackKind::kJamming:
            // A noise source needs no protocol knowledge at all.
            return Likelihood::kVeryHigh;
        case AttackKind::kReplay:
            // Record & re-send with a commodity SDR.
            return Likelihood::kHigh;
        case AttackKind::kDenialOfService:
            // Crafting join requests needs only the public standard.
            return Likelihood::kHigh;
        case AttackKind::kSybil:
        case AttackKind::kFakeManeuver:
            // Protocol-aware injection: public standard + an SDR.
            return Likelihood::kHigh;
        case AttackKind::kSensorSpoofing:
            // Sustained physical proximity + emitter hardware (radar/GNSS
            // spoofers, laser) -- harder to stage on a moving platoon.
            return Likelihood::kLow;
        case AttackKind::kMalware:
            // Needs an infection vector onto the OBU.
            return Likelihood::kMedium;
        case AttackKind::kImpersonation:
            // Needs extracted key material (HSM compromise, insider).
            return Likelihood::kVeryLow;
        default:
            return Likelihood::kMedium;
    }
}

namespace {
double metric_or(const std::map<std::string, double>& m,
                 const std::string& name, double fallback) {
    const auto it = m.find(name);
    return it == m.end() ? fallback : it->second;
}
}  // namespace

Severity severity_from_metrics(const std::map<std::string, double>& attacked,
                               const std::map<std::string, double>& clean) {
    if (metric_or(attacked, "collisions", 0.0) > 0.0) return Severity::kSevere;
    if (metric_or(attacked, "min_gap_m", 10.0) < 1.0) return Severity::kMajor;

    const double avail = metric_or(attacked, "cacc_availability", 1.0);
    const double clean_spacing = std::max(
        0.05, metric_or(clean, "spacing_rms_m", 0.4));
    const double spacing_ratio =
        metric_or(attacked, "spacing_rms_m", 0.0) / clean_spacing;
    if (avail < 0.7 || spacing_ratio > 10.0) return Severity::kModerate;

    const bool privacy_leak =
        metric_or(attacked, "attack.decode_ratio", 0.0) > 0.5 ||
        metric_or(attacked, "attack.longest_track_s", 0.0) > 30.0;
    const bool function_denied =
        metric_or(attacked, "join_success", 1.0) < 0.5;
    if (spacing_ratio > 2.0 || privacy_leak || function_denied)
        return Severity::kMinor;
    return Severity::kNegligible;
}

std::vector<RiskEntry> build_risk_register(
    const std::vector<std::pair<AttackKind,
                                std::pair<std::map<std::string, double>,
                                          std::map<std::string, double>>>>&
        measured) {
    std::vector<RiskEntry> out;
    out.reserve(measured.size());
    for (const auto& [kind, runs] : measured) {
        const auto& [attacked, clean] = runs;
        RiskEntry entry;
        entry.kind = kind;
        entry.likelihood = likelihood_for(kind);
        entry.severity = severity_from_metrics(attacked, clean);
        entry.score = static_cast<int>(entry.likelihood) *
                      static_cast<int>(entry.severity);

        std::ostringstream why;
        why << "feasibility " << to_string(entry.likelihood) << "; measured "
            << to_string(entry.severity);
        if (metric_or(attacked, "collisions", 0.0) > 0.0) why << " (collision)";
        entry.rationale = why.str();
        out.push_back(std::move(entry));
    }
    std::sort(out.begin(), out.end(),
              [](const RiskEntry& a, const RiskEntry& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              });
    return out;
}

}  // namespace platoon::core
