// PlatoonVehicle: the full per-vehicle application stack.
//
// Wires together dynamics + sensors (phys), the wireless stack (net +
// crypto envelope), the controllers with their degradation ladder
// (control), and the defense mechanisms (security). Runs two periodic
// loops on the simulation scheduler: a 100 Hz control step and a 10 Hz
// CAM beacon, exactly the Plexe cadence.
//
// The attack surface is explicit:
//  - sensors expose spoof/jam hooks (GPS & radar attacks),
//  - `set_beacon_mutator` / `set_drop_beacons` model a compromised ECU
//    (malware, FDI insider),
//  - the crypto envelope accepts whatever identity the MessageProtection
//    is provisioned with (impersonation = provisioning a stolen credential),
//  - everything else attacks the medium, not the vehicle.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "control/controller.hpp"
#include "control/fallback.hpp"
#include "control/platoon.hpp"
#include "crypto/secured_message.hpp"
#include "net/network.hpp"
#include "phys/fuel.hpp"
#include "phys/sensors.hpp"
#include "phys/vehicle_dynamics.hpp"
#include "defense/hybrid_comms.hpp"
#include "defense/onboard.hpp"
#include "defense/policy.hpp"
#include "defense/trust.hpp"
#include "defense/vpd_ada.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace platoon::core {

struct VehicleConfig {
    sim::NodeId id;
    control::Role role = control::Role::kMember;
    std::uint32_t platoon_id = 1;
    sim::NodeId leader_hint;  ///< Known leader (members/joiners).
    phys::VehicleParams vehicle = phys::truck_params();
    phys::VehicleState initial_state;
    std::uint8_t lane = 0;
    control::ControllerType cacc_type = control::ControllerType::kCaccPath;
    control::FallbackPolicy fallback;
    double desired_speed_mps = 25.0;
    sim::SimTime control_period_s = 0.01;
    sim::SimTime beacon_period_s = 0.1;
    security::SecurityPolicy security;
    control::AdmissionControl::Params admission;  ///< Leader only.
    control::JoinerFsm::Params joiner;
    sim::NodeId rsu_hint;  ///< Where to send misbehaviour reports.
};

class PlatoonVehicle {
public:
    PlatoonVehicle(VehicleConfig config, sim::Scheduler& scheduler,
                   net::Network& network, std::uint64_t master_seed);

    PlatoonVehicle(const PlatoonVehicle&) = delete;
    PlatoonVehicle& operator=(const PlatoonVehicle&) = delete;

    /// Registers with the network and starts the periodic loops.
    void start();
    void stop();

    /// --- provisioning (scenario setup) -------------------------------------
    void provision_group_key(crypto::Bytes key);
    void provision_credential(crypto::Credential long_term,
                              crypto::PseudonymPool pseudonyms);
    void set_ca_public_key(crypto::Bytes ca_pub);
    void set_pairwise_key(std::uint32_t peer, crypto::Bytes key);
    /// Scenario-shared cache of receiver-independent verification facts
    /// (see crypto::VerdictCache); non-owning, may be null.
    void set_verdict_cache(crypto::VerdictCache* cache);
    /// Ground-truth resolver for the radar (installed by the Scenario).
    using RadarTargetResolver =
        std::function<const phys::VehicleDynamics*(const PlatoonVehicle&)>;
    void set_radar_target_resolver(RadarTargetResolver resolver) {
        radar_target_resolver_ = std::move(resolver);
    }

    /// --- identity & role ----------------------------------------------------
    [[nodiscard]] sim::NodeId id() const { return config_.id; }
    /// Current on-wire identity (pseudonym subject under kSignature).
    [[nodiscard]] std::uint32_t wire_id() const;
    [[nodiscard]] control::Role role() const { return role_; }
    [[nodiscard]] std::uint32_t platoon_id() const { return platoon_id_; }
    [[nodiscard]] std::uint8_t lane() const { return lane_; }
    [[nodiscard]] bool detached() const { return detached_; }

    /// --- physical state ------------------------------------------------------
    [[nodiscard]] const phys::VehicleDynamics& dynamics() const {
        return dynamics_;
    }
    [[nodiscard]] phys::VehicleDynamics& mutable_dynamics() {
        return dynamics_;
    }
    [[nodiscard]] phys::GpsSensor& gps() { return gps_; }
    [[nodiscard]] phys::RadarSensor& radar() { return radar_; }
    [[nodiscard]] const phys::FuelModel& fuel() const { return fuel_; }

    /// --- control ---------------------------------------------------------
    [[nodiscard]] control::ControllerStack& stack() { return stack_; }
    [[nodiscard]] const control::ControllerStack& stack() const {
        return stack_;
    }
    void set_desired_speed(double v) { desired_speed_mps_ = v; }
    [[nodiscard]] double desired_speed() const { return desired_speed_mps_; }
    /// Claimed-beacon-derived predecessor (what the controller follows).
    [[nodiscard]] std::optional<std::uint32_t> current_predecessor() const {
        return predecessor_wire_;
    }

    /// --- platoon management -------------------------------------------------
    [[nodiscard]] control::Membership* membership() {
        return membership_ ? &*membership_ : nullptr;
    }
    [[nodiscard]] control::AdmissionControl& admission() { return admission_; }
    [[nodiscard]] control::JoinerFsm& joiner() { return joiner_; }
    /// Free vehicle asks `leader` to join platoon `platoon_id`.
    void request_join(std::uint32_t platoon_id, sim::NodeId leader);
    /// Member asks the leader to leave.
    void request_leave();
    /// Asks an RSU for the platoon group key (kKeyRequest; the reply is
    /// unwrapped with the active credential's ECDH key).
    void request_group_key();
    /// Leader sends a maneuver to the platoon (used by examples/tests).
    void send_maneuver(const net::ManeuverMsg& msg);

    /// --- corridor maneuvers (scenario-driven) -------------------------------
    /// These model the *outcome* of a negotiated corridor event (merge,
    /// cut-in, RSU handoff along the road); the message-level join/split
    /// protocols above remain the on-wire path. Topology re-derives from
    /// beacons, so adopting a platoon simply re-homes the identity and lets
    /// refresh_topology() find the new predecessor/leader.
    void adopt_platoon(std::uint32_t platoon_id, sim::NodeId leader_hint);
    void set_lane(std::uint8_t lane) { lane_ = lane; }
    void set_rsu_hint(sim::NodeId rsu) { config_.rsu_hint = rsu; }
    [[nodiscard]] sim::NodeId rsu_hint() const { return config_.rsu_hint; }

    /// Opt into the incrementally-maintained same-platoon peer index used
    /// by refresh_topology(). At corridor scale the peer table holds every
    /// node in radio range while only same-platoon entries matter to
    /// topology, so the full-table scan is O(corridor) per control step.
    /// Single-platoon scenarios keep the exact legacy scan (bit-identical
    /// goldens); multi-platoon scenarios enable the index at build time.
    void enable_peer_index();

    /// --- security state ----------------------------------------------------
    [[nodiscard]] crypto::MessageProtection& protection() {
        return protection_;
    }
    [[nodiscard]] security::SecurityCounters& counters() { return counters_; }
    [[nodiscard]] const security::SecurityCounters& counters() const {
        return counters_;
    }
    [[nodiscard]] security::VpdAdaDetector& vpd() { return vpd_; }
    [[nodiscard]] const security::VpdAdaDetector& vpd() const { return vpd_; }
    [[nodiscard]] security::HybridComms& hybrid() { return hybrid_; }
    [[nodiscard]] security::GpsFusion& gps_fusion() { return gps_fusion_; }
    [[nodiscard]] security::RadarFusion& radar_fusion() { return radar_fusion_; }
    [[nodiscard]] security::OnboardHardening& hardening() { return hardening_; }
    [[nodiscard]] security::TrustManager& trust() { return trust_; }
    [[nodiscard]] const security::TrustManager& trust() const { return trust_; }
    [[nodiscard]] const security::SecurityPolicy& policy() const {
        return config_.security;
    }
    [[nodiscard]] std::uint64_t impersonation_self_echoes() const {
        return self_echoes_;
    }
    /// Beacons whose kinematics jumped implausibly between consecutive
    /// claims from the same sender (two transmitters sharing an identity,
    /// or crude FDI). Checked when the control-algorithm defense is on.
    [[nodiscard]] std::uint64_t plausibility_flags() const {
        return plausibility_flags_;
    }

    /// --- compromise hooks (malware / FDI insider) ---------------------------
    using BeaconMutator = std::function<void(net::Beacon&)>;
    void set_beacon_mutator(BeaconMutator mutator) {
        beacon_mutator_ = std::move(mutator);
    }
    void clear_beacon_mutator() { beacon_mutator_ = nullptr; }
    void set_drop_beacons(bool drop) { drop_beacons_ = drop; }
    [[nodiscard]] bool compromised() const {
        return beacon_mutator_ != nullptr || drop_beacons_;
    }

    /// --- benign fault hooks (src/fault) -------------------------------------
    /// Unlike the compromise hooks above these model *failures*, not
    /// adversaries: a crashed/rebooting OBU, a dirty radar, a drifting
    /// oscillator. They deliberately do not touch `compromised()` -- a
    /// faulty vehicle is still honest, which is exactly what makes benign
    /// faults a false-positive stressor for the detectors.
    /// OBU down: no beacons, no control messages, and received frames are
    /// discarded at the radio (the vehicle keeps driving on its fallback).
    void set_comms_down(bool down) { comms_down_ = down; }
    [[nodiscard]] bool comms_down() const { return comms_down_; }
    /// Sensor dropout: GPS fusion and radar reads are skipped; the control
    /// loop keeps using the last fused position and loses the radar gap.
    void set_sensor_dropout(bool dropout) { sensor_dropout_ = dropout; }
    [[nodiscard]] bool sensor_dropout() const { return sensor_dropout_; }
    /// Clock skew: beacon/message generation timestamps read
    /// now + offset + rate * (now - anchor) instead of scheduler time.
    /// Receive-side freshness checks still use true local time, so a peer
    /// with a drifting clock looks increasingly stale/early to others.
    void set_clock_skew(sim::SimTime anchor, double offset_s, double rate) {
        clock_skew_active_ = true;
        clock_skew_anchor_ = anchor;
        clock_skew_offset_s_ = offset_s;
        clock_skew_rate_ = rate;
    }
    void clear_clock_skew() { clock_skew_active_ = false; }
    [[nodiscard]] bool clock_skew_active() const { return clock_skew_active_; }

    /// --- detection instrumentation (oracle side, src/detect) ----------------
    /// Ground-truth taint stamped onto every beacon this vehicle transmits
    /// while its output is corrupted (malware FDI payload, locked-on GPS
    /// spoof). Set/cleared by the attack that corrupts the stream; carried
    /// on net::Frame::truth, invisible to receivers' protocol logic.
    void set_beacon_truth(net::GroundTruth truth) { beacon_truth_ = truth; }
    void clear_beacon_truth() { beacon_truth_ = net::GroundTruth{}; }

    /// One observed message reception, delivered to the (optional) message
    /// observer after the crypto gate and again tagged with whether the
    /// vehicle's defense gates (trust, plausibility) accepted it. Exactly
    /// one of `beacon` / `maneuver` is non-null per observation.
    struct MessageObservation {
        const net::Frame& frame;  ///< Opened envelope + oracle truth.
        const net::RxInfo& rx;
        const net::Beacon* beacon = nullptr;
        const net::ManeuverMsg* maneuver = nullptr;
        bool accepted = true;
    };
    /// Passive tap for the misbehavior-detection harness: sees every beacon
    /// and maneuver that clears the crypto gate. Observers must not mutate
    /// simulation state (they run inside the receive path).
    using MessageObserver =
        std::function<void(const PlatoonVehicle&, const MessageObservation&)>;
    void set_message_observer(MessageObserver observer) {
        message_observer_ = std::move(observer);
    }

    /// Latest fused own-position estimate (what beacons claim).
    [[nodiscard]] double own_position_estimate() const {
        return last_own_position_;
    }
    /// Most recent raw radar measurement (cached at the 100 Hz control rate
    /// so observers never consume sensor-noise randomness themselves).
    [[nodiscard]] std::optional<double> last_radar_gap() const {
        return last_radar_gap_m_;
    }
    [[nodiscard]] std::optional<double> last_radar_closing() const {
        return last_radar_closing_mps_;
    }

    /// Known peers (claims from received beacons), keyed by wire identity.
    struct Peer {
        control::PeerState state;
        std::uint32_t platoon_id = 0;
        std::uint8_t platoon_index = 0;
        std::uint8_t lane = 0;
    };
    [[nodiscard]] const std::unordered_map<std::uint32_t, Peer>& peers() const {
        return peers_;
    }
    [[nodiscard]] std::uint64_t beacons_sent() const { return beacons_sent_; }
    [[nodiscard]] std::uint64_t beacons_received() const {
        return beacons_received_;
    }

private:
    void control_step();
    void send_beacon();
    void rotate_pseudonym();
    void on_frame(const net::Frame& frame, const net::RxInfo& info);
    void process_payload(net::Frame& frame, const net::RxInfo& info);
    void handle_beacon(const net::Beacon& beacon, const net::RxInfo& info,
                       const net::Frame& frame);
    void handle_maneuver(const net::ManeuverMsg& msg);
    void handle_keymgmt(const net::KeyMgmtMsg& msg,
                        const crypto::Envelope& envelope);
    void handle_maneuver_as_leader(const net::ManeuverMsg& msg);
    void handle_maneuver_as_member(const net::ManeuverMsg& msg);
    void send_typed(net::MsgType type, crypto::BytesView payload);
    void report_misbehavior(std::uint32_t suspect);
    /// Derives (predecessor, leader) peer data for the controller.
    void refresh_topology(double own_position, sim::SimTime now);
    void prune_peers(sim::SimTime now);
    /// Recomputes platoon_peer_wires_ from peers_ (platoon id changes,
    /// prune sweeps). No-op while the index is disabled.
    void rebuild_peer_index();
    [[nodiscard]] std::optional<double> beacon_gap(double own_position) const;
    /// Timestamp this vehicle *writes* into outgoing messages: scheduler
    /// time unless a clock-skew fault is active.
    [[nodiscard]] sim::SimTime stamped_now() const;

    VehicleConfig config_;
    sim::Scheduler& scheduler_;
    net::Network& network_;
    sim::RandomStream rng_;

    phys::VehicleDynamics dynamics_;
    phys::GpsSensor gps_;
    phys::RadarSensor radar_;
    phys::OdometrySensor odometry_;
    phys::FuelModel fuel_;

    control::ControllerStack stack_;
    control::SpeedController leader_controller_;
    control::AccController approach_controller_;
    control::Role role_;
    std::uint32_t platoon_id_;
    std::uint8_t lane_;
    double desired_speed_mps_;
    bool detached_ = false;  ///< Split/dissolve: permanently out of CACC.
    std::optional<control::Membership> membership_;
    control::AdmissionControl admission_;
    control::JoinerFsm joiner_;
    sim::NodeId join_leader_;        ///< Leader we asked to join.
    std::uint32_t join_platoon_ = 0;
    std::uint32_t join_tail_wire_ = sim::NodeId::kInvalidValue;
    std::optional<double> spacing_override_;
    sim::SimTime spacing_override_until_ = -1.0;
    std::optional<std::uint32_t> gap_open_predecessor_;
    sim::SimTime gap_open_ignore_until_ = -1.0;

    crypto::MessageProtection protection_;
    crypto::PseudonymPool pseudonyms_;
    std::optional<crypto::Credential> active_credential_;
    security::SecurityCounters counters_;
    security::VpdAdaDetector vpd_;
    security::HybridComms hybrid_;
    security::GpsFusion gps_fusion_;
    security::RadarFusion radar_fusion_;
    security::OnboardHardening hardening_;
    security::TrustManager trust_;

    RadarTargetResolver radar_target_resolver_;
    BeaconMutator beacon_mutator_;
    bool drop_beacons_ = false;
    bool comms_down_ = false;        ///< Benign fault: OBU crashed.
    bool sensor_dropout_ = false;    ///< Benign fault: GPS+radar stale.
    bool clock_skew_active_ = false; ///< Benign fault: oscillator drift.
    sim::SimTime clock_skew_anchor_ = 0.0;
    double clock_skew_offset_s_ = 0.0;
    double clock_skew_rate_ = 0.0;
    net::GroundTruth beacon_truth_;
    MessageObserver message_observer_;
    std::optional<double> last_radar_gap_m_;
    std::optional<double> last_radar_closing_mps_;

    std::unordered_map<std::uint32_t, Peer> peers_;
    /// Conservative lower bound on every peer's received_at; prune_peers
    /// skips its full-table sweep while nothing can have expired.
    sim::SimTime peers_min_received_ = std::numeric_limits<double>::infinity();
    /// Same-platoon peer wires in arrival order (see enable_peer_index).
    /// Maintained on beacon upserts, prune sweeps and platoon_id_ changes.
    bool peer_index_enabled_ = false;
    std::vector<std::uint32_t> platoon_peer_wires_;
    std::optional<std::uint32_t> predecessor_wire_;
    std::optional<std::uint32_t> leader_wire_;
    std::unordered_set<std::uint64_t> vlc_forwarded_;

    sim::EventHandle control_timer_;
    sim::EventHandle beacon_timer_;
    sim::EventHandle pseudonym_timer_;
    bool running_ = false;

    std::uint32_t wire_id_ = sim::NodeId::kInvalidValue;
    double last_own_position_ = 0.0;  ///< Last fused position estimate.

    std::uint64_t beacons_sent_ = 0;
    std::uint64_t beacons_received_ = 0;
    std::uint64_t self_echoes_ = 0;
    std::uint64_t plausibility_flags_ = 0;
    sim::SimTime last_report_at_ = -1e18;
    sim::SimTime vpd_last_evidence_ = -1.0;  ///< Last beacon fed to VPD.
};

}  // namespace platoon::core
