// The canonical evaluation harness behind the Table II/III reproductions:
// the attack factory, the per-attack headline metrics, the Table III defense
// configurations, and the run helpers. Extracted from the bench tree so the
// golden-metrics regression tests exercise exactly the code path the bench
// binaries print (benches add only google-benchmark timings on top).
//
// All run helpers accept a `jobs` worker count and honour the determinism
// contract of core::run_grid: per-seed scenarios are fully independent,
// results are folded in seed/cell order, and the output is bit-identical at
// any job count (jobs=1 reproduces the historical serial behavior exactly).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "core/taxonomy.hpp"
#include "security/attacks/attack.hpp"

namespace platoon::eval {

using core::AttackKind;
using core::DefenseKind;
using core::MetricMap;

/// The canonical evaluation scenario: 6 trucks, PATH CACC, a braking
/// disturbance at t=40 s, 70 s horizon, attacks starting at t=20 s.
[[nodiscard]] core::ScenarioConfig eval_config(std::uint64_t seed = 42);
inline constexpr double kEvalDuration = 70.0;

/// Factory for one attack instance of each Table II kind.
[[nodiscard]] std::unique_ptr<security::Attack> make_attack(AttackKind kind);

/// The headline metric each attack is scored on (what Table II's "summary"
/// column claims the attack does).
struct Headline {
    std::string metric;
    bool higher_is_worse;
    std::string unit;
};

[[nodiscard]] Headline headline_for(AttackKind kind);

/// Defense configuration for each Table III mechanism. Impersonation rows
/// always start from a signed baseline (the attack presumes stolen
/// credentials; without any PKI it coincides with fake-maneuver).
void apply_defense(core::ScenarioConfig& config, DefenseKind defense);

/// One replication of the evaluation scenario at `config.seed` exactly:
/// optional attack, the DoS legitimate joiner, and the standard merged
/// metrics ("attack.*", "detached_members", "join_success", revocations).
[[nodiscard]] MetricMap run_eval_once(core::ScenarioConfig config,
                                      AttackKind kind, bool with_attack);

/// Runs `seeds` replications (seed = config.seed + k) on `jobs` workers and
/// returns the per-key means, folded in seed order (bit-identical at any
/// job count; jobs<=1 runs inline).
[[nodiscard]] MetricMap run_eval(core::ScenarioConfig config, AttackKind kind,
                                 bool with_attack, std::size_t seeds = 1,
                                 unsigned jobs = 1);

/// One (config, attack, defense-already-applied) cell of a table grid.
struct EvalCell {
    core::ScenarioConfig config;
    AttackKind kind = AttackKind::kReplay;
    bool with_attack = true;
    std::size_t seeds = 1;
};

/// Fans a whole table out at (cell x seed) granularity over `jobs` workers
/// (jobs=0 -> core::default_jobs()) and returns one seed-averaged MetricMap
/// per cell, in cell order.
[[nodiscard]] std::vector<MetricMap> run_eval_grid(
    const std::vector<EvalCell>& cells, unsigned jobs = 0);

/// Metric lookup with a default (clean runs have no "attack.*" entries).
[[nodiscard]] inline double metric(const MetricMap& m, const std::string& name,
                                   double fallback = 0.0) {
    const auto it = m.find(name);
    return it == m.end() ? fallback : it->second;
}

/// Verdict string comparing defended vs attacked vs clean on a headline.
[[nodiscard]] std::string verdict(const Headline& headline, double clean,
                                  double attacked, double defended);

}  // namespace platoon::eval
