#include "eval/harness.hpp"

#include <cmath>
#include <functional>
#include <utility>

#include "obs/counters.hpp"
#include "obs/timer.hpp"
#include "scen/registry.hpp"
#include "security/attacks/dos.hpp"
#include "security/attacks/eavesdrop.hpp"
#include "security/attacks/fake_maneuver.hpp"
#include "security/attacks/gps_spoof.hpp"
#include "security/attacks/impersonation.hpp"
#include "security/attacks/jamming.hpp"
#include "security/attacks/malware.hpp"
#include "security/attacks/replay.hpp"
#include "security/attacks/sensor_spoof.hpp"
#include "security/attacks/sybil.hpp"

namespace platoon::eval {

namespace {

obs::Counter g_eval_scenarios{"eval.scenarios"};

core::PlatoonVehicle& add_legit_joiner(core::Scenario& scenario) {
    core::VehicleConfig joiner;
    joiner.id = sim::NodeId{300};
    joiner.role = control::Role::kFree;
    joiner.platoon_id = 0;
    joiner.security = scenario.config().security;
    joiner.initial_state.position_m =
        scenario.tail().dynamics().position() - 80.0;
    joiner.initial_state.speed_mps = 25.0;
    joiner.desired_speed_mps = 28.0;
    auto& vehicle = scenario.add_vehicle(joiner);
    scenario.scheduler().schedule_at(25.0, [&scenario, &vehicle] {
        vehicle.request_join(scenario.platoon_id(), scenario.leader().id());
    });
    return vehicle;
}

}  // namespace

core::ScenarioConfig eval_config(std::uint64_t seed) {
    // The canonical profile lives in the scen registry so the scenario
    // compiler and this harness can never drift apart.
    return *scen::base_profile("eval", seed);
}

std::unique_ptr<security::Attack> make_attack(AttackKind kind) {
    using namespace security;
    switch (kind) {
        case AttackKind::kReplay: return std::make_unique<ReplayAttack>();
        case AttackKind::kSybil: return std::make_unique<SybilAttack>();
        case AttackKind::kFakeManeuver:
            return std::make_unique<FakeManeuverAttack>();
        case AttackKind::kJamming: return std::make_unique<JammingAttack>();
        case AttackKind::kEavesdropping:
            return std::make_unique<EavesdropAttack>();
        case AttackKind::kDenialOfService: return std::make_unique<DosAttack>();
        case AttackKind::kImpersonation:
            return std::make_unique<ImpersonationAttack>();
        case AttackKind::kSensorSpoofing:
            return std::make_unique<SensorSpoofAttack>();
        case AttackKind::kMalware: return std::make_unique<MalwareAttack>();
        default: break;
    }
    return nullptr;
}

Headline headline_for(AttackKind kind) {
    switch (kind) {
        case AttackKind::kReplay:
            return {"spacing_rms_m", true, "m"};
        case AttackKind::kSybil:
            return {"spacing_rms_m", true, "m"};
        case AttackKind::kFakeManeuver:
            return {"spacing_rms_m", true, "m"};
        case AttackKind::kJamming:
            return {"cacc_availability", false, "frac"};
        case AttackKind::kEavesdropping:
            return {"attack.decode_ratio", true, "frac"};
        case AttackKind::kDenialOfService:
            return {"join_success", false, "0/1"};
        case AttackKind::kImpersonation:
            return {"spacing_rms_m", true, "m"};
        case AttackKind::kSensorSpoofing:
            return {"spacing_max_abs_m", true, "m"};
        case AttackKind::kMalware:
            // Malware's Table II harm is "preventing users from being able
            // to platoon" + enabling insider attacks: score the time the
            // victim stays compromised (what firewall/antivirus bound).
            return {"attack.infected_time_s", true, "s"};
        default:
            return {"spacing_rms_m", true, "m"};
    }
}

void apply_defense(core::ScenarioConfig& config, DefenseKind defense) {
    // Delegates to the shared registry (scen/registry.*): the scenario
    // compiler and the benches apply the exact same mechanism switches.
    scen::apply_defense(config, defense);
}

MetricMap run_eval_once(core::ScenarioConfig config, AttackKind kind,
                        bool with_attack) {
    const obs::ScopedTimer timer("eval.run_once");
    g_eval_scenarios.inc();
    core::Scenario scenario(config);
    std::unique_ptr<security::Attack> attack;
    if (with_attack) {
        attack = make_attack(kind);
        attack->attach(scenario);
    }
    core::PlatoonVehicle* joiner = nullptr;
    if (kind == AttackKind::kDenialOfService) {
        joiner = &add_legit_joiner(scenario);
    }
    scenario.run_until(kEvalDuration);

    MetricMap m = scenario.summarize().as_map();
    if (attack) attack->collect(m);
    std::size_t detached = 0;
    for (std::size_t i = 1; i < scenario.config().platoon_size; ++i)
        detached += scenario.vehicle(i).detached() ? 1 : 0;
    m["detached_members"] = static_cast<double>(detached);
    m["join_success"] =
        joiner == nullptr
            ? 1.0
            : (joiner->role() == control::Role::kMember ? 1.0 : 0.0);
    m["revoked_subjects"] =
        static_cast<double>(scenario.authority().revoked_subjects());
    m["revoked_credentials"] =
        static_cast<double>(scenario.authority().revoked_credentials());
    return m;
}

namespace {

// Impersonation presumes stolen credentials: without a PKI in place it
// degenerates into the fake-maneuver attack, so its rows always run on a
// signed baseline.
void normalize_config(core::ScenarioConfig& config, AttackKind kind) {
    if (kind == AttackKind::kImpersonation &&
        config.security.auth_mode == crypto::AuthMode::kNone) {
        config.security.auth_mode = crypto::AuthMode::kSignature;
    }
}

// Per-key mean over per-seed maps, folded in seed order. A key missing from
// some seeds still divides by the full seed count (it contributed 0 there).
MetricMap fold_seed_means(const std::vector<MetricMap>& per_seed) {
    MetricMap sum;
    for (const MetricMap& m : per_seed)
        for (const auto& [name, value] : m) sum[name] += value;
    for (auto& [name, value] : sum)
        value /= static_cast<double>(per_seed.size());
    return sum;
}

}  // namespace

MetricMap run_eval(core::ScenarioConfig config, AttackKind kind,
                   bool with_attack, std::size_t seeds, unsigned jobs) {
    const std::vector<EvalCell> cell{{config, kind, with_attack, seeds}};
    return run_eval_grid(cell, jobs == 0 ? 1 : jobs).front();
}

std::vector<MetricMap> run_eval_grid(const std::vector<EvalCell>& cells,
                                     unsigned jobs) {
    // Flatten to (cell, seed) tasks for maximum load balancing: a slow cell
    // (e.g. a signed baseline) spreads its seeds across workers instead of
    // serializing them behind one.
    std::vector<std::function<MetricMap()>> tasks;
    std::vector<std::size_t> seeds_per_cell;
    seeds_per_cell.reserve(cells.size());
    for (const EvalCell& cell : cells) {
        core::ScenarioConfig config = cell.config;
        normalize_config(config, cell.kind);
        const std::uint64_t base_seed = config.seed;
        seeds_per_cell.push_back(cell.seeds);
        for (std::size_t k = 0; k < cell.seeds; ++k) {
            config.seed = base_seed + k;
            tasks.emplace_back([config, kind = cell.kind,
                                with_attack = cell.with_attack] {
                return run_eval_once(config, kind, with_attack);
            });
        }
    }
    const std::vector<MetricMap> per_seed =
        core::run_grid(std::move(tasks), jobs);

    const obs::ScopedTimer timer("eval.score");
    std::vector<MetricMap> out;
    out.reserve(cells.size());
    std::size_t offset = 0;
    for (const std::size_t seeds : seeds_per_cell) {
        const std::vector<MetricMap> slice(
            per_seed.begin() + static_cast<std::ptrdiff_t>(offset),
            per_seed.begin() + static_cast<std::ptrdiff_t>(offset + seeds));
        out.push_back(fold_seed_means(slice));
        offset += seeds;
    }
    return out;
}

std::string verdict(const Headline& headline, double clean, double attacked,
                    double defended) {
    const double sign = headline.higher_is_worse ? 1.0 : -1.0;
    const double damage_attacked = sign * (attacked - clean);
    const double damage_defended = sign * (defended - clean);
    // Scale-free floor: the attack must have done something to grade.
    const double floor = std::max(0.05 * std::abs(clean), 1e-3);
    if (damage_attacked < floor) return "-";
    const double restored = 1.0 - damage_defended / damage_attacked;
    if (restored >= 0.8) return "MITIGATED";
    if (restored >= 0.35) return "partial";
    return "no-effect";
}

}  // namespace platoon::eval
