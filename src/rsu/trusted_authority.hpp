// Trusted authority: vehicle registration, credential issuance (long-term +
// pseudonym pools), misbehaviour adjudication and revocation.
//
// The TA is infrastructure: RSUs talk to it over a wired backhaul (modelled
// as direct calls), vehicles only ever see its public key and the CRL
// updates RSUs broadcast (paper Section VI-A.2).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "crypto/cert.hpp"
#include "sim/types.hpp"

namespace platoon::rsu {

class TrustedAuthority {
public:
    struct Params {
        /// Distinct reporters required before a subject is revoked. Three,
        /// so that isolated detector false positives (one vehicle blaming
        /// its predecessor during a transient) cannot cascade into
        /// revoking honest members.
        std::size_t reports_to_revoke = 3;
        sim::SimTime cert_lifetime_s = 86400.0;
        std::size_t pseudonyms_per_vehicle = 12;
    };

    explicit TrustedAuthority(crypto::BytesView seed);
    TrustedAuthority(crypto::BytesView seed, Params params);

    [[nodiscard]] const crypto::Bytes& public_key() const {
        return ca_.public_key();
    }

    /// Registers a vehicle: generates its key pair deterministically from
    /// the TA seed + id and issues a long-term credential plus a pseudonym
    /// pool. (Real systems generate keys on the vehicle; determinism keeps
    /// scenarios reproducible.)
    struct Enrollment {
        crypto::Credential long_term;
        crypto::PseudonymPool pseudonyms;
    };
    Enrollment enroll(sim::NodeId vehicle, sim::SimTime now);

    /// A misbehaviour report about the on-wire identity `subject` from
    /// `reporter`. Once enough distinct reporters agree, the TA revokes the
    /// *credential(s) issued under that identity* -- not the whole vehicle:
    /// the usual case is a victim reporting its own stolen credential, and
    /// its remaining pseudonyms must survive. Returns true on revocation.
    bool report_misbehavior(sim::NodeId reporter, sim::NodeId subject,
                            sim::SimTime now);

    /// Revokes the certificates issued under one on-wire identity.
    void revoke_credential(sim::NodeId wire_id);
    [[nodiscard]] std::size_t revoked_credentials() const {
        return revoked_credentials_;
    }

    /// Immediately revokes every certificate issued to `subject`. Accepts
    /// either the enrolled vehicle id or any of its pseudonym on-wire ids.
    void revoke_subject(sim::NodeId subject);

    /// Pseudonym on-wire id for (vehicle, index>=1); index 0 = the vehicle
    /// id itself. Pseudonym certificates are issued under these ids so that
    /// beacons signed with them do not reveal the enrolled identity.
    [[nodiscard]] static sim::NodeId pseudonym_wire_id(sim::NodeId vehicle,
                                                       std::uint64_t index);

    /// Maps an on-wire identity back to the enrolled vehicle (TA escrow).
    [[nodiscard]] sim::NodeId resolve_identity(sim::NodeId wire_id) const;

    [[nodiscard]] bool is_revoked_subject(sim::NodeId subject) const;
    [[nodiscard]] const crypto::RevocationList& crl() const {
        return ca_.crl();
    }
    [[nodiscard]] std::size_t revoked_subjects() const {
        return revoked_subjects_.size();
    }
    [[nodiscard]] std::uint64_t reports_received() const { return reports_; }

    /// One adjudication event: the moment enough distinct reporters agreed
    /// and the TA moved against an on-wire identity (credential revocation
    /// when one was issued; blacklisting for never-enrolled ghost ids).
    struct Isolation {
        sim::NodeId subject;
        sim::SimTime at = 0.0;
    };
    /// Adjudications in report order (detection benchmarks read
    /// time-to-isolation off this log).
    [[nodiscard]] const std::vector<Isolation>& isolations() const {
        return isolations_;
    }

private:
    crypto::CertificateAuthority ca_;
    Params params_;
    crypto::Bytes seed_;
    /// serials issued per subject (for subject-level revocation).
    std::unordered_map<sim::NodeId, std::vector<std::uint64_t>> issued_;
    std::unordered_map<sim::NodeId, std::vector<sim::NodeId>> reporters_;
    std::unordered_map<sim::NodeId, sim::NodeId> wire_to_vehicle_;
    std::unordered_map<sim::NodeId, std::vector<std::uint64_t>> wire_serials_;
    std::size_t revoked_credentials_ = 0;
    std::vector<sim::NodeId> revoked_subjects_;
    std::vector<Isolation> isolations_;
    std::uint64_t reports_ = 0;
};

}  // namespace platoon::rsu
