// Roadside unit (paper Section VI-A.2): fixed infrastructure node that
//  - distributes the platoon group key to vehicles with valid certificates
//    (wrapped under an ECDH-derived pairwise key -- real key exchange),
//  - broadcasts CRL updates sourced from the trusted authority,
//  - monitors beacons in its coverage for impossible motion (the same
//    identity claiming two far-apart positions in a short window: the
//    impersonation / Sybil signature), and
//  - relays vehicles' misbehaviour reports to the TA over its backhaul.
#pragma once

#include <unordered_map>

#include "crypto/secured_message.hpp"
#include "net/network.hpp"
#include "rsu/trusted_authority.hpp"
#include "sim/scheduler.hpp"

namespace platoon::rsu {

class RsuNode {
public:
    struct Params {
        double position_m = 0.0;
        double coverage_m = 400.0;
        sim::SimTime crl_broadcast_period_s = 1.0;
        /// Same-identity position jump implying impersonation (m/s).
        double impossible_speed_mps = 80.0;
        bool require_signatures = false;  ///< Verify inbound crypto.
    };

    RsuNode(sim::NodeId id, Params params, sim::Scheduler& scheduler,
            net::Network& network, TrustedAuthority& authority);

    /// Registers with the network and starts periodic duties.
    void start();
    void stop();

    /// Provisions the group key this RSU hands out to authorised vehicles.
    void set_group_key(crypto::Bytes key) { group_key_ = std::move(key); }

    [[nodiscard]] sim::NodeId id() const { return id_; }
    [[nodiscard]] double position() const { return params_.position_m; }
    [[nodiscard]] std::uint64_t keys_distributed() const {
        return keys_distributed_;
    }
    [[nodiscard]] std::uint64_t impossible_motion_flags() const {
        return impossible_motion_flags_;
    }
    [[nodiscard]] std::uint64_t reports_relayed() const {
        return reports_relayed_;
    }
    [[nodiscard]] crypto::MessageProtection& protection() {
        return protection_;
    }

    /// Installs this RSU's signing credential (issued by the TA).
    void set_credential(crypto::Credential credential);

    /// Scenario-shared cache of receiver-independent verification facts;
    /// non-owning, may be null. RSUs verify the same broadcast envelopes the
    /// platoon does, so they share the fan-out's cached verdicts.
    void set_verdict_cache(crypto::VerdictCache* cache) {
        protection_.set_verdict_cache(cache);
    }

private:
    void on_frame(const net::Frame& frame, const net::RxInfo& info);
    void handle_beacon(const net::Beacon& beacon, std::uint32_t envelope_sender);
    void handle_keymgmt(const net::KeyMgmtMsg& msg);
    void broadcast_crl();
    void send_group_key(std::uint32_t requester,
                        crypto::BytesView requester_pub);

    sim::NodeId id_;
    Params params_;
    sim::Scheduler& scheduler_;
    net::Network& network_;
    TrustedAuthority& authority_;
    crypto::MessageProtection protection_;
    crypto::KeyPair dh_key_;
    crypto::Bytes group_key_;
    sim::EventHandle crl_timer_;
    bool running_ = false;
    bool monitor_unprotected_ = true;

    struct Sighting {
        double position_m;
        sim::SimTime at;
    };
    std::unordered_map<std::uint32_t, Sighting> sightings_;

    std::uint64_t keys_distributed_ = 0;
    std::uint64_t impossible_motion_flags_ = 0;
    std::uint64_t reports_relayed_ = 0;
};

}  // namespace platoon::rsu
