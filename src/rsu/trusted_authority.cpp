#include "rsu/trusted_authority.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"
#include "sim/assert.hpp"

namespace platoon::rsu {

TrustedAuthority::TrustedAuthority(crypto::BytesView seed)
    : TrustedAuthority(seed, Params{}) {}

TrustedAuthority::TrustedAuthority(crypto::BytesView seed, Params params)
    : ca_(seed), params_(params), seed_(seed.begin(), seed.end()) {}

TrustedAuthority::Enrollment TrustedAuthority::enroll(sim::NodeId vehicle,
                                                      sim::SimTime now) {
    PLATOON_EXPECTS(vehicle.valid());
    Enrollment out;

    const auto make_credential = [&](std::uint64_t pseudonym_id) {
        crypto::Bytes key_seed = seed_;
        crypto::append_u32(key_seed, vehicle.value);
        crypto::append_u64(key_seed, pseudonym_id);
        const auto digest = crypto::Sha256::hash(crypto::BytesView(key_seed));
        crypto::Credential cred;
        cred.key = crypto::KeyPair::from_seed(
            crypto::BytesView(digest.data(), digest.size()));
        const sim::NodeId wire_id = pseudonym_wire_id(vehicle, pseudonym_id);
        cred.cert = ca_.issue(wire_id, pseudonym_id,
                              crypto::BytesView(cred.key.public_bytes), now,
                              now + params_.cert_lifetime_s);
        issued_[vehicle].push_back(cred.cert.serial);
        wire_serials_[wire_id].push_back(cred.cert.serial);
        wire_to_vehicle_[wire_id] = vehicle;
        return cred;
    };

    out.long_term = make_credential(0);
    for (std::size_t i = 1; i <= params_.pseudonyms_per_vehicle; ++i)
        out.pseudonyms.add(make_credential(i));
    return out;
}

bool TrustedAuthority::report_misbehavior(sim::NodeId reporter,
                                          sim::NodeId subject,
                                          sim::SimTime now) {
    ++reports_;
    auto& who = reporters_[subject];
    if (std::find(who.begin(), who.end(), reporter) == who.end())
        who.push_back(reporter);
    // Log the adjudication the moment the reporter quorum is first reached
    // (== comparison: later reports against an already-adjudicated subject
    // are not new isolation events).
    if (who.size() == params_.reports_to_revoke)
        isolations_.push_back({subject, now});
    if (who.size() >= params_.reports_to_revoke) {
        const auto it = wire_serials_.find(subject);
        const bool fresh =
            it != wire_serials_.end() &&
            std::any_of(it->second.begin(), it->second.end(),
                        [this](std::uint64_t s) {
                            return !ca_.crl().is_revoked(s);
                        });
        revoke_credential(subject);
        return fresh;
    }
    return false;
}

void TrustedAuthority::revoke_credential(sim::NodeId wire_id) {
    const auto it = wire_serials_.find(wire_id);
    if (it == wire_serials_.end()) return;
    bool any = false;
    for (const std::uint64_t serial : it->second) {
        if (!ca_.crl().is_revoked(serial)) {
            ca_.revoke(serial);
            any = true;
        }
    }
    if (any) ++revoked_credentials_;
}

sim::NodeId TrustedAuthority::pseudonym_wire_id(sim::NodeId vehicle,
                                                std::uint64_t index) {
    if (index == 0) return vehicle;
    return sim::NodeId{0x50000000u + vehicle.value * 16u +
                       static_cast<std::uint32_t>(index)};
}

sim::NodeId TrustedAuthority::resolve_identity(sim::NodeId wire_id) const {
    const auto it = wire_to_vehicle_.find(wire_id);
    return it == wire_to_vehicle_.end() ? wire_id : it->second;
}

void TrustedAuthority::revoke_subject(sim::NodeId subject) {
    subject = resolve_identity(subject);
    if (is_revoked_subject(subject)) return;
    revoked_subjects_.push_back(subject);
    const auto it = issued_.find(subject);
    if (it != issued_.end()) {
        for (const std::uint64_t serial : it->second) ca_.revoke(serial);
    }
}

bool TrustedAuthority::is_revoked_subject(sim::NodeId subject) const {
    const sim::NodeId vehicle = resolve_identity(subject);
    return std::find(revoked_subjects_.begin(), revoked_subjects_.end(),
                     vehicle) != revoked_subjects_.end();
}

}  // namespace platoon::rsu
