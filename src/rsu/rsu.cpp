#include "rsu/rsu.hpp"

#include <cmath>

#include "crypto/chacha20.hpp"
#include "sim/assert.hpp"
#include "sim/logging.hpp"

namespace platoon::rsu {

RsuNode::RsuNode(sim::NodeId id, Params params, sim::Scheduler& scheduler,
                 net::Network& network, TrustedAuthority& authority)
    : id_(id),
      params_(params),
      scheduler_(scheduler),
      network_(network),
      authority_(authority) {
    crypto::MessageProtection::Config config;
    config.mode = params_.require_signatures ? crypto::AuthMode::kSignature
                                             : crypto::AuthMode::kNone;
    config.check_replay = true;
    protection_ = crypto::MessageProtection(config);
    protection_.set_ca_public_key(authority_.public_key());
    monitor_unprotected_ = !params_.require_signatures;
}

void RsuNode::set_credential(crypto::Credential credential) {
    dh_key_ = credential.key;
    protection_.set_credential(std::move(credential));
    // Sign everything we transmit; vehicles that require authentication
    // would otherwise drop CRL updates and key deliveries.
    protection_.set_mode(crypto::AuthMode::kSignature);
}

void RsuNode::start() {
    PLATOON_EXPECTS(!running_);
    running_ = true;
    network_.register_node(
        id_, [pos = params_.position_m] { return pos; },
        [this](const net::Frame& frame, const net::RxInfo& info) {
            on_frame(frame, info);
        });
    crl_timer_ = scheduler_.schedule_every(
        scheduler_.now() + params_.crl_broadcast_period_s,
        params_.crl_broadcast_period_s, [this] { broadcast_crl(); });
}

void RsuNode::stop() {
    if (!running_) return;
    running_ = false;
    scheduler_.cancel(crl_timer_);
    network_.unregister_node(id_);
}

void RsuNode::on_frame(const net::Frame& frame, const net::RxInfo& info) {
    (void)info;
    // Coverage filter: the radio may reach further than the RSU's service
    // area; outside it the RSU ignores traffic.
    const double sender_pos = network_.is_registered(info.physical_sender)
                                  ? network_.node_position(info.physical_sender)
                                  : params_.position_m;
    if (std::abs(sender_pos - params_.position_m) > params_.coverage_m) return;

    net::Frame copy = frame;
    const crypto::VerifyResult vr =
        protection_.verify_and_open(copy.envelope, scheduler_.now());
    if (params_.require_signatures && vr != crypto::VerifyResult::kOk) return;
    // Beacons flagged as replayed/stale are *evidence*, not noise: when an
    // impersonator out-sequences its victim, the victim's own (now
    // "replayed-looking") beacons are exactly what exposes the shared
    // identity to the impossible-motion monitor.
    const bool monitorable_beacon =
        copy.type == net::MsgType::kBeacon &&
        (vr == crypto::VerifyResult::kReplay ||
         vr == crypto::VerifyResult::kStale);
    const bool acceptable =
        vr == crypto::VerifyResult::kOk ||
        (monitor_unprotected_ && vr == crypto::VerifyResult::kUnprotected) ||
        monitorable_beacon;
    if (!acceptable) {
        // Could not even open (e.g. encrypted without key): monitoring can
        // still use envelope metadata, but payload handling stops here.
        return;
    }
    if (monitorable_beacon && copy.envelope.encrypted) return;

    switch (copy.type) {
        case net::MsgType::kBeacon: {
            const auto beacon = net::Beacon::decode(
                crypto::BytesView(copy.envelope.payload));
            if (beacon) handle_beacon(*beacon, copy.envelope.sender);
            break;
        }
        case net::MsgType::kKeyMgmt: {
            const auto msg = net::KeyMgmtMsg::decode(
                crypto::BytesView(copy.envelope.payload));
            if (!msg) break;
            // Key requests need a certified public key to wrap the reply.
            if (msg->type == net::KeyMgmtType::kKeyRequest) {
                if (copy.envelope.cert &&
                    crypto::verify_certificate(*copy.envelope.cert,
                                               authority_.public_key(),
                                               scheduler_.now()) ==
                        crypto::CertCheck::kOk &&
                    !authority_.crl().is_revoked(copy.envelope.cert->serial)) {
                    send_group_key(msg->sender,
                                   crypto::BytesView(copy.envelope.cert->public_key));
                }
            } else {
                handle_keymgmt(*msg);
            }
            break;
        }
        case net::MsgType::kManeuver:
            break;  // RSUs don't take part in maneuvers.
    }
}

void RsuNode::handle_beacon(const net::Beacon& beacon,
                            std::uint32_t envelope_sender) {
    // Impossible-motion check on the *claimed* identity: one id claiming
    // two positions that would require super-physical speed means two
    // transmitters share the identity (impersonation / Sybil ghost drift).
    const std::uint32_t claimed = envelope_sender;
    const auto it = sightings_.find(claimed);
    const sim::SimTime now = scheduler_.now();
    if (it != sightings_.end()) {
        const double dt = now - it->second.at;
        if (dt > 1e-3) {
            const double implied_speed =
                std::abs(beacon.position_m - it->second.position_m) / dt;
            if (implied_speed > params_.impossible_speed_mps) {
                ++impossible_motion_flags_;
                authority_.report_misbehavior(id_, sim::NodeId{claimed}, now);
            }
        }
    }
    sightings_[claimed] = Sighting{beacon.position_m, now};
}

void RsuNode::handle_keymgmt(const net::KeyMgmtMsg& msg) {
    if (msg.type == net::KeyMgmtType::kMisbehaviorReport) {
        if (msg.blob.size() < 4) return;
        std::size_t off = 0;
        const std::uint32_t subject = crypto::read_u32(
            crypto::BytesView(msg.blob), off);
        ++reports_relayed_;
        authority_.report_misbehavior(sim::NodeId{msg.sender},
                                      sim::NodeId{subject}, scheduler_.now());
    }
}

void RsuNode::broadcast_crl() {
    const auto serials = authority_.crl().serials();
    if (serials.empty()) return;
    net::KeyMgmtMsg msg;
    msg.type = net::KeyMgmtType::kCrlUpdate;
    msg.sender = id_.value;
    for (const std::uint64_t s : serials) crypto::append_u64(msg.blob, s);

    net::Frame frame;
    frame.type = net::MsgType::kKeyMgmt;
    frame.envelope = protection_.protect(id_.value, msg.encode(),
                                         scheduler_.now());
    network_.broadcast(id_, std::move(frame));
}

void RsuNode::send_group_key(std::uint32_t requester,
                             crypto::BytesView requester_pub) {
    if (group_key_.empty()) return;
    // Wrap the group key under the ECDH pairwise secret with the requester.
    const crypto::Bytes shared =
        crypto::dh_shared_key(dh_key_.secret, requester_pub);
    crypto::Bytes nonce(12, 0);
    std::size_t i = 0;
    for (; i < 4; ++i) nonce[i] = static_cast<std::uint8_t>(requester >> (8 * i));
    const crypto::Bytes wrapped = crypto::ChaCha20::crypt(
        crypto::BytesView(shared), crypto::BytesView(nonce),
        crypto::BytesView(group_key_));

    net::KeyMgmtMsg msg;
    msg.type = net::KeyMgmtType::kGroupKeyDistribution;
    msg.sender = id_.value;
    msg.receiver = requester;
    msg.blob = wrapped;

    net::Frame frame;
    frame.type = net::MsgType::kKeyMgmt;
    frame.envelope = protection_.protect(id_.value, msg.encode(),
                                         scheduler_.now());
    network_.broadcast(id_, std::move(frame));
    ++keys_distributed_;
}

}  // namespace platoon::rsu
