// Fundamental simulation-wide vocabulary types.
//
// Lives in base/ (the dependency-free bottom layer) so that pure
// libraries such as crypto can name identities and timestamps without
// depending on the simulator runtime. The namespace stays `platoon::sim`
// because these are the simulation's vocabulary types and every module
// already spells them `sim::NodeId` / `sim::SimTime`; `sim/types.hpp`
// forwards here for older includes.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace platoon::sim {

/// Simulation time in seconds since simulation start.
using SimTime = double;

/// Sentinel for "never" / unset times.
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::infinity();

/// Identifier of a simulated node (vehicle, RSU, attacker, authority).
/// Strong type so that node ids, platoon indices and sequence numbers
/// cannot be mixed up silently.
struct NodeId {
    std::uint32_t value = kInvalidValue;

    static constexpr std::uint32_t kInvalidValue = 0xFFFFFFFFu;

    constexpr NodeId() = default;
    constexpr explicit NodeId(std::uint32_t v) : value(v) {}

    [[nodiscard]] constexpr bool valid() const { return value != kInvalidValue; }
    friend constexpr auto operator<=>(NodeId, NodeId) = default;
};

[[nodiscard]] inline std::string to_string(NodeId id) {
    return id.valid() ? "node" + std::to_string(id.value) : "node<invalid>";
}

inline constexpr NodeId kInvalidNode{};

}  // namespace platoon::sim

template <>
struct std::hash<platoon::sim::NodeId> {
    std::size_t operator()(platoon::sim::NodeId id) const noexcept {
        return std::hash<std::uint32_t>{}(id.value);
    }
};
