// Contract-checking macros in the spirit of the C++ Core Guidelines GSL
// `Expects`/`Ensures`. Violations indicate programming errors (broken
// invariants), not recoverable conditions, so they abort with a message.
//
// Lives in base/ (the dependency-free bottom layer) so that pure
// libraries such as crypto can assert contracts without pulling in the
// simulator. `sim/assert.hpp` forwards here for older includes.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace platoon::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
    std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file, line);
    std::abort();
}

}  // namespace platoon::detail

#define PLATOON_EXPECTS(cond)                                                     \
    ((cond) ? static_cast<void>(0)                                                \
            : ::platoon::detail::contract_failure("Precondition", #cond,          \
                                                  __FILE__, __LINE__))

#define PLATOON_ENSURES(cond)                                                     \
    ((cond) ? static_cast<void>(0)                                                \
            : ::platoon::detail::contract_failure("Postcondition", #cond,         \
                                                  __FILE__, __LINE__))

#define PLATOON_ASSERT(cond)                                                      \
    ((cond) ? static_cast<void>(0)                                                \
            : ::platoon::detail::contract_failure("Invariant", #cond,             \
                                                  __FILE__, __LINE__))
