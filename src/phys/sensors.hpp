// On-board sensor models with attack hooks.
//
// Each sensor reads ground truth from a VehicleDynamics and degrades it with
// noise; attacks (GPS spoofing, sensor spoofing/jamming — paper Section V-G)
// act through the explicit spoof/jam interfaces rather than by patching the
// dynamics, so defended and attacked code paths are identical except for the
// injected error.
#pragma once

#include <optional>

#include "phys/vehicle_dynamics.hpp"
#include "sim/random.hpp"

namespace platoon::phys {

/// GPS receiver: absolute position + speed with white noise. An attacker who
/// "captures" the receiver (overpowered fake constellation, Section V-G) can
/// inject an additive offset that it walks over time.
class GpsSensor {
public:
    struct Params {
        double position_noise_m = 1.5;  ///< 1-sigma position error.
        double speed_noise_mps = 0.15;  ///< 1-sigma speed error.
    };

    GpsSensor(const VehicleDynamics& vehicle, Params params,
              sim::RandomStream& rng)
        : vehicle_(&vehicle), params_(params), rng_(&rng) {}

    struct Fix {
        double position_m;
        double speed_mps;
    };

    /// Current fix, including noise and any active spoof offset.
    [[nodiscard]] Fix read();

    /// --- attack interface -------------------------------------------------
    /// Starts a spoof: subsequent fixes are offset by `offset_m`, which the
    /// attacker can update (walk-off) while the spoof is held.
    void spoof_set_offset(double offset_m) { spoof_offset_m_ = offset_m; }
    void spoof_clear() { spoof_offset_m_.reset(); }
    [[nodiscard]] bool spoofed() const { return spoof_offset_m_.has_value(); }

private:
    const VehicleDynamics* vehicle_;
    Params params_;
    sim::RandomStream* rng_;
    std::optional<double> spoof_offset_m_;
};

/// Forward radar / LiDAR: relative gap and closing speed to the predecessor.
/// Jamming or spoofing replaces the measurement with attacker-chosen values
/// or invalidates it entirely (blinding, Section V-G).
class RadarSensor {
public:
    struct Params {
        double range_noise_m = 0.10;   ///< 1-sigma range error.
        double rate_noise_mps = 0.10;  ///< 1-sigma range-rate error.
        double max_range_m = 250.0;
    };

    RadarSensor(const VehicleDynamics& self, Params params,
                sim::RandomStream& rng)
        : self_(&self), params_(params), rng_(&rng) {}

    /// The vehicle ahead; may be null (no target).
    void set_target(const VehicleDynamics* target) { target_ = target; }
    [[nodiscard]] const VehicleDynamics* target() const { return target_; }

    struct Measurement {
        double gap_m;           ///< Bumper-to-bumper distance to target.
        double closing_mps;     ///< Positive when approaching the target.
    };

    /// nullopt when there is no target in range or the sensor is blinded.
    [[nodiscard]] std::optional<Measurement> read();

    /// --- attack interface -------------------------------------------------
    void jam(bool on) { jammed_ = on; }
    [[nodiscard]] bool jammed() const { return jammed_; }
    void spoof_set(Measurement fake) { spoof_ = fake; }
    void spoof_clear() {
        spoof_.reset();
        spoof_bias_m_.reset();
    }
    [[nodiscard]] bool spoofed() const { return spoof_.has_value(); }
    /// Additive range bias (stealthy spoof): the radar keeps tracking the
    /// real target but reads `bias_m` meters long. Applied after noise, so
    /// biased and clean reads consume identical RNG draws.
    void spoof_bias_set(double bias_m) { spoof_bias_m_ = bias_m; }
    void spoof_bias_clear() { spoof_bias_m_.reset(); }
    [[nodiscard]] bool bias_spoofed() const {
        return spoof_bias_m_.has_value();
    }

private:
    const VehicleDynamics* self_;
    const VehicleDynamics* target_ = nullptr;
    Params params_;
    sim::RandomStream* rng_;
    bool jammed_ = false;
    std::optional<Measurement> spoof_;
    std::optional<double> spoof_bias_m_;
};

/// Wheel odometry: dead-reckoned speed, immune to RF attacks; drift-free in
/// this model but noisier than GPS speed. Used by sensor-fusion defenses as
/// an independent cross-check.
class OdometrySensor {
public:
    struct Params {
        double speed_noise_mps = 0.25;
    };

    OdometrySensor(const VehicleDynamics& vehicle, Params params,
                   sim::RandomStream& rng)
        : vehicle_(&vehicle), params_(params), rng_(&rng) {}

    [[nodiscard]] double read_speed();

private:
    const VehicleDynamics* vehicle_;
    Params params_;
    sim::RandomStream* rng_;
};

}  // namespace platoon::phys
