#include "phys/sensors.hpp"

#include <cmath>

namespace platoon::phys {

GpsSensor::Fix GpsSensor::read() {
    Fix fix{vehicle_->position() + rng_->normal(0.0, params_.position_noise_m),
            vehicle_->speed() + rng_->normal(0.0, params_.speed_noise_mps)};
    if (spoof_offset_m_) fix.position_m += *spoof_offset_m_;
    return fix;
}

std::optional<RadarSensor::Measurement> RadarSensor::read() {
    if (jammed_) return std::nullopt;
    if (spoof_) {
        Measurement m = *spoof_;
        m.gap_m += rng_->normal(0.0, params_.range_noise_m);
        m.closing_mps += rng_->normal(0.0, params_.rate_noise_mps);
        return m;
    }
    if (target_ == nullptr) return std::nullopt;
    const double gap =
        target_->position() - target_->length() - self_->position();
    if (gap < 0.0 || gap > params_.max_range_m) return std::nullopt;
    Measurement m{gap + rng_->normal(0.0, params_.range_noise_m),
                  (self_->speed() - target_->speed()) +
                      rng_->normal(0.0, params_.rate_noise_mps)};
    if (spoof_bias_m_) m.gap_m += *spoof_bias_m_;
    return m;
}

double OdometrySensor::read_speed() {
    return vehicle_->speed() + rng_->normal(0.0, params_.speed_noise_mps);
}

}  // namespace platoon::phys
