// Road geometry. The platooning scenarios use a straight multi-lane highway;
// position along the road is a single coordinate, and lane changes are
// instantaneous lateral hops gated by the maneuver protocol (as in Plexe,
// where SUMO handles lateral motion separately from the longitudinal model).
#pragma once

#include <cstdint>

namespace platoon::phys {

struct Road {
    double length_m = 50000.0;
    int lanes = 3;
    double lane_width_m = 3.5;
};

/// Lane index (0 = rightmost). Kept as a tiny strong type so lane numbers
/// don't mix with platoon positions.
struct Lane {
    std::int32_t index = 0;
    friend constexpr bool operator==(Lane, Lane) = default;
};

}  // namespace platoon::phys
