// Instantaneous fuel-consumption / CO2 model.
//
// VT-Micro-style polynomial model: fuel rate is a polynomial in speed and
// acceleration, with an aerodynamic drag-reduction factor applied when the
// vehicle drives in another vehicle's slipstream — this is the mechanism by
// which platooning saves fuel (paper Section I / [1]). Coefficients are
// calibrated to give plausible heavy-truck magnitudes (~30 L/100km cruising
// at 25 m/s, ~8-15% saving at 8-15 m gaps), not to match a particular engine.
#pragma once

namespace platoon::phys {

struct FuelParams {
    double idle_rate_mlps = 0.6;     ///< Fuel burned at idle (ml/s).
    double drag_coeff = 0.00036;     ///< ml/s per (m/s)^3 of aero drag term.
    double rolling_coeff = 0.10;     ///< ml/s per m/s.
    double accel_coeff = 2.2;        ///< ml/s per (m/s^2 * m/s) positive power.
    double co2_g_per_ml = 2.64;      ///< Diesel: ~2.64 g CO2 per ml.
};
// Calibration: a lone truck cruising at 25 m/s burns ~8.7 ml/s = ~35 L/100km;
// drafting at a 5 m gap cuts the aero term by ~33%, i.e. ~20% total saving --
// consistent with published truck-platooning measurements.

/// Fraction of aerodynamic drag remaining when following at `gap` metres
/// behind a leading vehicle (1.0 = no reduction). Empirical exponential fit
/// to truck-platooning drag measurements: ~55% drag at 5 m, ~75% at 15 m.
[[nodiscard]] double drag_fraction(double gap_m);

class FuelModel {
public:
    explicit FuelModel(FuelParams params = {}) : params_(params) {}

    /// Instantaneous fuel rate (ml/s) at speed v, acceleration a, with the
    /// aerodynamic term scaled by drag_frac (from drag_fraction()).
    [[nodiscard]] double rate_mlps(double v_mps, double a_mps2,
                                   double drag_frac = 1.0) const;

    /// Integrates consumption over a step of dt seconds.
    void accumulate(double v_mps, double a_mps2, double drag_frac, double dt);

    [[nodiscard]] double total_ml() const { return total_ml_; }
    [[nodiscard]] double total_co2_g() const {
        return total_ml_ * params_.co2_g_per_ml;
    }
    [[nodiscard]] double distance_m() const { return distance_m_; }

    /// Litres per 100 km over everything accumulated so far (0 if no travel).
    [[nodiscard]] double litres_per_100km() const;

private:
    FuelParams params_;
    double total_ml_ = 0.0;
    double distance_m_ = 0.0;
};

}  // namespace platoon::phys
