#include "phys/fuel.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"

namespace platoon::phys {

double drag_fraction(double gap_m) {
    PLATOON_EXPECTS(gap_m >= 0.0);
    // 1 - 0.5 * exp(-gap/12): 0.52 at 1 m, 0.67 at 5 m, 0.86 at 25 m, -> 1.
    return 1.0 - 0.5 * std::exp(-gap_m / 12.0);
}

double FuelModel::rate_mlps(double v_mps, double a_mps2,
                            double drag_frac) const {
    PLATOON_EXPECTS(v_mps >= 0.0);
    PLATOON_EXPECTS(drag_frac >= 0.0 && drag_frac <= 1.0);
    const double aero = params_.drag_coeff * drag_frac * v_mps * v_mps * v_mps;
    const double rolling = params_.rolling_coeff * v_mps;
    // Only positive tractive power burns extra fuel; braking does not refund.
    const double tractive =
        params_.accel_coeff * std::max(0.0, a_mps2) * v_mps;
    return params_.idle_rate_mlps + aero + rolling + tractive;
}

void FuelModel::accumulate(double v_mps, double a_mps2, double drag_frac,
                           double dt) {
    PLATOON_EXPECTS(dt > 0.0);
    total_ml_ += rate_mlps(v_mps, a_mps2, drag_frac) * dt;
    distance_m_ += v_mps * dt;
}

double FuelModel::litres_per_100km() const {
    if (distance_m_ <= 0.0) return 0.0;
    const double litres = total_ml_ / 1000.0;
    return litres / (distance_m_ / 100000.0);
}

}  // namespace platoon::phys
