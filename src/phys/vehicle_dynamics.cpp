#include "phys/vehicle_dynamics.hpp"

#include <algorithm>

#include "sim/assert.hpp"

namespace platoon::phys {

VehicleParams truck_params() {
    VehicleParams p;
    p.length_m = 12.0;
    p.max_accel_mps2 = 1.5;
    p.max_decel_mps2 = 5.0;
    p.max_speed_mps = 30.0;  // ~108 km/h
    p.actuation_lag_s = 0.5;
    p.mass_kg = 20000.0;
    return p;
}

VehicleDynamics::VehicleDynamics(VehicleParams params, VehicleState initial)
    : params_(params), state_(initial) {
    PLATOON_EXPECTS(params_.actuation_lag_s > 0.0);
    PLATOON_EXPECTS(params_.max_accel_mps2 > 0.0);
    PLATOON_EXPECTS(params_.max_decel_mps2 > 0.0);
    PLATOON_EXPECTS(params_.max_speed_mps > 0.0);
}

void VehicleDynamics::step(double dt) {
    PLATOON_EXPECTS(dt > 0.0);
    const double u = std::clamp(command_mps2_, -params_.max_decel_mps2,
                                params_.max_accel_mps2);
    // First-order lag toward the commanded acceleration.
    const double alpha = dt / params_.actuation_lag_s;
    state_.accel_mps2 += std::clamp(alpha, 0.0, 1.0) * (u - state_.accel_mps2);
    state_.accel_mps2 = std::clamp(state_.accel_mps2, -params_.max_decel_mps2,
                                   params_.max_accel_mps2);

    state_.position_m += state_.speed_mps * dt;
    state_.speed_mps += state_.accel_mps2 * dt;
    if (state_.speed_mps < 0.0) {
        // Vehicles do not reverse: clamp and kill deceleration.
        state_.speed_mps = 0.0;
        if (state_.accel_mps2 < 0.0) state_.accel_mps2 = 0.0;
    }
    if (state_.speed_mps > params_.max_speed_mps) {
        state_.speed_mps = params_.max_speed_mps;
        if (state_.accel_mps2 > 0.0) state_.accel_mps2 = 0.0;
    }
}

}  // namespace platoon::phys
