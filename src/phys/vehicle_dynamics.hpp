// Longitudinal vehicle dynamics, Plexe-style.
//
// The model is the standard platooning abstraction (Rajamani; used by Plexe):
// a point mass on a straight lane whose realised acceleration `a` tracks the
// commanded acceleration `u` through a first-order actuation lag with time
// constant tau:
//
//     x' = v,   v' = a,   a' = (u - a) / tau
//
// integrated with forward Euler at a fixed small step (default 10 ms, the
// Plexe default). Acceleration and speed are clamped to physical limits.
#pragma once

#include <string>

#include "sim/types.hpp"

namespace platoon::phys {

struct VehicleParams {
    double length_m = 4.0;          ///< Vehicle body length.
    double max_accel_mps2 = 2.5;    ///< Engine limit.
    double max_decel_mps2 = 6.0;    ///< Braking limit (positive number).
    double max_speed_mps = 44.0;    ///< ~160 km/h.
    double actuation_lag_s = 0.5;   ///< First-order engine lag tau.
    double mass_kg = 1500.0;
};

/// Truck preset used by the platooning scenarios (the paper's motivating
/// use-case is truck platooning [1]).
[[nodiscard]] VehicleParams truck_params();

struct VehicleState {
    double position_m = 0.0;  ///< Front-bumper position along the lane.
    double speed_mps = 0.0;
    double accel_mps2 = 0.0;  ///< Realised acceleration.
};

class VehicleDynamics {
public:
    explicit VehicleDynamics(VehicleParams params, VehicleState initial = {});

    /// Sets the commanded acceleration (clamped to limits on application).
    void set_command(double u_mps2) { command_mps2_ = u_mps2; }
    [[nodiscard]] double command() const { return command_mps2_; }

    /// Advances the dynamics by dt seconds (dt > 0).
    void step(double dt);

    [[nodiscard]] const VehicleState& state() const { return state_; }
    [[nodiscard]] const VehicleParams& params() const { return params_; }
    [[nodiscard]] double position() const { return state_.position_m; }
    [[nodiscard]] double speed() const { return state_.speed_mps; }
    [[nodiscard]] double accel() const { return state_.accel_mps2; }
    [[nodiscard]] double length() const { return params_.length_m; }

    /// Teleports the vehicle (used for scenario setup only).
    void reset(VehicleState s) { state_ = s; }

private:
    VehicleParams params_;
    VehicleState state_;
    double command_mps2_ = 0.0;
};

}  // namespace platoon::phys
