// Minimal leveled logger. The simulator is single-threaded per scenario, so
// no synchronisation is needed; a global level keeps hot paths cheap (a
// disabled level costs one branch). printf-style formatting (the toolchain's
// libstdc++ predates <format>).
#pragma once

#include <cstdarg>
#include <cstdio>

namespace platoon::sim {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
public:
    static LogLevel level() { return level_; }
    static void set_level(LogLevel lvl) { level_ = lvl; }

    [[gnu::format(printf, 2, 3)]]
    static void log(LogLevel lvl, const char* fmt, ...) {
        if (lvl < level_) return;
        std::fprintf(stderr, "[%s] ", name(lvl));
        std::va_list args;
        va_start(args, fmt);
        std::vfprintf(stderr, fmt, args);
        va_end(args);
        std::fputc('\n', stderr);
    }

private:
    static const char* name(LogLevel lvl) {
        switch (lvl) {
            case LogLevel::kTrace: return "TRACE";
            case LogLevel::kDebug: return "DEBUG";
            case LogLevel::kInfo: return "INFO ";
            case LogLevel::kWarn: return "WARN ";
            case LogLevel::kError: return "ERROR";
            default: return "?";
        }
    }
    inline static LogLevel level_ = LogLevel::kWarn;
};

#define PLATOON_LOG(lvl, ...) ::platoon::sim::Logger::log(lvl, __VA_ARGS__)
#define PLATOON_LOG_DEBUG(...) \
    PLATOON_LOG(::platoon::sim::LogLevel::kDebug, __VA_ARGS__)
#define PLATOON_LOG_INFO(...) \
    PLATOON_LOG(::platoon::sim::LogLevel::kInfo, __VA_ARGS__)
#define PLATOON_LOG_WARN(...) \
    PLATOON_LOG(::platoon::sim::LogLevel::kWarn, __VA_ARGS__)

}  // namespace platoon::sim
