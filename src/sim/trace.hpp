// In-memory time-series trace recorder, used by metrics collectors and for
// CSV export of per-vehicle trajectories.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace platoon::sim {

/// One named scalar time series (e.g. "vehicle3.gap").
class TraceSeries {
public:
    explicit TraceSeries(std::string name) : name_(std::move(name)) {}

    void record(SimTime t, double value) {
        times_.push_back(t);
        values_.push_back(value);
    }

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::size_t size() const { return values_.size(); }
    [[nodiscard]] bool empty() const { return values_.empty(); }
    [[nodiscard]] const std::vector<SimTime>& times() const { return times_; }
    [[nodiscard]] const std::vector<double>& values() const { return values_; }

    /// Summary statistics over all recorded values.
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double mean() const;
    [[nodiscard]] double rms() const;
    [[nodiscard]] double stddev() const;
    /// Last recorded value; series must be non-empty.
    [[nodiscard]] double last() const;
    /// Mean over samples with time >= from.
    [[nodiscard]] double mean_after(SimTime from) const;
    /// RMS over samples with time >= from.
    [[nodiscard]] double rms_after(SimTime from) const;
    /// max(|value|) over samples with time >= from.
    [[nodiscard]] double max_abs_after(SimTime from) const;

private:
    std::string name_;
    std::vector<SimTime> times_;
    std::vector<double> values_;
};

/// A bag of named series; creates on first use.
class TraceRecorder {
public:
    TraceSeries& series(const std::string& name);
    [[nodiscard]] const TraceSeries* find(const std::string& name) const;
    [[nodiscard]] std::size_t series_count() const { return series_.size(); }

    /// Writes all series as long-format CSV: series,time,value.
    void write_csv(std::ostream& os) const;

private:
    std::vector<TraceSeries> series_;
};

}  // namespace platoon::sim
