// Fixed-size thread pool for fanning out independent simulation runs.
//
// Deliberately minimal: no work stealing, no priorities, one FIFO queue.
// Determinism of the experiment layer comes from *where results land*, not
// from execution order -- callers collect futures in submission order and
// aggregate serially -- so the pool itself only has to guarantee that every
// submitted task runs exactly once and that exceptions propagate through
// the returned future. The destructor drains the queue: every task that was
// submitted before destruction begins still runs to completion, so futures
// held by callers never dangle in a broken-promise state.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace platoon::sim {

class ThreadPool {
public:
    /// Spawns `threads` workers; 0 is clamped to 1. A one-thread pool is the
    /// degenerate case: tasks run FIFO, off the caller's thread.
    explicit ThreadPool(unsigned threads);

    /// Drains all queued work, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] unsigned size() const {
        return static_cast<unsigned>(workers_.size());
    }

    /// Enqueues `fn` and returns a future for its result. An exception
    /// thrown by `fn` is captured and rethrown from future::get().
    template <typename F>
    auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
        using Result = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        wake_.notify_one();
        return future;
    }

    /// max(1, std::thread::hardware_concurrency()).
    [[nodiscard]] static unsigned hardware_jobs();

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

}  // namespace platoon::sim
