// Forwarder: the vocabulary types moved to base/types.hpp so that pure
// libraries (crypto) can name identities and timestamps without depending
// on the simulator. Simulator-layer code may keep including this path.
#pragma once

#include "base/types.hpp"
