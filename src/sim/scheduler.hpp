// Discrete-event scheduler: the heart of the simulation kernel.
//
// Events are closures scheduled at absolute simulation times. Ties are broken
// by insertion order (FIFO among equal-time events) so runs are deterministic.
// Periodic events reschedule themselves until cancelled. Cancellation is via
// cheap handles that remain valid after the event fires (cancelling a fired
// event is a no-op).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hpp"

namespace platoon::sim {

/// Opaque handle identifying a scheduled event; default-constructed handles
/// refer to no event.
class EventHandle {
public:
    EventHandle() = default;

    [[nodiscard]] bool valid() const { return seq_ != 0; }

private:
    friend class Scheduler;
    explicit EventHandle(std::uint64_t seq) : seq_(seq) {}
    std::uint64_t seq_ = 0;
};

class Scheduler {
public:
    using Action = std::function<void()>;

    Scheduler() = default;
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// Current simulation time (seconds).
    [[nodiscard]] SimTime now() const { return now_; }

    /// Schedules `action` at absolute time `at` (must be >= now()).
    EventHandle schedule_at(SimTime at, Action action);

    /// Schedules `action` after `delay` seconds (delay >= 0).
    EventHandle schedule_in(SimTime delay, Action action);

    /// Schedules `action` every `period` seconds, first firing at
    /// `first` (absolute). The action keeps firing until cancelled.
    EventHandle schedule_every(SimTime first, SimTime period, Action action);

    /// Cancels a pending event. No-op if already fired or never scheduled.
    void cancel(EventHandle h);

    /// Runs events until the queue is empty or simulation time would exceed
    /// `until`; on normal completion time is advanced to `until`. Returns the
    /// number of events executed. If request_stop() was called from inside an
    /// event, returns immediately after that event without advancing time.
    std::uint64_t run_until(SimTime until);

    /// Executes exactly one event if any is pending; returns false otherwise.
    bool step();

    /// Number of distinct scheduled (not yet fired/cancelled) events;
    /// a periodic event counts as one.
    [[nodiscard]] std::size_t pending() const { return live_.size(); }
    [[nodiscard]] std::uint64_t executed() const { return executed_; }

    /// Requests that run_until returns after the current event completes.
    void request_stop() { stop_requested_ = true; }

private:
    struct Entry {
        SimTime at;
        std::uint64_t seq;  // insertion order; also identity
        SimTime period;     // 0 => one-shot
        std::shared_ptr<Action> action;

        // Min-heap by (time, seq).
        friend bool operator>(const Entry& a, const Entry& b) {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    /// Pops the next non-cancelled entry; false if none.
    bool pop_next(Entry& out);

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::unordered_set<std::uint64_t> live_;
    SimTime now_ = 0.0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t executed_ = 0;
    bool stop_requested_ = false;
};

}  // namespace platoon::sim
