// Deterministic, splittable random-number generation.
//
// Every stochastic component in the simulator (channel fading, MAC backoff,
// sensor noise, attacker timing, ...) draws from its own named RandomStream,
// derived from the scenario master seed via SplitMix64 over a hash of the
// stream name. Runs are therefore reproducible bit-for-bit for a given master
// seed, and adding a new consumer of randomness does not perturb the draws
// seen by existing consumers.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace platoon::sim {

/// One entry of the stream manifest (src/sim/streams.def). Stream names are
/// cross-TU contracts: the seed derivation hashes the name, so a rename
/// re-rolls every draw the stream feeds. The manifest pins the names and
/// platoonlint's stream-registry rule enforces it lexically.
struct StreamDecl {
    std::string_view name;   ///< exact name, or dotted prefix ending in '.'
    std::string_view owner;  ///< the one file allowed to spell the name
    bool is_prefix;          ///< true for PLATOON_STREAM_PREFIX entries
};

/// The declared stream set, in manifest order.
[[nodiscard]] std::span<const StreamDecl> declared_streams();

/// True when `name` is declared: an exact entry, a prefix entry that
/// `name` extends, or a prefix entry minus its trailing dot.
[[nodiscard]] bool stream_declared(std::string_view name);

/// SplitMix64: used for seeding / stream derivation (public-domain algorithm
/// by Sebastiano Vigna).
class SplitMix64 {
public:
    constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    constexpr std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna, public domain): the workhorse PRNG.
class Xoshiro256 {
public:
    explicit Xoshiro256(std::uint64_t seed);

    std::uint64_t next();

    /// Jump function: advances 2^128 steps; used to split non-overlapping
    /// sub-streams from one generator.
    void jump();

private:
    std::uint64_t s_[4];
};

/// A named random stream with the distributions the simulator needs.
class RandomStream {
public:
    /// Derives the stream seed from `master_seed` and the FNV-1a hash of
    /// `name`, so streams with distinct names are statistically independent.
    RandomStream(std::uint64_t master_seed, std::string_view name);

    /// Uniform in [0, 1).
    double uniform();
    /// Uniform in [lo, hi).
    double uniform(double lo, double hi);
    /// Uniform integer in [0, n) ; n > 0.
    std::uint64_t uniform_int(std::uint64_t n);
    /// Standard normal via Box-Muller (cached pair).
    double normal();
    /// Normal with given mean and standard deviation.
    double normal(double mean, double stddev);
    /// Exponential with given rate lambda (> 0).
    double exponential(double lambda);
    /// Bernoulli trial with probability p in [0, 1].
    bool chance(double p);
    /// Gamma(shape k > 0, scale theta > 0) via Marsaglia-Tsang.
    double gamma(double shape, double scale);
    /// Nakagami-m distributed power gain with unit mean (m >= 0.5).
    /// (If X ~ Nakagami-m amplitude, X^2 ~ Gamma(m, 1/m); we return X^2,
    /// i.e. the power gain, which is what a channel model multiplies.)
    double nakagami_power(double m);
    /// Raw 64 random bits.
    std::uint64_t bits();

    [[nodiscard]] std::uint64_t draws() const { return draws_; }

private:
    Xoshiro256 engine_;
    double cached_normal_ = 0.0;
    bool have_cached_normal_ = false;
    std::uint64_t draws_ = 0;
};

/// FNV-1a 64-bit hash (exposed for tests and for stable stream naming).
[[nodiscard]] std::uint64_t fnv1a(std::string_view s);

}  // namespace platoon::sim
