// Forwarder: the contract macros moved to base/assert.hpp so that pure
// libraries (crypto) can use them without depending on the simulator.
// Simulator-layer code may keep including this path.
#pragma once

#include "base/assert.hpp"
