#include "sim/random.hpp"

#include <cmath>

#include "sim/assert.hpp"

namespace platoon::sim {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

constexpr StreamDecl kStreamManifest[] = {
#define PLATOON_STREAM(name, owner, doc) {name, owner, false},
#define PLATOON_STREAM_PREFIX(prefix, owner, doc) {prefix, owner, true},
#include "sim/streams.def"
#undef PLATOON_STREAM
#undef PLATOON_STREAM_PREFIX
};
}  // namespace

std::span<const StreamDecl> declared_streams() { return kStreamManifest; }

bool stream_declared(std::string_view name) {
    for (const StreamDecl& d : kStreamManifest) {
        if (!d.is_prefix) {
            if (name == d.name) return true;
            continue;
        }
        if (name.substr(0, d.name.size()) == d.name) return true;
        // "vehicle" is the prefix family "vehicle." minus the dot.
        if (name == d.name.substr(0, d.name.size() - 1)) return true;
    }
    return false;
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

void Xoshiro256::jump() {
    static constexpr std::uint64_t kJump[] = {0x180EC6D33CFD0ABAull,
                                              0xD5A61266F0C9392Cull,
                                              0xA9582618E03FC9AAull,
                                              0x39ABDC4529B1661Cull};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (jump & (1ull << b)) {
                s0 ^= s_[0];
                s1 ^= s_[1];
                s2 ^= s_[2];
                s3 ^= s_[3];
            }
            next();
        }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
}

std::uint64_t fnv1a(std::string_view s) {
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001B3ull;
    }
    return h;
}

RandomStream::RandomStream(std::uint64_t master_seed, std::string_view name)
    : engine_(SplitMix64(master_seed ^ fnv1a(name)).next()) {}

std::uint64_t RandomStream::bits() {
    ++draws_;
    return engine_.next();
}

double RandomStream::uniform() {
    // 53 random mantissa bits -> uniform double in [0, 1).
    return static_cast<double>(bits() >> 11) * 0x1.0p-53;
}

double RandomStream::uniform(double lo, double hi) {
    PLATOON_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform();
}

std::uint64_t RandomStream::uniform_int(std::uint64_t n) {
    PLATOON_EXPECTS(n > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ull - (~0ull % n);
    std::uint64_t x;
    do {
        x = bits();
    } while (x >= limit);
    return x % n;
}

double RandomStream::normal() {
    if (have_cached_normal_) {
        have_cached_normal_ = false;
        return cached_normal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    have_cached_normal_ = true;
    return r * std::cos(theta);
}

double RandomStream::normal(double mean, double stddev) {
    PLATOON_EXPECTS(stddev >= 0.0);
    return mean + stddev * normal();
}

double RandomStream::exponential(double lambda) {
    PLATOON_EXPECTS(lambda > 0.0);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
}

bool RandomStream::chance(double p) {
    PLATOON_EXPECTS(p >= 0.0 && p <= 1.0);
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

double RandomStream::gamma(double shape, double scale) {
    PLATOON_EXPECTS(shape > 0.0 && scale > 0.0);
    // Marsaglia & Tsang method; boost small shapes via the u^(1/k) trick.
    if (shape < 1.0) {
        const double u = std::max(uniform(), 1e-300);
        return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x, v;
        do {
            x = normal();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
        if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
            return d * v * scale;
    }
}

double RandomStream::nakagami_power(double m) {
    PLATOON_EXPECTS(m >= 0.5);
    // Power gain of Nakagami-m amplitude fading with E[gain] = 1.
    return gamma(m, 1.0 / m);
}

}  // namespace platoon::sim
