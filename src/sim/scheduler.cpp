#include "sim/scheduler.hpp"

#include <algorithm>

#include "obs/counters.hpp"
#include "obs/timer.hpp"
#include "sim/assert.hpp"

namespace platoon::sim {

namespace {
obs::Counter g_events_executed{"sim.events_executed"};
}  // namespace

EventHandle Scheduler::schedule_at(SimTime at, Action action) {
    PLATOON_EXPECTS(at >= now_);
    PLATOON_EXPECTS(action != nullptr);
    const std::uint64_t seq = next_seq_++;
    live_.insert(seq);
    heap_.push(Entry{at, seq, 0.0, std::make_shared<Action>(std::move(action))});
    return EventHandle{seq};
}

EventHandle Scheduler::schedule_in(SimTime delay, Action action) {
    PLATOON_EXPECTS(delay >= 0.0);
    return schedule_at(now_ + delay, std::move(action));
}

EventHandle Scheduler::schedule_every(SimTime first, SimTime period,
                                      Action action) {
    PLATOON_EXPECTS(first >= now_);
    PLATOON_EXPECTS(period > 0.0);
    PLATOON_EXPECTS(action != nullptr);
    const std::uint64_t seq = next_seq_++;
    live_.insert(seq);
    heap_.push(
        Entry{first, seq, period, std::make_shared<Action>(std::move(action))});
    return EventHandle{seq};
}

void Scheduler::cancel(EventHandle h) {
    if (!h.valid()) return;
    live_.erase(h.seq_);
}

bool Scheduler::pop_next(Entry& out) {
    while (!heap_.empty()) {
        Entry top = heap_.top();
        heap_.pop();
        if (!live_.contains(top.seq)) continue;  // cancelled
        out = std::move(top);
        return true;
    }
    return false;
}

bool Scheduler::step() {
    Entry e;
    if (!pop_next(e)) return false;
    PLATOON_ASSERT(e.at >= now_);
    now_ = e.at;
    if (e.period > 0.0) {
        // Reschedule before running so the action can cancel itself.
        heap_.push(Entry{e.at + e.period, e.seq, e.period, e.action});
    } else {
        live_.erase(e.seq);
    }
    (*e.action)();
    ++executed_;
    g_events_executed.inc();
    return true;
}

std::uint64_t Scheduler::run_until(SimTime until) {
    PLATOON_EXPECTS(until >= now_);
    const obs::ScopedTimer timer("sim.run");
    std::uint64_t n = 0;
    stop_requested_ = false;
    for (;;) {
        Entry e;
        if (!pop_next(e)) break;
        if (e.at > until) {
            // Not due yet: put it back (it is still live) and stop.
            heap_.push(std::move(e));
            break;
        }
        now_ = e.at;
        if (e.period > 0.0) {
            heap_.push(Entry{e.at + e.period, e.seq, e.period, e.action});
        } else {
            live_.erase(e.seq);
        }
        (*e.action)();
        ++executed_;
        ++n;
        if (stop_requested_) {
            g_events_executed.add(n);
            return n;
        }
    }
    now_ = std::max(now_, until);
    g_events_executed.add(n);
    return n;
}

}  // namespace platoon::sim
