#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"

namespace platoon::sim {

double TraceSeries::min() const {
    PLATOON_EXPECTS(!values_.empty());
    return *std::min_element(values_.begin(), values_.end());
}

double TraceSeries::max() const {
    PLATOON_EXPECTS(!values_.empty());
    return *std::max_element(values_.begin(), values_.end());
}

double TraceSeries::mean() const {
    PLATOON_EXPECTS(!values_.empty());
    double sum = 0.0;
    for (double v : values_) sum += v;
    return sum / static_cast<double>(values_.size());
}

double TraceSeries::rms() const {
    PLATOON_EXPECTS(!values_.empty());
    double sum = 0.0;
    for (double v : values_) sum += v * v;
    return std::sqrt(sum / static_cast<double>(values_.size()));
}

double TraceSeries::stddev() const {
    PLATOON_EXPECTS(!values_.empty());
    const double m = mean();
    double sum = 0.0;
    for (double v : values_) sum += (v - m) * (v - m);
    return std::sqrt(sum / static_cast<double>(values_.size()));
}

double TraceSeries::last() const {
    PLATOON_EXPECTS(!values_.empty());
    return values_.back();
}

double TraceSeries::mean_after(SimTime from) const {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
        if (times_[i] >= from) {
            sum += values_[i];
            ++n;
        }
    }
    PLATOON_EXPECTS(n > 0);
    return sum / static_cast<double>(n);
}

double TraceSeries::rms_after(SimTime from) const {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
        if (times_[i] >= from) {
            sum += values_[i] * values_[i];
            ++n;
        }
    }
    PLATOON_EXPECTS(n > 0);
    return std::sqrt(sum / static_cast<double>(n));
}

double TraceSeries::max_abs_after(SimTime from) const {
    double best = 0.0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
        if (times_[i] >= from) best = std::max(best, std::abs(values_[i]));
    }
    return best;
}

TraceSeries& TraceRecorder::series(const std::string& name) {
    for (auto& s : series_) {
        if (s.name() == name) return s;
    }
    series_.emplace_back(name);
    return series_.back();
}

const TraceSeries* TraceRecorder::find(const std::string& name) const {
    for (const auto& s : series_) {
        if (s.name() == name) return &s;
    }
    return nullptr;
}

void TraceRecorder::write_csv(std::ostream& os) const {
    os << "series,time,value\n";
    for (const auto& s : series_) {
        for (std::size_t i = 0; i < s.size(); ++i) {
            os << s.name() << ',' << s.times()[i] << ',' << s.values()[i]
               << '\n';
        }
    }
}

}  // namespace platoon::sim
