// Byte-buffer vocabulary used throughout the crypto substrate.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace platoon::crypto {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Converts a string's characters to bytes (no encoding applied).
[[nodiscard]] Bytes to_bytes(std::string_view s);

/// Lower-case hex encoding.
[[nodiscard]] std::string to_hex(BytesView data);

/// Parses lower/upper-case hex; throws std::invalid_argument on bad input.
[[nodiscard]] Bytes from_hex(std::string_view hex);

/// Constant-time equality (length leaks; contents do not).
[[nodiscard]] bool ct_equal(BytesView a, BytesView b);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Appends a 64-bit integer big-endian (canonical wire order for envelopes).
void append_u64(Bytes& dst, std::uint64_t v);

/// Appends a 32-bit integer big-endian.
void append_u32(Bytes& dst, std::uint32_t v);

/// Appends a double through its IEEE-754 bit pattern (big-endian).
void append_f64(Bytes& dst, double v);

/// Reads back what append_u64/append_u32/append_f64 wrote; the offset is
/// advanced. Throws std::out_of_range when the buffer is too short.
[[nodiscard]] std::uint64_t read_u64(BytesView src, std::size_t& offset);
[[nodiscard]] std::uint32_t read_u32(BytesView src, std::size_t& offset);
[[nodiscard]] double read_f64(BytesView src, std::size_t& offset);

}  // namespace platoon::crypto
