#include "crypto/fading_key_agreement.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "crypto/sha256.hpp"
#include "base/assert.hpp"

namespace platoon::crypto {

namespace {

/// Mean and standard deviation of a sample vector.
std::pair<double, double> moments(std::span<const double> samples) {
    PLATOON_EXPECTS(!samples.empty());
    double sum = 0.0;
    for (double s : samples) sum += s;
    const double mean = sum / static_cast<double>(samples.size());
    double var = 0.0;
    for (double s : samples) var += (s - mean) * (s - mean);
    var /= static_cast<double>(samples.size());
    return {mean, std::sqrt(var)};
}

/// Extracts the bit each side produced for the sample indices in `indices`.
/// `q` maps kept-sample order to bits; indices not kept by this side are
/// skipped by the caller (they never enter `indices`).
std::vector<std::uint8_t> bits_at(const QuantizedBits& q,
                                  const std::vector<std::size_t>& indices) {
    std::unordered_map<std::size_t, std::uint8_t> by_index;
    by_index.reserve(q.kept.size());
    for (std::size_t i = 0; i < q.kept.size(); ++i)
        by_index.emplace(q.kept[i], q.bits[i]);
    std::vector<std::uint8_t> out;
    out.reserve(indices.size());
    for (std::size_t idx : indices) {
        const auto it = by_index.find(idx);
        PLATOON_ASSERT(it != by_index.end());
        out.push_back(it->second);
    }
    return out;
}

std::uint8_t block_parity(std::span<const std::uint8_t> bits) {
    std::uint8_t p = 0;
    for (std::uint8_t b : bits) p ^= b;
    return p;
}

/// Concatenates surviving blocks (dropping the last bit of each block, which
/// pays for the leaked parity bit) and hashes into a 32-byte key.
Bytes amplify(const std::vector<std::uint8_t>& bits, std::size_t block_bits,
              const std::vector<bool>& block_kept,
              std::size_t* harvested_out) {
    Bytes bitstream;
    std::size_t harvested = 0;
    const std::size_t blocks = block_kept.size();
    for (std::size_t b = 0; b < blocks; ++b) {
        if (!block_kept[b]) continue;
        const std::size_t begin = b * block_bits;
        const std::size_t end =
            std::min(bits.size(), begin + block_bits) - 1;  // drop parity bit
        for (std::size_t i = begin; i < end; ++i) {
            bitstream.push_back(bits[i]);
            ++harvested;
        }
    }
    if (harvested_out != nullptr) *harvested_out = harvested;
    Sha256 h;
    h.update(std::string_view("platoonsec.fka.v1"));
    h.update(BytesView(bitstream));
    const auto d = h.finish();
    return Bytes(d.begin(), d.end());
}

}  // namespace

QuantizedBits quantize(std::span<const double> samples,
                       const QuantizerConfig& config) {
    PLATOON_EXPECTS(config.guard_sigma >= 0.0);
    QuantizedBits out;
    if (samples.empty()) return out;
    const auto [mean, stddev] = moments(samples);
    const double guard = config.guard_sigma * stddev;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const double d = samples[i] - mean;
        if (std::abs(d) < guard) continue;  // unreliable: drop
        out.kept.push_back(i);
        out.bits.push_back(d >= 0.0 ? 1 : 0);
    }
    return out;
}

AgreementResult agree(std::span<const double> alice_samples,
                      std::span<const double> bob_samples,
                      const AgreementConfig& config) {
    PLATOON_EXPECTS(alice_samples.size() == bob_samples.size());
    PLATOON_EXPECTS(config.block_bits >= 2);

    AgreementResult result;
    result.transcript.block_bits = config.block_bits;

    const QuantizedBits qa = quantize(alice_samples, config.quantizer);
    const QuantizedBits qb = quantize(bob_samples, config.quantizer);

    // Index reconciliation: both publish which probe indices they kept;
    // the protocol proceeds on the intersection (public information —
    // indices reveal nothing about bit values).
    std::set_intersection(qa.kept.begin(), qa.kept.end(), qb.kept.begin(),
                          qb.kept.end(),
                          std::back_inserter(result.transcript.common_indices));

    const auto bits_a = bits_at(qa, result.transcript.common_indices);
    const auto bits_b = bits_at(qb, result.transcript.common_indices);

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < bits_a.size(); ++i)
        if (bits_a[i] != bits_b[i]) ++mismatches;
    result.raw_mismatch =
        bits_a.empty() ? 0.0
                       : static_cast<double>(mismatches) /
                             static_cast<double>(bits_a.size());

    // Block-parity reconciliation: Alice publishes each block's parity; Bob
    // keeps only blocks whose parity he reproduces. (CASCADE would correct
    // instead of discard; discarding is simpler and strictly safe.)
    const std::size_t blocks = bits_a.size() / config.block_bits;
    result.transcript.alice_parities.reserve(blocks);
    result.transcript.block_kept.reserve(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t begin = b * config.block_bits;
        const std::uint8_t pa = block_parity(
            std::span(bits_a).subspan(begin, config.block_bits));
        const std::uint8_t pb = block_parity(
            std::span(bits_b).subspan(begin, config.block_bits));
        result.transcript.alice_parities.push_back(pa);
        result.transcript.block_kept.push_back(pa == pb);
    }

    std::size_t harvested_a = 0;
    std::size_t harvested_b = 0;
    const Bytes key_a = amplify(bits_a, config.block_bits,
                                result.transcript.block_kept, &harvested_a);
    const Bytes key_b = amplify(bits_b, config.block_bits,
                                result.transcript.block_kept, &harvested_b);

    result.key = key_a;
    result.harvested_bits = harvested_a;
    // Key confirmation: both sides exchange H(key || role); success iff the
    // keys match and enough entropy was harvested.
    result.success =
        (key_a == key_b) && harvested_a >= config.min_key_bits;
    return result;
}

Bytes eavesdrop_key(std::span<const double> eve_samples,
                    const Transcript& transcript,
                    const QuantizerConfig& config) {
    // Eve cannot afford to drop samples that Alice/Bob kept, so she
    // quantizes with no guard band and reads her bit at every published
    // common index.
    QuantizerConfig no_guard = config;
    no_guard.guard_sigma = 0.0;
    const QuantizedBits qe = quantize(eve_samples, no_guard);

    std::vector<std::uint8_t> bits_e;
    bits_e.reserve(transcript.common_indices.size());
    for (std::size_t idx : transcript.common_indices) {
        PLATOON_EXPECTS(idx < qe.bits.size());
        bits_e.push_back(qe.bits[idx]);
    }
    return amplify(bits_e, transcript.block_bits, transcript.block_kept,
                   nullptr);
}

}  // namespace platoon::crypto
