#include "crypto/chacha20.hpp"

#include <bit>

#include "base/assert.hpp"

namespace platoon::crypto {

namespace {
std::uint32_t load_le32(const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}
}  // namespace

void ChaCha20::quarter_round(std::uint32_t& a, std::uint32_t& b,
                             std::uint32_t& c, std::uint32_t& d) {
    a += b; d ^= a; d = std::rotl(d, 16);
    c += d; b ^= c; b = std::rotl(b, 12);
    a += b; d ^= a; d = std::rotl(d, 8);
    c += d; b ^= c; b = std::rotl(b, 7);
}

ChaCha20::ChaCha20(BytesView key, BytesView nonce,
                   std::uint32_t initial_counter) {
    PLATOON_EXPECTS(key.size() == kKeySize);
    PLATOON_EXPECTS(nonce.size() == kNonceSize);
    state_[0] = 0x61707865;
    state_[1] = 0x3320646e;
    state_[2] = 0x79622d32;
    state_[3] = 0x6b206574;
    for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + 4 * i);
    state_[12] = initial_counter;
    for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + 4 * i);
}

void ChaCha20::next_block() {
    std::array<std::uint32_t, 16> x = state_;
    for (int round = 0; round < 10; ++round) {
        quarter_round(x[0], x[4], x[8], x[12]);
        quarter_round(x[1], x[5], x[9], x[13]);
        quarter_round(x[2], x[6], x[10], x[14]);
        quarter_round(x[3], x[7], x[11], x[15]);
        quarter_round(x[0], x[5], x[10], x[15]);
        quarter_round(x[1], x[6], x[11], x[12]);
        quarter_round(x[2], x[7], x[8], x[13]);
        quarter_round(x[3], x[4], x[9], x[14]);
    }
    for (int i = 0; i < 16; ++i) {
        const std::uint32_t word = x[i] + state_[i];
        keystream_[4 * i] = static_cast<std::uint8_t>(word);
        keystream_[4 * i + 1] = static_cast<std::uint8_t>(word >> 8);
        keystream_[4 * i + 2] = static_cast<std::uint8_t>(word >> 16);
        keystream_[4 * i + 3] = static_cast<std::uint8_t>(word >> 24);
    }
    ++state_[12];
    keystream_used_ = 0;
}

void ChaCha20::apply(Bytes& data) {
    for (auto& byte : data) {
        if (keystream_used_ == 64) next_block();
        byte ^= keystream_[keystream_used_++];
    }
}

Bytes ChaCha20::crypt(BytesView key, BytesView nonce, BytesView data,
                      std::uint32_t initial_counter) {
    ChaCha20 cipher(key, nonce, initial_counter);
    Bytes out(data.begin(), data.end());
    cipher.apply(out);
    return out;
}

}  // namespace platoon::crypto
