#include "crypto/hmac.hpp"

#include "base/assert.hpp"

namespace platoon::crypto {

Sha256::Digest hmac_sha256(BytesView key, BytesView data) {
    std::array<std::uint8_t, 64> k{};
    if (key.size() > 64) {
        const auto d = Sha256::hash(key);
        std::copy(d.begin(), d.end(), k.begin());
    } else {
        std::copy(key.begin(), key.end(), k.begin());
    }

    std::array<std::uint8_t, 64> ipad, opad;
    for (int i = 0; i < 64; ++i) {
        ipad[i] = k[i] ^ 0x36;
        opad[i] = k[i] ^ 0x5c;
    }

    Sha256 inner;
    inner.update(BytesView(ipad.data(), ipad.size()));
    inner.update(data);
    const auto inner_digest = inner.finish();

    Sha256 outer;
    outer.update(BytesView(opad.data(), opad.size()));
    outer.update(BytesView(inner_digest.data(), inner_digest.size()));
    return outer.finish();
}

Bytes hmac_tag(BytesView key, BytesView data, std::size_t tag_len) {
    PLATOON_EXPECTS(tag_len >= 1 && tag_len <= Sha256::kDigestSize);
    const auto d = hmac_sha256(key, data);
    return Bytes(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(tag_len));
}

Bytes hkdf(BytesView ikm, BytesView salt, std::string_view info,
           std::size_t out_len) {
    PLATOON_EXPECTS(out_len >= 1 && out_len <= Sha256::kDigestSize);
    const auto prk = hmac_sha256(salt, ikm);
    Bytes block;
    append(block, to_bytes(info));
    block.push_back(0x01);
    const auto okm =
        hmac_sha256(BytesView(prk.data(), prk.size()), BytesView(block));
    return Bytes(okm.begin(), okm.begin() + static_cast<std::ptrdiff_t>(out_len));
}

}  // namespace platoon::crypto
