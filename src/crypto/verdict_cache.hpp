// Shared-verdict memoization for receiver-independent crypto facts.
//
// A signature (or group-MAC) check over (key material, authenticated bytes,
// tag) does not depend on which receiver performs it, so N receivers of one
// broadcast envelope can share a single verification. The cache stores those
// *facts* -- "this cert's CA signature is valid", "this tag verifies under
// this key" -- keyed by a 32-byte digest that binds all inputs, never a
// combined VerifyResult: per-receiver checks (cert time window, CRL, replay
// freshness, pairwise-MAC, decryption) are evaluated fresh on every call, so
// heterogeneous receivers and time-dependent verdicts stay exact.
//
// The cache is bounded (FIFO eviction) and fully deterministic: one instance
// is shared by all receivers of a Scenario, lookups never iterate the map,
// and eviction order depends only on insertion order.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

namespace platoon::crypto {

class VerdictCache {
public:
    /// 32-byte fact key (a domain-separated SHA-256 digest, or a packed
    /// header for the trivial-accept fact; see secured_message.cpp).
    using Key = std::array<std::uint8_t, 32>;

    explicit VerdictCache(std::size_t capacity = 4096);

    /// The cached truth value of a fact, or nullopt when unknown.
    [[nodiscard]] std::optional<bool> lookup(const Key& key);

    /// Records a fact, evicting the oldest entry when full. Re-storing an
    /// existing key updates the value without changing eviction order.
    void store(const Key& key, bool valid);

    [[nodiscard]] std::size_t size() const { return map_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

private:
    struct KeyHash {
        std::size_t operator()(const Key& k) const {
            // Keys are digests (or include one); the first 8 bytes are
            // already uniformly distributed.
            std::uint64_t h = 0;
            for (int i = 0; i < 8; ++i)
                h |= static_cast<std::uint64_t>(k[static_cast<std::size_t>(i)])
                     << (8 * i);
            return static_cast<std::size_t>(h);
        }
    };

    std::size_t capacity_;
    // Lookup only -- never iterated, so unordered storage cannot leak
    // nondeterminism into verdicts or counters.
    std::unordered_map<Key, bool, KeyHash> map_;
    std::deque<Key> fifo_;  ///< Insertion order, drives eviction.
};

}  // namespace platoon::crypto
