// Certificates, certificate authority and revocation.
//
// Models the PKI the paper's "Secret and Public Keys" mechanism relies on
// (Section VI-A.1, [8], [30]): a trusted authority signs bindings between a
// vehicle identity (or a rotating pseudonym, for privacy) and a public key;
// verifiers check the CA signature, validity window and the revocation list.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "crypto/eddsa.hpp"
#include "base/types.hpp"

namespace platoon::crypto {

struct Certificate {
    std::uint64_t serial = 0;
    sim::NodeId subject;             ///< Real registered identity.
    std::uint64_t pseudonym_id = 0;  ///< 0 = long-term cert; else pseudonym.
    Bytes public_key;                ///< 64-byte uncompressed point.
    sim::SimTime valid_from = 0.0;
    sim::SimTime valid_until = 0.0;
    Bytes ca_signature;              ///< 96-byte Schnorr signature.

    /// Canonical to-be-signed encoding.
    [[nodiscard]] Bytes tbs() const;
};

enum class CertCheck {
    kOk,
    kBadSignature,
    kNotYetValid,
    kExpired,
    kRevoked,
};

/// Signature + validity check against a CA public key (no revocation; the
/// caller consults a CRL separately, since CRL freshness is a distribution
/// problem the RSU mechanism owns).
[[nodiscard]] CertCheck verify_certificate(const Certificate& cert,
                                           BytesView ca_public_key,
                                           sim::SimTime now);

/// Certificate revocation list: set of revoked serials.
class RevocationList {
public:
    void revoke(std::uint64_t serial) { revoked_.insert(serial); }
    [[nodiscard]] bool is_revoked(std::uint64_t serial) const {
        return revoked_.contains(serial);
    }
    [[nodiscard]] std::size_t size() const { return revoked_.size(); }
    /// Snapshot of revoked serials (sorted, for deterministic broadcasts).
    [[nodiscard]] std::vector<std::uint64_t> serials() const;
    /// Merges another CRL (e.g. received from an RSU broadcast).
    void merge(const RevocationList& other);

private:
    std::unordered_set<std::uint64_t> revoked_;
};

class CertificateAuthority {
public:
    /// Deterministic CA keyed from a seed (scenario reproducibility).
    explicit CertificateAuthority(BytesView seed);

    [[nodiscard]] const Bytes& public_key() const {
        return key_.public_bytes;
    }

    /// Issues a certificate for `subject_public_key`.
    Certificate issue(sim::NodeId subject, std::uint64_t pseudonym_id,
                      BytesView subject_public_key, sim::SimTime valid_from,
                      sim::SimTime valid_until);

    void revoke(std::uint64_t serial) { crl_.revoke(serial); }
    [[nodiscard]] const RevocationList& crl() const { return crl_; }
    [[nodiscard]] std::uint64_t issued_count() const { return next_serial_ - 1; }

private:
    KeyPair key_;
    std::uint64_t next_serial_ = 1;
    RevocationList crl_;
};

/// A vehicle's credential: key pair + certificate chain material.
struct Credential {
    KeyPair key;
    Certificate cert;
};

/// Pool of pseudonymous credentials for one vehicle; rotation decorrelates
/// beacons over time (privacy defense, paper Section III / [25]-[27]).
class PseudonymPool {
public:
    PseudonymPool() = default;

    void add(Credential credential) {
        pool_.push_back(std::move(credential));
    }
    [[nodiscard]] std::size_t size() const { return pool_.size(); }
    [[nodiscard]] bool empty() const { return pool_.empty(); }

    /// Currently active credential; pool must be non-empty.
    [[nodiscard]] const Credential& active() const;

    /// Advances to the next pseudonym (wraps around). Returns the new one.
    const Credential& rotate();

    [[nodiscard]] std::size_t rotations() const { return rotations_; }

private:
    std::vector<Credential> pool_;
    std::size_t active_ = 0;
    std::size_t rotations_ = 0;
};

}  // namespace platoon::crypto
