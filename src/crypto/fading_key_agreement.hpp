// Secret-key agreement from quantized channel-fading randomness.
//
// Implements the mechanism of Li et al. [5], [9] cited by the paper
// (Section VI-A.1): two platoon members probe their (reciprocal) radio
// channel, quantize the correlated gain samples into bits, reconcile
// disagreements over the public channel, and apply privacy amplification.
// An eavesdropper at a different position observes de-correlated fading and
// cannot reproduce the key even though it hears the entire public discussion.
//
// The module is pure (operates on sample vectors); the reciprocal sample
// streams come from net::Channel's time-correlated fading model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/bytes.hpp"

namespace platoon::crypto {

struct QuantizerConfig {
    /// Guard band half-width as a multiple of the sample standard deviation:
    /// samples within +-guard_sigma*stddev of the mean are dropped (their
    /// bit would be unreliable).
    double guard_sigma = 0.4;
};

struct QuantizedBits {
    std::vector<std::uint8_t> bits;     ///< One 0/1 per kept sample.
    std::vector<std::size_t> kept;      ///< Indices of kept samples.
};

/// Mean-threshold quantization with a guard band.
[[nodiscard]] QuantizedBits quantize(std::span<const double> samples,
                                     const QuantizerConfig& config = {});

/// What the protocol reveals on the public channel; an eavesdropper sees all
/// of this.
struct Transcript {
    std::vector<std::size_t> common_indices;  ///< Samples both sides kept.
    std::size_t block_bits = 8;               ///< Reconciliation block size.
    std::vector<std::uint8_t> alice_parities; ///< Parity per block.
    std::vector<bool> block_kept;             ///< Blocks surviving reconcile.
};

struct AgreementResult {
    bool success = false;        ///< Keys matched (confirmed via key hash).
    Bytes key;                   ///< 32-byte agreed key (Alice's).
    double raw_mismatch = 0.0;   ///< Pre-reconciliation bit error rate.
    std::size_t harvested_bits = 0;  ///< Bits surviving reconciliation.
    Transcript transcript;
};

struct AgreementConfig {
    QuantizerConfig quantizer;
    std::size_t block_bits = 8;
    /// Minimum surviving bits for a usable key (else failure).
    std::size_t min_key_bits = 64;
};

/// Runs the full protocol between two correlated sample vectors (same
/// length). Returns Alice's view; success means Bob derived the same key.
[[nodiscard]] AgreementResult agree(std::span<const double> alice_samples,
                                    std::span<const double> bob_samples,
                                    const AgreementConfig& config = {});

/// Eavesdropper attack: Eve quantizes her own observations and replays the
/// public transcript. Returns her candidate key (compare with result.key to
/// score the attack).
[[nodiscard]] Bytes eavesdrop_key(std::span<const double> eve_samples,
                                  const Transcript& transcript,
                                  const QuantizerConfig& config = {});

}  // namespace platoon::crypto
