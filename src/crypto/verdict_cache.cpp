#include "crypto/verdict_cache.hpp"

#include "base/assert.hpp"
#include "obs/counters.hpp"

namespace platoon::crypto {

namespace {
obs::Counter g_cache_hit{"crypto.verdict_cache.hit"};
obs::Counter g_cache_miss{"crypto.verdict_cache.miss"};
obs::Counter g_cache_evict{"crypto.verdict_cache.evict"};
}  // namespace

VerdictCache::VerdictCache(std::size_t capacity) : capacity_(capacity) {
    PLATOON_EXPECTS(capacity_ > 0);
}

std::optional<bool> VerdictCache::lookup(const Key& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) {
        g_cache_miss.inc();
        return std::nullopt;
    }
    g_cache_hit.inc();
    return it->second;
}

void VerdictCache::store(const Key& key, bool valid) {
    const auto [it, inserted] = map_.try_emplace(key, valid);
    if (!inserted) {
        it->second = valid;
        return;
    }
    fifo_.push_back(key);
    if (map_.size() > capacity_) {
        map_.erase(fifo_.front());
        fifo_.pop_front();
        g_cache_evict.inc();
    }
}

}  // namespace platoon::crypto
