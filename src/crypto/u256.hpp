// Fixed-width 256/512-bit unsigned integers with modular arithmetic.
//
// Used for scalar arithmetic modulo the edwards25519 group order L in the
// Schnorr signature scheme. Division is binary shift-subtract: simple,
// obviously correct, and fast enough for a network simulator (a few
// microseconds per reduction).
#pragma once

#include <array>
#include <compare>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace platoon::crypto {

struct U256 {
    // Little-endian 64-bit words: w[0] is least significant.
    std::array<std::uint64_t, 4> w{};

    constexpr U256() = default;
    constexpr explicit U256(std::uint64_t v) : w{v, 0, 0, 0} {}

    friend constexpr bool operator==(const U256&, const U256&) = default;

    [[nodiscard]] bool is_zero() const {
        return (w[0] | w[1] | w[2] | w[3]) == 0;
    }
    [[nodiscard]] bool bit(int i) const {
        return (w[static_cast<std::size_t>(i) / 64] >> (i % 64)) & 1u;
    }
    /// 4-bit window `i` (bits [4i, 4i+4), i in [0, 64)). Windows are aligned
    /// to nibbles, so they never straddle a 64-bit word boundary.
    [[nodiscard]] unsigned window4(int i) const {
        return static_cast<unsigned>(
                   w[static_cast<std::size_t>(i) / 16] >> ((i % 16) * 4)) &
               0xFu;
    }
    /// Index of the highest set bit, or -1 for zero.
    [[nodiscard]] int top_bit() const;

    /// 32-byte little-endian encoding (the EdDSA convention).
    [[nodiscard]] Bytes to_le_bytes() const;
    static U256 from_le_bytes(BytesView b);  // b.size() <= 32
    static U256 from_hex(std::string_view hex_be);  // big-endian hex
    [[nodiscard]] std::string to_hex() const;        // big-endian hex
};

/// Comparison (unsigned).
[[nodiscard]] std::strong_ordering cmp(const U256& a, const U256& b);

/// a + b, returning the carry-out.
U256 add(const U256& a, const U256& b, bool& carry_out);
/// a - b, returning the borrow-out (true iff a < b).
U256 sub(const U256& a, const U256& b, bool& borrow_out);

struct U512 {
    std::array<std::uint64_t, 8> w{};

    [[nodiscard]] bool bit(int i) const {
        return (w[static_cast<std::size_t>(i) / 64] >> (i % 64)) & 1u;
    }
    [[nodiscard]] int top_bit() const;
    static U512 from_le_bytes(BytesView b);  // b.size() <= 64
};

/// Full 256x256 -> 512-bit product.
[[nodiscard]] U512 mul_wide(const U256& a, const U256& b);

/// x mod m (m != 0) via binary long division.
[[nodiscard]] U256 mod(const U512& x, const U256& m);
[[nodiscard]] U256 mod(const U256& x, const U256& m);

/// (a + b) mod m ; inputs must already be < m.
[[nodiscard]] U256 add_mod(const U256& a, const U256& b, const U256& m);
/// (a - b) mod m ; inputs must already be < m.
[[nodiscard]] U256 sub_mod(const U256& a, const U256& b, const U256& m);
/// (a * b) mod m.
[[nodiscard]] U256 mul_mod(const U256& a, const U256& b, const U256& m);

}  // namespace platoon::crypto
