#include "crypto/cert.hpp"

#include <algorithm>

#include "base/assert.hpp"

namespace platoon::crypto {

Bytes Certificate::tbs() const {
    Bytes out;
    append(out, to_bytes("platoonsec.cert.v1"));
    append_u64(out, serial);
    append_u32(out, subject.value);
    append_u64(out, pseudonym_id);
    append(out, public_key);
    append_f64(out, valid_from);
    append_f64(out, valid_until);
    return out;
}

CertCheck verify_certificate(const Certificate& cert, BytesView ca_public_key,
                             sim::SimTime now) {
    Signature sig{cert.ca_signature};
    if (!verify(ca_public_key, cert.tbs(), sig)) return CertCheck::kBadSignature;
    if (now < cert.valid_from) return CertCheck::kNotYetValid;
    if (now > cert.valid_until) return CertCheck::kExpired;
    return CertCheck::kOk;
}

std::vector<std::uint64_t> RevocationList::serials() const {
    std::vector<std::uint64_t> out(revoked_.begin(), revoked_.end());
    std::sort(out.begin(), out.end());
    return out;
}

void RevocationList::merge(const RevocationList& other) {
    revoked_.insert(other.revoked_.begin(), other.revoked_.end());
}

CertificateAuthority::CertificateAuthority(BytesView seed)
    : key_(KeyPair::from_seed(seed)) {}

Certificate CertificateAuthority::issue(sim::NodeId subject,
                                        std::uint64_t pseudonym_id,
                                        BytesView subject_public_key,
                                        sim::SimTime valid_from,
                                        sim::SimTime valid_until) {
    PLATOON_EXPECTS(subject_public_key.size() == 64);
    PLATOON_EXPECTS(valid_until > valid_from);
    Certificate cert;
    cert.serial = next_serial_++;
    cert.subject = subject;
    cert.pseudonym_id = pseudonym_id;
    cert.public_key = Bytes(subject_public_key.begin(),
                            subject_public_key.end());
    cert.valid_from = valid_from;
    cert.valid_until = valid_until;
    cert.ca_signature = sign(key_, cert.tbs()).bytes;
    return cert;
}

const Credential& PseudonymPool::active() const {
    PLATOON_EXPECTS(!pool_.empty());
    return pool_[active_];
}

const Credential& PseudonymPool::rotate() {
    PLATOON_EXPECTS(!pool_.empty());
    active_ = (active_ + 1) % pool_.size();
    ++rotations_;
    return pool_[active_];
}

}  // namespace platoon::crypto
