// HMAC-SHA256 (RFC 2104 / FIPS 198-1) and HKDF-style key derivation.
#pragma once

#include "crypto/sha256.hpp"

namespace platoon::crypto {

/// HMAC-SHA256 over `data` with `key` (any key length).
[[nodiscard]] Sha256::Digest hmac_sha256(BytesView key, BytesView data);

/// Truncated MAC tag as Bytes (tag_len in [1, 32]).
[[nodiscard]] Bytes hmac_tag(BytesView key, BytesView data,
                             std::size_t tag_len = 16);

/// HKDF-Extract-then-Expand (RFC 5869, single-block output up to 32 bytes):
/// derives a subkey bound to `info` from input keying material `ikm`.
[[nodiscard]] Bytes hkdf(BytesView ikm, BytesView salt, std::string_view info,
                         std::size_t out_len = 32);

}  // namespace platoon::crypto
