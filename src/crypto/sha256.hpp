// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Streaming interface plus one-shot helper. Used for message digests,
// HMAC, certificate fingerprints and privacy amplification in the fading
// key-agreement scheme.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace platoon::crypto {

class Sha256 {
public:
    static constexpr std::size_t kDigestSize = 32;
    using Digest = std::array<std::uint8_t, kDigestSize>;

    Sha256();

    Sha256& update(BytesView data);
    Sha256& update(std::string_view s) {
        return update(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                                s.size()));
    }

    /// Finalises and returns the digest; the object must not be reused
    /// afterwards (construct a fresh one).
    [[nodiscard]] Digest finish();

    /// One-shot convenience.
    [[nodiscard]] static Digest hash(BytesView data);
    [[nodiscard]] static Digest hash(std::string_view s);

private:
    void process_block(const std::uint8_t* block);

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t buffered_ = 0;
    std::uint64_t total_bytes_ = 0;
    bool finished_ = false;
};

/// Digest as a Bytes value (handy for concatenation).
[[nodiscard]] Bytes digest_bytes(const Sha256::Digest& d);

}  // namespace platoon::crypto
