#include "crypto/secured_message.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include "crypto/sha256.hpp"
#include "base/assert.hpp"
#include "obs/counters.hpp"
#include "obs/timer.hpp"

namespace platoon::crypto {

namespace {
obs::Counter g_protect_ops{"crypto.protect"};
obs::Counter g_sign_ops{"crypto.sign"};
obs::Counter g_sig_verifies{"crypto.sig_verifies"};
obs::Counter g_verify_ok{"crypto.verify.ok"};
obs::Counter g_verify_fail{"crypto.verify.fail"};
/// kOk verdicts served entirely from the shared VerdictCache (every
/// consulted fact was a hit, zero fresh crypto this call). Invariant:
/// crypto.verify.ok + crypto.verify.cached equals what crypto.verify.ok
/// was before memoization existed.
obs::Counter g_verify_cached{"crypto.verify.cached"};

using FactKey = VerdictCache::Key;

/// SHA-256 of the envelope's canonical authenticated bytes.
Sha256::Digest authenticated_digest(const Envelope& envelope) {
    Sha256 h;
    const Bytes ab = envelope.authenticated_bytes();
    h.update(BytesView(ab));
    return h.finish();
}

/// Fact: "this tag is a valid MAC over these bytes under this key". Keyed
/// on the key's digest, never the key itself.
FactKey mac_fact_key(BytesView key_digest, const Envelope& envelope) {
    Sha256 h;
    h.update(std::string_view("platoonsec.vc.mac.v1"));
    h.update(key_digest);
    const auto ad = authenticated_digest(envelope);
    h.update(BytesView(ad.data(), ad.size()));
    h.update(BytesView(envelope.tag));
    return h.finish();
}

/// Fact: "this tag is a valid signature over these bytes under this key".
FactKey sig_fact_key(BytesView signer_public_key, const Envelope& envelope) {
    Sha256 h;
    h.update(std::string_view("platoonsec.vc.sig.v1"));
    h.update(signer_public_key);
    const auto ad = authenticated_digest(envelope);
    h.update(BytesView(ad.data(), ad.size()));
    h.update(BytesView(envelope.tag));
    return h.finish();
}

/// Fact: "this certificate's CA signature verifies under this CA key".
/// Time-window and CRL status are deliberately NOT part of the fact -- they
/// depend on `now` and the receiver's CRL and are always checked fresh.
FactKey cert_fact_key(BytesView ca_public_key, const Certificate& cert) {
    Sha256 h;
    h.update(std::string_view("platoonsec.vc.cert.v1"));
    h.update(ca_public_key);
    const Bytes tbs = cert.tbs();
    h.update(BytesView(tbs));
    h.update(BytesView(cert.ca_signature));
    return h.finish();
}

/// Marker fact for unprotected envelopes under a kNone policy. The verdict
/// is payload-independent there, so the key packs the header fields
/// directly -- no hashing on the baseline hot path. The leading domain byte
/// keeps packed keys disjoint from digest keys (which are SHA-256 outputs).
FactKey accept_fact_key(const Envelope& envelope) {
    FactKey k{};
    k[0] = 0xA1;
    k[1] = static_cast<std::uint8_t>(envelope.mode);
    k[2] = envelope.encrypted ? 1 : 0;
    std::size_t at = 3;
    for (int i = 0; i < 4; ++i)
        k[at++] = static_cast<std::uint8_t>(envelope.sender >> (8 * i));
    for (int i = 0; i < 8; ++i)
        k[at++] = static_cast<std::uint8_t>(envelope.seq >> (8 * i));
    std::uint64_t ts_bits;
    static_assert(sizeof(ts_bits) == sizeof(envelope.timestamp));
    std::memcpy(&ts_bits, &envelope.timestamp, sizeof(ts_bits));
    for (int i = 0; i < 8; ++i)
        k[at++] = static_cast<std::uint8_t>(ts_bits >> (8 * i));
    const std::uint64_t payload_size = envelope.payload.size();
    for (int i = 0; i < 8; ++i)
        k[at++] = static_cast<std::uint8_t>(payload_size >> (8 * i));
    return k;
}

}  // namespace

const char* to_string(VerifyResult r) {
    switch (r) {
        case VerifyResult::kOk: return "ok";
        case VerifyResult::kUnprotected: return "unprotected";
        case VerifyResult::kBadTag: return "bad-tag";
        case VerifyResult::kBadCert: return "bad-cert";
        case VerifyResult::kRevoked: return "revoked";
        case VerifyResult::kStale: return "stale";
        case VerifyResult::kReplay: return "replay";
        case VerifyResult::kNoKey: return "no-key";
    }
    return "?";
}

Bytes Envelope::authenticated_bytes() const {
    Bytes out;
    append(out, to_bytes("platoonsec.env.v1"));
    out.push_back(static_cast<std::uint8_t>(mode));
    out.push_back(encrypted ? 1 : 0);
    append_u32(out, sender);
    append_u64(out, seq);
    append_f64(out, timestamp);
    append_u64(out, payload.size());
    append(out, payload);
    return out;
}

std::size_t Envelope::wire_size() const {
    // Header (sender, seq, timestamp, flags) + payload + tag + certificate.
    std::size_t size = 4 + 8 + 8 + 2 + payload.size() + tag.size();
    if (cert) size += 64 /*key*/ + 96 /*sig*/ + 28 /*fields*/;
    return size;
}

VerifyResult ReplayGuard::check(std::uint32_t sender, std::uint64_t seq,
                                sim::SimTime timestamp, sim::SimTime now) {
    if (std::abs(now - timestamp) > window_) return VerifyResult::kStale;
    auto [it, inserted] = last_seq_.try_emplace(sender, seq);
    if (!inserted) {
        if (seq <= it->second) return VerifyResult::kReplay;
        it->second = seq;
    }
    return VerifyResult::kOk;
}

bool MessageProtection::cert_signature_valid(const Certificate& cert,
                                             CacheProbe& probe) const {
    if (cache_ != nullptr) {
        const FactKey key = cert_fact_key(BytesView(ca_public_key_), cert);
        ++probe.consulted;
        if (const auto hit = cache_->lookup(key)) {
            ++probe.hits;
            return *hit;
        }
        Signature sig{cert.ca_signature};
        g_sig_verifies.inc();
        const bool ok = verify(BytesView(ca_public_key_), cert.tbs(), sig);
        cache_->store(key, ok);
        return ok;
    }
    if (verified_cert_serials_.contains(cert.serial)) return true;
    Signature sig{cert.ca_signature};
    g_sig_verifies.inc();
    if (!verify(BytesView(ca_public_key_), cert.tbs(), sig)) return false;
    verified_cert_serials_.insert(cert.serial);
    return true;
}

const Bytes& MessageProtection::group_key_digest() const {
    if (group_key_digest_.empty() && !group_key_.empty()) {
        Sha256 h;
        h.update(std::string_view("platoonsec.vc.key.v1"));
        h.update(BytesView(group_key_));
        const auto d = h.finish();
        group_key_digest_.assign(d.begin(), d.end());
    }
    return group_key_digest_;
}

Bytes MessageProtection::mac_key_for(std::uint32_t peer) const {
    if (config_.mode == AuthMode::kGroupMac) {
        return hkdf(BytesView(group_key_), {}, "platoon.mac");
    }
    const auto it = pairwise_keys_.find(peer);
    if (it == pairwise_keys_.end()) return {};
    return hkdf(BytesView(it->second), {}, "platoon.mac");
}

Bytes MessageProtection::encryption_key() const {
    if (group_key_.empty()) return {};
    return hkdf(BytesView(group_key_), {}, "platoon.enc");
}

Bytes MessageProtection::nonce_for(std::uint32_t sender,
                                   std::uint64_t seq) const {
    Bytes nonce;
    append_u32(nonce, sender);
    append_u64(nonce, seq);
    PLATOON_ENSURES(nonce.size() == ChaCha20::kNonceSize);
    return nonce;
}

Envelope MessageProtection::protect(std::uint32_t sender, BytesView payload,
                                    sim::SimTime now,
                                    std::optional<std::uint32_t> receiver) {
    g_protect_ops.inc();
    Envelope env;
    env.mode = config_.mode;
    env.sender = sender;
    env.seq = next_seq_++;
    env.timestamp = now;
    env.payload = Bytes(payload.begin(), payload.end());

    if (config_.encrypt) {
        const Bytes key = encryption_key();
        if (!key.empty()) {
            ChaCha20 cipher(BytesView(key), BytesView(nonce_for(sender, env.seq)));
            cipher.apply(env.payload);
            env.encrypted = true;
        }
    }

    switch (config_.mode) {
        case AuthMode::kNone:
            break;
        case AuthMode::kGroupMac: {
            PLATOON_EXPECTS(!group_key_.empty());
            env.tag = hmac_tag(BytesView(mac_key_for(sender)),
                               BytesView(env.authenticated_bytes()));
            break;
        }
        case AuthMode::kPairwiseMac: {
            PLATOON_EXPECTS(receiver.has_value());
            const Bytes key = mac_key_for(*receiver);
            PLATOON_EXPECTS(!key.empty());
            env.tag = hmac_tag(BytesView(key),
                               BytesView(env.authenticated_bytes()));
            break;
        }
        case AuthMode::kSignature: {
            PLATOON_EXPECTS(credential_.has_value());
            g_sign_ops.inc();
            env.tag = sign(credential_->key, env.authenticated_bytes()).bytes;
            env.cert = credential_->cert;
            break;
        }
    }
    return env;
}

VerifyResult MessageProtection::verify_and_open(Envelope& envelope,
                                                sim::SimTime now) {
    const obs::ScopedTimer timer("crypto.verify");
    CacheProbe probe;
    const VerifyResult result = verify_and_open_impl(envelope, now, probe);
    if (result == VerifyResult::kOk) {
        if (probe.consulted > 0 && probe.hits == probe.consulted) {
            g_verify_cached.inc();
        } else {
            g_verify_ok.inc();
        }
    } else {
        g_verify_fail.inc();
    }
    return result;
}

VerifyResult MessageProtection::verify_and_open_impl(Envelope& envelope,
                                                     sim::SimTime now,
                                                     CacheProbe& probe) {
    if (config_.mode == AuthMode::kNone && cache_ != nullptr) {
        // Pure bookkeeping: an unprotected policy has no crypto to share,
        // but the marker fact still measures the delivery fan-out -- the
        // first receiver of an envelope counts crypto.verify.ok, the rest
        // crypto.verify.cached. The verdict never reads the fact.
        ++probe.consulted;
        if (cache_->lookup(accept_fact_key(envelope)).has_value()) {
            ++probe.hits;
        } else {
            cache_->store(accept_fact_key(envelope), true);
        }
    }
    if (config_.mode != AuthMode::kNone) {
        // A signature is acceptable under any policy that demands
        // authentication (it is strictly stronger than a MAC) -- RSUs sign
        // even when the platoon runs on a group key. Everything else must
        // match the configured mode.
        if (envelope.mode != config_.mode &&
            envelope.mode != AuthMode::kSignature)
            return VerifyResult::kUnprotected;

        switch (envelope.mode) {
            case AuthMode::kNone:
                return VerifyResult::kUnprotected;
            case AuthMode::kGroupMac: {
                if (group_key_.empty()) return VerifyResult::kNoKey;
                const auto compute_tag_ok = [&] {
                    const Bytes expected =
                        hmac_tag(BytesView(mac_key_for(envelope.sender)),
                                 BytesView(envelope.authenticated_bytes()));
                    return ct_equal(BytesView(expected),
                                    BytesView(envelope.tag));
                };
                bool tag_ok;
                if (cache_ != nullptr) {
                    // Group-MAC validity is receiver-independent (same key
                    // for everyone); the fact binds the key digest so
                    // differently-keyed receivers cannot alias.
                    const FactKey key =
                        mac_fact_key(BytesView(group_key_digest()), envelope);
                    ++probe.consulted;
                    if (const auto hit = cache_->lookup(key)) {
                        ++probe.hits;
                        tag_ok = *hit;
                    } else {
                        tag_ok = compute_tag_ok();
                        cache_->store(key, tag_ok);
                    }
                } else {
                    tag_ok = compute_tag_ok();
                }
                if (!tag_ok) return VerifyResult::kBadTag;
                break;
            }
            case AuthMode::kPairwiseMac: {
                // Never cached: the key is per-(sender,receiver), so the
                // verdict is receiver-dependent by construction.
                const Bytes key = mac_key_for(envelope.sender);
                if (key.empty()) return VerifyResult::kNoKey;
                const Bytes expected = hmac_tag(
                    BytesView(key), BytesView(envelope.authenticated_bytes()));
                if (!ct_equal(BytesView(expected), BytesView(envelope.tag)))
                    return VerifyResult::kBadTag;
                break;
            }
            case AuthMode::kSignature: {
                if (ca_public_key_.empty()) return VerifyResult::kNoKey;
                if (!envelope.cert) return VerifyResult::kBadCert;
                if (!cert_signature_valid(*envelope.cert, probe))
                    return VerifyResult::kBadCert;
                if (now < envelope.cert->valid_from ||
                    now > envelope.cert->valid_until)
                    return VerifyResult::kBadCert;
                // The claimed sender must be the certified identity --
                // otherwise any certificate holder could speak as anyone
                // (identity binding, IEEE 1609.2 semantics).
                if (envelope.cert->subject.value != envelope.sender)
                    return VerifyResult::kBadCert;
                if (crl_.is_revoked(envelope.cert->serial))
                    return VerifyResult::kRevoked;
                const auto compute_sig_ok = [&] {
                    Signature sig{envelope.tag};
                    g_sig_verifies.inc();
                    return verify(BytesView(envelope.cert->public_key),
                                  envelope.authenticated_bytes(), sig);
                };
                bool sig_ok;
                if (cache_ != nullptr) {
                    const FactKey key = sig_fact_key(
                        BytesView(envelope.cert->public_key), envelope);
                    ++probe.consulted;
                    if (const auto hit = cache_->lookup(key)) {
                        ++probe.hits;
                        sig_ok = *hit;
                    } else {
                        sig_ok = compute_sig_ok();
                        cache_->store(key, sig_ok);
                    }
                } else {
                    sig_ok = compute_sig_ok();
                }
                if (!sig_ok) return VerifyResult::kBadTag;
                break;
            }
        }

        if (config_.check_replay) {
            // Never cached: freshness depends on `now` and this receiver's
            // per-sender high-water mark. A replayed envelope must fail
            // here even when every authenticity fact above was a cache hit.
            const VerifyResult fresh = replay_guard_.check(
                envelope.sender, envelope.seq, envelope.timestamp, now);
            if (fresh != VerifyResult::kOk) return fresh;
        }
    }

    if (envelope.encrypted) {
        // Never cached: decryption outcome depends on this receiver's key
        // material, and the payload mutation must happen per copy.
        const Bytes key = encryption_key();
        if (key.empty()) return VerifyResult::kNoKey;
        ChaCha20 cipher(BytesView(key),
                        BytesView(nonce_for(envelope.sender, envelope.seq)));
        cipher.apply(envelope.payload);
        envelope.encrypted = false;
    }
    return VerifyResult::kOk;
}

void prewarm_signature_verdicts(const Envelope& envelope,
                                BytesView ca_public_key, VerdictCache& cache,
                                const ScalarBits& scalar_bits) {
    if (envelope.mode != AuthMode::kSignature || !envelope.cert ||
        ca_public_key.empty())
        return;
    const Certificate& cert = *envelope.cert;
    const FactKey cert_key = cert_fact_key(ca_public_key, cert);
    const FactKey sig_key =
        sig_fact_key(BytesView(cert.public_key), envelope);
    const auto cert_known = cache.lookup(cert_key);
    const auto sig_known = cache.lookup(sig_key);
    if (cert_known.has_value() && sig_known.has_value()) return;
    if (!cert_known.has_value() && !sig_known.has_value()) {
        // Both facts unknown (typically the first beacon from a sender):
        // settle the certificate chain and the message signature with one
        // batch equation; bisection recovers exact per-item verdicts when
        // either is forged, so the cached booleans match plain verify.
        std::vector<BatchItem> batch(2);
        batch[0].public_key = Bytes(ca_public_key.begin(),
                                    ca_public_key.end());
        batch[0].msg = cert.tbs();
        batch[0].sig = Signature{cert.ca_signature};
        batch[1].public_key = cert.public_key;
        batch[1].msg = envelope.authenticated_bytes();
        batch[1].sig = Signature{envelope.tag};
        const std::vector<bool> verdicts =
            batch_verify_each(batch, scalar_bits);
        cache.store(cert_key, verdicts[0]);
        cache.store(sig_key, verdicts[1]);
        return;
    }
    // Exactly one fact missing (steady state: known cert, fresh message):
    // a single verification, counted like the receiver-side one it replaces.
    g_sig_verifies.inc();
    if (!cert_known.has_value()) {
        cache.store(cert_key, verify(ca_public_key, cert.tbs(),
                                     Signature{cert.ca_signature}));
    } else {
        cache.store(sig_key,
                    verify(BytesView(cert.public_key),
                           envelope.authenticated_bytes(),
                           Signature{envelope.tag}));
    }
}

}  // namespace platoon::crypto
