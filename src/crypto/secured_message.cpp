#include "crypto/secured_message.hpp"

#include <cmath>

#include "base/assert.hpp"
#include "obs/counters.hpp"
#include "obs/timer.hpp"

namespace platoon::crypto {

namespace {
obs::Counter g_protect_ops{"crypto.protect"};
obs::Counter g_sign_ops{"crypto.sign"};
obs::Counter g_sig_verifies{"crypto.sig_verifies"};
obs::Counter g_verify_ok{"crypto.verify.ok"};
obs::Counter g_verify_fail{"crypto.verify.fail"};
}  // namespace

const char* to_string(VerifyResult r) {
    switch (r) {
        case VerifyResult::kOk: return "ok";
        case VerifyResult::kUnprotected: return "unprotected";
        case VerifyResult::kBadTag: return "bad-tag";
        case VerifyResult::kBadCert: return "bad-cert";
        case VerifyResult::kRevoked: return "revoked";
        case VerifyResult::kStale: return "stale";
        case VerifyResult::kReplay: return "replay";
        case VerifyResult::kNoKey: return "no-key";
    }
    return "?";
}

Bytes Envelope::authenticated_bytes() const {
    Bytes out;
    append(out, to_bytes("platoonsec.env.v1"));
    out.push_back(static_cast<std::uint8_t>(mode));
    out.push_back(encrypted ? 1 : 0);
    append_u32(out, sender);
    append_u64(out, seq);
    append_f64(out, timestamp);
    append_u64(out, payload.size());
    append(out, payload);
    return out;
}

std::size_t Envelope::wire_size() const {
    // Header (sender, seq, timestamp, flags) + payload + tag + certificate.
    std::size_t size = 4 + 8 + 8 + 2 + payload.size() + tag.size();
    if (cert) size += 64 /*key*/ + 96 /*sig*/ + 28 /*fields*/;
    return size;
}

VerifyResult ReplayGuard::check(std::uint32_t sender, std::uint64_t seq,
                                sim::SimTime timestamp, sim::SimTime now) {
    if (std::abs(now - timestamp) > window_) return VerifyResult::kStale;
    auto [it, inserted] = last_seq_.try_emplace(sender, seq);
    if (!inserted) {
        if (seq <= it->second) return VerifyResult::kReplay;
        it->second = seq;
    }
    return VerifyResult::kOk;
}

bool MessageProtection::cert_signature_valid(const Certificate& cert) const {
    if (verified_cert_serials_.contains(cert.serial)) return true;
    Signature sig{cert.ca_signature};
    g_sig_verifies.inc();
    if (!verify(BytesView(ca_public_key_), cert.tbs(), sig)) return false;
    verified_cert_serials_.insert(cert.serial);
    return true;
}

Bytes MessageProtection::mac_key_for(std::uint32_t peer) const {
    if (config_.mode == AuthMode::kGroupMac) {
        return hkdf(BytesView(group_key_), {}, "platoon.mac");
    }
    const auto it = pairwise_keys_.find(peer);
    if (it == pairwise_keys_.end()) return {};
    return hkdf(BytesView(it->second), {}, "platoon.mac");
}

Bytes MessageProtection::encryption_key() const {
    if (group_key_.empty()) return {};
    return hkdf(BytesView(group_key_), {}, "platoon.enc");
}

Bytes MessageProtection::nonce_for(std::uint32_t sender,
                                   std::uint64_t seq) const {
    Bytes nonce;
    append_u32(nonce, sender);
    append_u64(nonce, seq);
    PLATOON_ENSURES(nonce.size() == ChaCha20::kNonceSize);
    return nonce;
}

Envelope MessageProtection::protect(std::uint32_t sender, BytesView payload,
                                    sim::SimTime now,
                                    std::optional<std::uint32_t> receiver) {
    g_protect_ops.inc();
    Envelope env;
    env.mode = config_.mode;
    env.sender = sender;
    env.seq = next_seq_++;
    env.timestamp = now;
    env.payload = Bytes(payload.begin(), payload.end());

    if (config_.encrypt) {
        const Bytes key = encryption_key();
        if (!key.empty()) {
            ChaCha20 cipher(BytesView(key), BytesView(nonce_for(sender, env.seq)));
            cipher.apply(env.payload);
            env.encrypted = true;
        }
    }

    switch (config_.mode) {
        case AuthMode::kNone:
            break;
        case AuthMode::kGroupMac: {
            PLATOON_EXPECTS(!group_key_.empty());
            env.tag = hmac_tag(BytesView(mac_key_for(sender)),
                               BytesView(env.authenticated_bytes()));
            break;
        }
        case AuthMode::kPairwiseMac: {
            PLATOON_EXPECTS(receiver.has_value());
            const Bytes key = mac_key_for(*receiver);
            PLATOON_EXPECTS(!key.empty());
            env.tag = hmac_tag(BytesView(key),
                               BytesView(env.authenticated_bytes()));
            break;
        }
        case AuthMode::kSignature: {
            PLATOON_EXPECTS(credential_.has_value());
            g_sign_ops.inc();
            env.tag = sign(credential_->key, env.authenticated_bytes()).bytes;
            env.cert = credential_->cert;
            break;
        }
    }
    return env;
}

VerifyResult MessageProtection::verify_and_open(Envelope& envelope,
                                                sim::SimTime now) {
    const obs::ScopedTimer timer("crypto.verify");
    const VerifyResult result = verify_and_open_impl(envelope, now);
    if (result == VerifyResult::kOk) {
        g_verify_ok.inc();
    } else {
        g_verify_fail.inc();
    }
    return result;
}

VerifyResult MessageProtection::verify_and_open_impl(Envelope& envelope,
                                                     sim::SimTime now) {
    if (config_.mode != AuthMode::kNone) {
        // A signature is acceptable under any policy that demands
        // authentication (it is strictly stronger than a MAC) -- RSUs sign
        // even when the platoon runs on a group key. Everything else must
        // match the configured mode.
        if (envelope.mode != config_.mode &&
            envelope.mode != AuthMode::kSignature)
            return VerifyResult::kUnprotected;

        switch (envelope.mode) {
            case AuthMode::kNone:
                return VerifyResult::kUnprotected;
            case AuthMode::kGroupMac: {
                if (group_key_.empty()) return VerifyResult::kNoKey;
                const Bytes expected =
                    hmac_tag(BytesView(mac_key_for(envelope.sender)),
                             BytesView(envelope.authenticated_bytes()));
                if (!ct_equal(BytesView(expected), BytesView(envelope.tag)))
                    return VerifyResult::kBadTag;
                break;
            }
            case AuthMode::kPairwiseMac: {
                const Bytes key = mac_key_for(envelope.sender);
                if (key.empty()) return VerifyResult::kNoKey;
                const Bytes expected = hmac_tag(
                    BytesView(key), BytesView(envelope.authenticated_bytes()));
                if (!ct_equal(BytesView(expected), BytesView(envelope.tag)))
                    return VerifyResult::kBadTag;
                break;
            }
            case AuthMode::kSignature: {
                if (ca_public_key_.empty()) return VerifyResult::kNoKey;
                if (!envelope.cert) return VerifyResult::kBadCert;
                if (!cert_signature_valid(*envelope.cert))
                    return VerifyResult::kBadCert;
                if (now < envelope.cert->valid_from ||
                    now > envelope.cert->valid_until)
                    return VerifyResult::kBadCert;
                // The claimed sender must be the certified identity --
                // otherwise any certificate holder could speak as anyone
                // (identity binding, IEEE 1609.2 semantics).
                if (envelope.cert->subject.value != envelope.sender)
                    return VerifyResult::kBadCert;
                if (crl_.is_revoked(envelope.cert->serial))
                    return VerifyResult::kRevoked;
                Signature sig{envelope.tag};
                g_sig_verifies.inc();
                if (!verify(BytesView(envelope.cert->public_key),
                            envelope.authenticated_bytes(), sig))
                    return VerifyResult::kBadTag;
                break;
            }
        }

        if (config_.check_replay) {
            const VerifyResult fresh = replay_guard_.check(
                envelope.sender, envelope.seq, envelope.timestamp, now);
            if (fresh != VerifyResult::kOk) return fresh;
        }
    }

    if (envelope.encrypted) {
        const Bytes key = encryption_key();
        if (key.empty()) return VerifyResult::kNoKey;
        ChaCha20 cipher(BytesView(key),
                        BytesView(nonce_for(envelope.sender, envelope.seq)));
        cipher.apply(envelope.payload);
        envelope.encrypted = false;
    }
    return VerifyResult::kOk;
}

}  // namespace platoon::crypto
