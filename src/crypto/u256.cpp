#include "crypto/u256.hpp"

#include <bit>
#include <stdexcept>

#include "base/assert.hpp"

namespace platoon::crypto {

using u128 = unsigned __int128;

int U256::top_bit() const {
    for (int word = 3; word >= 0; --word) {
        if (w[static_cast<std::size_t>(word)] != 0) {
            return word * 64 + 63 -
                   std::countl_zero(w[static_cast<std::size_t>(word)]);
        }
    }
    return -1;
}

Bytes U256::to_le_bytes() const {
    Bytes out(32);
    for (int i = 0; i < 32; ++i)
        out[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(w[static_cast<std::size_t>(i) / 8] >>
                                      (8 * (i % 8)));
    return out;
}

U256 U256::from_le_bytes(BytesView b) {
    PLATOON_EXPECTS(b.size() <= 32);
    U256 out;
    for (std::size_t i = 0; i < b.size(); ++i)
        out.w[i / 8] |= static_cast<std::uint64_t>(b[i]) << (8 * (i % 8));
    return out;
}

U256 U256::from_hex(std::string_view hex_be) {
    if (hex_be.size() > 64) throw std::invalid_argument("hex too long");
    // Left-pad to full width, then reverse into little-endian bytes.
    std::string padded(64 - hex_be.size(), '0');
    padded.append(hex_be);
    const Bytes be = ::platoon::crypto::from_hex(padded);
    Bytes le(be.rbegin(), be.rend());
    return from_le_bytes(le);
}

std::string U256::to_hex() const {
    const Bytes le = to_le_bytes();
    const Bytes be(le.rbegin(), le.rend());
    return ::platoon::crypto::to_hex(be);
}

std::strong_ordering cmp(const U256& a, const U256& b) {
    for (int i = 3; i >= 0; --i) {
        const auto ai = a.w[static_cast<std::size_t>(i)];
        const auto bi = b.w[static_cast<std::size_t>(i)];
        if (ai != bi) return ai < bi ? std::strong_ordering::less
                                     : std::strong_ordering::greater;
    }
    return std::strong_ordering::equal;
}

U256 add(const U256& a, const U256& b, bool& carry_out) {
    U256 r;
    u128 carry = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        const u128 sum = static_cast<u128>(a.w[i]) + b.w[i] + carry;
        r.w[i] = static_cast<std::uint64_t>(sum);
        carry = sum >> 64;
    }
    carry_out = carry != 0;
    return r;
}

U256 sub(const U256& a, const U256& b, bool& borrow_out) {
    U256 r;
    u128 borrow = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        const u128 diff =
            static_cast<u128>(a.w[i]) - b.w[i] - borrow;
        r.w[i] = static_cast<std::uint64_t>(diff);
        borrow = (diff >> 64) & 1;
    }
    borrow_out = borrow != 0;
    return r;
}

int U512::top_bit() const {
    for (int word = 7; word >= 0; --word) {
        if (w[static_cast<std::size_t>(word)] != 0) {
            return word * 64 + 63 -
                   std::countl_zero(w[static_cast<std::size_t>(word)]);
        }
    }
    return -1;
}

U512 U512::from_le_bytes(BytesView b) {
    PLATOON_EXPECTS(b.size() <= 64);
    U512 out;
    for (std::size_t i = 0; i < b.size(); ++i)
        out.w[i / 8] |= static_cast<std::uint64_t>(b[i]) << (8 * (i % 8));
    return out;
}

U512 mul_wide(const U256& a, const U256& b) {
    U512 r;
    for (std::size_t i = 0; i < 4; ++i) {
        u128 carry = 0;
        for (std::size_t j = 0; j < 4; ++j) {
            const u128 cur = static_cast<u128>(a.w[i]) * b.w[j] +
                             r.w[i + j] + carry;
            r.w[i + j] = static_cast<std::uint64_t>(cur);
            carry = cur >> 64;
        }
        r.w[i + 4] = static_cast<std::uint64_t>(carry);
    }
    return r;
}

namespace {

// Shifts a U512 remainder-accumulator left by one bit and ORs in `in_bit`.
void shl1(U256& x, bool in_bit) {
    std::uint64_t carry = in_bit ? 1u : 0u;
    for (std::size_t i = 0; i < 4; ++i) {
        const std::uint64_t next = x.w[i] >> 63;
        x.w[i] = (x.w[i] << 1) | carry;
        carry = next;
    }
    // A carry out of the top would mean remainder >= 2^256; cannot happen
    // because the remainder is kept < m <= 2^256-1 and shifting m-1 left
    // by one plus one bit is < 2^257 -- we subtract m before that occurs.
}

}  // namespace

U256 mod(const U512& x, const U256& m) {
    PLATOON_EXPECTS(!m.is_zero());
    U256 rem;
    const int top = x.top_bit();
    for (int i = top; i >= 0; --i) {
        // rem = rem*2 + bit; since rem < m <= 2^256-1, rem*2+1 < 2^257.
        // To avoid overflow past 256 bits we check the would-be carry:
        const bool top_set = (rem.w[3] >> 63) != 0;
        shl1(rem, x.bit(i));
        if (top_set) {
            // rem overflowed 2^256: rem_true = rem + 2^256; subtract m once
            // (m > rem_true - 2^256 is impossible since m < 2^256 <= rem_true).
            bool borrow;
            rem = sub(rem, m, borrow);
            // Conceptually rem_true - m = (rem - m) + 2^256*(1 - borrow...);
            // because rem_true >= 2^256 > m, exactly one subtraction of the
            // "+2^256" is absorbed; after it rem may still be >= m.
        }
        if (cmp(rem, m) != std::strong_ordering::less) {
            bool borrow;
            rem = sub(rem, m, borrow);
            PLATOON_ASSERT(!borrow);
        }
    }
    return rem;
}

U256 mod(const U256& x, const U256& m) {
    U512 wide;
    for (std::size_t i = 0; i < 4; ++i) wide.w[i] = x.w[i];
    return mod(wide, m);
}

U256 add_mod(const U256& a, const U256& b, const U256& m) {
    PLATOON_EXPECTS(cmp(a, m) == std::strong_ordering::less);
    PLATOON_EXPECTS(cmp(b, m) == std::strong_ordering::less);
    bool carry;
    U256 r = add(a, b, carry);
    if (carry || cmp(r, m) != std::strong_ordering::less) {
        bool borrow;
        r = sub(r, m, borrow);
    }
    return r;
}

U256 sub_mod(const U256& a, const U256& b, const U256& m) {
    PLATOON_EXPECTS(cmp(a, m) == std::strong_ordering::less);
    PLATOON_EXPECTS(cmp(b, m) == std::strong_ordering::less);
    bool borrow;
    U256 r = sub(a, b, borrow);
    if (borrow) {
        bool carry;
        r = add(r, m, carry);
    }
    return r;
}

U256 mul_mod(const U256& a, const U256& b, const U256& m) {
    return mod(mul_wide(a, b), m);
}

}  // namespace platoon::crypto
