// ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//
// Used for confidentiality of platoon beacons and maneuver messages when the
// "Secret and Public Keys" mechanism (paper Table III) enables encryption.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace platoon::crypto {

class ChaCha20 {
public:
    static constexpr std::size_t kKeySize = 32;
    static constexpr std::size_t kNonceSize = 12;

    ChaCha20(BytesView key, BytesView nonce, std::uint32_t initial_counter = 0);

    /// XORs the keystream into `data` in place (encrypt == decrypt).
    void apply(Bytes& data);

    /// One-shot: returns the (en|de)crypted copy of `data`.
    [[nodiscard]] static Bytes crypt(BytesView key, BytesView nonce,
                                     BytesView data,
                                     std::uint32_t initial_counter = 0);

    /// The ChaCha20 quarter round, exposed for testing against the RFC 8439
    /// test vector.
    static void quarter_round(std::uint32_t& a, std::uint32_t& b,
                              std::uint32_t& c, std::uint32_t& d);

private:
    void next_block();

    std::array<std::uint32_t, 16> state_;
    std::array<std::uint8_t, 64> keystream_;
    std::size_t keystream_used_ = 64;  // force generation on first use
};

}  // namespace platoon::crypto
