#include "crypto/eddsa.hpp"

#include <algorithm>
#include <utility>

#include "crypto/sha256.hpp"
#include "base/assert.hpp"
#include "obs/counters.hpp"

namespace platoon::crypto {

namespace {

using u128 = unsigned __int128;
constexpr std::uint64_t kMask = (1ull << 51) - 1;

/// One pass of carry propagation with the 19-fold wraparound at the top.
void carry_pass(Fe& f) {
    std::uint64_t c;
    c = f.limb[0] >> 51; f.limb[0] &= kMask; f.limb[1] += c;
    c = f.limb[1] >> 51; f.limb[1] &= kMask; f.limb[2] += c;
    c = f.limb[2] >> 51; f.limb[2] &= kMask; f.limb[3] += c;
    c = f.limb[3] >> 51; f.limb[3] &= kMask; f.limb[4] += c;
    c = f.limb[4] >> 51; f.limb[4] &= kMask; f.limb[0] += 19 * c;
}

/// Fully reduces limbs into [0, p).
Fe fe_canonical(const Fe& a) {
    Fe f = a;
    // Carry until every limb fits in 51 bits (the wraparound adds at most
    // 19*carry to limb 0, so this converges in a couple of passes; the bound
    // of 10 is a safety net, not a tuning parameter).
    for (int pass = 0; pass < 10; ++pass) {
        carry_pass(f);
        bool clean = true;
        for (const auto limb : f.limb) clean = clean && limb <= kMask;
        if (clean) break;
    }
    for (const auto limb : f.limb) PLATOON_ASSERT(limb <= kMask);
    // Now the value is < 2^255 (< 2p); conditionally subtract p once.
    const bool ge_p = f.limb[4] == kMask && f.limb[3] == kMask &&
                      f.limb[2] == kMask && f.limb[1] == kMask &&
                      f.limb[0] >= kMask - 18;  // 2^51 - 19
    if (ge_p) {
        f.limb[0] -= kMask - 18;
        f.limb[1] = f.limb[2] = f.limb[3] = f.limb[4] = 0;
    }
    return f;
}

/// a^e where e is a 32-byte little-endian exponent.
Fe fe_pow(const Fe& a, const std::array<std::uint8_t, 32>& e) {
    Fe result = Fe::one();
    bool started = false;
    for (int i = 255; i >= 0; --i) {
        if (started) result = fe_sq(result);
        const bool bit =
            (e[static_cast<std::size_t>(i) / 8] >> (i % 8)) & 1;
        if (bit) {
            result = started ? fe_mul(result, a) : a;
            started = true;
        }
    }
    return started ? result : Fe::one();
}

std::array<std::uint8_t, 32> exponent_p_minus_2() {
    std::array<std::uint8_t, 32> e;
    e.fill(0xFF);
    e[0] = 0xEB;  // p - 2 = 2^255 - 21
    e[31] = 0x7F;
    return e;
}

std::array<std::uint8_t, 32> exponent_p_plus_3_over_8() {
    std::array<std::uint8_t, 32> e;  // 2^252 - 2
    e.fill(0xFF);
    e[0] = 0xFE;
    e[31] = 0x0F;
    return e;
}

std::array<std::uint8_t, 32> exponent_p_minus_1_over_4() {
    std::array<std::uint8_t, 32> e;  // 2^253 - 5
    e.fill(0xFF);
    e[0] = 0xFB;
    e[31] = 0x1F;
    return e;
}

const Fe& sqrt_minus_one() {
    static const Fe s = fe_pow(Fe::from_u64(2), exponent_p_minus_1_over_4());
    return s;
}

const Fe& curve_d() {
    // d = -121665 / 121666 mod p
    static const Fe d =
        fe_mul(fe_neg(Fe::from_u64(121665)), fe_inv(Fe::from_u64(121666)));
    return d;
}

const Fe& curve_2d() {
    static const Fe d2 = fe_add(curve_d(), curve_d());
    return d2;
}

}  // namespace

Fe fe_add(const Fe& a, const Fe& b) {
    Fe r;
    for (int i = 0; i < 5; ++i)
        r.limb[static_cast<std::size_t>(i)] =
            a.limb[static_cast<std::size_t>(i)] +
            b.limb[static_cast<std::size_t>(i)];
    carry_pass(r);
    return r;
}

Fe fe_sub(const Fe& a, const Fe& b) {
    // a + 2p - b keeps limbs non-negative (inputs have limbs < 2^52).
    static constexpr std::uint64_t k2p0 = 0xFFFFFFFFFFFDAull;   // 2*(2^51-19)
    static constexpr std::uint64_t k2pi = 0xFFFFFFFFFFFFEull;   // 2*(2^51-1)
    Fe r;
    r.limb[0] = a.limb[0] + k2p0 - b.limb[0];
    for (std::size_t i = 1; i < 5; ++i)
        r.limb[i] = a.limb[i] + k2pi - b.limb[i];
    carry_pass(r);
    return r;
}

Fe fe_neg(const Fe& a) { return fe_sub(Fe::zero(), a); }

Fe fe_mul(const Fe& f, const Fe& g) {
    const u128 f0 = f.limb[0], f1 = f.limb[1], f2 = f.limb[2],
               f3 = f.limb[3], f4 = f.limb[4];
    const std::uint64_t g0 = g.limb[0], g1 = g.limb[1], g2 = g.limb[2],
                        g3 = g.limb[3], g4 = g.limb[4];
    const std::uint64_t g1_19 = 19 * g1, g2_19 = 19 * g2, g3_19 = 19 * g3,
                        g4_19 = 19 * g4;

    u128 r0 = f0 * g0 + f1 * g4_19 + f2 * g3_19 + f3 * g2_19 + f4 * g1_19;
    u128 r1 = f0 * g1 + f1 * g0 + f2 * g4_19 + f3 * g3_19 + f4 * g2_19;
    u128 r2 = f0 * g2 + f1 * g1 + f2 * g0 + f3 * g4_19 + f4 * g3_19;
    u128 r3 = f0 * g3 + f1 * g2 + f2 * g1 + f3 * g0 + f4 * g4_19;
    u128 r4 = f0 * g4 + f1 * g3 + f2 * g2 + f3 * g1 + f4 * g0;

    Fe out;
    u128 c;
    c = r0 >> 51; r0 &= kMask; r1 += c;
    c = r1 >> 51; r1 &= kMask; r2 += c;
    c = r2 >> 51; r2 &= kMask; r3 += c;
    c = r3 >> 51; r3 &= kMask; r4 += c;
    c = r4 >> 51; r4 &= kMask; r0 += 19 * c;
    c = r0 >> 51; r0 &= kMask; r1 += c;

    out.limb[0] = static_cast<std::uint64_t>(r0);
    out.limb[1] = static_cast<std::uint64_t>(r1);
    out.limb[2] = static_cast<std::uint64_t>(r2);
    out.limb[3] = static_cast<std::uint64_t>(r3);
    out.limb[4] = static_cast<std::uint64_t>(r4);
    return out;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_inv(const Fe& a) {
    PLATOON_EXPECTS(!fe_is_zero(a));
    return fe_pow(a, exponent_p_minus_2());
}

std::optional<Fe> fe_sqrt(const Fe& a) {
    if (fe_is_zero(a)) return Fe::zero();
    Fe candidate = fe_pow(a, exponent_p_plus_3_over_8());
    if (fe_equal(fe_sq(candidate), a)) return candidate;
    candidate = fe_mul(candidate, sqrt_minus_one());
    if (fe_equal(fe_sq(candidate), a)) return candidate;
    return std::nullopt;
}

Bytes fe_to_bytes(const Fe& a) {
    const Fe f = fe_canonical(a);
    Bytes out(32, 0);
    // Pack 5x51 bits little-endian.
    u128 acc = 0;
    int acc_bits = 0;
    std::size_t idx = 0;
    for (int i = 0; i < 5; ++i) {
        acc |= static_cast<u128>(f.limb[static_cast<std::size_t>(i)])
               << acc_bits;
        acc_bits += 51;
        while (acc_bits >= 8 && idx < 32) {
            out[idx++] = static_cast<std::uint8_t>(acc);
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    while (idx < 32) {
        out[idx++] = static_cast<std::uint8_t>(acc);
        acc >>= 8;
    }
    return out;
}

Fe fe_from_bytes(BytesView b) {
    PLATOON_EXPECTS(b.size() == 32);
    u128 acc = 0;
    int acc_bits = 0;
    std::size_t idx = 0;
    Fe f;
    for (int i = 0; i < 5; ++i) {
        while (acc_bits < 51 && idx < 32) {
            acc |= static_cast<u128>(b[idx++]) << acc_bits;
            acc_bits += 8;
        }
        f.limb[static_cast<std::size_t>(i)] =
            static_cast<std::uint64_t>(acc) & kMask;
        acc >>= 51;
        acc_bits -= 51;
        if (acc_bits < 0) acc_bits = 0;
    }
    // Drop the top (256th) bit implicitly; re-reduce.
    carry_pass(f);
    return f;
}

bool fe_equal(const Fe& a, const Fe& b) {
    return fe_to_bytes(a) == fe_to_bytes(b);
}

bool fe_is_zero(const Fe& a) { return fe_equal(a, Fe::zero()); }

Point Point::identity() {
    return Point{Fe::zero(), Fe::one(), Fe::one(), Fe::zero()};
}

Point point_add(const Point& p, const Point& q) {
    const Fe a = fe_mul(fe_sub(p.y, p.x), fe_sub(q.y, q.x));
    const Fe b = fe_mul(fe_add(p.y, p.x), fe_add(q.y, q.x));
    const Fe c = fe_mul(fe_mul(p.t, curve_2d()), q.t);
    const Fe d = fe_mul(fe_add(p.z, p.z), q.z);
    const Fe e = fe_sub(b, a);
    const Fe f = fe_sub(d, c);
    const Fe g = fe_add(d, c);
    const Fe h = fe_add(b, a);
    return Point{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

Point point_double(const Point& p) {
    const Fe a = fe_sq(p.x);
    const Fe b = fe_sq(p.y);
    const Fe c = fe_add(fe_sq(p.z), fe_sq(p.z));
    const Fe h = fe_add(a, b);
    const Fe e = fe_sub(h, fe_sq(fe_add(p.x, p.y)));
    const Fe g = fe_sub(a, b);
    const Fe f = fe_add(c, g);
    return Point{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

Point point_neg(const Point& p) {
    return Point{fe_neg(p.x), p.y, p.z, fe_neg(p.t)};
}

Point double_scalar_mul(const U256& a, const Point& A, const U256& b,
                        const Point& B) {
    const Point sum = point_add(A, B);
    Point r = Point::identity();
    const int top = std::max(a.top_bit(), b.top_bit());
    for (int i = top; i >= 0; --i) {
        r = point_double(r);
        const bool bit_a = a.bit(i);
        const bool bit_b = b.bit(i);
        if (bit_a && bit_b) {
            r = point_add(r, sum);
        } else if (bit_a) {
            r = point_add(r, A);
        } else if (bit_b) {
            r = point_add(r, B);
        }
    }
    return r;
}

Point scalar_mul(const U256& k, const Point& p) {
    Point result = Point::identity();
    const int top = k.top_bit();
    for (int i = top; i >= 0; --i) {
        result = point_double(result);
        if (k.bit(i)) result = point_add(result, p);
    }
    return result;
}

namespace {

/// 15-entry window table: t[j-1] = j*P for j in 1..15.
using WindowTable = std::array<Point, 15>;

WindowTable window_table(const Point& p) {
    WindowTable t;
    t[0] = p;
    t[1] = point_double(p);
    for (std::size_t j = 2; j < 15; ++j) t[j] = point_add(t[j - 1], p);
    return t;
}

/// Comb table for the base point: comb[w][j-1] = j * 16^w * B. One-time
/// cost (magic static); afterwards a fixed-base multiplication is at most
/// 64 additions and no doublings.
const std::array<WindowTable, 64>& base_comb() {
    static const std::array<WindowTable, 64> comb = [] {
        std::array<WindowTable, 64> c;
        Point window_base = base_point();
        for (std::size_t w = 0; w < 64; ++w) {
            c[w] = window_table(window_base);
            if (w + 1 < 64) {
                // 16^(w+1) * B = 2 * (8 * 16^w * B), already in the table.
                window_base = point_double(c[w][7]);
            }
        }
        return c;
    }();
    return comb;
}

}  // namespace

Point scalar_mul_base(const U256& k) {
    const auto& comb = base_comb();
    Point acc = Point::identity();
    for (int w = 0; w < 64; ++w) {
        const unsigned digit = k.window4(w);
        if (digit != 0)
            acc = point_add(acc, comb[static_cast<std::size_t>(w)][digit - 1]);
    }
    return acc;
}

Point scalar_mul_windowed(const U256& k, const Point& p) {
    const int top = k.top_bit();
    if (top < 0) return Point::identity();
    const WindowTable table = window_table(p);
    const int top_window = top / 4;
    Point acc = Point::identity();
    for (int w = top_window; w >= 0; --w) {
        if (w != top_window)
            for (int d = 0; d < 4; ++d) acc = point_double(acc);
        const unsigned digit = k.window4(w);
        if (digit != 0) acc = point_add(acc, table[digit - 1]);
    }
    return acc;
}

Point multi_scalar_mul(const std::vector<std::pair<U256, Point>>& terms) {
    // Straus interleaving: per-term window tables, one shared doubling chain.
    std::vector<WindowTable> tables;
    tables.reserve(terms.size());
    int top = -1;
    for (const auto& [k, p] : terms) {
        tables.push_back(window_table(p));
        top = std::max(top, k.top_bit());
    }
    if (top < 0) return Point::identity();
    const int top_window = top / 4;
    Point acc = Point::identity();
    for (int w = top_window; w >= 0; --w) {
        if (w != top_window)
            for (int d = 0; d < 4; ++d) acc = point_double(acc);
        for (std::size_t i = 0; i < terms.size(); ++i) {
            const unsigned digit = terms[i].first.window4(w);
            if (digit != 0) acc = point_add(acc, tables[i][digit - 1]);
        }
    }
    return acc;
}

bool point_equal(const Point& p, const Point& q) {
    // x1/z1 == x2/z2  <=>  x1 z2 == x2 z1 ; same for y.
    return fe_equal(fe_mul(p.x, q.z), fe_mul(q.x, p.z)) &&
           fe_equal(fe_mul(p.y, q.z), fe_mul(q.y, p.z));
}

Bytes point_to_bytes(const Point& p) {
    const Fe zinv = fe_inv(p.z);
    const Fe x = fe_mul(p.x, zinv);
    const Fe y = fe_mul(p.y, zinv);
    Bytes out = fe_to_bytes(x);
    append(out, fe_to_bytes(y));
    return out;
}

std::optional<Point> point_from_bytes(BytesView b) {
    if (b.size() != 64) return std::nullopt;
    Point p;
    p.x = fe_from_bytes(b.subspan(0, 32));
    p.y = fe_from_bytes(b.subspan(32, 32));
    p.z = Fe::one();
    p.t = fe_mul(p.x, p.y);
    if (!on_curve(p)) return std::nullopt;
    return p;
}

bool on_curve(const Point& p) {
    // Projective check: (Y^2 - X^2) Z^2 == Z^4 + d X^2 Y^2, and T Z == X Y.
    const Fe x2 = fe_sq(p.x);
    const Fe y2 = fe_sq(p.y);
    const Fe z2 = fe_sq(p.z);
    const Fe lhs = fe_mul(fe_sub(y2, x2), z2);
    const Fe rhs = fe_add(fe_sq(z2), fe_mul(curve_d(), fe_mul(x2, y2)));
    if (!fe_equal(lhs, rhs)) return false;
    return fe_equal(fe_mul(p.t, p.z), fe_mul(p.x, p.y));
}

const Point& base_point() {
    static const Point b = [] {
        const Fe y = fe_mul(Fe::from_u64(4), fe_inv(Fe::from_u64(5)));
        // x^2 = (y^2 - 1) / (d y^2 + 1)
        const Fe y2 = fe_sq(y);
        const Fe num = fe_sub(y2, Fe::one());
        const Fe den = fe_add(fe_mul(curve_d(), y2), Fe::one());
        const auto x_opt = fe_sqrt(fe_mul(num, fe_inv(den)));
        PLATOON_ASSERT(x_opt.has_value());
        Fe x = *x_opt;
        // RFC 8032 base point has even x (its canonical encoding ends in
        // an even byte); pick that root.
        if (fe_to_bytes(x)[0] & 1) x = fe_neg(x);
        Point p{x, y, Fe::one(), fe_mul(x, y)};
        PLATOON_ASSERT(on_curve(p));
        return p;
    }();
    return b;
}

const U256& group_order() {
    static const U256 l = U256::from_hex(
        "1000000000000000000000000000000014def9dea2f79cd65812631a5cf5d3ed");
    return l;
}

namespace {

U256 hash_to_scalar(std::initializer_list<BytesView> parts) {
    Sha256 h;
    h.update(std::string_view("platoonsec.scalar.v1"));
    for (const auto& p : parts) h.update(p);
    const auto digest = h.finish();
    return mod(U256::from_le_bytes(BytesView(digest.data(), digest.size())),
               group_order());
}

}  // namespace

KeyPair KeyPair::from_seed(BytesView seed32) {
    KeyPair kp;
    kp.secret = hash_to_scalar({seed32});
    if (kp.secret.is_zero()) kp.secret = U256(1);
    kp.public_key = scalar_mul_base(kp.secret);
    kp.public_bytes = point_to_bytes(kp.public_key);
    return kp;
}

Signature sign(const KeyPair& key, BytesView msg) {
    const Bytes secret_bytes = key.secret.to_le_bytes();
    const U256 r = hash_to_scalar({BytesView(secret_bytes), msg});
    const U256 r_eff = r.is_zero() ? U256(1) : r;
    const Point big_r = scalar_mul_base(r_eff);
    const Bytes r_bytes = point_to_bytes(big_r);
    const U256 e = hash_to_scalar(
        {BytesView(r_bytes), BytesView(key.public_bytes), msg});
    const U256 s =
        add_mod(r_eff, mul_mod(e, key.secret, group_order()), group_order());

    Signature sig;
    sig.bytes = r_bytes;
    append(sig.bytes, s.to_le_bytes());
    PLATOON_ENSURES(sig.bytes.size() == 96);
    return sig;
}

namespace {

/// Signature components after structural validation.
struct ParsedSig {
    Point big_r;
    Point pub;
    U256 s;  ///< < L
    U256 e;  ///< challenge hash, < L
};

std::optional<ParsedSig> parse_signature(BytesView public_key_bytes,
                                         BytesView msg, const Signature& sig) {
    if (sig.bytes.size() != 96) return std::nullopt;
    const BytesView sig_view(sig.bytes);
    const auto big_r = point_from_bytes(sig_view.subspan(0, 64));
    if (!big_r) return std::nullopt;
    const U256 s = U256::from_le_bytes(sig_view.subspan(64, 32));
    if (cmp(s, group_order()) != std::strong_ordering::less)
        return std::nullopt;
    const auto pub = point_from_bytes(public_key_bytes);
    if (!pub) return std::nullopt;
    const U256 e =
        hash_to_scalar({sig_view.subspan(0, 64), public_key_bytes, msg});
    return ParsedSig{*big_r, *pub, s, e};
}

/// sB == R + eP, evaluated as sB + e(-P) == R on the windowed paths.
bool verify_parsed(const ParsedSig& p) {
    const Point lhs = point_add(scalar_mul_base(p.s),
                                scalar_mul_windowed(p.e, point_neg(p.pub)));
    return point_equal(lhs, p.big_r);
}

}  // namespace

bool verify(BytesView public_key_bytes, BytesView msg, const Signature& sig) {
    const auto parsed = parse_signature(public_key_bytes, msg, sig);
    return parsed.has_value() && verify_parsed(*parsed);
}

Bytes dh_shared_key(const U256& my_secret, BytesView their_public_bytes) {
    const auto pub = point_from_bytes(their_public_bytes);
    PLATOON_EXPECTS(pub.has_value());
    const Point shared = scalar_mul_windowed(my_secret, *pub);
    Sha256 h;
    h.update(std::string_view("platoonsec.ecdh.v1"));
    const Bytes sb = point_to_bytes(shared);
    h.update(BytesView(sb));
    const auto d = h.finish();
    return Bytes(d.begin(), d.end());
}

namespace {

/// Signatures settled by a multi-item random-linear-combination equation
/// (one increment per signature in an accepted batch of size >= 2).
obs::Counter g_batch_verified{"crypto.verify.batched"};

/// Odd 128-bit coefficient. Odd and < L, so z*T == identity has no nonzero
/// solution T on the curve (T would need odd order dividing z, and the only
/// odd orders are 1 and L > 2^128): a batch with exactly one bad item can
/// never falsely accept.
U256 draw_coefficient(const ScalarBits& bits) {
    U256 z;
    z.w[0] = bits() | 1u;
    z.w[1] = bits();
    return z;
}

/// RLC acceptance test over already-parsed items:
///   sum_i z_i*s_i * B - sum_i z_i * R_i - sum_i z_i*e_i * P_i == identity.
bool rlc_accepts(const std::vector<ParsedSig>& parsed,
                 const std::vector<std::size_t>& idx, const ScalarBits& bits) {
    const U256& order = group_order();
    U256 base_coeff{};
    std::vector<std::pair<U256, Point>> terms;
    terms.reserve(idx.size() * 2 + 1);
    for (const std::size_t i : idx) {
        const ParsedSig& p = parsed[i];
        const U256 z = draw_coefficient(bits);
        base_coeff = add_mod(base_coeff, mul_mod(z, p.s, order), order);
        terms.emplace_back(z, point_neg(p.big_r));
        terms.emplace_back(mul_mod(z, p.e, order), point_neg(p.pub));
    }
    terms.emplace_back(base_coeff, base_point());
    return point_equal(multi_scalar_mul(terms), Point::identity());
}

/// Recursive bisection: accept whole sub-batches via one RLC equation,
/// split rejected ones, and settle single items with a plain verify.
void bisect_verify(const std::vector<ParsedSig>& parsed,
                   const std::vector<std::size_t>& idx, const ScalarBits& bits,
                   std::vector<bool>& out) {
    if (idx.empty()) return;
    if (idx.size() == 1) {
        out[idx.front()] = verify_parsed(parsed[idx.front()]);
        return;
    }
    if (rlc_accepts(parsed, idx, bits)) {
        for (const std::size_t i : idx) out[i] = true;
        g_batch_verified.add(idx.size());
        return;
    }
    const auto mid =
        idx.begin() + static_cast<std::ptrdiff_t>(idx.size() / 2);
    bisect_verify(parsed, {idx.begin(), mid}, bits, out);
    bisect_verify(parsed, {mid, idx.end()}, bits, out);
}

}  // namespace

bool batch_verify(const std::vector<BatchItem>& items, const ScalarBits& bits) {
    std::vector<ParsedSig> parsed;
    parsed.reserve(items.size());
    for (const BatchItem& item : items) {
        auto p = parse_signature(BytesView(item.public_key),
                                 BytesView(item.msg), item.sig);
        if (!p) return false;  // Malformed: fails individually, fails here.
        parsed.push_back(std::move(*p));
    }
    if (parsed.empty()) return true;
    // A single item consumes no randomness and is a plain verification.
    if (parsed.size() == 1) return verify_parsed(parsed.front());
    std::vector<std::size_t> idx(parsed.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    if (!rlc_accepts(parsed, idx, bits)) return false;
    g_batch_verified.add(parsed.size());
    return true;
}

std::vector<bool> batch_verify_each(const std::vector<BatchItem>& items,
                                    const ScalarBits& bits) {
    std::vector<bool> out(items.size(), false);
    std::vector<ParsedSig> parsed(items.size());
    std::vector<std::size_t> idx;  // structurally valid items only
    idx.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        auto p = parse_signature(BytesView(items[i].public_key),
                                 BytesView(items[i].msg), items[i].sig);
        if (p) {
            parsed[i] = std::move(*p);
            idx.push_back(i);
        }
    }
    bisect_verify(parsed, idx, bits, out);
    return out;
}

}  // namespace platoon::crypto
