// Secured-message envelope: authentication, freshness and confidentiality
// for platoon messages.
//
// Implements the paper's "Secret and Public Keys" mechanism family
// (Section VI-A.1): a configurable per-node security context that can
//   - leave messages unprotected (the attack baseline),
//   - MAC them with a platoon group key (cheap; insider can forge),
//   - MAC them with pairwise keys (e.g. from fading key agreement [5]),
//   - sign them with a certified key (PKI / IEEE 1609.2 style),
// and optionally encrypt payloads (ChaCha20) for confidentiality.
// Verification enforces the CA chain, revocation, a freshness window
// (timestamps) and per-sender monotonic sequence numbers (replay defense).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "crypto/cert.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/verdict_cache.hpp"
#include "base/types.hpp"

namespace platoon::crypto {

enum class AuthMode : std::uint8_t {
    kNone = 0,      ///< No protection (open 802.11p broadcast).
    kGroupMac,      ///< HMAC under a shared platoon key.
    kPairwiseMac,   ///< HMAC under a per-(sender,receiver) key.
    kSignature,     ///< Schnorr signature + attached certificate.
};

struct Envelope {
    AuthMode mode = AuthMode::kNone;
    std::uint32_t sender = sim::NodeId::kInvalidValue;  ///< Claimed sender.
    std::uint64_t seq = 0;
    sim::SimTime timestamp = 0.0;
    bool encrypted = false;
    Bytes payload;                    ///< Ciphertext when encrypted.
    Bytes tag;                        ///< MAC tag or signature.
    std::optional<Certificate> cert;  ///< Attached for kSignature.

    /// Canonical bytes covered by the MAC/signature.
    [[nodiscard]] Bytes authenticated_bytes() const;
    /// Approximate wire size in bytes (for MAC airtime accounting).
    [[nodiscard]] std::size_t wire_size() const;
};

enum class VerifyResult : std::uint8_t {
    kOk = 0,
    kUnprotected,   ///< mode == kNone and policy requires protection.
    kBadTag,        ///< MAC/signature check failed.
    kBadCert,       ///< Missing/invalid/expired certificate.
    kRevoked,       ///< Certificate serial on the CRL.
    kStale,         ///< Timestamp outside freshness window.
    kReplay,        ///< Sequence number not fresh for this sender.
    kNoKey,         ///< No key material to verify with.
};

[[nodiscard]] const char* to_string(VerifyResult r);

/// Per-sender anti-replay state: freshness window on timestamps plus a
/// monotonic high-water mark on sequence numbers.
class ReplayGuard {
public:
    explicit ReplayGuard(sim::SimTime freshness_window_s = 0.5)
        : window_(freshness_window_s) {}

    /// Checks and (when fresh) records (sender, seq, timestamp).
    [[nodiscard]] VerifyResult check(std::uint32_t sender, std::uint64_t seq,
                                     sim::SimTime timestamp, sim::SimTime now);

    [[nodiscard]] sim::SimTime window() const { return window_; }
    void set_window(sim::SimTime w) { window_ = w; }

private:
    sim::SimTime window_;
    std::unordered_map<std::uint32_t, std::uint64_t> last_seq_;
};

/// Per-node security context.
class MessageProtection {
public:
    struct Config {
        AuthMode mode = AuthMode::kNone;
        bool encrypt = false;
        sim::SimTime freshness_window_s = 0.5;
        bool check_replay = true;
    };

    MessageProtection() = default;
    explicit MessageProtection(Config config) : config_(config) {}

    [[nodiscard]] const Config& config() const { return config_; }
    void set_mode(AuthMode mode) { config_.mode = mode; }
    void set_encrypt(bool on) { config_.encrypt = on; }

    /// --- shared-verdict memoization ---------------------------------------
    /// Installs a shared (per-scenario) cache of receiver-independent crypto
    /// facts: certificate-signature validity, message-signature validity and
    /// group-MAC tag validity. N receivers of one broadcast envelope then
    /// pay one verification; the rest count as `crypto.verify.cached`.
    /// Per-receiver checks (cert time window, CRL, replay freshness,
    /// pairwise-MAC, decryption) are never cached. nullptr (the default)
    /// restores fully independent verification.
    void set_verdict_cache(VerdictCache* cache) { cache_ = cache; }
    [[nodiscard]] VerdictCache* verdict_cache() const { return cache_; }

    /// --- key material -----------------------------------------------------
    void set_group_key(Bytes key) {
        group_key_ = std::move(key);
        group_key_digest_.clear();
    }
    [[nodiscard]] bool has_group_key() const { return !group_key_.empty(); }
    void set_pairwise_key(std::uint32_t peer, Bytes key) {
        pairwise_keys_[peer] = std::move(key);
    }
    [[nodiscard]] bool has_pairwise_key(std::uint32_t peer) const {
        return pairwise_keys_.contains(peer);
    }
    void set_credential(Credential credential) {
        credential_ = std::move(credential);
    }
    void set_ca_public_key(Bytes ca_pub) { ca_public_key_ = std::move(ca_pub); }
    [[nodiscard]] RevocationList& crl() { return crl_; }
    [[nodiscard]] const RevocationList& crl() const { return crl_; }

    /// --- sending ----------------------------------------------------------
    /// Wraps `payload` for broadcast. `sender` is this node's claimed id
    /// (normally its own; an impersonator passes the stolen identity and a
    /// stolen credential). For kPairwiseMac, `receiver` selects the key.
    Envelope protect(std::uint32_t sender, BytesView payload, sim::SimTime now,
                     std::optional<std::uint32_t> receiver = std::nullopt);

    /// --- receiving --------------------------------------------------------
    /// Verifies and (when encrypted) decrypts in place. On kOk,
    /// envelope.payload holds the plaintext.
    VerifyResult verify_and_open(Envelope& envelope, sim::SimTime now);

    [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }
    /// Jumps the outgoing sequence counter (an impersonator must outrun the
    /// victim's high-water mark or its forgeries read as replays).
    void set_seq_base(std::uint64_t seq) { next_seq_ = seq; }

private:
    /// Tracks shared-cache consultations within one verify_and_open call:
    /// a call whose every consulted fact was a hit did zero fresh crypto
    /// and is counted as `crypto.verify.cached` instead of
    /// `crypto.verify.ok` (only kOk calls are split; failures count as
    /// `crypto.verify.fail` either way).
    struct CacheProbe {
        int consulted = 0;
        int hits = 0;
    };

    VerifyResult verify_and_open_impl(Envelope& envelope, sim::SimTime now,
                                      CacheProbe& probe);
    [[nodiscard]] Bytes mac_key_for(std::uint32_t peer) const;
    [[nodiscard]] Bytes encryption_key() const;
    [[nodiscard]] Bytes nonce_for(std::uint32_t sender, std::uint64_t seq) const;
    /// SHA-256 of the group key (cached); binds group-MAC facts to the key.
    [[nodiscard]] const Bytes& group_key_digest() const;

    /// Memoized CA-signature checks: certificates are immutable, so a
    /// serial whose signature verified once never needs re-verification
    /// (time-window and CRL checks stay per-message -- they depend on now).
    /// With a shared cache installed the fact lives there instead, keyed on
    /// the full (CA key, tbs, signature) digest.
    [[nodiscard]] bool cert_signature_valid(const Certificate& cert,
                                            CacheProbe& probe) const;

    Config config_;
    mutable std::unordered_set<std::uint64_t> verified_cert_serials_;
    Bytes group_key_;
    mutable Bytes group_key_digest_;
    std::unordered_map<std::uint32_t, Bytes> pairwise_keys_;
    std::optional<Credential> credential_;
    Bytes ca_public_key_;
    RevocationList crl_;
    ReplayGuard replay_guard_{0.5};
    std::uint64_t next_seq_ = 1;
    VerdictCache* cache_ = nullptr;  ///< Shared, non-owning; may be null.
};

/// Pre-computes the receiver-independent facts of a *signed* envelope into
/// `cache` before a delivery fan-out: when both the certificate fact and the
/// message-signature fact are unknown, the two checks are settled together
/// by one batch-verification equation (crypto.verify.batched); a single
/// missing fact is verified individually. Never changes a verdict -- every
/// receiver reads the same booleans it would have computed itself. Non-
/// signature envelopes are untouched (the first receiver populates the MAC
/// fact instead). `scalar_bits` feeds the batch coefficients and is drawn
/// from only when a batch actually runs.
void prewarm_signature_verdicts(const Envelope& envelope,
                                BytesView ca_public_key, VerdictCache& cache,
                                const ScalarBits& scalar_bits);

}  // namespace platoon::crypto
