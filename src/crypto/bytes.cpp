#include "crypto/bytes.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace platoon::crypto {

Bytes to_bytes(std::string_view s) {
    return Bytes(s.begin(), s.end());
}

std::string to_hex(BytesView data) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(data.size() * 2);
    for (std::uint8_t b : data) {
        out.push_back(kDigits[b >> 4]);
        out.push_back(kDigits[b & 0xF]);
    }
    return out;
}

namespace {
int hex_value(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::invalid_argument("bad hex digit");
}
}  // namespace

Bytes from_hex(std::string_view hex) {
    if (hex.size() % 2 != 0) throw std::invalid_argument("odd hex length");
    Bytes out(hex.size() / 2);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<std::uint8_t>(hex_value(hex[2 * i]) * 16 +
                                           hex_value(hex[2 * i + 1]));
    }
    return out;
}

bool ct_equal(BytesView a, BytesView b) {
    if (a.size() != b.size()) return false;
    std::uint8_t diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
    return diff == 0;
}

void append(Bytes& dst, BytesView src) {
    dst.insert(dst.end(), src.begin(), src.end());
}

void append_u64(Bytes& dst, std::uint64_t v) {
    for (int i = 7; i >= 0; --i)
        dst.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u32(Bytes& dst, std::uint32_t v) {
    for (int i = 3; i >= 0; --i)
        dst.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_f64(Bytes& dst, double v) {
    append_u64(dst, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t read_u64(BytesView src, std::size_t& offset) {
    if (offset + 8 > src.size()) throw std::out_of_range("read_u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | src[offset + i];
    offset += 8;
    return v;
}

std::uint32_t read_u32(BytesView src, std::size_t& offset) {
    if (offset + 4 > src.size()) throw std::out_of_range("read_u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | src[offset + i];
    offset += 4;
    return v;
}

double read_f64(BytesView src, std::size_t& offset) {
    return std::bit_cast<double>(read_u64(src, offset));
}

}  // namespace platoon::crypto
