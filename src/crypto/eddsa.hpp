// Schnorr signatures and Diffie-Hellman over edwards25519.
//
// Field arithmetic mod p = 2^255 - 19 uses the standard 5x51-bit limb
// representation; points use extended homogeneous coordinates (RFC 8032
// formulas). The signature scheme is deterministic Schnorr with SHA-256 as
// the hash (Ed25519-shaped; functionally equivalent to the ECDSA of IEEE
// 1609.2 for the simulator's purposes: existential unforgeability against
// the simulated attacker, who never holds the private key).
//
// Scalar arithmetic modulo the group order L uses crypto/u256. None of this
// is constant-time -- it protects a *simulated* network, not real traffic.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "crypto/bytes.hpp"
#include "crypto/u256.hpp"

namespace platoon::crypto {

/// Field element mod 2^255 - 19, radix-51.
struct Fe {
    std::array<std::uint64_t, 5> limb{};

    static Fe zero() { return {}; }
    static Fe one() {
        Fe r;
        r.limb[0] = 1;
        return r;
    }
    static Fe from_u64(std::uint64_t v) {
        Fe r;
        r.limb[0] = v & ((1ull << 51) - 1);
        r.limb[1] = v >> 51;
        return r;
    }
};

[[nodiscard]] Fe fe_add(const Fe& a, const Fe& b);
[[nodiscard]] Fe fe_sub(const Fe& a, const Fe& b);
[[nodiscard]] Fe fe_mul(const Fe& a, const Fe& b);
[[nodiscard]] Fe fe_sq(const Fe& a);
[[nodiscard]] Fe fe_neg(const Fe& a);
/// Multiplicative inverse via Fermat (a^(p-2)); a must be nonzero.
[[nodiscard]] Fe fe_inv(const Fe& a);
/// a^((p-3)/8)-based square root; nullopt when a is a non-residue.
[[nodiscard]] std::optional<Fe> fe_sqrt(const Fe& a);
/// Canonical 32-byte little-endian encoding.
[[nodiscard]] Bytes fe_to_bytes(const Fe& a);
[[nodiscard]] Fe fe_from_bytes(BytesView b);  // 32 bytes, top bit ignored
[[nodiscard]] bool fe_equal(const Fe& a, const Fe& b);
[[nodiscard]] bool fe_is_zero(const Fe& a);

/// Point on edwards25519 in extended homogeneous coordinates
/// (X : Y : Z : T), with x = X/Z, y = Y/Z, T = XY/Z.
struct Point {
    Fe x, y, z, t;

    /// Neutral element (0, 1).
    static Point identity();
};

[[nodiscard]] Point point_add(const Point& p, const Point& q);
[[nodiscard]] Point point_double(const Point& p);
[[nodiscard]] Point point_neg(const Point& p);
/// Reference double-and-add. Kept as the oracle the windowed/precomputed
/// paths below are differentially tested against; not used on hot paths.
[[nodiscard]] Point scalar_mul(const U256& k, const Point& p);
/// a*A + b*B via Shamir's trick (one shared doubling chain). Reference
/// implementation; the verifier now runs on the windowed paths below.
[[nodiscard]] Point double_scalar_mul(const U256& a, const Point& A,
                                      const U256& b, const Point& B);
/// k*B for the standard base point via a precomputed 4-bit comb table
/// (64 windows x 15 odd-index multiples): ~64 additions, no doublings.
[[nodiscard]] Point scalar_mul_base(const U256& k);
/// k*P via a fixed 4-bit window: 15-entry table of small multiples, then
/// 4 doublings + at most one addition per window.
[[nodiscard]] Point scalar_mul_windowed(const U256& k, const Point& p);
/// Sum of k_i * P_i via Straus interleaving (4-bit windows, one shared
/// doubling chain); the workhorse of batch verification.
[[nodiscard]] Point multi_scalar_mul(
    const std::vector<std::pair<U256, Point>>& terms);
[[nodiscard]] bool point_equal(const Point& p, const Point& q);
/// Affine (x, y) as 64 bytes (32 LE bytes each); used as the public-key
/// wire format (uncompressed; the simulator doesn't need point compression).
[[nodiscard]] Bytes point_to_bytes(const Point& p);
[[nodiscard]] std::optional<Point> point_from_bytes(BytesView b);
/// True iff -x^2 + y^2 == 1 + d x^2 y^2.
[[nodiscard]] bool on_curve(const Point& p);

/// The standard base point B and group order L.
[[nodiscard]] const Point& base_point();
[[nodiscard]] const U256& group_order();

/// Key pair. Private keys are scalars mod L derived from a 32-byte seed.
struct KeyPair {
    U256 secret;       ///< scalar in [1, L)
    Point public_key;  ///< secret * B
    Bytes public_bytes;

    static KeyPair from_seed(BytesView seed32);
};

/// 64-byte signature: R (uncompressed would be 64; we store R as the 32-byte
/// challenge hash input via its encoded form) -- concretely: sig = R_bytes
/// (64) || s (32 LE), 96 bytes total.
struct Signature {
    Bytes bytes;  ///< 96 bytes
};

/// Deterministic Schnorr: r = H(secret || msg) mod L, R = rB,
/// e = H(R || pub || msg) mod L, s = r + e*secret mod L.
[[nodiscard]] Signature sign(const KeyPair& key, BytesView msg);

/// Verifies sB == R + e*Pub.
[[nodiscard]] bool verify(BytesView public_key_bytes, BytesView msg,
                          const Signature& sig);

/// Diffie-Hellman: SHA-256 of the shared point secret_a * Pub_b. Both sides
/// derive the same 32-byte key.
[[nodiscard]] Bytes dh_shared_key(const U256& my_secret,
                                  BytesView their_public_bytes);

/// --- batch verification ----------------------------------------------------

/// One (public key, message, signature) triple for batch verification. The
/// buffers are owned copies so batches can outlive the envelopes they were
/// collected from.
struct BatchItem {
    Bytes public_key;  ///< 64-byte uncompressed point.
    Bytes msg;
    Signature sig;
};

/// Source of random 64-bit words for the linear-combination coefficients.
/// The crypto layer may not depend on sim, so callers wrap a named
/// sim::RandomStream (e.g. "network.batchverify") in this callback; tests
/// may supply any deterministic source.
using ScalarBits = std::function<std::uint64_t()>;

/// True iff every signature in the batch verifies. Checks the single
/// random-linear-combination equation
///   sum_i z_i * (s_i*B - R_i - e_i*P_i) == identity
/// with independent odd 128-bit coefficients z_i, evaluated as one
/// multi-scalar multiplication. Malformed items (bad point encodings,
/// s >= L) fail the batch outright. An odd z_i < L makes a false accept of
/// a single bad item impossible (z_i annihilates no nonzero point); for
/// several bad items the false-accept probability is ~2^-128 against the
/// simulator's non-adaptive forgers. An empty batch is vacuously true.
[[nodiscard]] bool batch_verify(const std::vector<BatchItem>& items,
                                const ScalarBits& bits);

/// Per-item verdicts, each identical to crypto::verify on that item. Runs
/// the RLC check first; on failure bisects, re-testing each half as a
/// sub-batch, down to plain verify at single items — so a rejected batch
/// pinpoints exactly the forged indices.
[[nodiscard]] std::vector<bool> batch_verify_each(
    const std::vector<BatchItem>& items, const ScalarBits& bits);

}  // namespace platoon::crypto
