// Table III reproduction: the defense-mechanism x attack matrix. For every
// (mechanism, attack) pair, run the attacked platoon with the mechanism
// enabled and grade how much of the attack's damage it removed. The matrix
// sign is then compared against the paper's Table III mapping: agreement,
// "measured better than claimed" (our superset findings), or mismatch.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"

namespace pb = platoon::bench;
namespace pc = platoon::core;

namespace {

struct Cell {
    std::string verdict;
    double defended_headline = 0.0;
};

void run_and_print() {
    const auto& tax = pc::Taxonomy::instance();
    const int n_attacks = static_cast<int>(pc::AttackKind::kCount_);
    const int n_defenses = static_cast<int>(pc::DefenseKind::kCount_);

    // The whole table is one grid compiled from
    // scenarios/table3_mitigations.json: per-attack baselines (clean +
    // undefended-attacked) followed by every (defense, attack) cell, in the
    // description's documented enumeration order. run_eval_grid fans the
    // grid out at (cell x seed) granularity over PLATOON_JOBS workers;
    // results come back in cell order, so the printed matrix is
    // byte-identical at any job count.
    const auto compiled = pb::load_scenario("table3_mitigations");
    const auto results =
        pb::run_eval_grid(pb::to_eval_cells(compiled.cells), pb::jobs());

    std::vector<pb::MetricMap> clean(static_cast<std::size_t>(n_attacks));
    std::vector<pb::MetricMap> attacked(static_cast<std::size_t>(n_attacks));
    for (int a = 0; a < n_attacks; ++a) {
        clean[static_cast<std::size_t>(a)] =
            results[static_cast<std::size_t>(2 * a)];
        attacked[static_cast<std::size_t>(a)] =
            results[static_cast<std::size_t>(2 * a + 1)];
    }

    std::vector<std::vector<Cell>> matrix(
        static_cast<std::size_t>(n_defenses),
        std::vector<Cell>(static_cast<std::size_t>(n_attacks)));
    for (int d = 0; d < n_defenses; ++d) {
        for (int a = 0; a < n_attacks; ++a) {
            const auto kind = static_cast<pc::AttackKind>(a);
            const auto& defended = results[static_cast<std::size_t>(
                2 * n_attacks + d * n_attacks + a)];
            const auto headline = pb::headline_for(kind);
            Cell& cell = matrix[static_cast<std::size_t>(d)]
                               [static_cast<std::size_t>(a)];
            cell.defended_headline = pb::metric(defended, headline.metric);
            cell.verdict = pb::verdict(
                headline, pb::metric(clean[static_cast<std::size_t>(a)], headline.metric),
                pb::metric(attacked[static_cast<std::size_t>(a)], headline.metric),
                cell.defended_headline);
        }
    }

    pc::print_banner(std::cout,
                     "Table III -- mechanism x attack mitigation matrix "
                     "(verdict on each attack's headline metric)");
    std::vector<std::string> headers{"defense \\ attack"};
    for (int a = 0; a < n_attacks; ++a)
        headers.push_back(pc::to_string(static_cast<pc::AttackKind>(a)));
    pc::Table table(headers);
    for (int d = 0; d < n_defenses; ++d) {
        std::vector<std::string> row{
            pc::to_string(static_cast<pc::DefenseKind>(d))};
        for (int a = 0; a < n_attacks; ++a)
            row.push_back(matrix[static_cast<std::size_t>(d)]
                                [static_cast<std::size_t>(a)].verdict);
        table.add_row(std::move(row));
    }
    table.print(std::cout);

    pc::print_banner(std::cout,
                     "Measured matrix vs the paper's Table III mapping");
    pc::Table compare({"defense", "attack", "paper says", "measured",
                       "agreement"});
    for (int d = 0; d < n_defenses; ++d) {
        for (int a = 0; a < n_attacks; ++a) {
            const auto defense = static_cast<pc::DefenseKind>(d);
            const auto kind = static_cast<pc::AttackKind>(a);
            const bool paper = tax.mitigates(defense, kind);
            const std::string& measured =
                matrix[static_cast<std::size_t>(d)]
                      [static_cast<std::size_t>(a)].verdict;
            const bool measured_mitigates =
                measured == "MITIGATED" || measured == "partial";
            std::string agreement;
            if (paper && measured_mitigates) {
                agreement = "agree";
            } else if (!paper && !measured_mitigates) {
                agreement = "agree (no claim)";
            } else if (!paper && measured_mitigates) {
                agreement = "measured SUPERSET of paper";
            } else {
                agreement = "MISMATCH (paper claims, not measured)";
            }
            // Only print the interesting rows: claims and supersets.
            if (paper || measured_mitigates) {
                compare.add_row({pc::to_string(defense), pc::to_string(kind),
                                 paper ? "mitigates" : "-", measured,
                                 agreement});
            }
        }
    }
    compare.print(std::cout);

    pc::print_banner(std::cout, "Open challenges (paper Table III, col. 3)");
    pc::Table open({"defense", "open challenge"});
    for (const auto& defense : tax.defenses())
        open.add_row({pc::to_string(defense.kind), defense.open_challenge});
    open.print(std::cout);
}

void BM_DefendedScenario(benchmark::State& state) {
    const auto defense = static_cast<pc::DefenseKind>(state.range(0));
    for (auto _ : state) {
        auto config = pb::eval_config();
        pb::apply_defense(config, defense);
        benchmark::DoNotOptimize(
            pb::run_eval(config, pc::AttackKind::kReplay, true, 1));
    }
    state.SetLabel(pc::to_string(defense));
}
BENCHMARK(BM_DefendedScenario)
    ->Arg(static_cast<int>(pc::DefenseKind::kSecretPublicKeys))
    ->Arg(static_cast<int>(pc::DefenseKind::kControlAlgorithms))
    ->Arg(static_cast<int>(pc::DefenseKind::kHybridCommunications))
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
    pb::obs_init();
    pb::print_jobs_banner("bench_table3_mitigations");
    run_and_print();
    pb::write_bench_json("bench_table3_mitigations",
                         "Table III defense-vs-attack grid", 42);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
