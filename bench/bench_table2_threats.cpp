// Table II reproduction: every threat in the paper's catalogue, run against
// the simulated platoon, with the *measured* impact backing the table's
// qualitative "how the attack will compromise the platoon" column.
//
// Per attack: a clean baseline and an attacked run (3 seeds each), the
// attack's headline metric, and the paper's claim checked against the
// measured direction.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/risk.hpp"

namespace pb = platoon::bench;
namespace pc = platoon::core;

namespace {

struct Row {
    pc::AttackKind kind;
    pb::MetricMap clean;
    pb::MetricMap attacked;
};

void print_table2(const std::vector<Row>& rows) {
    const auto& tax = pc::Taxonomy::instance();

    pc::print_banner(std::cout,
                     "Table II -- threats to platoons: measured impact "
                     "(6-truck CACC platoon, 70 s, attack from t=20 s, "
                     "mean of 3 seeds)");
    pc::Table table({"attack", "compromises", "headline metric", "clean",
                     "attacked", "impact", "claim reproduced?"});
    for (const auto& row : rows) {
        const auto& entry = tax.attack(row.kind);
        const auto headline = pb::headline_for(row.kind);
        std::string attrs;
        for (std::size_t i = 0; i < entry.compromises.size(); ++i) {
            if (i > 0) attrs += "+";
            attrs += pc::to_string(entry.compromises[i]);
        }
        const double clean = pb::metric(row.clean, headline.metric);
        const double attacked = pb::metric(row.attacked, headline.metric);
        const double sign = headline.higher_is_worse ? 1.0 : -1.0;
        const bool harmed =
            sign * (attacked - clean) > std::max(0.05 * std::abs(clean), 1e-3);

        std::string impact;
        if (headline.higher_is_worse && clean > 1e-9) {
            impact = pc::Table::num(attacked / clean) + "x";
        } else {
            impact = pc::Table::num(attacked - clean) + " delta";
        }
        table.add_row({pc::to_string(row.kind), attrs,
                       headline.metric + " (" + headline.unit + ")",
                       pc::Table::num(clean), pc::Table::num(attacked), impact,
                       harmed ? "yes" : "NO"});
    }
    table.print(std::cout);

    pc::print_banner(std::cout, "Attack-side statistics");
    pc::Table stats({"attack", "statistic", "value"});
    for (const auto& row : rows) {
        for (const auto& [name, value] : row.attacked) {
            if (name.rfind("attack.", 0) == 0) {
                stats.add_row({pc::to_string(row.kind), name.substr(7),
                               pc::Table::num(value)});
            }
        }
    }
    stats.print(std::cout);

    pc::print_banner(std::cout, "Secondary effects (attacked runs)");
    pc::Table side({"attack", "collisions", "min gap (m)", "CACC avail",
                    "fuel (L/100km)", "PDR"});
    for (const auto& row : rows) {
        side.add_row({pc::to_string(row.kind),
                      pc::Table::num(pb::metric(row.attacked, "collisions")),
                      pc::Table::num(pb::metric(row.attacked, "min_gap_m")),
                      pc::Table::num(pb::metric(row.attacked, "cacc_availability")),
                      pc::Table::num(pb::metric(row.attacked, "fuel_l_per_100km")),
                      pc::Table::num(pb::metric(row.attacked, "pdr"))});
    }
    side.print(std::cout);
}

std::vector<Row> run_all() {
    // The grid is compiled from scenarios/table2_threats.json: one
    // (clean, attacked) cell pair per attack in catalogue order, 3 seeds
    // each. run_eval_grid fans the whole grid out at (cell x seed)
    // granularity over PLATOON_JOBS workers and returns seed-order-folded
    // means, so the printed table is byte-identical at any job count.
    const auto compiled = pb::load_scenario("table2_threats");
    const auto results =
        pb::run_eval_grid(pb::to_eval_cells(compiled.cells), pb::jobs());

    std::vector<Row> rows;
    for (int k = 0; k < static_cast<int>(pc::AttackKind::kCount_); ++k) {
        Row row;
        row.kind = static_cast<pc::AttackKind>(k);
        row.clean = results[static_cast<std::size_t>(2 * k)];
        row.attacked = results[static_cast<std::size_t>(2 * k + 1)];
        rows.push_back(std::move(row));
    }
    return rows;
}

void BM_AttackedScenario(benchmark::State& state) {
    const auto kind = static_cast<pc::AttackKind>(state.range(0));
    for (auto _ : state) {
        auto config = pb::eval_config();
        benchmark::DoNotOptimize(pb::run_eval(config, kind, true, 1));
    }
    state.SetLabel(pc::to_string(kind));
}
BENCHMARK(BM_AttackedScenario)
    ->Arg(static_cast<int>(pc::AttackKind::kReplay))
    ->Arg(static_cast<int>(pc::AttackKind::kJamming))
    ->Arg(static_cast<int>(pc::AttackKind::kSybil))
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

void print_risk_register(const std::vector<Row>& rows) {
    // Open challenge VI-B.4: an ISO/SAE 21434-style risk register where
    // severity comes from the MEASURED impact above, not expert guesses.
    std::vector<std::pair<pc::AttackKind,
                          std::pair<pb::MetricMap, pb::MetricMap>>>
        measured;
    for (const auto& row : rows)
        measured.push_back({row.kind, {row.attacked, row.clean}});
    const auto reg = pc::build_risk_register(measured);

    pc::print_banner(std::cout,
                     "Risk register (open challenge VI-B.4): feasibility x "
                     "measured severity");
    pc::Table table({"rank", "attack", "likelihood", "measured severity",
                     "risk score", "rationale"});
    int rank = 1;
    for (const auto& entry : reg) {
        table.add_row({std::to_string(rank++), pc::to_string(entry.kind),
                       pc::to_string(entry.likelihood),
                       pc::to_string(entry.severity),
                       std::to_string(entry.score), entry.rationale});
    }
    table.print(std::cout);
}

int main(int argc, char** argv) {
    pb::obs_init();
    pb::print_jobs_banner("bench_table2_threats");
    const auto rows = run_all();
    print_table2(rows);
    print_risk_register(rows);
    pb::write_bench_json("bench_table2_threats",
                         "Table II grid: 9 attacks x clean/attacked x 3 seeds",
                         42);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
