#include "bench_common.hpp"

#include <cstdlib>
#include <iostream>

#include "core/experiment.hpp"
#include "obs/counters.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "obs/timer.hpp"

namespace platoon::bench {

unsigned jobs() { return core::default_jobs(); }

void print_jobs_banner(const char* binary) {
    std::cerr << binary << ": running experiment grids on " << jobs()
              << " worker thread(s) (set PLATOON_JOBS to override; results "
                 "are identical at any job count)\n";
}

void obs_init() {
    obs::set_enabled(true);
    obs::reset_counters();
    obs::reset_timers();
}

void write_bench_json(const char* bench, const char* scenario,
                      std::uint64_t seed) {
    const obs::Manifest manifest =
        obs::make_manifest(bench, scenario, seed, jobs());
    const std::string path = obs::bench_json_path(bench);
    if (obs::write_json_file(path, obs::snapshot_json(manifest))) {
        std::cerr << bench << ": wrote " << path << "\n";
    } else {
        std::cerr << bench << ": FAILED to write " << path << "\n";
    }
}

std::string scenario_dir() {
    if (const char* env = std::getenv("PLATOON_SCENARIO_DIR");
        env != nullptr && *env != '\0')
        return env;
    return PLATOON_SCENARIO_DIR;
}

scen::Compiled load_scenario(const char* name) {
    const std::string path = scenario_dir() + "/" + name + ".json";
    std::string error;
    std::optional<scen::Compiled> compiled =
        scen::compile_file(path, &error);
    if (!compiled) {
        std::cerr << "bench: scenario description rejected: " << error
                  << "\n";
        std::exit(2);
    }
    return std::move(*compiled);
}

std::vector<EvalCell> to_eval_cells(
    const std::vector<scen::CompiledCell>& cells) {
    std::vector<EvalCell> out;
    out.reserve(cells.size());
    for (const scen::CompiledCell& cell : cells)
        out.push_back({cell.config, cell.attack, cell.with_attack,
                       cell.seeds});
    return out;
}

}  // namespace platoon::bench
