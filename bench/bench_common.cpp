#include "bench_common.hpp"

#include <iostream>

#include "core/experiment.hpp"
#include "obs/counters.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "obs/timer.hpp"

namespace platoon::bench {

unsigned jobs() { return core::default_jobs(); }

void print_jobs_banner(const char* binary) {
    std::cerr << binary << ": running experiment grids on " << jobs()
              << " worker thread(s) (set PLATOON_JOBS to override; results "
                 "are identical at any job count)\n";
}

void obs_init() {
    obs::set_enabled(true);
    obs::reset_counters();
    obs::reset_timers();
}

void write_bench_json(const char* bench, const char* scenario,
                      std::uint64_t seed) {
    const obs::Manifest manifest =
        obs::make_manifest(bench, scenario, seed, jobs());
    const std::string path = obs::bench_json_path(bench);
    if (obs::write_json_file(path, obs::snapshot_json(manifest))) {
        std::cerr << bench << ": wrote " << path << "\n";
    } else {
        std::cerr << bench << ": FAILED to write " << path << "\n";
    }
}

}  // namespace platoon::bench
