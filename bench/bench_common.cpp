#include "bench_common.hpp"

#include <iostream>

#include "core/experiment.hpp"

namespace platoon::bench {

unsigned jobs() { return core::default_jobs(); }

void print_jobs_banner(const char* binary) {
    std::cerr << binary << ": running experiment grids on " << jobs()
              << " worker thread(s) (set PLATOON_JOBS to override; results "
                 "are identical at any job count)\n";
}

}  // namespace platoon::bench
