#include "bench_common.hpp"

#include <cmath>

namespace platoon::bench {

namespace {

core::PlatoonVehicle& add_legit_joiner(core::Scenario& scenario) {
    core::VehicleConfig joiner;
    joiner.id = sim::NodeId{300};
    joiner.role = control::Role::kFree;
    joiner.platoon_id = 0;
    joiner.security = scenario.config().security;
    joiner.initial_state.position_m =
        scenario.tail().dynamics().position() - 80.0;
    joiner.initial_state.speed_mps = 25.0;
    joiner.desired_speed_mps = 28.0;
    auto& vehicle = scenario.add_vehicle(joiner);
    scenario.scheduler().schedule_at(25.0, [&scenario, &vehicle] {
        vehicle.request_join(scenario.platoon_id(), scenario.leader().id());
    });
    return vehicle;
}

}  // namespace

MetricMap run_eval(core::ScenarioConfig config, AttackKind kind,
                   bool with_attack, std::size_t seeds) {
    // Impersonation presumes stolen credentials: without a PKI in place it
    // degenerates into the fake-maneuver attack, so its rows always run on
    // a signed baseline.
    if (kind == AttackKind::kImpersonation &&
        config.security.auth_mode == crypto::AuthMode::kNone) {
        config.security.auth_mode = crypto::AuthMode::kSignature;
    }

    MetricMap sum;
    const std::uint64_t base_seed = config.seed;
    for (std::size_t k = 0; k < seeds; ++k) {
        config.seed = base_seed + k;
        core::Scenario scenario(config);
        std::unique_ptr<security::Attack> attack;
        if (with_attack) {
            attack = make_attack(kind);
            attack->attach(scenario);
        }
        core::PlatoonVehicle* joiner = nullptr;
        if (kind == AttackKind::kDenialOfService) {
            joiner = &add_legit_joiner(scenario);
        }
        scenario.run_until(kEvalDuration);

        MetricMap m = scenario.summarize().as_map();
        if (attack) attack->collect(m);
        std::size_t detached = 0;
        for (std::size_t i = 1; i < scenario.config().platoon_size; ++i)
            detached += scenario.vehicle(i).detached() ? 1 : 0;
        m["detached_members"] = static_cast<double>(detached);
        m["join_success"] =
            joiner == nullptr
                ? 1.0
                : (joiner->role() == control::Role::kMember ? 1.0 : 0.0);
        m["revoked_subjects"] =
            static_cast<double>(scenario.authority().revoked_subjects());
        m["revoked_credentials"] =
            static_cast<double>(scenario.authority().revoked_credentials());
        for (const auto& [name, value] : m) sum[name] += value;
    }
    for (auto& [name, value] : sum) value /= static_cast<double>(seeds);
    return sum;
}

std::string verdict(const Headline& headline, double clean, double attacked,
                    double defended) {
    const double sign = headline.higher_is_worse ? 1.0 : -1.0;
    const double damage_attacked = sign * (attacked - clean);
    const double damage_defended = sign * (defended - clean);
    // Scale-free floor: the attack must have done something to grade.
    const double floor = std::max(0.05 * std::abs(clean), 1e-3);
    if (damage_attacked < floor) return "-";
    const double restored = 1.0 - damage_defended / damage_attacked;
    if (restored >= 0.8) return "MITIGATED";
    if (restored >= 0.35) return "partial";
    return "no-effect";
}

}  // namespace platoon::bench
