// Ablation B: defense-mechanism design choices (DESIGN.md section 5).
//
//  - Fading key agreement: key yield and eavesdropper leakage vs probe
//    noise and guard band (the cost/effectiveness question the paper's
//    open challenge raises for key distribution).
//  - VPD-ADA detector: detection latency vs false positives across the
//    gap-discrepancy threshold (an ROC-style sweep).
//  - Pseudonym rotation period vs eavesdropper linkability.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "security/attacks/rogue_rsu.hpp"
#include "crypto/fading_key_agreement.hpp"
#include "defense/vpd_ada.hpp"
#include "sim/random.hpp"

namespace pb = platoon::bench;
namespace pc = platoon::core;
namespace ps = platoon::security;
namespace pcr = platoon::crypto;

namespace {

void fka_noise_sweep() {
    pc::print_banner(std::cout,
                     "Fading key agreement: yield and eavesdropper leakage "
                     "vs measurement noise (512 probes, 50 trials)");
    pc::Table table({"noise sigma (dB)", "success rate", "mean key bits",
                     "raw mismatch", "eve key matches"});
    for (const double noise : {0.1, 0.3, 0.6, 1.0, 2.0, 4.0}) {
        int successes = 0, eve_hits = 0;
        double bits = 0.0, mismatch = 0.0;
        const int trials = 50;
        for (int t = 0; t < trials; ++t) {
            platoon::sim::RandomStream chan(
                static_cast<std::uint64_t>(t) + 1, "fka.chan");
            platoon::sim::RandomStream eve_chan(
                static_cast<std::uint64_t>(t) + 1, "fka.eve");
            platoon::sim::RandomStream meas(
                static_cast<std::uint64_t>(t) + 1, "fka.noise");
            std::vector<double> alice(512), bob(512), eve(512);
            double g = 0.0, ge = 0.0;
            for (std::size_t i = 0; i < alice.size(); ++i) {
                g = 0.3 * g + chan.normal(0.0, 4.0);
                ge = 0.3 * ge + eve_chan.normal(0.0, 4.0);
                alice[i] = g + meas.normal(0.0, noise);
                bob[i] = g + meas.normal(0.0, noise);
                eve[i] = ge + meas.normal(0.0, noise);
            }
            const auto result = pcr::agree(alice, bob);
            successes += result.success;
            bits += static_cast<double>(result.harvested_bits);
            mismatch += result.raw_mismatch;
            if (result.success) {
                eve_hits +=
                    pcr::eavesdrop_key(eve, result.transcript) == result.key;
            }
        }
        table.add_row({pc::Table::num(noise),
                       pc::Table::num(successes / double(trials)),
                       pc::Table::num(bits / trials),
                       pc::Table::num(mismatch / trials),
                       pc::Table::num(static_cast<double>(eve_hits))});
    }
    table.print(std::cout);
}

void vpd_threshold_sweep() {
    pc::print_banner(std::cout,
                     "VPD-ADA threshold sweep: detection speed (Sybil run) "
                     "vs false positives (clean run)");
    pc::Table table({"gap threshold (m)", "clean: detections (FP)",
                     "attacked: detections", "attacked: 1st detection (s)",
                     "attacked: min gap (m)"});
    const std::vector<double> thresholds{1.0, 2.0, 3.0, 4.0, 6.0, 8.0};
    std::vector<std::function<pb::MetricMap()>> cells;
    for (const double threshold : thresholds) {
        const auto run = [threshold](bool attacked) {
            auto config = pb::eval_config();
            config.security.vpd_ada = true;
            pc::Scenario scenario(config);
            // Override every member's detector threshold.
            for (std::size_t i = 1; i < config.platoon_size; ++i) {
                ps::VpdAdaDetector::Params params;
                params.gap_threshold_m = threshold;
                scenario.vehicle(i).vpd() = ps::VpdAdaDetector(params);
            }
            std::shared_ptr<platoon::security::Attack> attack;
            if (attacked) {
                attack = pb::make_attack(pc::AttackKind::kSybil);
                attack->attach(scenario);
            }
            scenario.run_until(pb::kEvalDuration);
            double detections = 0.0;
            double first = -1.0;
            for (std::size_t i = 1; i < config.platoon_size; ++i) {
                detections += static_cast<double>(
                    scenario.vehicle(i).vpd().detections());
                const double f = scenario.vehicle(i).vpd().first_detection();
                if (f >= 0.0 && (first < 0.0 || f < first)) first = f;
            }
            auto m = scenario.summarize().as_map();
            m["vpd"] = detections;
            m["first"] = first;
            return m;
        };
        cells.emplace_back([run] { return run(false); });
        cells.emplace_back([run] { return run(true); });
    }
    const auto results = pc::run_grid(std::move(cells), pb::jobs());
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        const auto& clean = results[2 * i];
        const auto& attacked = results[2 * i + 1];
        const double first = pb::metric(attacked, "first", -1.0);
        table.add_row(
            {pc::Table::num(thresholds[i]),
             pc::Table::num(pb::metric(clean, "vpd")),
             pc::Table::num(pb::metric(attacked, "vpd")),
             first >= 0.0 ? pc::Table::num(first - 20.0) : "never",
             pc::Table::num(pb::metric(attacked, "min_gap_m"))});
    }
    table.print(std::cout);
}

void pseudonym_period_sweep() {
    pc::print_banner(std::cout,
                     "Pseudonym rotation period vs eavesdropper linkability");
    pc::Table table({"rotation period (s)", "longest linkable track (s)",
                     "identities seen"});
    const std::vector<double> periods{0.0, 5.0, 10.0, 20.0, 40.0};
    std::vector<std::function<pb::MetricMap()>> cells;
    for (const double period : periods) {
        cells.emplace_back([period] {
            auto config = pb::eval_config();
            config.security.auth_mode = pcr::AuthMode::kSignature;
            config.security.pseudonym_rotation_s = period;
            pc::Scenario scenario(config);
            platoon::security::EavesdropAttack attack;
            attack.attach(scenario);
            scenario.run_until(pb::kEvalDuration);
            pb::MetricMap stats;
            attack.collect(stats);
            stats["longest_track_s"] = attack.longest_track_s();
            return stats;
        });
    }
    const auto results = pc::run_grid(std::move(cells), pb::jobs());
    for (std::size_t i = 0; i < periods.size(); ++i) {
        const auto& stats = results[i];
        table.add_row({periods[i] == 0.0 ? "never" : pc::Table::num(periods[i]),
                       pc::Table::num(pb::metric(stats, "longest_track_s")),
                       pc::Table::num(
                           pb::metric(stats, "attack.identities_tracked"))});
    }
    table.print(std::cout);
}

void trust_vs_quarantine() {
    pc::print_banner(std::cout,
                     "Trust management (open challenge VI-B.3) stacked on "
                     "VPD-ADA vs quarantine alone (Sybil attack)");
    pc::Table table({"defense stack", "spacing RMS (m)", "CACC avail",
                     "min gap (m)", "collisions"});
    struct Case {
        const char* name;
        bool vpd;
        bool trust;
    };
    for (const Case& c : {Case{"none", false, false},
                          Case{"vpd-ada quarantine", true, false},
                          Case{"vpd-ada + trust", true, true}}) {
        auto config = pb::eval_config();
        config.security.vpd_ada = c.vpd;
        config.security.trust_management = c.trust;
        pc::Scenario scenario(config);
        auto attack = pb::make_attack(pc::AttackKind::kSybil);
        attack->attach(scenario);
        scenario.run_until(pb::kEvalDuration);
        const auto m = scenario.summarize().as_map();
        table.add_row({c.name,
                       pc::Table::num(pb::metric(m, "spacing_rms_m")),
                       pc::Table::num(pb::metric(m, "cacc_availability")),
                       pc::Table::num(pb::metric(m, "min_gap_m")),
                       pc::Table::num(pb::metric(m, "collisions"))});
    }
    table.print(std::cout);
    std::cout << "\n(Quarantine protects by retreating to radar ACC; trust "
                 "surgically drops the lying identity and keeps CACC on "
                 "the honest chain.)\n";
}

void rogue_rsu_postures() {
    pc::print_banner(std::cout,
                     "Rogue RSU (open challenge VI-A.2): key substitution "
                     "vs infrastructure-trust posture");
    pc::Table table({"posture", "tail CACC avail", "bad-tag rejections",
                     "spacing RMS (m)"});
    struct Case {
        const char* name;
        bool signed_infra;
    };
    for (const Case& c : {Case{"legacy (unsigned infra accepted)", false},
                          Case{"default (TA-certified only)", true}}) {
        auto config = pb::eval_config();
        config.security.auth_mode = platoon::crypto::AuthMode::kGroupMac;
        config.security.require_signed_infrastructure = c.signed_infra;
        pc::Scenario scenario(config);
        ps::RogueRsuAttack attack;
        attack.attach(scenario);
        scenario.run_until(pb::kEvalDuration);
        const auto m = scenario.summarize().as_map();
        table.add_row(
            {c.name,
             pc::Table::num(scenario.tail().stack().cacc_availability()),
             pc::Table::num(pb::metric(m, "rejected_auth")),
             pc::Table::num(pb::metric(m, "spacing_rms_m"))});
    }
    table.print(std::cout);
}

void BM_FadingKeyAgreement(benchmark::State& state) {
    platoon::sim::RandomStream chan(7, "bm.fka");
    std::vector<double> alice(512), bob(512);
    double g = 0.0;
    for (std::size_t i = 0; i < alice.size(); ++i) {
        g = 0.3 * g + chan.normal(0.0, 4.0);
        alice[i] = g + chan.normal(0.0, 0.3);
        bob[i] = g + chan.normal(0.0, 0.3);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(pcr::agree(alice, bob));
    }
}
BENCHMARK(BM_FadingKeyAgreement);

}  // namespace

int main(int argc, char** argv) {
    pb::obs_init();
    pb::print_jobs_banner("bench_ablation_defense");
    fka_noise_sweep();
    vpd_threshold_sweep();
    pseudonym_period_sweep();
    trust_vs_quarantine();
    rogue_rsu_postures();
    pb::write_bench_json("bench_ablation_defense",
                         "defense-parameter sweeps", 42);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
