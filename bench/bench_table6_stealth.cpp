// "Table VI" -- the stealth-impact Pareto frontier: detector-aware
// attackers search the injection-profile space (amplitude x ramp x duty x
// onset, scenarios/stealth_frontier.json) for maximum spacing-error impact
// without tripping the bank's innovation/EWMA/CUSUM threshold gates. The
// survey's open-challenges section argues fixed-threshold misbehavior
// detection is the weak point once attackers adapt; this bench makes the
// claim measurable: for each injection kind it prints the searched
// champions (best zero-gate-alarm static profile vs best shaped profile)
// and the per-detector alarm-budget/impact frontier over every candidate
// the search evaluated.
//
// Determinism contract: the search draws from the named "stealth.search"
// stream and every candidate is evaluated via core::run_grid, so stdout and
// the counter section of BENCH_bench_table6_stealth.json are byte-identical
// at any PLATOON_JOBS. Champion impacts are exported as integer
// millimeters so benchdiff --counters-only pins the frontier exactly. The
// committed baseline has stealthy_win = 1 for every kind: a regression that
// lets the static attacker catch back up to the shaped one fails CI.
// PLATOON_STEALTH_REQUIRE_WIN=1 additionally turns "no kind produced a
// stealthy win" into exit 3 (the stealth-regression job arms it).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "detect/stealth.hpp"
#include "obs/counters.hpp"
#include "obs/timer.hpp"

namespace pb = platoon::bench;
namespace pc = platoon::core;
namespace pd = platoon::detect;
namespace ps = platoon::scen;
namespace stealth = platoon::security::stealth;

namespace {

using platoon::obs::Counter;

// Deterministic per-kind search outcomes, pinned by the committed baseline.
// Impacts are exported as integer millimeters (exact: the underlying
// doubles are bit-identical at any job count, so the rounding is too).
Counter g_gps_candidates{"bench_table6.gps_spoof.candidates"};
Counter g_gps_feasible{"bench_table6.gps_spoof.feasible"};
Counter g_gps_frontier{"bench_table6.gps_spoof.frontier_points"};
Counter g_gps_static_mm{"bench_table6.gps_spoof.best_static_impact_mm"};
Counter g_gps_stealthy_mm{"bench_table6.gps_spoof.best_stealthy_impact_mm"};
Counter g_gps_win{"bench_table6.gps_spoof.stealthy_win"};
Counter g_sensor_candidates{"bench_table6.sensor_spoof.candidates"};
Counter g_sensor_feasible{"bench_table6.sensor_spoof.feasible"};
Counter g_sensor_frontier{"bench_table6.sensor_spoof.frontier_points"};
Counter g_sensor_static_mm{"bench_table6.sensor_spoof.best_static_impact_mm"};
Counter g_sensor_stealthy_mm{
    "bench_table6.sensor_spoof.best_stealthy_impact_mm"};
Counter g_sensor_win{"bench_table6.sensor_spoof.stealthy_win"};
Counter g_maneuver_candidates{"bench_table6.fake_maneuver.candidates"};
Counter g_maneuver_feasible{"bench_table6.fake_maneuver.feasible"};
Counter g_maneuver_frontier{"bench_table6.fake_maneuver.frontier_points"};
Counter g_maneuver_static_mm{
    "bench_table6.fake_maneuver.best_static_impact_mm"};
Counter g_maneuver_stealthy_mm{
    "bench_table6.fake_maneuver.best_stealthy_impact_mm"};
Counter g_maneuver_win{"bench_table6.fake_maneuver.stealthy_win"};
Counter g_wins{"bench_table6.stealthy_wins"};

struct KindCounters {
    Counter* candidates;
    Counter* feasible;
    Counter* frontier;
    Counter* static_mm;
    Counter* stealthy_mm;
    Counter* win;
};

KindCounters kind_counters(stealth::InjectionKind kind) {
    switch (kind) {
        case stealth::InjectionKind::kGpsSpoof:
            return {&g_gps_candidates, &g_gps_feasible, &g_gps_frontier,
                    &g_gps_static_mm, &g_gps_stealthy_mm, &g_gps_win};
        case stealth::InjectionKind::kSensorSpoof:
            return {&g_sensor_candidates, &g_sensor_feasible,
                    &g_sensor_frontier, &g_sensor_static_mm,
                    &g_sensor_stealthy_mm, &g_sensor_win};
        case stealth::InjectionKind::kFakeManeuver:
            return {&g_maneuver_candidates, &g_maneuver_feasible,
                    &g_maneuver_frontier, &g_maneuver_static_mm,
                    &g_maneuver_stealthy_mm, &g_maneuver_win};
    }
    return {};
}

std::uint64_t impact_mm(double impact) {
    if (!(impact > 0.0)) return 0;
    return static_cast<std::uint64_t>(std::llround(impact * 1000.0));
}

/// The strict acceptance comparison: a shaped (non-static) profile that
/// never tripped a gate and beat the best zero-gate-alarm static profile's
/// impact. No feasible static profile at all counts as a 0 m bar.
bool stealthy_win(const stealth::SearchResult& search) {
    if (!search.best_stealthy.has_value()) return false;
    if (stealth::is_static(search.best_stealthy->profile)) return false;
    const double static_impact = search.best_static.has_value()
                                     ? search.best_static->outcome.impact
                                     : 0.0;
    return search.best_stealthy->outcome.impact > static_impact;
}

std::string champion_cell(const std::optional<stealth::Evaluated>& champion) {
    if (!champion.has_value()) return "(none)";
    return stealth::profile_key(champion->profile);
}

void run_and_print() {
    const ps::Compiled compiled = pb::load_scenario("stealth_frontier");
    if (!compiled.stealth.has_value()) {
        std::cerr << "bench_table6_stealth: scenarios/stealth_frontier.json "
                     "carries no overrides.stealth block\n";
        std::exit(2);
    }
    const pd::StealthSpec spec =
        pd::stealth_spec_from(*compiled.stealth, compiled.description.seed);
    const pc::ScenarioConfig& base = compiled.cells.front().config;

    pc::print_banner(
        std::cout,
        "Table VI -- stealth-impact frontier: detector-aware injection "
        "profiles searched against the two-sided detector bank "
        "(feasible = zero innovation/EWMA/CUSUM gate alarms)");

    pd::StealthFrontierResult frontier;
    {
        const platoon::obs::ScopedTimer timer("bench_table6.frontier");
        frontier = pd::run_stealth_frontier(base, spec, pb::jobs());
    }

    pc::Table champions({"injection", "candidates", "feasible",
                         "static impact_m", "stealthy impact_m",
                         "gate", "total", "win", "stealthy profile"});
    std::uint64_t wins = 0;
    for (const pd::StealthKindResult& kind : frontier.kinds) {
        const stealth::SearchResult& search = kind.search;
        const KindCounters counters = kind_counters(kind.kind);
        std::uint64_t feasible_count = 0;
        for (const stealth::Evaluated& e : search.evaluated)
            if (stealth::feasible(e.outcome)) ++feasible_count;
        counters.candidates->add(search.evaluated.size());
        counters.feasible->add(feasible_count);

        // Gated-frontier size: points on the three gate detectors'
        // frontiers (the whole-bank frontiers are printed below but only
        // the gates bound the attacker's feasible set).
        std::uint64_t frontier_points = 0;
        for (const std::size_t d : frontier.gate_detectors)
            frontier_points += kind.frontiers[d].size();
        counters.frontier->add(frontier_points);

        const double static_impact = search.best_static.has_value()
                                         ? search.best_static->outcome.impact
                                         : 0.0;
        const double stealthy_impact =
            search.best_stealthy.has_value()
                ? search.best_stealthy->outcome.impact
                : 0.0;
        counters.static_mm->add(impact_mm(static_impact));
        counters.stealthy_mm->add(impact_mm(stealthy_impact));
        const bool win = stealthy_win(search);
        if (win) {
            counters.win->add(1);
            ++wins;
        }

        champions.add_row(
            {std::string(stealth::to_string(kind.kind)),
             std::to_string(search.evaluated.size()),
             std::to_string(feasible_count),
             pc::Table::num(static_impact, 3),
             pc::Table::num(stealthy_impact, 3),
             std::to_string(search.best_stealthy.has_value()
                                ? search.best_stealthy->outcome.gate_alarms
                                : 0),
             std::to_string(search.best_stealthy.has_value()
                                ? search.best_stealthy->outcome.total_alarms
                                : 0),
             win ? "yes" : "no",
             champion_cell(search.best_stealthy)});
    }
    g_wins.add(wins);
    champions.print(std::cout);

    for (const pd::StealthKindResult& kind : frontier.kinds) {
        pc::print_banner(std::cout,
                         "Pareto frontier per detector -- " +
                             std::string(stealth::to_string(kind.kind)) +
                             " (alarm budget vs best achievable impact)");
        pc::Table table({"detector", "alarms", "impact_m", "profile"});
        for (std::size_t d = 0; d < frontier.detectors.size(); ++d) {
            for (const stealth::FrontierPoint& point : kind.frontiers[d]) {
                table.add_row({frontier.detectors[d],
                               std::to_string(point.alarms),
                               pc::Table::num(point.impact, 3),
                               stealth::profile_key(point.profile)});
            }
        }
        table.print(std::cout);
    }

    std::cout << "stealthy wins: " << wins << "/" << frontier.kinds.size()
              << " injection kinds beat their best zero-gate-alarm static "
                 "profile without tripping a gate\n";
    if (const char* env = std::getenv("PLATOON_STEALTH_REQUIRE_WIN");
        env != nullptr && env[0] == '1' && wins == 0) {
        std::cerr << "bench_table6_stealth: FAIL: "
                     "PLATOON_STEALTH_REQUIRE_WIN is set and no injection "
                     "kind produced a stealthy win\n";
        std::exit(3);
    }
}

void BM_StealthReplication(benchmark::State& state) {
    // One candidate evaluation (the search's unit of work): a seeded
    // detection replication under the profiled attack. Loaded lazily --
    // the benchmark phase runs after write_bench_json, so nothing here can
    // leak into the counter artifact.
    static const ps::Compiled compiled = pb::load_scenario("stealth_frontier");
    const pd::StealthSpec spec =
        pd::stealth_spec_from(*compiled.stealth, compiled.description.seed);
    pd::StealthSpec one = spec;
    one.injections = {stealth::InjectionKind::kSensorSpoof};
    one.cem_iterations = 0;
    one.seeds = {compiled.description.seed};
    stealth::ProfileBounds tiny;
    tiny.amplitude_steps = 1;
    tiny.ramp_steps = 1;
    tiny.duty_steps = 1;
    one.bounds = tiny;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pd::run_stealth_frontier(
            compiled.cells.front().config, one, pb::jobs()));
    }
}
BENCHMARK(BM_StealthReplication)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
    pb::obs_init();
    pb::print_jobs_banner("bench_table6_stealth");
    run_and_print();
    pb::write_bench_json("bench_table6_stealth",
                         "Stealth-impact Pareto frontier (stealth_frontier)",
                         42);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
