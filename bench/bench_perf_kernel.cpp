// Engineering performance: simulator kernel throughput and crypto costs.
// Not a paper table -- this is what makes the table benches cheap enough to
// run hundreds of attack/defense scenarios on a laptop.
#include <benchmark/benchmark.h>

#include "core/scenario.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/eddsa.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace platoon;

void BM_SchedulerThroughput(benchmark::State& state) {
    for (auto _ : state) {
        sim::Scheduler scheduler;
        int counter = 0;
        for (int i = 0; i < 10000; ++i) {
            scheduler.schedule_at(static_cast<double>(i % 100), [&counter] {
                ++counter;
            });
        }
        scheduler.run_until(200.0);
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerThroughput);

void BM_PeriodicEvents(benchmark::State& state) {
    for (auto _ : state) {
        sim::Scheduler scheduler;
        long counter = 0;
        for (int i = 0; i < 64; ++i) {
            scheduler.schedule_every(0.01 * (i + 1) / 64.0, 0.01,
                                     [&counter] { ++counter; });
        }
        scheduler.run_until(10.0);
        benchmark::DoNotOptimize(counter);
    }
}
BENCHMARK(BM_PeriodicEvents);

void BM_ScenarioSimRate(benchmark::State& state) {
    const auto size = static_cast<std::size_t>(state.range(0));
    double simulated = 0.0;
    for (auto _ : state) {
        core::ScenarioConfig config;
        config.seed = 1;
        config.platoon_size = size;
        core::Scenario scenario(config);
        scenario.run_until(20.0);
        simulated += 20.0;
        benchmark::DoNotOptimize(scenario.summarize().spacing_rms_m);
    }
    state.counters["sim_s_per_wall_s"] = benchmark::Counter(
        simulated, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScenarioSimRate)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_ScenarioSignedSimRate(benchmark::State& state) {
    double simulated = 0.0;
    for (auto _ : state) {
        core::ScenarioConfig config;
        config.seed = 1;
        config.platoon_size = 6;
        config.security.auth_mode = crypto::AuthMode::kSignature;
        core::Scenario scenario(config);
        scenario.run_until(10.0);
        simulated += 10.0;
        benchmark::DoNotOptimize(scenario.summarize().spacing_rms_m);
    }
    state.counters["sim_s_per_wall_s"] = benchmark::Counter(
        simulated, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScenarioSignedSimRate)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Sha256(benchmark::State& state) {
    const crypto::Bytes data(static_cast<std::size_t>(state.range(0)), 0xA5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::Sha256::hash(data));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
    const crypto::Bytes key(32, 0x0B);
    const crypto::Bytes data(256, 0xA5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
    }
}
BENCHMARK(BM_HmacSha256);

void BM_ChaCha20(benchmark::State& state) {
    const crypto::Bytes key(32, 0x42);
    const crypto::Bytes nonce(12, 0x24);
    const crypto::Bytes data(static_cast<std::size_t>(state.range(0)), 0xA5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::ChaCha20::crypt(key, nonce, data));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(64)->Arg(4096);

void BM_SchnorrSign(benchmark::State& state) {
    const auto kp = crypto::KeyPair::from_seed(crypto::Bytes(32, 1));
    const auto msg = crypto::to_bytes("beacon pos=120.5 speed=25.0 a=0.2");
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::sign(kp, msg));
    }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
    const auto kp = crypto::KeyPair::from_seed(crypto::Bytes(32, 1));
    const auto msg = crypto::to_bytes("beacon pos=120.5 speed=25.0 a=0.2");
    const auto sig = crypto::sign(kp, msg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::verify(kp.public_bytes, msg, sig));
    }
}
BENCHMARK(BM_SchnorrVerify);

void BM_EcdhSharedKey(benchmark::State& state) {
    const auto a = crypto::KeyPair::from_seed(crypto::Bytes(32, 1));
    const auto b = crypto::KeyPair::from_seed(crypto::Bytes(32, 2));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            crypto::dh_shared_key(a.secret, b.public_bytes));
    }
}
BENCHMARK(BM_EcdhSharedKey);

}  // namespace

BENCHMARK_MAIN();
