// Engineering performance: simulator kernel throughput and crypto costs.
// Not a paper table -- this is what makes the table benches cheap enough to
// run hundreds of attack/defense scenarios on a laptop.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/eddsa.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "sim/scheduler.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace platoon;

void BM_SchedulerThroughput(benchmark::State& state) {
    for (auto _ : state) {
        sim::Scheduler scheduler;
        int counter = 0;
        for (int i = 0; i < 10000; ++i) {
            scheduler.schedule_at(static_cast<double>(i % 100), [&counter] {
                ++counter;
            });
        }
        scheduler.run_until(200.0);
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerThroughput);

void BM_PeriodicEvents(benchmark::State& state) {
    for (auto _ : state) {
        sim::Scheduler scheduler;
        long counter = 0;
        for (int i = 0; i < 64; ++i) {
            scheduler.schedule_every(0.01 * (i + 1) / 64.0, 0.01,
                                     [&counter] { ++counter; });
        }
        scheduler.run_until(10.0);
        benchmark::DoNotOptimize(counter);
    }
}
BENCHMARK(BM_PeriodicEvents);

void BM_ScenarioSimRate(benchmark::State& state) {
    const auto size = static_cast<std::size_t>(state.range(0));
    double simulated = 0.0;
    for (auto _ : state) {
        core::ScenarioConfig config;
        config.seed = 1;
        config.platoon_size = size;
        core::Scenario scenario(config);
        scenario.run_until(20.0);
        simulated += 20.0;
        benchmark::DoNotOptimize(scenario.summarize().spacing_rms_m);
    }
    state.counters["sim_s_per_wall_s"] = benchmark::Counter(
        simulated, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScenarioSimRate)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_ScenarioSignedSimRate(benchmark::State& state) {
    double simulated = 0.0;
    for (auto _ : state) {
        core::ScenarioConfig config;
        config.seed = 1;
        config.platoon_size = 6;
        config.security.auth_mode = crypto::AuthMode::kSignature;
        core::Scenario scenario(config);
        scenario.run_until(10.0);
        simulated += 10.0;
        benchmark::DoNotOptimize(scenario.summarize().spacing_rms_m);
    }
    state.counters["sim_s_per_wall_s"] = benchmark::Counter(
        simulated, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScenarioSignedSimRate)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_RunSeeds(benchmark::State& state) {
    const auto jobs = static_cast<unsigned>(state.range(0));
    core::RunSpec spec;
    spec.scenario.seed = 7;
    spec.scenario.platoon_size = 6;
    spec.duration_s = 20.0;
    const std::size_t seeds = 16;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::run_seeds_parallel(spec, seeds, jobs));
    }
    state.counters["sim_s_per_wall_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 20.0 * seeds,
        benchmark::Counter::kIsRate);
    state.SetLabel("jobs=" + std::to_string(jobs));
}
BENCHMARK(BM_RunSeeds)->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

void BM_Sha256(benchmark::State& state) {
    const crypto::Bytes data(static_cast<std::size_t>(state.range(0)), 0xA5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::Sha256::hash(data));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
    const crypto::Bytes key(32, 0x0B);
    const crypto::Bytes data(256, 0xA5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
    }
}
BENCHMARK(BM_HmacSha256);

void BM_ChaCha20(benchmark::State& state) {
    const crypto::Bytes key(32, 0x42);
    const crypto::Bytes nonce(12, 0x24);
    const crypto::Bytes data(static_cast<std::size_t>(state.range(0)), 0xA5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::ChaCha20::crypt(key, nonce, data));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(64)->Arg(4096);

void BM_SchnorrSign(benchmark::State& state) {
    const auto kp = crypto::KeyPair::from_seed(crypto::Bytes(32, 1));
    const auto msg = crypto::to_bytes("beacon pos=120.5 speed=25.0 a=0.2");
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::sign(kp, msg));
    }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
    const auto kp = crypto::KeyPair::from_seed(crypto::Bytes(32, 1));
    const auto msg = crypto::to_bytes("beacon pos=120.5 speed=25.0 a=0.2");
    const auto sig = crypto::sign(kp, msg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::verify(kp.public_bytes, msg, sig));
    }
}
BENCHMARK(BM_SchnorrVerify);

void BM_EcdhSharedKey(benchmark::State& state) {
    const auto a = crypto::KeyPair::from_seed(crypto::Bytes(32, 1));
    const auto b = crypto::KeyPair::from_seed(crypto::Bytes(32, 2));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            crypto::dh_shared_key(a.secret, b.public_bytes));
    }
}
BENCHMARK(BM_EcdhSharedKey);

// Wall-clock speedup of the parallel experiment runner: the same 16-seed
// replication set at jobs=1 vs PLATOON_JOBS (default: hardware concurrency).
// The two aggregates are asserted bit-identical -- the speedup is free.
void report_parallel_speedup() {
    core::RunSpec spec;
    spec.scenario.seed = 7;
    spec.scenario.platoon_size = 6;
    spec.duration_s = 20.0;
    const std::size_t seeds = 16;
    const unsigned jobs = core::default_jobs();

    const auto timed = [&](unsigned j) {
        const auto start = std::chrono::steady_clock::now();
        const auto agg = core::run_seeds(spec, seeds, j);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        return std::pair<double, core::Aggregate>(elapsed.count(), agg);
    };
    const auto [serial_s, serial_agg] = timed(1);
    const auto [parallel_s, parallel_agg] = timed(jobs);
    const bool identical = serial_agg.mean == parallel_agg.mean &&
                           serial_agg.stddev == parallel_agg.stddev;
    std::printf(
        "run_seeds speedup: %zu seeds x 20 sim-s, jobs=1: %.2f s, "
        "jobs=%u: %.2f s -> %.2fx (aggregates bit-identical: %s)\n",
        seeds, serial_s, jobs, parallel_s, serial_s / parallel_s,
        identical ? "yes" : "NO -- DETERMINISM BUG");
}

}  // namespace

int main(int argc, char** argv) {
    platoon::bench::obs_init();
    report_parallel_speedup();
    // Exported before RunSpecifiedBenchmarks: google-benchmark's dynamic
    // iteration counts would make the counter section machine-dependent.
    platoon::bench::write_bench_json("bench_perf_kernel",
                                     "run_seeds 16x20s speedup probe", 7);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
